// matrix_sweep — multi-process sweep driver (README "Reproduce the paper's
// experiments"; docs/ARCHITECTURE.md "Parallel engine").
//
//   matrix_sweep ./build/bench_surge_queue ++ ./build/bench_policy_grants
//   matrix_sweep --jobs 4 --repeat 3 ./build/bench_overload_admission
//   matrix_sweep --out sweep.json ./build/matrix_fuzz --count 5 ++ \
//                ./build/matrix_fuzz --start-seed 100 --count 5
//
// Runs the given commands concurrently as child processes (fork/exec) and
// aggregates their `--json` reports into one matrix_bench_json document —
// the embarrassingly-parallel complement to the in-process sharded engine:
// shards parallelize ONE simulation, the sweep parallelizes MANY (seeds,
// configs, policies), and the two compose since each child is free to run
// sharded itself.
//
// `++` separates commands (every bench already owns `--`-style flags, so a
// bare `--` would be ambiguous).  `--repeat N` clones the whole command list
// N times — with benches deriving behavior from their own fixed seeds this
// measures run-to-run wall-clock variance; with seed-taking tools the clone
// index is appended via `{i}` substitution in any argument, e.g.
// `matrix_sweep --repeat 8 ./build/matrix_fuzz --seed {i}`.
//
// Each child gets `--json <tmpfile>` appended and its stdout silenced
// (stderr passes through — that is where failures explain themselves); a
// nonzero child exit fails the sweep (exit 1) after aggregation so a CI
// wrapper still gets the partial report.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Job {
  std::vector<std::string> argv;   // command + args, `--json` NOT included
  std::string label;               // prefix for aggregated metric names
  std::string json_path;           // temp report path handed to the child
  pid_t pid = -1;
  int exit_status = -1;
  double wall_sec = 0.0;
  std::chrono::steady_clock::time_point started;
};

struct Args {
  std::size_t jobs = 0;            // 0 = hardware concurrency
  std::size_t repeat = 1;
  std::string out;                 // aggregated report path ("" = stdout only)
  std::vector<std::vector<std::string>> commands;
};

void usage() {
  std::fprintf(stderr,
               "usage: matrix_sweep [--jobs N] [--repeat N] [--out FILE]\n"
               "                    CMD [ARGS...] [++ CMD [ARGS...]]...\n");
}

bool parse_args(int argc, char** argv, Args& args) {
  int i = 1;
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--jobs" && i + 1 < argc) {
      args.jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag == "--repeat" && i + 1 < argc) {
      args.repeat =
          std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (flag == "--out" && i + 1 < argc) {
      args.out = argv[++i];
    } else if (flag == "--help" || flag == "-h") {
      usage();
      std::exit(0);
    } else {
      break;  // first non-flag token starts the command list
    }
  }
  std::vector<std::string> current;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "++") == 0) {
      if (!current.empty()) args.commands.push_back(std::move(current));
      current.clear();
    } else {
      current.emplace_back(argv[i]);
    }
  }
  if (!current.empty()) args.commands.push_back(std::move(current));
  return !args.commands.empty();
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Replaces every `{i}` in `arg` with the clone index.
std::string substitute_index(const std::string& arg, std::size_t index) {
  std::string out = arg;
  std::size_t pos;
  while ((pos = out.find("{i}")) != std::string::npos) {
    out.replace(pos, 3, std::to_string(index));
  }
  return out;
}

bool spawn(Job& job) {
  std::vector<char*> argv;
  argv.reserve(job.argv.size() + 3);
  for (std::string& arg : job.argv) argv.push_back(arg.data());
  std::string json_flag = "--json";
  argv.push_back(json_flag.data());
  argv.push_back(job.json_path.data());
  argv.push_back(nullptr);

  job.started = std::chrono::steady_clock::now();
  std::fflush(stdout);  // children inherit the buffer; don't replay it
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("matrix_sweep: fork");
    return false;
  }
  if (pid == 0) {
    // Child: silence stdout (benches narrate freely); stderr passes through.
    std::FILE* devnull = std::freopen("/dev/null", "w", stdout);
    (void)devnull;
    execvp(argv[0], argv.data());
    std::fprintf(stderr, "matrix_sweep: exec %s: %s\n", argv[0],
                 std::strerror(errno));
    _exit(127);
  }
  job.pid = pid;
  return true;
}

void reap(std::vector<Job>& jobs) {
  int status = 0;
  const pid_t pid = wait(&status);
  if (pid < 0) return;
  for (Job& job : jobs) {
    if (job.pid == pid) {
      job.exit_status =
          WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
      job.wall_sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - job.started)
                         .count();
      job.pid = -1;
      return;
    }
  }
}

struct Entry {
  std::string name;
  double value = 0.0;
  std::string unit;
};

/// Pulls the benchmarks[] entries out of one matrix_bench_json file.  The
/// format is the flat writer in bench_common.h — one entry per line — so a
/// line scanner is enough; no JSON library in the toolchain.
std::vector<Entry> read_report(const std::string& path) {
  std::vector<Entry> entries;
  std::ifstream in(path);
  std::string line;
  const auto field = [&line](const char* key) -> std::string {
    const std::size_t at = line.find(key);
    if (at == std::string::npos) return {};
    const std::size_t colon = line.find(':', at);
    if (colon == std::string::npos) return {};
    std::size_t begin = line.find_first_not_of(" \"", colon + 1);
    std::size_t end = line.find_first_of("\",}", begin);
    if (begin == std::string::npos || end == std::string::npos) return {};
    return line.substr(begin, end - begin);
  };
  while (std::getline(in, line)) {
    if (line.find("\"name\"") == std::string::npos) continue;
    Entry e;
    e.name = field("\"name\"");
    const std::string value = field("\"value\"");
    if (e.name.empty() || value.empty()) continue;
    e.value = std::strtod(value.c_str(), nullptr);
    e.unit = field("\"unit\"");
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  const std::size_t max_jobs =
      args.jobs > 0 ? args.jobs
                    : std::max(1u, std::thread::hardware_concurrency());

  // Expand the command list × repeat into jobs with unique labels.
  std::vector<Job> jobs;
  for (std::size_t r = 0; r < args.repeat; ++r) {
    for (std::size_t c = 0; c < args.commands.size(); ++c) {
      Job job;
      const std::size_t index = r * args.commands.size() + c;
      for (const std::string& arg : args.commands[c]) {
        job.argv.push_back(substitute_index(arg, index));
      }
      job.label = basename_of(job.argv.front());
      if (args.repeat > 1) job.label += "#" + std::to_string(r);
      std::ostringstream path;
      path << "/tmp/matrix_sweep." << getpid() << "." << index << ".json";
      job.json_path = path.str();
      jobs.push_back(std::move(job));
    }
  }
  // Duplicate labels within one repeat round get a positional suffix so the
  // aggregated names stay unique.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::size_t dup = 0;
    for (std::size_t j = 0; j < i; ++j) {
      if (jobs[j].label == jobs[i].label) ++dup;
    }
    if (dup > 0) jobs[i].label += "@" + std::to_string(dup);
  }

  std::printf("matrix_sweep: %zu job(s), %zu at a time\n", jobs.size(),
              max_jobs);
  const auto sweep_start = std::chrono::steady_clock::now();
  std::size_t launched = 0;
  std::size_t running = 0;
  while (launched < jobs.size() || running > 0) {
    while (launched < jobs.size() && running < max_jobs) {
      if (!spawn(jobs[launched])) {
        jobs[launched].exit_status = 127;
      } else {
        ++running;
      }
      ++launched;
    }
    if (running > 0) {
      reap(jobs);
      --running;
    }
  }
  const double sweep_sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - sweep_start)
                               .count();

  // ---- aggregate ------------------------------------------------------------
  bool all_ok = true;
  std::vector<Entry> merged;
  double serial_sec = 0.0;
  for (Job& job : jobs) {
    serial_sec += job.wall_sec;
    std::printf("  [%-28s] exit=%-3d wall=%7.2fs", job.label.c_str(),
                job.exit_status, job.wall_sec);
    if (job.exit_status != 0) {
      all_ok = false;
      std::printf("  FAILED\n");
    } else {
      const std::vector<Entry> entries = read_report(job.json_path);
      std::printf("  %zu metric(s)\n", entries.size());
      for (const Entry& e : entries) {
        merged.push_back({job.label + "/" + e.name, e.value, e.unit});
      }
    }
    std::remove(job.json_path.c_str());
  }
  std::printf("matrix_sweep: %.2fs wall for %.2fs of serial bench time"
              " (%.2fx)\n",
              sweep_sec, serial_sec,
              sweep_sec > 0.0 ? serial_sec / sweep_sec : 0.0);

  if (!args.out.empty()) {
    std::FILE* f = std::fopen(args.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "matrix_sweep: cannot write %s\n",
                   args.out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"context\": {\n    \"executable\": \"matrix_sweep\",\n"
                 "    \"format\": \"matrix_bench_json\"\n  },\n"
                 "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < merged.size(); ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": "
                   "\"%s\"}%s\n",
                   merged[i].name.c_str(), merged[i].value,
                   merged[i].unit.c_str(), i + 1 < merged.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  [aggregated report written to %s]\n", args.out.c_str());
  }
  return all_ok ? 0 : 1;
}
