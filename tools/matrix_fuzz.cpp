// matrix_fuzz — randomized scenario fuzzer CLI (docs/TESTING.md).
//
//   matrix_fuzz                         # the fixed CI seed set (1..25), both policies
//   matrix_fuzz --seed 1337            # replay one seed
//   matrix_fuzz --count 100            # seeds start..start+99
//   matrix_fuzz --start-seed 9000      # where --count begins (default 1)
//   matrix_fuzz --policy classic       # classic | directive | both (default both)
//   matrix_fuzz --time-budget 60       # stop launching new cases after N wall seconds
//   matrix_fuzz --dump-dir DIR         # write failing traces to DIR/fuzz_seed_N.jsonl
//   matrix_fuzz --json FILE            # sweep tallies as matrix_bench_json
//
// Every case expands its seed into a full scenario (src/fuzz/fuzz_scenario.h),
// runs it to rest, and checks every trace invariant.  On violation the tool
// prints the seed, the violated invariants, and the flight-recorder JSONL —
// everything needed to replay with `matrix_fuzz --seed N`.  Exit 1 on any
// violation, 0 on a clean sweep.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/fuzz_scenario.h"

namespace {

using matrix::LoadPolicyKind;
using matrix::fuzz::FuzzResult;
using matrix::fuzz::FuzzRunOptions;

struct Args {
  std::vector<std::uint64_t> seeds;
  std::uint64_t start_seed = 1;
  std::uint64_t count = 0;          // 0 = use the fixed CI set
  std::string policy = "both";
  double time_budget_sec = 0.0;     // 0 = no budget
  std::string dump_dir;
  std::string json_path;            // sweep tallies, matrix_bench_json shape
};

void usage() {
  std::cerr << "usage: matrix_fuzz [--seed N]... [--count N] [--start-seed N]\n"
               "                   [--policy classic|directive|both]\n"
               "                   [--time-budget SEC] [--dump-dir DIR]\n"
               "                   [--json FILE]\n";
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "matrix_fuzz: " << name << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--seed") {
      const char* v = need_value("--seed");
      if (v == nullptr) return false;
      args.seeds.push_back(std::strtoull(v, nullptr, 10));
    } else if (flag == "--count") {
      const char* v = need_value("--count");
      if (v == nullptr) return false;
      args.count = std::strtoull(v, nullptr, 10);
    } else if (flag == "--start-seed") {
      const char* v = need_value("--start-seed");
      if (v == nullptr) return false;
      args.start_seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--policy") {
      const char* v = need_value("--policy");
      if (v == nullptr) return false;
      args.policy = v;
      if (args.policy != "classic" && args.policy != "directive" &&
          args.policy != "both") {
        std::cerr << "matrix_fuzz: unknown policy '" << args.policy << "'\n";
        return false;
      }
    } else if (flag == "--time-budget") {
      const char* v = need_value("--time-budget");
      if (v == nullptr) return false;
      args.time_budget_sec = std::strtod(v, nullptr);
    } else if (flag == "--dump-dir") {
      const char* v = need_value("--dump-dir");
      if (v == nullptr) return false;
      args.dump_dir = v;
    } else if (flag == "--json") {
      const char* v = need_value("--json");
      if (v == nullptr) return false;
      args.json_path = v;
    } else if (flag == "--help" || flag == "-h") {
      usage();
      std::exit(0);
    } else {
      std::cerr << "matrix_fuzz: unknown flag '" << flag << "'\n";
      usage();
      return false;
    }
  }
  return true;
}

/// Runs one (seed, policy) case; returns true when every invariant held.
bool run_case(std::uint64_t seed, LoadPolicyKind policy,
              const std::string& dump_dir) {
  FuzzRunOptions options;
  options.capture_trace = true;
  const FuzzResult result = matrix::fuzz::run_fuzz_case(seed, policy, options);

  std::cout << (result.report.ok() ? "ok   " : "FAIL ")
            << result.plan.describe() << " — " << result.report.events_checked
            << " events, " << result.report.clients_tracked << " clients"
            << (result.quiesced ? "" : ", DID NOT QUIESCE") << "\n";

  if (result.report.ok()) return true;

  std::cout << "\n=== invariant violations for seed " << seed << " ("
            << matrix::load_policy_kind_name(policy) << ") ===\n"
            << result.report.summary()
            << "\nreplay: matrix_fuzz --seed " << seed << " --policy "
            << matrix::load_policy_kind_name(policy) << "\n";

  if (!dump_dir.empty()) {
    const std::string path = dump_dir + "/fuzz_seed_" + std::to_string(seed) +
                             "_" + matrix::load_policy_kind_name(policy) +
                             ".jsonl";
    std::ofstream out(path);
    if (out) {
      out << result.trace_jsonl;
      std::cout << "flight recorder written to " << path << "\n";
    } else {
      std::cout << "could not open " << path << "; dumping inline:\n"
                << result.trace_jsonl;
    }
  } else {
    std::cout << "=== flight recorder (JSONL, oldest first) ===\n"
              << result.trace_jsonl;
  }
  std::cout << std::endl;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 2;

  std::vector<std::uint64_t> seeds = args.seeds;
  if (seeds.empty()) {
    const std::uint64_t n = args.count != 0 ? args.count : 25;
    for (std::uint64_t s = 0; s < n; ++s) seeds.push_back(args.start_seed + s);
  }

  std::vector<LoadPolicyKind> policies;
  if (args.policy == "classic" || args.policy == "both") {
    policies.push_back(LoadPolicyKind::kClassic);
  }
  if (args.policy == "directive" || args.policy == "both") {
    policies.push_back(LoadPolicyKind::kDirective);
  }

  const auto started = std::chrono::steady_clock::now();
  const auto out_of_budget = [&] {
    if (args.time_budget_sec <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    return elapsed.count() >= args.time_budget_sec;
  };

  std::size_t ran = 0;
  std::size_t failed = 0;
  bool budget_hit = false;
  for (const std::uint64_t seed : seeds) {
    for (const LoadPolicyKind policy : policies) {
      if (out_of_budget()) {
        budget_hit = true;
        break;
      }
      ++ran;
      if (!run_case(seed, policy, args.dump_dir)) ++failed;
    }
    if (budget_hit) break;
  }

  std::cout << "\nmatrix_fuzz: " << ran << " cases, " << failed << " failed";
  if (budget_hit) std::cout << " (time budget reached)";
  std::cout << "\n";

  // Sweep tallies in the same matrix_bench_json shape the benches emit, so
  // `matrix_sweep` (which appends `--json tmpfile` to every child) can
  // aggregate fuzz jobs alongside bench jobs.
  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::cerr << "matrix_fuzz: cannot write " << args.json_path << "\n";
      return 1;
    }
    out << "{\n  \"context\": {\n    \"executable\": \"matrix_fuzz\",\n"
           "    \"format\": \"matrix_bench_json\"\n  },\n"
           "  \"benchmarks\": [\n"
           "    {\"name\": \"cases_run\", \"value\": " << ran
        << ", \"unit\": \"cases\"},\n"
           "    {\"name\": \"cases_failed\", \"value\": " << failed
        << ", \"unit\": \"cases\"}\n  ]\n}\n";
  }
  return failed == 0 ? 0 : 1;
}
