// A-lookup: the routing hot path (bench index: README.md), measured with
// google-benchmark.
//
// Compares three ways a Matrix server could resolve the consistency set of
// a spatially-tagged packet (paper §3.2.4):
//
//   * RegionIndex  — the shipped O(1) bucket-grid overlap-table lookup;
//   * LinearRegions — scanning the overlap-region list (what a naive table
//     implementation would do);
//   * FullScan     — Eq. 1 evaluated against all N partitions (no table at
//     all; also what the MC does for non-proximal lookups).
//
// The paper's claim: lookup cost must be O(1) and independent of the
// number of servers, or routing latency creeps into the player-visible
// budget as deployments grow.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/overlap.h"
#include "core/partition.h"
#include "core/quadtree_index.h"
#include "util/rng.h"

namespace matrix {
namespace {

PartitionMap make_grid_map(std::size_t n) {
  // n must be a perfect square for a clean grid.
  const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  const double w = 1000.0 / static_cast<double>(side);
  PartitionMap map;
  std::size_t id = 1;
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      map.upsert({ServerId(id), NodeId(1000 + id), NodeId(2000 + id),
                  Rect(static_cast<double>(x) * w, static_cast<double>(y) * w,
                       static_cast<double>(x + 1) * w,
                       static_cast<double>(y + 1) * w)});
      ++id;
    }
  }
  return map;
}

constexpr double kRadius = 25.0;

struct Fixture {
  explicit Fixture(std::size_t n)
      : map(make_grid_map(n)),
        home(*map.find(ServerId(1))),
        regions(build_overlap_regions(map, home.server, kRadius,
                                      Metric::kChebyshev)),
        index(home.range, regions) {
    Rng rng(42);
    for (int i = 0; i < 4096; ++i) {
      probes.push_back(
          {rng.next_double_in(home.range.x0(), home.range.x1() - 1e-9),
           rng.next_double_in(home.range.y0(), home.range.y1() - 1e-9)});
    }
  }

  PartitionMap map;
  PartitionEntry home;
  std::vector<OverlapRegionWire> regions;
  RegionIndex index;
  std::vector<Vec2> probes;
};

void BM_RegionIndex(benchmark::State& state) {
  Fixture fixture(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.index.find(fixture.probes[i++ & 4095]));
  }
  state.SetLabel(std::to_string(fixture.regions.size()) + " regions");
}

void BM_QuadtreeIndex(benchmark::State& state) {
  Fixture fixture(static_cast<std::size_t>(state.range(0)));
  const QuadtreeIndex tree(fixture.home.range, fixture.regions);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(fixture.probes[i++ & 4095]));
  }
}

void BM_LinearRegions(benchmark::State& state) {
  Fixture fixture(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const Vec2 p = fixture.probes[i++ & 4095];
    const OverlapRegionWire* hit = nullptr;
    for (const auto& region : fixture.regions) {
      if (region.rect.contains(p)) {
        hit = &region;
        break;
      }
    }
    benchmark::DoNotOptimize(hit);
  }
}

void BM_FullScan(benchmark::State& state) {
  Fixture fixture(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(consistency_set_scan(
        fixture.map, fixture.probes[i++ & 4095], kRadius,
        Metric::kChebyshev));
  }
}

BENCHMARK(BM_RegionIndex)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_QuadtreeIndex)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_LinearRegions)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_FullScan)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Table construction cost (what the MC pays per server per recompute).
void BM_BuildOverlapRegions(benchmark::State& state) {
  const PartitionMap map =
      make_grid_map(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_overlap_regions(map, ServerId(1), kRadius, Metric::kChebyshev));
  }
}
BENCHMARK(BM_BuildOverlapRegions)->Arg(4)->Arg(64)->Arg(1024);

// Index construction (what a Matrix server pays per table push).
void BM_BuildRegionIndex(benchmark::State& state) {
  Fixture fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    RegionIndex index(fixture.home.range, fixture.regions);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_BuildRegionIndex)->Arg(4)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace matrix

// Custom main instead of BENCHMARK_MAIN(): the repo-wide `--json <path>` /
// `--json=<path>` flag (bench/bench_common.h convention) is translated onto
// google-benchmark's native JSON writer so CI collects one artifact shape
// from every bench binary.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string out_flag;
  static std::string fmt_flag = "--benchmark_out_format=json";
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      out_flag = std::string("--benchmark_out=") + argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      out_flag = std::string("--benchmark_out=") + (argv[i] + 7);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
