// Overload admission: what happens when the pool runs dry?
//
// The paper's evaluation stops at "Matrix absorbed the hotspot with the
// spare pool".  This bench drives the regime the paper never models — a
// flash crowd offering ~4× the deployment's TOTAL capacity (every root
// plus every spare at the overload threshold) — and compares three runs:
//
//   baseline : at-capacity crowd, admission off  (the reference latency)
//   off      : beyond-capacity crowd, admission off  (unprotected collapse)
//   on       : beyond-capacity crowd, admission on   (src/control/ valve)
//
// Claim under test: with admission ON, the p99 response latency of the
// ADMITTED clients stays within 2× the at-capacity baseline while excess
// joins are deferred/denied at the valve; with admission OFF it does not.
// The hysteresis invariants of every recorded admission timeline are also
// checked (the same contract tests/admission_test.cpp asserts).
#include "bench_common.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

constexpr std::size_t kPoolSize = 3;        // 1 root + 3 spares...
constexpr std::uint32_t kOverload = 60;     // ...at 60 clients each = 240
constexpr std::size_t kBaselineBots = 200;  // ~83% of capacity
constexpr std::size_t kOverloadBots = 1000; // ~4× capacity
constexpr SimTime kDuration = 60_sec;

DeploymentOptions overload_options(bool admission_on) {
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 800, 800);
  options.config.visibility_radius = 50.0;
  options.config.overload_clients = kOverload;
  options.config.underload_clients = kOverload / 2;
  options.config.sustain_reports_to_split = 2;
  options.config.topology_cooldown = 2_sec;
  options.config.load_report_interval = 500_ms;
  options.config.pool_backoff_initial = 1_sec;
  options.config.pool_backoff_max = 8_sec;

  options.config.admission.enabled = admission_on;
  options.config.admission.soft_denied_streak = 1;
  options.config.admission.hard_denied_streak = 3;
  options.config.admission.token_rate_per_sec = 10.0;
  options.config.admission.token_burst = 20.0;
  options.config.admission.dwell = 1_sec;
  options.config.admission.recover_min = 4_sec;
  options.config.admission.defer_retry = 2_sec;

  // Quake-like 20 Hz actions against a deliberately modest server (400 µs
  // per message ⇒ ~2.5k msg/s): 60 clients is ~50% utilisation, so a stuck
  // 250-client partition runs at ~200% and its queue grows without bound —
  // the collapse the valve exists to prevent.
  options.spec = quake_like();
  options.config.visibility_radius = options.spec.visibility_radius;
  options.game_node.service_per_message = SimTime::from_us(400);
  options.initial_servers = 1;
  options.pool_size = kPoolSize;
  options.map_objects = 100;
  options.seed = 2005;
  return options;
}

struct RunResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double delivery = 0.0;  ///< acks / actions over admitted clients
  std::size_t admitted = 0;
  std::size_t final_clients = 0;
  double peak_servers = 0.0;
  double max_queue = 0.0;
  AdmissionSummary admission;
};

RunResult run_one(bool admission_on, std::size_t crowd, const char* label) {
  Deployment deployment(overload_options(admission_on));
  MetricsSampler metrics(deployment, 1_sec);

  OverloadScenarioOptions scenario;
  scenario.background_bots = 50;
  scenario.flash_bots = crowd - scenario.background_bots;
  scenario.join_batch = 100;
  scenario.join_interval = 2_sec;
  scenario.flash_at = 5_sec;
  scenario.center = {400.0, 400.0};
  scenario.spread = 150.0;
  scenario.duration = kDuration;
  schedule_overload_scenario(deployment, scenario);
  deployment.run_until(scenario.duration);

  RunResult result;
  Histogram self_ms;
  std::uint64_t actions = 0;
  std::uint64_t acks = 0;
  for (const BotClient* bot : deployment.bots()) {
    if (!bot->ever_connected()) continue;
    ++result.admitted;
    self_ms.merge(bot->metrics().self_latency_ms);
    actions += bot->metrics().actions_sent;
    acks += bot->metrics().self_latency_ms.count();
  }
  result.p50_ms = self_ms.median();
  result.p99_ms = self_ms.percentile(99.0);
  result.delivery =
      actions > 0 ? static_cast<double>(acks) / static_cast<double>(actions)
                  : 0.0;
  result.final_clients = deployment.total_clients();
  result.peak_servers = metrics.max_active_servers();
  result.max_queue = metrics.max_queue();
  result.admission = collect_admission(deployment);

  std::printf(
      "  %-10s offered=%4zu admitted=%4zu final=%4zu servers=%.0f "
      "p50=%7.1fms p99=%8.1fms delivered=%5.1f%% deferred=%llu denied=%llu "
      "maxQ=%.0f\n",
      label, crowd, result.admitted, result.final_clients,
      result.peak_servers, result.p50_ms, result.p99_ms,
      result.delivery * 100.0,
      static_cast<unsigned long long>(result.admission.joins_deferred),
      static_cast<unsigned long long>(result.admission.joins_denied),
      result.max_queue);
  return result;
}

void run(const char* json_path) {
  header("OverloadAdmission",
         "beyond-capacity flash crowd: admission on vs off");
  std::printf("  capacity = %zu servers x %u clients = %zu; crowd = %zu\n\n",
              1 + kPoolSize, kOverload, (1 + kPoolSize) * kOverload,
              kOverloadBots);

  const RunResult baseline = run_one(false, kBaselineBots, "baseline");
  const RunResult off = run_one(false, kOverloadBots, "off");
  const RunResult on = run_one(true, kOverloadBots, "on");

  std::printf("\n[criteria]\n");
  const double bound = 2.0 * baseline.p99_ms;
  std::printf("  admitted-client p99 bound (2x baseline) : %.1f ms\n", bound);
  std::printf("  admission ON  p99 %8.1f ms  -> %s\n", on.p99_ms,
              on.p99_ms <= bound ? "PASS (held)" : "FAIL");
  std::printf("  admission OFF p99 %8.1f ms  -> %s\n", off.p99_ms,
              off.p99_ms > bound ? "PASS (collapsed, as predicted)"
                                 : "FAIL (did not collapse)");
  std::printf("  excess shed at the valve (ON)           : %s\n",
              on.admission.joins_deferred + on.admission.joins_denied > 0
                  ? "PASS"
                  : "FAIL");
  std::printf("  hysteresis timelines valid (ON)         : %s\n",
              on.admission.timelines_valid ? "PASS" : "FAIL");
  std::printf("  goodput ON vs OFF (delivered fraction)  : %.1f%% vs %.1f%%\n",
              on.delivery * 100.0, off.delivery * 100.0);

  JsonReport report("overload_admission");
  const char* labels[3] = {"baseline", "off", "on"};
  const RunResult* runs[3] = {&baseline, &off, &on};
  for (int i = 0; i < 3; ++i) {
    report.add(labels[i], "p50", runs[i]->p50_ms, "ms");
    report.add(labels[i], "p99", runs[i]->p99_ms, "ms");
    report.add(labels[i], "delivery", runs[i]->delivery, "fraction");
    report.add(labels[i], "admitted", static_cast<double>(runs[i]->admitted),
               "clients");
  }
  report.write(json_path);
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  matrix::bench::run(matrix::bench::json_report_path(argc, argv));
  return 0;
}
