// Figure 2 (a) and (b): Matrix absorbing a 600-client hotspot.
//
// Paper timeline (Fig. 2 caption + §4.1): a hotspot of 600 BzFlag clients
// appears at t≈10 s and holds for ~75 s, then dissipates as 200 clients
// leave at fixed intervals; a second hotspot appears elsewhere at t=170 s
// for ~50 s and is then gradually removed.  A server is overloaded at 300+
// clients and underloaded below 150.
//
// Output: Fig2a = clients per server over time; Fig2b = receive-queue
// length per server over time; plus the topology summary (peak servers,
// splits, reclamation points) the paper narrates.
#include "bench_common.h"
#include "sim/report.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

void run(JsonReport& json) {
  header("Fig2", "600-client hotspot: clients/server and queue length vs time");

  auto options = paper_options();
  Deployment deployment(options);
  MetricsSampler metrics(deployment, 1_sec);

  HotspotScenarioOptions scenario;
  scenario.background_bots = 100;
  scenario.hotspot_bots = 600;
  // A town-square-sized hotspot: footprint σ=120 on the 1000-unit map.
  // The paper reports "up to four servers" absorbed the 600 clients, which
  // matches this footprint under recursive split-to-left.
  scenario.first_hotspot = {350, 350};
  scenario.first_hotspot_at = 10_sec;
  scenario.hold = 75_sec;
  scenario.departure_group = 200;
  scenario.departure_interval = 15_sec;
  scenario.second_hotspot = true;
  scenario.second_hotspot_center = {800, 800};
  scenario.second_hotspot_at = 170_sec;
  scenario.second_hotspot_bots = 600;
  scenario.second_hold = 50_sec;
  scenario.duration = 280_sec;

  // schedule_hotspot_scenario uses spread=20 for placement; we want the
  // wider footprint, so schedule by hand with the same timeline.
  Scenario script(deployment);
  script.add_background_bots(100_ms, scenario.background_bots);
  script.add_hotspot_bots(scenario.first_hotspot_at, scenario.hotspot_bots,
                          scenario.first_hotspot, 120.0);
  SimTime t = scenario.first_hotspot_at + scenario.hold;
  for (std::size_t left = scenario.hotspot_bots; left > 0;) {
    const std::size_t group = std::min(scenario.departure_group, left);
    script.remove_bots_at(t, group, scenario.first_hotspot);
    left -= group;
    t += scenario.departure_interval;
  }
  script.add_hotspot_bots(scenario.second_hotspot_at,
                          scenario.second_hotspot_bots,
                          scenario.second_hotspot_center, 120.0);
  SimTime t2 = scenario.second_hotspot_at + scenario.second_hold;
  for (std::size_t left = scenario.second_hotspot_bots; left > 0;) {
    const std::size_t group = std::min(scenario.departure_group, left);
    script.remove_bots_at(t2, group, scenario.second_hotspot_center);
    left -= group;
    t2 += scenario.departure_interval;
  }

  deployment.run_until(scenario.duration);

  // ---- Fig 2a: clients per server ------------------------------------------
  std::printf("\n[Fig 2a] clients per server (rows every 5 s)\n");
  std::printf("%6s %8s", "t(s)", "total");
  const std::size_t slots = deployment.game_servers().size();
  for (std::size_t i = 0; i < slots; ++i) std::printf(" %6s", ("S" + std::to_string(i + 1)).c_str());
  std::printf(" %8s\n", "active");
  for (double ts = 0.0; ts <= scenario.duration.sec(); ts += 5.0) {
    std::printf("%6.0f %8.0f", ts, metrics.total_clients().value_at(ts));
    for (std::size_t i = 0; i < slots; ++i) {
      std::printf(" %6.0f", metrics.clients_per_server()[i].value_at(ts));
    }
    std::printf(" %8.0f\n", metrics.active_servers().value_at(ts));
  }

  // ---- Fig 2b: receive queue length per server ------------------------------
  std::printf("\n[Fig 2b] game-server receive-queue length (rows every 5 s)\n");
  std::printf("%6s", "t(s)");
  for (std::size_t i = 0; i < slots; ++i) std::printf(" %7s", ("S" + std::to_string(i + 1)).c_str());
  std::printf("\n");
  for (double ts = 0.0; ts <= scenario.duration.sec(); ts += 5.0) {
    std::printf("%6.0f", ts);
    for (std::size_t i = 0; i < slots; ++i) {
      std::printf(" %7.0f", metrics.queue_per_server()[i].value_at(ts));
    }
    std::printf("\n");
  }

  // ---- Narrative summary (matches the paper's §4.1 description) -------------
  const TopologyTotals totals = topology_totals(deployment);
  std::printf("\n[summary]\n");
  std::printf("  peak active servers      : %.0f  (paper: up to 4 per hotspot)\n",
              metrics.max_active_servers());
  std::printf("  splits completed         : %llu\n",
              static_cast<unsigned long long>(totals.splits));
  std::printf("  reclaims completed       : %llu  (paper: reclamation points on Fig 2a)\n",
              static_cast<unsigned long long>(totals.reclaims));
  std::printf("  peak receive queue       : %.0f messages\n", metrics.max_queue());
  std::printf("  final active servers     : %zu\n",
              deployment.active_server_count());
  std::printf("  final total clients      : %zu\n", deployment.total_clients());

  const LatencySummary latency = collect_latency(deployment);
  std::printf("  self-latency p50/p99 (ms): %.1f / %.1f\n",
              latency.self_ms.median(), latency.self_ms.percentile(99));

  json.add("hotspot", "peak_active_servers", metrics.max_active_servers());
  json.add("hotspot", "splits", static_cast<double>(totals.splits));
  json.add("hotspot", "reclaims", static_cast<double>(totals.reclaims));
  json.add("hotspot", "peak_queue", metrics.max_queue(), "msgs");
  json.add("hotspot", "self_p50_ms", latency.self_ms.median(), "ms");
  json.add("hotspot", "self_p99_ms", latency.self_ms.percentile(99), "ms");
  add_registry(json, "hotspot", deployment);

  // CSV artifacts for plotting.
  std::vector<const TimeSeries*> client_series, queue_series;
  for (const auto& s : metrics.clients_per_server()) client_series.push_back(&s);
  for (const auto& s : metrics.queue_per_server()) queue_series.push_back(&s);
  client_series.push_back(&metrics.active_servers());
  // Drop plottable artifacts next to the working directory (results/ when
  // run from the repository root, else alongside the binary).
  const bool wrote =
      write_timeseries_csv("results/fig2a_clients.csv", client_series,
                           scenario.duration.sec()) &&
      write_timeseries_csv("results/fig2b_queues.csv", queue_series,
                           scenario.duration.sec());
  if (wrote) {
    std::printf("  wrote results/fig2a_clients.csv, results/fig2b_queues.csv\n");
  } else if (write_timeseries_csv("fig2a_clients.csv", client_series,
                                  scenario.duration.sec()) &&
             write_timeseries_csv("fig2b_queues.csv", queue_series,
                                  scenario.duration.sec())) {
    std::printf("  wrote fig2a_clients.csv, fig2b_queues.csv\n");
  }
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  matrix::bench::JsonReport json("fig2_hotspot");
  matrix::bench::run(json);
  return json.write(matrix::bench::json_report_path(argc, argv)) ? 0 : 1;
}
