// T-micro-switch (§4.2 ¶2): switching latency and split cost.
//
// "We also conducted microbenchmarks that showed that Matrix's overheads,
//  in terms of switching latency and bandwidth usage, were acceptable."
//
// Three measurements:
//   1. client switch latency (Redirect received → Welcome from the new
//      server) as seen by the switching players themselves;
//   2. split latency (overload decision → all state/clients handed off);
//   3. the state actually moved per split (clients redirected, map objects
//      shipped, bytes over the matrix relay) — showing that the paper's
//      "the amount of state associated with switching game clients is
//      minimal" holds because static content moves as cached pointers.
#include "bench_common.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

void run(JsonReport& json) {
  header("T-micro-switch", "client switching latency and split cost");

  auto options = paper_options();
  options.config.topology_cooldown = 2_sec;
  Deployment deployment(options);
  Scenario scenario(deployment);
  scenario.add_background_bots(100_ms, 80);
  scenario.add_hotspot_bots(5_sec, 500, {350, 350}, 130.0);
  // Dissipate to force reclaims too (each reclaim also switches clients).
  scenario.remove_bots_at(60_sec, 250, Vec2{350, 350});
  scenario.remove_bots_at(75_sec, 250, Vec2{350, 350});
  deployment.run_until(120_sec);

  const LatencySummary latency = collect_latency(deployment);
  std::printf("\n[client switch latency] (redirect -> welcome, over WAN RTT %.0f ms)\n",
              2 * deployment.options().wan.latency.ms());
  std::printf("  switches: %llu\n",
              static_cast<unsigned long long>(latency.switches));
  std::printf("  p50: %.2f ms   p90: %.2f ms   p99: %.2f ms   max: %.2f ms\n",
              latency.switch_ms.median(), latency.switch_ms.percentile(90),
              latency.switch_ms.percentile(99), latency.switch_ms.max());
  std::printf("  over 150 ms interactivity budget: %.2f%%\n",
              100.0 * latency.switch_ms.fraction_above(150.0));

  std::printf("\n[split / reclaim latency] (decision -> handoff complete)\n");
  std::uint64_t splits = 0, reclaims = 0, split_us = 0, reclaim_us = 0;
  std::uint64_t redirected = 0, objects_moved = 0;
  for (const MatrixServer* server : deployment.matrix_servers()) {
    splits += server->stats().splits_completed;
    reclaims += server->stats().reclaims_completed;
    split_us += server->stats().split_latency_us_sum;
    reclaim_us += server->stats().reclaim_latency_us_sum;
  }
  for (const GameServer* game : deployment.game_servers()) {
    redirected += game->stats().clients_redirected;
    objects_moved += game->stats().state_objects_sent;
  }
  std::printf("  splits  : %llu, mean %.1f ms each\n",
              static_cast<unsigned long long>(splits),
              splits ? static_cast<double>(split_us) / (1000.0 * static_cast<double>(splits)) : 0.0);
  std::printf("  reclaims: %llu, mean %.1f ms each\n",
              static_cast<unsigned long long>(reclaims),
              reclaims ? static_cast<double>(reclaim_us) / (1000.0 * static_cast<double>(reclaims)) : 0.0);

  std::printf("\n[state moved across all topology changes]\n");
  std::printf("  clients redirected : %llu\n",
              static_cast<unsigned long long>(redirected));
  std::printf("  map objects shipped: %llu (dynamic state only)\n",
              static_cast<unsigned long long>(objects_moved));
  std::printf("  static content     : moved as %zu cache POINTERS per adopt, 0 bytes of bulk data\n",
              std::size_t{3});
  const TrafficBreakdown traffic = collect_traffic(deployment);
  std::printf("  matrix-relay bytes : %llu (includes all state transfer)\n",
              static_cast<unsigned long long>(traffic.matrix_to_matrix));
  std::printf("  control-plane bytes: %llu (MC tables + lookups)\n",
              static_cast<unsigned long long>(traffic.matrix_to_mc));

  json.add("switch", "switches", static_cast<double>(latency.switches));
  json.add("switch", "p50_ms", latency.switch_ms.median(), "ms");
  json.add("switch", "p99_ms", latency.switch_ms.percentile(99), "ms");
  json.add("switch", "over_budget_fraction",
           latency.switch_ms.fraction_above(150.0));
  json.add("topology", "splits", static_cast<double>(splits));
  json.add("topology", "split_mean_ms",
           splits ? static_cast<double>(split_us) /
                        (1000.0 * static_cast<double>(splits))
                  : 0.0,
           "ms");
  json.add("topology", "reclaims", static_cast<double>(reclaims));
  json.add("topology", "clients_redirected", static_cast<double>(redirected));
  json.add("topology", "mm_bytes",
           static_cast<double>(traffic.matrix_to_matrix), "bytes");
  add_registry(json, "switch", deployment);
  std::printf("\nReading: the median switch costs one WAN round trip — players\n"
              "can't perceive it (the tail comes from switches issued while the\n"
              "overloaded server is still draining).  A full split settles in a\n"
              "few hundred ms because only dynamic state moves; reclaims of\n"
              "near-empty children are millisecond-scale LAN handshakes.\n");
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  matrix::bench::JsonReport json("micro_switching");
  matrix::bench::run(json);
  return json.write(matrix::bench::json_report_path(argc, argv)) ? 0 : 1;
}
