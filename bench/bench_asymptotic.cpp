// T-asym (§4.2 ¶4): the asymptotic analysis, cross-checked by simulation.
//
// "...a) Matrix can scale to a large player population (> 1,000,000
//  players and 10,000 servers) only if the number of players in the
//  overlap regions is small relative to the total number of game players,
//  and b) that Matrix scalability is ultimately limited by the maximum
//  I/O capacity of individual servers."
//
// Model.  N servers tile a world of area A as ~square cells of width
// w = sqrt(A/N); players are uniform with per-player action rate a.  The
// overlap fraction of a cell for visibility radius R is
//     f(N) = 1 - max(0, 1 - 2R/w)^2          (periphery of the cell)
// Per-server message load (msgs/s) with P players:
//     client I/O : (P/N) · a · c_client    (action in, ack out, digests)
//     peer I/O   : (P/N) · a · f(N) · k    (fan-out copies in/out)
// Capacity C caps the supportable P at each N.  The constants c_client, k
// and C are *measured* from short simulations, and the model's per-server
// rate is validated against simulation at N ∈ {1,4,9}.
#include <cmath>

#include "bench_common.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

struct Measured {
  double msgs_per_server_per_sec = 0.0;
  double actions_per_client_per_sec = 0.0;
  double overlap_fraction = 0.0;
};

Measured measure(std::size_t servers, std::size_t players) {
  auto options = paper_options();
  options.config.allow_split = false;
  options.config.allow_reclaim = false;
  options.initial_servers = servers;
  options.pool_size = 0;
  options.seed = 1234 + servers;

  Deployment deployment(options);
  Scenario scenario(deployment);
  scenario.add_background_bots(100_ms, players);
  const double measure_end = 40.0;
  deployment.run_until(SimTime::from_sec(measure_end));

  Measured m;
  std::uint64_t actions = 0, delivered = 0, fanned = 0, updates = 0,
                acks = 0, remote = 0;
  for (const GameServer* game : deployment.game_servers()) {
    actions += game->stats().actions;
    updates += game->stats().updates_sent;
    acks += game->stats().acks_sent;
    remote += game->stats().remote_events;
  }
  for (const MatrixServer* server : deployment.matrix_servers()) {
    fanned += server->stats().packets_fanned_out;
    delivered += server->stats().peer_packets_delivered;
  }
  const double seconds = measure_end;  // from t=0; startup noise is small
  // Messages a game server handles: client actions in + remote events in;
  // messages it emits: acks + digests + tagged packets.  Count both sides
  // as I/O work.
  const double total_io = static_cast<double>(actions + remote + acks +
                                              updates + actions + fanned);
  m.msgs_per_server_per_sec =
      total_io / seconds / static_cast<double>(servers);
  m.actions_per_client_per_sec = static_cast<double>(actions) / seconds /
                                 static_cast<double>(players);
  m.overlap_fraction = static_cast<double>(fanned) /
                       std::max(1.0, static_cast<double>(actions));
  return m;
}

void run(JsonReport& json) {
  header("T-asym", "asymptotic scalability: overlap fraction vs per-server I/O");

  // ---- measure the model constants from small simulations ------------------
  std::printf("\n[calibration + validation] 300 uniform players, static N-grid\n");
  std::printf("%8s %22s %22s %20s\n", "N", "sim msgs/srv/s",
              "model msgs/srv/s", "fwd frac (sim)");
  const double world_w = 1000.0;
  const double radius = 60.0;
  double a = 0.0, c_client = 0.0;  // calibrated below from N=1
  for (std::size_t n : {1u, 4u, 9u}) {
    const Measured m = measure(n, 300);
    if (n == 1) {
      a = m.actions_per_client_per_sec;
      // At N=1 there is no peer traffic: everything is client I/O.
      c_client = m.msgs_per_server_per_sec / (300.0 * a);
    }
    const double w = world_w / std::sqrt(static_cast<double>(n));
    const double interior = std::max(0.0, 1.0 - 2.0 * radius / w);
    const double f = 1.0 - interior * interior;
    const double model =
        (300.0 / static_cast<double>(n)) * a * (c_client + 2.0 * f);
    std::printf("%8zu %22.0f %22.0f %20.3f\n", n, m.msgs_per_server_per_sec,
                model, m.overlap_fraction);
    const std::string run_name = "n" + std::to_string(n);
    json.add(run_name, "sim_msgs_per_server_per_sec", m.msgs_per_server_per_sec,
             "msgs/s");
    json.add(run_name, "model_msgs_per_server_per_sec", model, "msgs/s");
    json.add(run_name, "forward_fraction", m.overlap_fraction);
  }
  std::printf("  (calibrated: a = %.1f actions/client/s, c_client = %.2f msgs/action)\n",
              a, c_client);

  // ---- extrapolate ----------------------------------------------------------
  // Per-server I/O capacity: the deployment's 200 µs/msg ⇒ 5,000 msgs/s.
  const double capacity = 5000.0;
  std::printf("\n[extrapolation] max supportable players vs server count\n");
  std::printf("  (world scales with N at fixed player density; C = %.0f msgs/s)\n",
              capacity);
  std::printf("%8s %14s %18s %20s\n", "N", "overlap frac",
              "max players", "players if f=50%");
  for (double n : {10.0, 100.0, 1000.0, 10000.0}) {
    // World area grows with the population (MMOG maps do); keep the
    // *partition* width at the equilibrium Matrix drives toward — the
    // width where a partition's population matches the overload threshold.
    // With ~300 clients per server, w is set by player density; take the
    // paper's regime: w ≈ 8R (overlap fraction ~0.23).
    const double w = 8.0 * radius;
    const double interior = std::max(0.0, 1.0 - 2.0 * radius / w);
    const double f = 1.0 - interior * interior;
    const double per_client_io = a * (c_client + 2.0 * f);
    const double max_players_per_server = capacity / per_client_io;
    const double max_players = max_players_per_server * n;
    // Pathological comparison: half the population in overlap regions.
    const double io_bad = a * (c_client + 2.0 * 0.5 * 3.0);  // multi-peer
    const double bad_players = capacity / io_bad * n;
    std::printf("%8.0f %14.3f %18.0f %20.0f\n", n, f, max_players,
                bad_players);
    json.add("extrapolation/n" + std::to_string(static_cast<int>(n)),
             "max_players", max_players, "players");
  }
  std::printf(
      "\nReading: at 10,000 servers Matrix supports >1M players when the\n"
      "overlap population stays small (claim a); the per-server cap is set\n"
      "entirely by C — faster I/O moves every row up linearly (claim b).\n"
      "The N-independence of players/server also shows the MC never enters\n"
      "the data path.\n");
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  matrix::bench::JsonReport json("asymptotic");
  matrix::bench::run(json);
  return json.write(matrix::bench::json_report_path(argc, argv)) ? 0 : 1;
}
