// Need-weighted pool grants + proactive splits (DirectivePolicy) vs FCFS
// (ClassicPolicy) when more partitions overload than the pool holds spares.
//
// The load-policy layer (src/policy/) made WHO WINS A CONTESTED POOL SERVER
// a first-class, swappable decision.  Under ClassicPolicy the pool answers
// PoolAcquire in strict arrival order: when four partitions saturate over
// one spare, the grant goes to whichever server's retry timer happened to
// fire first — frequently a lightly-crowded partition whose split relieves
// little, while the deepest waiting room keeps starving.  DirectivePolicy
// routes the same decision through the coordinator's vantage point: while
// an AdmissionDirective is active, PoolAcquire carries a need hint scored
// from the signals the MC's pressure score weights (load fraction +
// waiting-room depth), the pool holds requests for a short arbitration
// window, and the contested spare lands on the most starved partition.
// Proactive splits compound it: while spares are known idle, a
// directive-era partition splits below the overload threshold — before its
// valve ever reaches HARD — with a load-aware (median) cut, so the spare's
// head start is not wasted waiting out the full overload + sustain
// hysteresis.
//
// The bench drives a ContestedPoolScenario — four crowds of deliberately
// unequal size (70/90/130/240, lightest partition surging FIRST so FCFS
// provably hands it the spare) into a 4-root, 1-spare deployment at ~2.4×
// capacity, with half of each crowd churning out mid-run — and compares:
//
//   classic   : admission + waiting room + global directives, FCFS grants
//   directive : the same, plus need-weighted arbitration + proactive splits
//
// Both runs enable coordinator directives: the comparison isolates the
// POLICY (who gets the spare, when the split fires), not the directive
// machinery benchmarked in bench_global_admission.
//
// Claims under test (ISSUE 4 acceptance criteria):
//   * worst-partition censored time-to-admit improves under DirectivePolicy;
//   * cross-partition goodput spread (max−min over surge centers) shrinks;
//   * crowd-wide goodput is preserved and admitted-client p99 is unharmed;
//   * hysteresis timelines stay valid (servers + directive floor);
//   * the directive run actually arbitrated/proactively split; the classic
//     run never did (the policies are what they claim to be).
#include <cstdlib>

#include "bench_common.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

constexpr std::size_t kRoots = 4;
constexpr std::size_t kPoolSize = 1;  // fewer spares than saturating crowds
constexpr std::uint32_t kOverload = 60;  // 5 slots × 60 = 300 capacity
constexpr double kLocalTokenRate = 1.0;
constexpr SimTime kDuration = 120_sec;

ContestedPoolScenarioOptions contested_scenario() {
  ContestedPoolScenarioOptions scenario;
  scenario.background_bots = 160;  // 40/partition: directives arm pre-surge
  // SMALL crowds first (both in surge order and in server/report order —
  // the lightest crowd lands on the grid's first partition): under FCFS
  // the lightest partition overloads and asks first, and ties in the
  // synchronized report cadence resolve in node order, so arrival order
  // hands the spare to the SMALLEST crowd; need-weighted arbitration must
  // overcome exactly this.
  scenario.flash_bots = {70, 90, 130, 240};
  scenario.centers = {
      {150.0, 150.0}, {850.0, 150.0}, {150.0, 850.0}, {850.0, 850.0}};
  scenario.join_batch = 0;  // each crowd lands in one wave
  scenario.flash_at = 5_sec;
  scenario.flash_stagger = 500_ms;
  scenario.spread = 80.0;
  scenario.vip_fraction = 0.10;
  scenario.leave_fraction = 0.5;
  scenario.leave_batch = 20;
  scenario.leave_at = 40_sec;
  scenario.leave_interval = 4_sec;
  scenario.duration = kDuration;
  return scenario;
}

DeploymentOptions deployment_options(LoadPolicyKind kind) {
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 1000, 1000);
  options.config.overload_clients = kOverload;
  options.config.underload_clients = kOverload / 2;
  options.config.sustain_reports_to_split = 2;
  options.config.topology_cooldown = 2_sec;
  options.config.load_report_interval = 500_ms;
  options.config.pool_backoff_initial = 1_sec;
  options.config.pool_backoff_max = 8_sec;

  // Identical admission + waiting room + directive machinery in BOTH runs
  // (same shape as bench_global_admission's "global" arm): the comparison
  // isolates the load policy.
  options.config.admission.enabled = true;
  options.config.admission.soft_denied_streak = 1;
  options.config.admission.hard_denied_streak = 3;
  options.config.admission.soft_waiting_count = 25;
  options.config.admission.soft_load_fraction = 0.75;
  options.config.admission.token_rate_per_sec = kLocalTokenRate;
  options.config.admission.token_burst = 2.0;
  options.config.admission.dwell = 1_sec;
  options.config.admission.recover_min = 4_sec;
  options.config.admission.defer_retry = 2_sec;
  options.config.admission.priority.queue_enabled = true;
  options.config.admission.priority.queue_capacity = 1024;
  options.config.admission.priority.age_step = 20_sec;
  options.config.admission.priority.update_interval = 500_ms;
  options.config.admission.global.enabled = true;
  // A hair-trigger directive floor: the 40-bots/partition background keeps
  // deployment pressure above it from the first digests, so the whole surge
  // plays out under an active directive in BOTH runs (classic simply
  // ignores the need machinery) — the comparison isolates the policy, not
  // the directive's activation timing.
  options.config.admission.global.soft_pressure = 0.15;
  options.config.admission.global.hard_pressure = 0.9;
  // A GENEROUS drain budget: the token machinery must not be the
  // bottleneck, or topology would be irrelevant — what this bench contests
  // is which partition gets the extra SERVER (≈ one overload threshold's
  // worth of session capacity), so admissions are capacity-bound and the
  // grant decision is what shows up in the per-center metrics.
  options.config.admission.global.token_rate_total = 40.0;
  options.config.admission.global.token_rate_floor = 1.0;
  options.config.admission.global.dwell = 1_sec;
  options.config.admission.global.recover_min = 4_sec;
  options.config.admission.global.directive_interval = 1_sec;

  // The knobs under test.  The grant window spans the surge stagger: the
  // staggered asks (lightest partition first) all land inside one
  // arbitration round, which is exactly the contest FCFS resolves by
  // arrival order instead.
  options.config.policy.kind = kind;
  options.config.policy.grant_window = 2500_ms;
  options.config.policy.proactive_load_fraction = 0.70;
  options.config.policy.proactive_min_waiting = 8;

  options.spec = quake_like();
  options.config.visibility_radius = options.spec.visibility_radius;
  options.game_node.service_per_message = SimTime::from_us(350);
  options.initial_servers = kRoots;
  options.pool_size = kPoolSize;
  options.map_objects = 120;
  options.seed = 2005;
  return options;
}

struct CenterStats {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::uint64_t acks = 0;
  double censored_ms_sum = 0.0;  ///< admitted: tta; never admitted: full wait

  [[nodiscard]] double goodput(double expected_per_client) const {
    return offered > 0 ? static_cast<double>(acks) /
                             (static_cast<double>(offered) * expected_per_client)
                       : 0.0;
  }
  [[nodiscard]] double mean_censored_ms() const {
    return offered > 0 ? censored_ms_sum / static_cast<double>(offered) : 0.0;
  }
};

struct RunResult {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  double p99_ms = 0.0;
  double goodput = 0.0;          ///< crowd-wide, all bots
  double goodput_spread = 0.0;   ///< max−min over surge centers
  double worst_censored_ms = 0.0;
  std::uint64_t proactive_splits = 0;
  std::uint64_t arbitrated = 0;
  std::uint64_t contested_rounds = 0;
  std::vector<CenterStats> centers;
  AdmissionSummary admission;
};

RunResult run_one(LoadPolicyKind kind, const char* label) {
  Deployment deployment(deployment_options(kind));
  const ContestedPoolScenarioOptions scenario = contested_scenario();
  schedule_contested_pool_scenario(deployment, scenario);
  deployment.run_until(scenario.duration);

  const double expected_per_client =
      kDuration.sec() / deployment.options().spec.action_interval.sec();

  RunResult result;
  result.centers.resize(scenario.centers.size());
  Histogram self_ms;
  std::uint64_t acks_total = 0;
  for (const BotClient* bot : deployment.bots()) {
    ++result.offered;
    CenterStats* center = nullptr;
    if (bot->attraction()) {
      for (std::size_t c = 0; c < scenario.centers.size(); ++c) {
        if (*bot->attraction() == scenario.centers[c]) {
          center = &result.centers[c];
          break;
        }
      }
    }
    if (center != nullptr) ++center->offered;
    const std::uint64_t acks = bot->metrics().self_latency_ms.count();
    acks_total += acks;
    if (!bot->ever_connected()) {
      const double censored = (kDuration - bot->first_join_at()).ms();
      if (center != nullptr) center->censored_ms_sum += censored;
      continue;
    }
    ++result.admitted;
    self_ms.merge(bot->metrics().self_latency_ms);
    if (center != nullptr) {
      ++center->admitted;
      center->acks += acks;
      center->censored_ms_sum += bot->metrics().time_to_admit_ms;
    }
  }
  result.p99_ms = self_ms.percentile(99.0);
  result.goodput = static_cast<double>(acks_total) /
                   (static_cast<double>(result.offered) * expected_per_client);

  double best = 0.0, worst = 1.0;
  for (const CenterStats& center : result.centers) {
    const double goodput = center.goodput(expected_per_client);
    best = std::max(best, goodput);
    worst = std::min(worst, goodput);
    result.worst_censored_ms =
        std::max(result.worst_censored_ms, center.mean_censored_ms());
  }
  result.goodput_spread = best - worst;
  result.admission = collect_admission(deployment);
  for (const MatrixServer* server : deployment.matrix_servers()) {
    result.proactive_splits += server->stats().proactive_splits;
  }
  result.arbitrated = deployment.pool().arbitrated_requests();
  result.contested_rounds = deployment.pool().contested_rounds();

  std::printf(
      "  %-9s offered=%4zu admitted=%4zu p99=%7.1fms goodput=%5.1f%% "
      "spread=%5.1f%%\n",
      label, result.offered, result.admitted, result.p99_ms,
      result.goodput * 100.0, result.goodput_spread * 100.0);
  for (std::size_t c = 0; c < result.centers.size(); ++c) {
    const CenterStats& center = result.centers[c];
    std::printf(
        "            center%zu offered=%4zu admitted=%4zu goodput=%5.1f%% "
        "censored-tta=%7.0fms\n",
        c + 1, center.offered, center.admitted,
        center.goodput(expected_per_client) * 100.0,
        center.mean_censored_ms());
  }
  if (std::getenv("POLICY_BENCH_DEBUG") != nullptr) {
    for (std::size_t i = 0; i < deployment.matrix_servers().size(); ++i) {
      const MatrixServer* ms = deployment.matrix_servers()[i];
      const GameServer* gs = deployment.game_servers()[i];
      std::printf(
          "      S%zu active=%d range=[%.0f,%.0f..%.0f,%.0f] clients=%zu "
          "splits=%llu/%llu denied=%llu reclaims=%llu queued=%llu "
          "qadmit=%llu waiting=%zu\n",
          i + 1, ms->active() ? 1 : 0, ms->range().x0(), ms->range().y0(),
          ms->range().x1(), ms->range().y1(), gs->client_count(),
          static_cast<unsigned long long>(ms->stats().splits_completed),
          static_cast<unsigned long long>(ms->stats().splits_initiated),
          static_cast<unsigned long long>(ms->stats().split_denied_no_server),
          static_cast<unsigned long long>(ms->stats().reclaims_completed),
          static_cast<unsigned long long>(gs->surge_queue().stats().enqueued),
          static_cast<unsigned long long>(gs->surge_queue().stats().admitted),
          gs->surge_queue().size());
    }
    std::printf("      pool grants=%llu releases=%llu denies=%llu\n",
                static_cast<unsigned long long>(deployment.pool().grants()),
                static_cast<unsigned long long>(deployment.pool().releases()),
                static_cast<unsigned long long>(deployment.pool().denies()));
  }
  std::printf(
      "            arbitrated=%llu contested-rounds=%llu proactive-splits=%llu "
      "directives=%llu\n",
      static_cast<unsigned long long>(result.arbitrated),
      static_cast<unsigned long long>(result.contested_rounds),
      static_cast<unsigned long long>(result.proactive_splits),
      static_cast<unsigned long long>(result.admission.directives_broadcast));
  return result;
}

void verdict(const char* what, bool pass) {
  std::printf("  %-56s: %s\n", what, pass ? "PASS" : "FAIL");
}

int run(const char* json_path) {
  header("PolicyGrants",
         "need-weighted pool grants + proactive splits (DirectivePolicy) vs "
         "FCFS (ClassicPolicy) on a contested pool");
  std::printf(
      "  capacity = %zu slots x %u clients = %zu; crowds = 70/90/130/240 "
      "(small first, 500 ms stagger) + 160 background (~2.4x); %zu spare(s) "
      "for %zu saturating partitions; half churn out mid-run\n\n",
      kRoots + kPoolSize, kOverload, (kRoots + kPoolSize) * kOverload,
      kPoolSize, static_cast<std::size_t>(4));

  const RunResult classic = run_one(LoadPolicyKind::kClassic, "classic");
  const RunResult directive = run_one(LoadPolicyKind::kDirective, "directive");

  std::printf("\n[criteria]\n");
  const bool worst_ok =
      directive.worst_censored_ms < classic.worst_censored_ms;
  const bool spread_ok = directive.goodput_spread < classic.goodput_spread;
  const bool goodput_ok = directive.goodput >= 0.9 * classic.goodput;
  const bool p99_ok = directive.p99_ms <= 2.0 * classic.p99_ms;
  const bool timelines_ok = classic.admission.timelines_valid &&
                            directive.admission.timelines_valid &&
                            classic.admission.global_timeline_valid &&
                            directive.admission.global_timeline_valid;
  const bool policy_ok =
      (directive.arbitrated > 0 || directive.proactive_splits > 0) &&
      classic.arbitrated == 0 && classic.proactive_splits == 0;
  verdict("worst-partition censored time-to-admit: directive < classic",
          worst_ok);
  verdict("cross-partition goodput spread: directive < classic", spread_ok);
  verdict("crowd-wide goodput preserved (>= 0.9x classic)", goodput_ok);
  verdict("admitted p99 within 2x of classic", p99_ok);
  verdict("hysteresis timelines valid (servers + directive floor)",
          timelines_ok);
  verdict("arbitration/proactive splits fired iff DirectivePolicy",
          policy_ok);
  std::printf("  worst censored tta  : %6.0f ms -> %6.0f ms\n",
              classic.worst_censored_ms, directive.worst_censored_ms);
  std::printf("  goodput spread      : %5.1f%% -> %5.1f%%\n",
              classic.goodput_spread * 100.0,
              directive.goodput_spread * 100.0);
  std::printf("  crowd-wide goodput  : %5.1f%% -> %5.1f%%\n",
              classic.goodput * 100.0, directive.goodput * 100.0);

  JsonReport report("policy_grants");
  const char* labels[2] = {"classic", "directive"};
  const RunResult* runs[2] = {&classic, &directive};
  for (int i = 0; i < 2; ++i) {
    report.add(labels[i], "goodput", runs[i]->goodput, "fraction");
    report.add(labels[i], "goodput_spread", runs[i]->goodput_spread,
               "fraction");
    report.add(labels[i], "worst_censored_tta", runs[i]->worst_censored_ms,
               "ms");
    report.add(labels[i], "p99", runs[i]->p99_ms, "ms");
    report.add(labels[i], "admitted",
               static_cast<double>(runs[i]->admitted), "clients");
  }
  report.add("directive", "arbitrated_requests",
             static_cast<double>(directive.arbitrated), "");
  report.add("directive", "contested_rounds",
             static_cast<double>(directive.contested_rounds), "");
  report.add("directive", "proactive_splits",
             static_cast<double>(directive.proactive_splits), "");
  report.write(json_path);

  return worst_ok && spread_ok && goodput_ok && p99_ok && timelines_ok &&
                 policy_ok
             ? 0
             : 1;
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  return matrix::bench::run(matrix::bench::json_report_path(argc, argv));
}
