// T-micro-coord (§4.2 ¶2): the central coordinator's overhead is negligible.
//
// Two claims to quantify (§3.2.4):
//   1. The MC is OFF the per-packet path: routing is an O(1) local table
//      lookup, vs O(log N) network hops for a DHT, vs a per-packet MC round
//      trip for a fully centralized router.
//   2. The MC's recompute-and-push work on a topology change stays cheap
//      even at large server counts.
//
// Table 1 measures recompute cost and table size vs N (wall-clock, real
// computation).  Table 2 compares per-packet lookup cost for the three
// routing designs (table lookup measured; network designs modeled with the
// deployment's LAN latency, as the paper's asymptotic discussion does).
#include <chrono>
#include <cmath>

#include "bench_common.h"
#include "core/coordinator.h"
#include "core/overlap.h"
#include "core/partition.h"
#include "util/rng.h"

namespace matrix::bench {
namespace {

/// Builds an N-partition map the way Matrix itself would: by recursive
/// halving of loaded partitions.
PartitionMap split_tree_map(std::size_t n, Rng& rng) {
  std::vector<Rect> rects{Rect(0, 0, 1000, 1000)};
  while (rects.size() < n) {
    // Split the largest (ties broken randomly) — keeps the tree balanced
    // like a sustained uniform load would.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < rects.size(); ++i) {
      if (rects[i].area() > rects[victim].area() ||
          (rects[i].area() == rects[victim].area() && rng.next_bool(0.5))) {
        victim = i;
      }
    }
    const auto [a, b] = rects[victim].split_half();
    rects[victim] = a;
    rects.push_back(b);
  }
  PartitionMap map;
  for (std::size_t i = 0; i < rects.size(); ++i) {
    map.upsert({ServerId(i + 1), NodeId(1000 + i), NodeId(2000 + i), rects[i]});
  }
  return map;
}

void run(JsonReport& json) {
  header("T-micro-coord", "coordinator recompute cost and routing-path comparison");

  const double radius = 60.0;
  Rng rng(99);

  std::printf("\n[1] MC recompute-and-push cost vs server count (R=%.0f, world 1000x1000)\n",
              radius);
  std::printf("%8s %14s %14s %16s %18s\n", "servers", "recompute(ms)",
              "regions/srv", "table bytes/srv", "overlap area frac");
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    PartitionMap map = split_tree_map(n, rng);

    const auto start = std::chrono::steady_clock::now();
    std::size_t total_regions = 0;
    std::size_t total_bytes = 0;
    double total_fraction = 0.0;
    for (const auto& entry : map.entries()) {
      auto regions = build_overlap_regions(map, entry.server, radius,
                                           Metric::kChebyshev);
      total_fraction += overlap_area_fraction(regions, entry.range);
      total_regions += regions.size();
      OverlapTableMsg msg;
      msg.server = entry.server;
      msg.partition = entry.range;
      msg.radius = radius;
      msg.regions = std::move(regions);
      total_bytes += encode_message(Message{msg}).size();
    }
    const auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);
    std::printf("%8zu %14.2f %14.1f %16.0f %18.3f\n", n, elapsed.count(),
                static_cast<double>(total_regions) / static_cast<double>(n),
                static_cast<double>(total_bytes) / static_cast<double>(n),
                total_fraction / static_cast<double>(n));
    const std::string run_name = "recompute/n" + std::to_string(n);
    json.add(run_name, "recompute_ms", elapsed.count(), "ms");
    json.add(run_name, "regions_per_server",
             static_cast<double>(total_regions) / static_cast<double>(n));
    json.add(run_name, "table_bytes_per_server",
             static_cast<double>(total_bytes) / static_cast<double>(n),
             "bytes");
  }

  std::printf("\n[2] per-packet consistency-set resolution (hot path)\n");
  std::printf("%8s %18s %22s %22s\n", "servers", "overlap table",
              "DHT O(log N) hops", "central per-packet MC");
  const double lan_rtt_us = 600.0;  // 2 × 300 µs one-way (deployment LAN)
  for (std::size_t n : {4u, 16u, 64u, 256u, 1024u}) {
    PartitionMap map = split_tree_map(n, rng);
    // Build one server's index and time lookups over random local points.
    const PartitionEntry& entry = map.entries().front();
    RegionIndex index(entry.range,
                      build_overlap_regions(map, entry.server, radius,
                                            Metric::kChebyshev));
    Rng probe_rng(7);
    std::vector<Vec2> probes;
    for (int i = 0; i < 100000; ++i) {
      probes.push_back({probe_rng.next_double_in(entry.range.x0(), entry.range.x1()),
                        probe_rng.next_double_in(entry.range.y0(), entry.range.y1())});
    }
    const auto start = std::chrono::steady_clock::now();
    std::size_t hits = 0;
    for (const Vec2& p : probes) {
      if (index.find(p) != nullptr) ++hits;
    }
    const auto elapsed = std::chrono::duration<double, std::nano>(
                             std::chrono::steady_clock::now() - start)
                             .count() /
                         static_cast<double>(probes.size());
    const double dht_us = std::log2(static_cast<double>(n)) * lan_rtt_us / 2.0;
    std::printf("%8zu %15.0f ns %19.0f us %19.0f us\n", n, elapsed + hits * 0.0,
                dht_us, lan_rtt_us);
    json.add("lookup/n" + std::to_string(n), "table_lookup_ns", elapsed, "ns");
    json.add("lookup/n" + std::to_string(n), "dht_model_us", dht_us, "us");
  }
  std::printf(
      "\nReading: table lookups are O(1) *local memory* — 3-5 orders of\n"
      "magnitude below any per-packet network scheme, and the MC only pays\n"
      "its (cheap, sub-ms at 1k servers) recompute on topology changes.\n");
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  matrix::bench::JsonReport json("micro_coordinator");
  matrix::bench::run(json);
  return json.write(matrix::bench::json_report_path(argc, argv)) ? 0 : 1;
}
