// Shared helpers for the experiment harnesses (bench/).
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (the top-level README.md lists them all with one-line
// descriptions).  Output convention: a header naming the experiment,
// then plain whitespace-aligned columns — easy to eyeball, easy to plot.
#pragma once

#include <cstdio>
#include <string>

#include "sim/deployment.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "util/sim_time.h"

namespace matrix::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("============================================================\n");
}

/// The paper's evaluation parameters (Fig. 2 caption): overload at 300
/// clients, underload below 150, BzFlag as the game.
inline DeploymentOptions paper_options() {
  using namespace time_literals;
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 1000, 1000);
  options.config.overload_clients = 300;
  options.config.underload_clients = 150;
  // The paper's overload signal is client count OR "system performance
  // measurements" (§3.2.3).  The queue trigger matters for high-rate games
  // (Quake-like): 300 clients × 20 Hz already exceeds one server's I/O.
  options.config.overload_queue_length = 2000;
  options.config.sustain_reports_to_split = 2;
  options.config.topology_cooldown = 3_sec;
  options.config.load_report_interval = 500_ms;
  options.spec = bzflag_like();
  options.config.visibility_radius = options.spec.visibility_radius;
  options.initial_servers = 1;
  options.pool_size = 11;
  options.map_objects = 300;
  options.seed = 2005;  // the venue year; any seed reproduces exactly
  return options;
}

/// Aggregate split/reclaim counters across a deployment.
struct TopologyTotals {
  std::uint64_t splits = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t denied = 0;
};

inline TopologyTotals topology_totals(const Deployment& deployment) {
  TopologyTotals totals;
  for (const MatrixServer* server : deployment.matrix_servers()) {
    totals.splits += server->stats().splits_completed;
    totals.reclaims += server->stats().reclaims_completed;
    totals.denied += server->stats().split_denied_no_server;
  }
  return totals;
}

}  // namespace matrix::bench
