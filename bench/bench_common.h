// Shared helpers for the experiment harnesses (bench/).
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (the top-level README.md lists them all with one-line
// descriptions).  Output convention: a header naming the experiment,
// then plain whitespace-aligned columns — easy to eyeball, easy to plot.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/collect.h"
#include "obs/registry.h"
#include "sim/deployment.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "util/sim_time.h"

namespace matrix::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("============================================================\n");
}

/// Machine-readable bench results in the shape of Google Benchmark's
/// `--benchmark_format=json` ({"context": ..., "benchmarks": [...]}), so CI
/// can upload one `BENCH_*.json` artifact per smoke run and a perf
/// trajectory can be diffed across commits without scraping stdout.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Records one scalar under `benchmarks[]` as
  /// `<bench>/<run>/<metric>` — e.g. "surge_queue/defer/goodput".
  void add(const std::string& run, const std::string& metric, double value,
           const std::string& unit = "") {
    entries_.push_back({bench_name_ + "/" + run + "/" + metric, value, unit});
  }

  /// Writes the report to `path`; returns false (with a note on stderr)
  /// when the file cannot be opened.  No-op when `path` is null.
  bool write(const char* path) const {
    if (path == nullptr) return true;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write JSON report to %s\n", path);
      return false;
    }
    std::fprintf(f,
                 "{\n  \"context\": {\n    \"executable\": \"%s\",\n"
                 "    \"format\": \"matrix_bench_json\"\n  },\n"
                 "  \"benchmarks\": [\n",
                 bench_name_.c_str());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": "
                   "\"%s\"}%s\n",
                   e.name.c_str(), e.value, e.unit.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  [json report written to %s]\n", path);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
  };
  std::string bench_name_;
  std::vector<Entry> entries_;
};

/// Snapshots a finished deployment's unified metrics registry
/// (obs/collect.h) into the report under `<bench>/<run>/<metric-name>`.
/// Every bench that writes --json gets the same engine.* / net.* /
/// topology.* / admission.* / clients.* / latency.* namespace for free, so
/// cross-bench diffs (scripts/check_bench_regression.py) speak one schema.
inline void add_registry(JsonReport& report, const std::string& run,
                         Deployment& deployment) {
  const obs::Registry registry = obs::collect_registry(deployment);
  for (const obs::Metric& metric : registry.metrics()) {
    report.add(run, metric.name, metric.value, metric.unit);
  }
}

/// Parses `--json <path>` / `--json=<path>` from argv; nullptr when absent.
inline const char* json_report_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return nullptr;
}

/// The paper's evaluation parameters (Fig. 2 caption): overload at 300
/// clients, underload below 150, BzFlag as the game.
inline DeploymentOptions paper_options() {
  using namespace time_literals;
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 1000, 1000);
  options.config.overload_clients = 300;
  options.config.underload_clients = 150;
  // The paper's overload signal is client count OR "system performance
  // measurements" (§3.2.3).  The queue trigger matters for high-rate games
  // (Quake-like): 300 clients × 20 Hz already exceeds one server's I/O.
  options.config.overload_queue_length = 2000;
  options.config.sustain_reports_to_split = 2;
  options.config.topology_cooldown = 3_sec;
  options.config.load_report_interval = 500_ms;
  options.spec = bzflag_like();
  options.config.visibility_radius = options.spec.visibility_radius;
  options.initial_servers = 1;
  options.pool_size = 11;
  options.map_objects = 300;
  options.seed = 2005;  // the venue year; any seed reproduces exactly
  return options;
}

/// Aggregate split/reclaim counters across a deployment.
struct TopologyTotals {
  std::uint64_t splits = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t denied = 0;
};

inline TopologyTotals topology_totals(const Deployment& deployment) {
  TopologyTotals totals;
  for (const MatrixServer* server : deployment.matrix_servers()) {
    totals.splits += server->stats().splits_completed;
    totals.reclaims += server->stats().reclaims_completed;
    totals.denied += server->stats().split_denied_no_server;
  }
  return totals;
}

}  // namespace matrix::bench
