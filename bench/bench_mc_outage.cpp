// Surviving a dead coordinator: the control-plane failsafe
// (src/control/control_plane.h) under a 60-second MC outage mid flash
// crowd, failsafe on vs off.
//
// The Matrix coordinator is a single point of CONTROL, not of data — the
// paper's login path reads the partition map, game traffic never touches
// the MC.  But with coordinator-led global admission (ISSUE 3) the MC's
// AdmissionDirectives steer every valve: floors and token-budget shares
// arrive once a second, and each server obeys the latest one it saw.  Kill
// the MC mid-surge and that last directive becomes a ghost: a clamped
// floor and a scarce token share, frozen at crest-time values, steering
// the deployment forever while the crowd it was sized for churns away.
//
// The failsafe gives every server a heartbeat-driven escape hatch:
//
//   NORMAL    fresh MC: obey directives.
//   HOLD      tau1 of silence: freeze the directive view, stop deriving
//             new pool decisions from coordinator state.
//   FALLBACK  tau2 of silence: drop the frozen directive — the local valve
//             and local token rate take back over.
//
// The bench drives one flash crowd (~1.7x capacity) into a small
// deployment, kills the MC at 20s with the directive floor clamped, lets
// half of the crowd churn out THROUGH the 60s outage (so the freed slots
// are re-contested while nobody is steering), and revives a standby at
// 80s.  Identical load, identical seed; the only difference is
// Config::failsafe.enabled.
//
// Claims under test (ISSUE 8 acceptance criteria):
//   * goodput under the outage is materially higher with the failsafe on
//     (the stale share throttles the off-run's refill);
//   * admitted-client p99 stays bounded — local valves must not melt
//     service while they steer alone;
//   * every failsafe timeline is machine-valid (failsafe_timeline_valid),
//     servers reached FALLBACK and recovered to NORMAL after the revival;
//   * with the failsafe off, nothing transitions (the machine is inert).
#include "bench_common.h"
#include "control/control_plane.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

constexpr std::size_t kRoots = 2;
constexpr std::size_t kPoolSize = 2;
constexpr std::uint32_t kOverload = 60;  // 4 slots x 60 = 240 capacity
constexpr std::size_t kBackground = 40;
constexpr std::size_t kFlash = 360;  // first crest: offered 400 vs cap 240
constexpr std::size_t kSecondFlash = 150;  // lands mid-outage
/// What a server spends when it steers itself — the rate FALLBACK restores.
constexpr double kLocalTokenRate = 5.0;
/// The MC's deployment-wide budget is deliberately scarcer than the local
/// aggregate (it is solving a fairness problem, not a throughput one), so
/// the share a server holds when the MC dies is a real throttle: under
/// live steering the MC re-points the budget wherever the line is, but a
/// dead MC's last share drains a re-contested deployment at ~1.5 joins/s
/// TOTAL for the rest of time.
constexpr double kGlobalTokenRate = 1.5;
constexpr SimTime kKillAt = 20_sec;
constexpr SimTime kReviveAt = 80_sec;  // 60s of outage
constexpr SimTime kDuration = 120_sec;
constexpr Vec2 kCenter{300.0, 300.0};

DeploymentOptions deployment_options(bool failsafe_on) {
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 600, 600);
  options.config.overload_clients = kOverload;
  options.config.underload_clients = kOverload / 2;
  options.config.sustain_reports_to_split = 2;
  options.config.topology_cooldown = 2_sec;
  options.config.load_report_interval = 500_ms;
  options.config.pool_backoff_initial = 1_sec;
  options.config.pool_backoff_max = 8_sec;

  // Valve + waiting room + coordinator directives in BOTH runs — the
  // directive is what goes stale when the MC dies.
  options.config.admission.enabled = true;
  options.config.admission.soft_denied_streak = 1;
  options.config.admission.hard_denied_streak = 3;
  options.config.admission.soft_waiting_count = 25;
  options.config.admission.soft_load_fraction = 0.75;
  options.config.admission.hard_load_fraction = 0.95;
  options.config.admission.token_rate_per_sec = kLocalTokenRate;
  options.config.admission.token_burst = 10.0;
  options.config.admission.dwell = 1_sec;
  options.config.admission.recover_min = 4_sec;
  options.config.admission.defer_retry = 2_sec;
  options.config.admission.priority.queue_enabled = true;
  options.config.admission.priority.queue_capacity = 1024;
  options.config.admission.priority.age_step = 20_sec;
  options.config.admission.priority.update_interval = 500_ms;
  options.config.admission.global.enabled = true;
  options.config.admission.global.token_rate_total = kGlobalTokenRate;
  options.config.admission.global.token_rate_floor = 0.25;
  options.config.admission.global.dwell = 1_sec;
  options.config.admission.global.recover_min = 4_sec;
  options.config.admission.global.directive_interval = 1_sec;

  // The knob under test.  Defaults: 1s beats, tau1 3s, tau2 8s — a dead MC
  // is survived in under ten seconds.
  options.config.failsafe.enabled = failsafe_on;

  options.spec = bzflag_like();
  options.config.visibility_radius = options.spec.visibility_radius;
  options.initial_servers = kRoots;
  options.pool_size = kPoolSize;
  options.map_objects = 60;
  options.seed = 2005;
  return options;
}

void schedule_load(Deployment& deployment) {
  ScenarioSpec()
      .background(100_ms, kBackground)
      .ramp(5_sec, kFlash, /*batch=*/60, /*interval=*/1_sec, kCenter,
            /*spread=*/120.0)
      // Half the crowd churns out through the outage: the freed slots are
      // re-contested while the directive steering them is a ghost.
      .departures(30_sec, kFlash / 2, /*batch=*/20, /*interval=*/3_sec,
                  kCenter)
      // A second wave lands mid-outage — the refill demand peaks while the
      // only steering signal is the dead MC's last share.
      .ramp(45_sec, kSecondFlash, /*batch=*/50, /*interval=*/1_sec, kCenter,
            /*spread=*/120.0)
      .kill_mc(kKillAt)
      .revive_mc(kReviveAt)
      .run_for(kDuration)
      .schedule(deployment);
}

struct RunResult {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  double goodput = 0.0;  ///< acks delivered / acks a full run would earn
  double p99_ms = 0.0;
  double mean_censored_tta_ms = 0.0;  ///< admitted: tta; never admitted: wait
  std::uint64_t failsafe_transitions = 0;
  std::uint64_t fallback_entries = 0;
  std::uint64_t held_drops = 0;
  bool timelines_valid = true;
  bool all_normal_at_end = true;
  AdmissionSummary admission;
};

RunResult run_one(bool failsafe_on, const char* label, JsonReport& report) {
  Deployment deployment(deployment_options(failsafe_on));
  schedule_load(deployment);
  deployment.run_until(kDuration);

  const double expected_per_client =
      kDuration.sec() / deployment.options().spec.action_interval.sec();

  RunResult result;
  Histogram self_ms;
  std::uint64_t acks_total = 0;
  double censored_sum = 0.0;
  for (const BotClient* bot : deployment.bots()) {
    ++result.offered;
    acks_total += bot->metrics().self_latency_ms.count();
    if (!bot->ever_connected()) {
      censored_sum += (kDuration - bot->first_join_at()).ms();
      continue;
    }
    ++result.admitted;
    censored_sum += bot->metrics().time_to_admit_ms;
    self_ms.merge(bot->metrics().self_latency_ms);
  }
  result.goodput = static_cast<double>(acks_total) /
                   (static_cast<double>(result.offered) * expected_per_client);
  result.p99_ms = self_ms.percentile(99.0);
  result.mean_censored_tta_ms =
      result.offered > 0 ? censored_sum / static_cast<double>(result.offered)
                         : 0.0;
  result.admission = collect_admission(deployment);

  const FailsafeConfig& failsafe = deployment.options().config.failsafe;
  const auto account = [&](const ControlPlane& plane) {
    result.failsafe_transitions += plane.transitions().size();
    for (const FailsafeTransition& t : plane.transitions()) {
      if (t.to == FailsafeState::kFallback) ++result.fallback_entries;
    }
    result.held_drops += plane.stats().held_drops;
    if (!failsafe_timeline_valid(plane.transitions(), failsafe)) {
      result.timelines_valid = false;
    }
    if (plane.state() != FailsafeState::kNormal) {
      result.all_normal_at_end = false;
    }
  };
  for (const MatrixServer* server : deployment.matrix_servers()) {
    account(server->control_plane());
  }
  for (const GameServer* game : deployment.game_servers()) {
    account(game->control_plane());
  }

  std::printf(
      "  %-4s offered=%4zu admitted=%4zu goodput=%5.1f%% p99=%7.1fms "
      "censored-tta=%7.0fms\n",
      label, result.offered, result.admitted, result.goodput * 100.0,
      result.p99_ms, result.mean_censored_tta_ms);
  std::printf(
      "       transitions=%llu fallback-entries=%llu held-drops=%llu "
      "directives: sent=%llu applied=%llu queue: parked=%llu drained=%llu\n",
      static_cast<unsigned long long>(result.failsafe_transitions),
      static_cast<unsigned long long>(result.fallback_entries),
      static_cast<unsigned long long>(result.held_drops),
      static_cast<unsigned long long>(result.admission.directives_broadcast),
      static_cast<unsigned long long>(result.admission.directives_applied),
      static_cast<unsigned long long>(result.admission.joins_queued),
      static_cast<unsigned long long>(result.admission.queue_admitted));

  report.add(label, "goodput", result.goodput, "fraction");
  report.add(label, "p99", result.p99_ms, "ms");
  report.add(label, "admitted", static_cast<double>(result.admitted),
             "clients");
  report.add(label, "censored_tta", result.mean_censored_tta_ms, "ms");
  report.add(label, "failsafe_transitions",
             static_cast<double>(result.failsafe_transitions), "");
  report.add(label, "fallback_entries",
             static_cast<double>(result.fallback_entries), "");
  add_registry(report, label, deployment);
  return result;
}

void verdict(const char* what, bool pass) {
  std::printf("  %-56s: %s\n", what, pass ? "PASS" : "FAIL");
}

int run(const char* json_path) {
  header("McOutage",
         "60s coordinator outage under a flash crowd — control-plane "
         "failsafe on vs off");
  std::printf(
      "  capacity = %zu slots x %u clients = %zu; offered = %zu + %zu + %zu "
      "background\n  MC killed at %.0fs mid-clamp, standby revived at %.0fs; "
      "half the first crowd churns\n  out through the outage and a second "
      "wave of %zu lands mid-outage\n\n",
      kRoots + kPoolSize, kOverload, (kRoots + kPoolSize) * kOverload, kFlash,
      kSecondFlash, kBackground, kKillAt.sec(), kReviveAt.sec(),
      kSecondFlash);

  JsonReport report("mc_outage");
  const RunResult off = run_one(false, "off", report);
  const RunResult on = run_one(true, "on", report);

  std::printf("\n[criteria]\n");
  const bool goodput_ok = on.goodput >= 1.1 * off.goodput;
  const bool admitted_ok = on.admitted > off.admitted;
  const bool p99_ok = on.p99_ms <= std::max(2.0 * off.p99_ms, 150.0);
  const bool on_machine_ok = on.timelines_valid && on.fallback_entries >= 2 &&
                             on.all_normal_at_end;
  const bool off_inert_ok = off.failsafe_transitions == 0;
  verdict("goodput through the outage: on >= 1.1x off", goodput_ok);
  verdict("admitted clients: on > off", admitted_ok);
  verdict("admitted p99 bounded (<= max(2x off, 150ms))", p99_ok);
  verdict("failsafe timelines valid, FALLBACK reached, all recovered",
          on_machine_ok);
  verdict("failsafe off: machine inert (zero transitions)", off_inert_ok);
  std::printf("  goodput       : %5.1f%% -> %5.1f%%\n", off.goodput * 100.0,
              on.goodput * 100.0);
  std::printf("  admitted      : %zu -> %zu (of %zu)\n", off.admitted,
              on.admitted, on.offered);
  std::printf("  censored tta  : %6.0f ms -> %6.0f ms\n",
              off.mean_censored_tta_ms, on.mean_censored_tta_ms);

  report.write(json_path);

  return goodput_ok && admitted_ok && p99_ok && on_machine_ok && off_inert_ok
             ? 0
             : 1;
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  return matrix::bench::run(matrix::bench::json_report_path(argc, argv));
}
