// Coordinator-led global admission vs PR-2 per-server admission: who should
// steer the valves when SEVERAL partitions saturate at once?
//
// Under PR 2, every valve is local.  When flash crowds of different sizes
// hit different partitions simultaneously and the pool runs dry, each
// saturated server drains its waiting room at the same fixed SOFT token
// rate — so the partition with the deepest line starves hardest: its
// players wait several times longer per capita than a lightly-crowded
// partition's, and cross-partition goodput diverges.  No local signal can
// fix this; only the coordinator sees every LoadReport and the pool at
// once.
//
// This PR's global admission layer (src/control/global_admission.h) has the
// MC aggregate LoadDigests + PoolStatus into a deployment pressure score
// and broadcast AdmissionDirectives: a floor state every server composes
// with its local valve (strictest wins), plus per-server token-budget
// shares weighted by waiting-room depth — the deepest line drains fastest.
// (The companion cross-server queue handoff is armed here too, but with
// these parameters the splits complete before the rooms deepen, so the
// handoff counters usually print 0 — that path is exercised
// deterministically by GlobalAdmissionDeploymentTest.SplitHandsOffParkedJoins
// in tests/global_admission_test.cpp, not by this bench.)
//
// The bench drives a MultiPartitionSurgeScenario — three simultaneous
// crowds of deliberately unequal size (280/140/80) into a 4-root, 2-spare
// deployment at ~1.5× capacity, with half of each crowd churning out
// through the run so the freed slots are continuously re-contested — and
// compares:
//
//   local  : admission + waiting room on, global off  (PR-2 behaviour)
//   global : the same, plus coordinator directives    (this PR)
//
// Claims under test (ISSUE 3 acceptance criteria):
//   * cross-partition goodput SPREAD (max−min over surge centers) shrinks
//     under global directives;
//   * the worst center's censored time-to-admit improves, without
//     sacrificing crowd-wide goodput;
//   * admitted-client p99 stays in the same regime (clamping valves must
//     not melt service);
//   * hysteresis timelines stay valid — every per-server valve AND the
//     coordinator's directive floor (same machine-checked contract).
#include "bench_common.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

constexpr std::size_t kRoots = 4;
constexpr std::size_t kPoolSize = 2;
constexpr std::uint32_t kOverload = 60;  // 6 slots × 60 = 360 capacity
// A deliberately scarce SOFT budget: with the queue-depth admission signal
// holding saturated servers in SOFT (no relax-and-dump), refill after the
// recovery churn is token-bound — which is exactly where uniform
// per-server budgets waste tokens at empty rooms while the deep room
// starves, and where the directive's depth-weighted shares pay off.
constexpr double kLocalTokenRate = 1.0;
constexpr SimTime kDuration = 120_sec;

MultiPartitionSurgeScenarioOptions surge_scenario() {
  MultiPartitionSurgeScenarioOptions scenario;
  scenario.background_bots = 60;
  scenario.flash_bots = {280, 140, 80};  // unequal on purpose
  scenario.centers = {{150.0, 150.0}, {850.0, 150.0}, {150.0, 850.0}};
  scenario.join_batch = 70;
  scenario.join_interval = 2_sec;
  scenario.flash_at = 5_sec;
  scenario.spread = 90.0;
  scenario.vip_fraction = 0.15;
  // Half of each crowd churns out through the run (proportional: the big
  // crowd's partition frees the most slots), starting soon after the crest
  // so the refill contest runs for most of the duration.  The refill of
  // those freed slots is what the two admission regimes contest.
  scenario.leave_fraction = 0.5;
  scenario.leave_batch = 20;
  scenario.leave_at = 25_sec;
  scenario.leave_interval = 3_sec;
  scenario.duration = kDuration;
  return scenario;
}

DeploymentOptions deployment_options(bool global_admission) {
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 1000, 1000);
  options.config.overload_clients = kOverload;
  options.config.underload_clients = kOverload / 2;
  options.config.sustain_reports_to_split = 2;
  options.config.topology_cooldown = 2_sec;
  options.config.load_report_interval = 500_ms;
  options.config.pool_backoff_initial = 1_sec;
  options.config.pool_backoff_max = 8_sec;

  // The PR-2 valve + waiting room, plus this PR's queue-depth admission
  // signal (soft_waiting_count) in BOTH runs: a server whose room still
  // holds 25+ parked joins stays SOFT and drains at the token rate rather
  // than relaxing and dumping the whole line at once.  Identical local
  // config in both modes — the comparison isolates the directive.
  options.config.admission.enabled = true;
  options.config.admission.soft_denied_streak = 1;
  options.config.admission.hard_denied_streak = 3;
  options.config.admission.soft_waiting_count = 25;
  // Close the valve BELOW the service knee, not 15% past it: a
  // depth-weighted drain will happily refill a partition right up to this
  // ceiling, so the ceiling must be a population the server serves
  // healthily.
  options.config.admission.soft_load_fraction = 0.75;
  options.config.admission.hard_load_fraction = 0.95;
  options.config.admission.token_rate_per_sec = kLocalTokenRate;
  options.config.admission.token_burst = 2.0;
  options.config.admission.dwell = 1_sec;
  options.config.admission.recover_min = 4_sec;
  options.config.admission.defer_retry = 2_sec;
  options.config.admission.priority.queue_enabled = true;
  options.config.admission.priority.queue_capacity = 1024;
  options.config.admission.priority.age_step = 20_sec;
  options.config.admission.priority.update_interval = 500_ms;

  // This PR: coordinator directives.  The deployment-wide budget equals
  // what the local valves would spend in aggregate (one kLocalTokenRate
  // per server slot), so the comparison isolates DISTRIBUTION, not size.
  options.config.admission.global.enabled = global_admission;
  options.config.admission.global.token_rate_total =
      kLocalTokenRate * static_cast<double>(kRoots + kPoolSize);
  options.config.admission.global.token_rate_floor = 0.25;
  options.config.admission.global.dwell = 1_sec;
  options.config.admission.global.recover_min = 4_sec;
  options.config.admission.global.directive_interval = 1_sec;

  options.spec = quake_like();
  options.config.visibility_radius = options.spec.visibility_radius;
  options.game_node.service_per_message = SimTime::from_us(350);
  options.initial_servers = kRoots;
  options.pool_size = kPoolSize;
  options.map_objects = 120;
  options.seed = 2005;
  return options;
}

struct CenterStats {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::uint64_t acks = 0;
  double censored_ms_sum = 0.0;  ///< admitted: tta; never admitted: full wait

  [[nodiscard]] double goodput(double expected_per_client) const {
    return offered > 0 ? static_cast<double>(acks) /
                             (static_cast<double>(offered) * expected_per_client)
                       : 0.0;
  }
  [[nodiscard]] double mean_censored_ms() const {
    return offered > 0 ? censored_ms_sum / static_cast<double>(offered) : 0.0;
  }
};

struct RunResult {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  double p99_ms = 0.0;
  double goodput = 0.0;          ///< crowd-wide, all bots
  double goodput_spread = 0.0;   ///< max−min over surge centers
  double worst_censored_ms = 0.0;
  std::vector<CenterStats> centers;
  AdmissionSummary admission;
};

RunResult run_one(bool global_admission, const char* label) {
  Deployment deployment(deployment_options(global_admission));
  const MultiPartitionSurgeScenarioOptions scenario = surge_scenario();
  schedule_multi_partition_surge_scenario(deployment, scenario);
  deployment.run_until(scenario.duration);

  const double expected_per_client =
      kDuration.sec() / deployment.options().spec.action_interval.sec();

  RunResult result;
  result.centers.resize(scenario.centers.size());
  Histogram self_ms;
  std::uint64_t acks_total = 0;
  for (const BotClient* bot : deployment.bots()) {
    ++result.offered;
    // Surge bots carry their center as the attraction point; background
    // bots (no attraction) count toward crowd-wide figures only.
    CenterStats* center = nullptr;
    if (bot->attraction()) {
      for (std::size_t c = 0; c < scenario.centers.size(); ++c) {
        if (*bot->attraction() == scenario.centers[c]) {
          center = &result.centers[c];
          break;
        }
      }
    }
    if (center != nullptr) ++center->offered;
    const std::uint64_t acks = bot->metrics().self_latency_ms.count();
    acks_total += acks;
    if (!bot->ever_connected()) {
      const double censored = (kDuration - bot->first_join_at()).ms();
      if (center != nullptr) center->censored_ms_sum += censored;
      continue;
    }
    ++result.admitted;
    self_ms.merge(bot->metrics().self_latency_ms);
    if (center != nullptr) {
      ++center->admitted;
      center->acks += acks;
      center->censored_ms_sum += bot->metrics().time_to_admit_ms;
    }
  }
  result.p99_ms = self_ms.percentile(99.0);
  result.goodput = static_cast<double>(acks_total) /
                   (static_cast<double>(result.offered) * expected_per_client);

  double best = 0.0, worst = 1.0;
  for (const CenterStats& center : result.centers) {
    const double goodput = center.goodput(expected_per_client);
    best = std::max(best, goodput);
    worst = std::min(worst, goodput);
    result.worst_censored_ms =
        std::max(result.worst_censored_ms, center.mean_censored_ms());
  }
  result.goodput_spread = best - worst;
  result.admission = collect_admission(deployment);

  std::printf(
      "  %-6s offered=%4zu admitted=%4zu p99=%7.1fms goodput=%5.1f%% "
      "spread=%5.1f%%\n",
      label, result.offered, result.admitted, result.p99_ms,
      result.goodput * 100.0, result.goodput_spread * 100.0);
  for (std::size_t c = 0; c < result.centers.size(); ++c) {
    const CenterStats& center = result.centers[c];
    std::printf(
        "         center%zu offered=%4zu admitted=%4zu goodput=%5.1f%% "
        "censored-tta=%7.0fms\n",
        c + 1, center.offered, center.admitted,
        center.goodput(expected_per_client) * 100.0,
        center.mean_censored_ms());
  }
  std::printf(
      "         directives=%llu applied=%llu handoffs: out=%llu in=%llu "
      "queue: parked=%llu drained=%llu\n",
      static_cast<unsigned long long>(result.admission.directives_broadcast),
      static_cast<unsigned long long>(result.admission.directives_applied),
      static_cast<unsigned long long>(result.admission.queue_handed_off),
      static_cast<unsigned long long>(result.admission.queue_adopted),
      static_cast<unsigned long long>(result.admission.joins_queued),
      static_cast<unsigned long long>(result.admission.queue_admitted));
  return result;
}

void verdict(const char* what, bool pass) {
  std::printf("  %-52s: %s\n", what, pass ? "PASS" : "FAIL");
}

int run(const char* json_path) {
  header("GlobalAdmission",
         "coordinator directives vs per-server valves under simultaneous "
         "multi-partition surges");
  std::printf(
      "  capacity = %zu slots x %u clients = %zu; crowds = 280/140/80 + 60 "
      "background (~1.5x); half churn out mid-run\n  global budget = local "
      "aggregate (%g/s); shares weighted by waiting-room depth\n\n",
      kRoots + kPoolSize, kOverload, (kRoots + kPoolSize) * kOverload,
      kLocalTokenRate * static_cast<double>(kRoots + kPoolSize));

  const RunResult local = run_one(false, "local");
  const RunResult global = run_one(true, "global");

  std::printf("\n[criteria]\n");
  const bool spread_ok = global.goodput_spread < local.goodput_spread;
  const bool worst_ok = global.worst_censored_ms < local.worst_censored_ms;
  const bool goodput_ok = global.goodput >= 0.9 * local.goodput;
  const bool p99_ok = global.p99_ms <= 2.0 * local.p99_ms;
  const bool timelines_ok = local.admission.timelines_valid &&
                            global.admission.timelines_valid &&
                            global.admission.global_timeline_valid;
  const bool directives_ok = global.admission.directives_broadcast > 0 &&
                             local.admission.directives_broadcast == 0;
  verdict("cross-partition goodput spread: global < local", spread_ok);
  verdict("worst center censored time-to-admit: global < local", worst_ok);
  verdict("crowd-wide goodput preserved (>= 0.9x local)", goodput_ok);
  verdict("admitted p99 within 2x of local", p99_ok);
  verdict("hysteresis timelines valid (servers + directive floor)",
          timelines_ok);
  verdict("directives broadcast iff global enabled", directives_ok);
  std::printf("  goodput spread      : %5.1f%% -> %5.1f%%\n",
              local.goodput_spread * 100.0, global.goodput_spread * 100.0);
  std::printf("  worst censored tta  : %6.0f ms -> %6.0f ms\n",
              local.worst_censored_ms, global.worst_censored_ms);
  std::printf("  crowd-wide goodput  : %5.1f%% -> %5.1f%%\n",
              local.goodput * 100.0, global.goodput * 100.0);

  JsonReport report("global_admission");
  const char* labels[2] = {"local", "global"};
  const RunResult* runs[2] = {&local, &global};
  for (int i = 0; i < 2; ++i) {
    report.add(labels[i], "goodput", runs[i]->goodput, "fraction");
    report.add(labels[i], "goodput_spread", runs[i]->goodput_spread,
               "fraction");
    report.add(labels[i], "worst_censored_tta", runs[i]->worst_censored_ms,
               "ms");
    report.add(labels[i], "p99", runs[i]->p99_ms, "ms");
    report.add(labels[i], "admitted",
               static_cast<double>(runs[i]->admitted), "clients");
  }
  report.add("global", "directives_broadcast",
             static_cast<double>(global.admission.directives_broadcast), "");
  report.add("global", "queue_handed_off",
             static_cast<double>(global.admission.queue_handed_off), "");
  report.write(json_path);

  return spread_ok && worst_ok && goodput_ok && p99_ok && timelines_ok &&
                 directives_ok
             ? 0
             : 1;
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  return matrix::bench::run(matrix::bench::json_report_path(argc, argv));
}
