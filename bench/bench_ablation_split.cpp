// A-split: split-to-left vs load-aware splitting (bench index: README.md).
//
// The paper (§3.2.3) uses "a simple 'split-to-left' splitting technique
// where each map is split into two equal pieces ... though simple, this
// algorithm still provides good performance", and §5 notes smarter
// partitioning algorithms [14,15] could be plugged in.  This ablation
// quantifies the trade on two hotspot shapes:
//
//   * a CENTRAL hotspot, which an equal-halves cut divides quickly
//     (split-to-left's best case, and the paper's Fig. 2 shape);
//   * a CORNER hotspot, where equal halving must recurse all the way down
//     to the crowd's footprint, burning servers on empty partitions —
//     the load-aware median cut divides the crowd on the first split.
#include "bench_common.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

struct Result {
  std::size_t peak_servers = 0;
  std::uint64_t splits = 0;
  std::uint64_t denied = 0;
  double peak_queue = 0.0;
  double end_queue = 0.0;
  double p99_ms = 0.0;
};

Result run_one(SplitPolicy policy, Vec2 hotspot, double spread) {
  auto options = paper_options();
  options.config.split_policy = policy;
  options.config.topology_cooldown = 2_sec;
  options.pool_size = 11;
  Deployment deployment(options);
  MetricsSampler metrics(deployment, 1_sec);
  Scenario scenario(deployment);
  scenario.add_background_bots(100_ms, 60);
  scenario.add_hotspot_bots(5_sec, 500, hotspot, spread);
  deployment.run_until(80_sec);

  Result result;
  result.peak_servers = static_cast<std::size_t>(metrics.max_active_servers());
  const TopologyTotals totals = topology_totals(deployment);
  result.splits = totals.splits;
  result.denied = totals.denied;
  result.peak_queue = metrics.max_queue();
  for (const auto& series : metrics.queue_per_server()) {
    result.end_queue = std::max(result.end_queue, series.value_at(79.0));
  }
  result.p99_ms = collect_latency(deployment).self_ms.percentile(99);
  return result;
}

void report(JsonReport& json, const std::string& run, const Result& r) {
  json.add(run, "peak_servers", static_cast<double>(r.peak_servers));
  json.add(run, "splits", static_cast<double>(r.splits));
  json.add(run, "splits_denied", static_cast<double>(r.denied));
  json.add(run, "peak_queue", r.peak_queue, "msgs");
  json.add(run, "end_queue", r.end_queue, "msgs");
  json.add(run, "self_p99_ms", r.p99_ms, "ms");
}

void print_rows(const char* shape, const Result& left, const Result& aware) {
  std::printf("\n--- %s ---\n", shape);
  std::printf("%-14s %9s %7s %7s %10s %10s %9s\n", "policy", "servers",
              "splits", "denied", "peakQ", "endQ", "p99(ms)");
  std::printf("%-14s %9zu %7llu %7llu %10.0f %10.0f %9.1f\n", "split-to-left",
              left.peak_servers, static_cast<unsigned long long>(left.splits),
              static_cast<unsigned long long>(left.denied), left.peak_queue,
              left.end_queue, left.p99_ms);
  std::printf("%-14s %9zu %7llu %7llu %10.0f %10.0f %9.1f\n", "load-aware",
              aware.peak_servers,
              static_cast<unsigned long long>(aware.splits),
              static_cast<unsigned long long>(aware.denied), aware.peak_queue,
              aware.end_queue, aware.p99_ms);
}

void run(JsonReport& json) {
  header("A-split", "ablation: split-to-left (paper) vs load-aware median splits");

  const Result central_left = run_one(SplitPolicy::kSplitToLeft, {350, 350}, 120.0);
  const Result central_aware = run_one(SplitPolicy::kLoadAware, {350, 350}, 120.0);
  print_rows("central hotspot (350,350), footprint 120", central_left,
             central_aware);
  report(json, "central/split_to_left", central_left);
  report(json, "central/load_aware", central_aware);

  const Result corner_left = run_one(SplitPolicy::kSplitToLeft, {120, 120}, 60.0);
  const Result corner_aware = run_one(SplitPolicy::kLoadAware, {120, 120}, 60.0);
  print_rows("corner hotspot (120,120), footprint 60", corner_left,
             corner_aware);
  report(json, "corner/split_to_left", corner_left);
  report(json, "corner/load_aware", corner_aware);

  std::printf(
      "\nReading: both policies relieve the hotspot (endQ drains), which is\n"
      "the paper's justification for shipping the simple one.  The median\n"
      "cut reaches relief with about half the splits and half the servers —\n"
      "the resource-efficiency win the paper's refs [14,15] anticipate —\n"
      "while split-to-left burns extra splits recursing toward the crowd\n"
      "(its surplus servers do buy it a somewhat lower peak queue on the\n"
      "tight corner hotspot, at double the hardware).\n");
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  matrix::bench::JsonReport json("ablation_split");
  matrix::bench::run(json);
  return json.write(matrix::bench::json_report_path(argc, argv)) ? 0 : 1;
}
