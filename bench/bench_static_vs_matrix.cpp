// T-games (§4.2 ¶1): Matrix vs static partitioning across the three games.
//
// "For these three games, we showed that Matrix is able to outperform
//  static partitioning schemes when unexpected loads or hotspots occur.
//  In particular, Matrix is able to automatically use extra servers to
//  handle the load while the static partitioning schemes just fail."
//
// Per game (BzFlag-like, Quake2-like, Daimonin-like) we run the same
// hotspot workload against: static 2-server, static 4-server, and Matrix
// (1 initial + spares).  "Failure" shows up as a diverging receive queue
// and collapsing response latency on the hotspot server; Matrix sheds the
// load onto extra servers instead.  Hotspot sizes are scaled per game so
// the offered load clearly exceeds one server's capacity, mirroring the
// paper's "loads far higher than a static partitioning could handle".
#include "bench_common.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

struct RunResult {
  std::size_t servers_used = 0;
  double end_queue = 0.0;
  double peak_queue = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double over_budget = 0.0;  // fraction of actions > 150 ms
  std::uint64_t splits = 0;
};

RunResult run_one(const GameModelSpec& spec, std::size_t hotspot_bots,
                  bool adaptive, std::size_t static_servers) {
  auto options = paper_options();
  options.spec = spec;
  options.config.visibility_radius = spec.visibility_radius;
  if (adaptive) {
    options.initial_servers = 1;
    options.pool_size = 11;
  } else {
    options.config.allow_split = false;
    options.config.allow_reclaim = false;
    options.initial_servers = static_servers;
    options.pool_size = 0;
  }

  Deployment deployment(options);
  MetricsSampler metrics(deployment, 1_sec);
  Scenario scenario(deployment);
  scenario.add_background_bots(100_ms, 60);
  scenario.add_hotspot_bots(5_sec, hotspot_bots, {350, 350}, 120.0);
  deployment.run_until(75_sec);

  RunResult result;
  result.servers_used = static_cast<std::size_t>(metrics.max_active_servers());
  result.peak_queue = metrics.max_queue();
  for (const auto& series : metrics.queue_per_server()) {
    result.end_queue = std::max(result.end_queue, series.value_at(74.0));
  }
  const LatencySummary latency = collect_latency(deployment);
  result.p50_ms = latency.self_ms.median();
  result.p99_ms = latency.self_ms.percentile(99);
  result.over_budget = latency.self_ms.fraction_above(150.0);
  result.splits = topology_totals(deployment).splits;
  return result;
}

void report(JsonReport& json, const std::string& run, const RunResult& r) {
  json.add(run, "servers_used", static_cast<double>(r.servers_used));
  json.add(run, "peak_queue", r.peak_queue, "msgs");
  json.add(run, "end_queue", r.end_queue, "msgs");
  json.add(run, "self_p50_ms", r.p50_ms, "ms");
  json.add(run, "self_p99_ms", r.p99_ms, "ms");
  json.add(run, "over_budget_fraction", r.over_budget);
  json.add(run, "splits", static_cast<double>(r.splits));
}

void run_game(JsonReport& json, const GameModelSpec& spec,
              std::size_t hotspot_bots) {
  std::printf("\n--- %s: %zu-client hotspot (rate %.0f Hz, R=%.0f) ---\n",
              spec.name.c_str(), hotspot_bots,
              1000.0 / spec.action_interval.ms(), spec.visibility_radius);
  std::printf("%-12s %8s %10s %10s %9s %9s %10s %7s\n", "scheme", "servers",
              "peakQ", "endQ", "p50(ms)", "p99(ms)", ">150ms(%)", "splits");
  struct Row {
    const char* label;
    RunResult r;
  };
  const Row rows[] = {
      {"static-2", run_one(spec, hotspot_bots, false, 2)},
      {"static-4", run_one(spec, hotspot_bots, false, 4)},
      {"matrix", run_one(spec, hotspot_bots, true, 0)},
  };
  for (const Row& row : rows) {
    std::printf("%-12s %8zu %10.0f %10.0f %9.1f %9.1f %10.2f %7llu\n",
                row.label, row.r.servers_used, row.r.peak_queue,
                row.r.end_queue, row.r.p50_ms, row.r.p99_ms,
                100.0 * row.r.over_budget,
                static_cast<unsigned long long>(row.r.splits));
    report(json, spec.name + "/" + row.label, row.r);
  }
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  using namespace matrix;
  using namespace matrix::bench;
  header("T-games", "Matrix vs static partitioning under hotspots (3 games)");
  JsonReport json("static_vs_matrix");
  // Hotspot sizes chosen so the offered message rate clearly exceeds one
  // server's ~5k msg/s capacity: clients × rate ≳ 1.2× capacity.
  run_game(json, bzflag_like(), 600);    // 600 × 10 Hz = 6k msg/s
  run_game(json, quake_like(), 400);     // 400 × 20 Hz = 8k msg/s
  run_game(json, daimonin_like(), 1500); // 1500 × 4 Hz = 6k msg/s
  std::printf(
      "\nReading: static schemes pin the hotspot to one server — its queue\n"
      "diverges (endQ) and latency collapses; Matrix recruits servers\n"
      "(splits column) and ends with drained queues and playable latency.\n");
  return json.write(json_report_path(argc, argv)) ? 0 : 1;
}
