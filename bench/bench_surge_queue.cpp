// Surge queue vs defer-retry: who should own the overload control loop?
//
// PR 1's admission valve bounced gated joins back to the client (JoinDefer
// with a retry hint).  That leaves service capacity on the floor: while the
// deferred cohort sleeps its jittered 2-3 s, the SOFT token bucket refills
// to its small burst cap and then *overflows* — admission slots exist but
// nobody is at the door.  The surge queue (src/control/surge_queue.h) parks
// gated joins server-side and drains on every 500 ms tick, so no refilled
// token is ever wasted, and the drain order is chosen (RESUME > VIP >
// NORMAL with aging) instead of being a retry race.
//
// The deeper difference shows in HARD: defer-retry answers HARD with
// JoinDeny and the client gives up — when capacity frees later, those
// players are simply gone.  The waiting room parks them instead, and the
// recovery drains the whole line in class order.
//
// This bench drives a beyond-capacity flash crowd (a SurgeScenario with a
// 15% VIP share) into a valve that goes HARD at the crest, then frees
// capacity with a departure wave, and compares the two control loops:
//
//   defer : admission on, waiting room off  (PR 1 behaviour)
//   queue : admission on, waiting room on   (this PR)
//
// Claims under test (ISSUE 2 acceptance criteria):
//   * the waiting room admits strictly more of the crowd into play and
//     delivers a strictly higher goodput (delivered action fraction across
//     the whole offered crowd);
//   * mean time-to-admit (first join attempt → Welcome) is lower for the
//     VIP class — and no worse for NORMAL — than under defer-retry;
//   * admitted-client p99 latency stays in the same regime (the room must
//     not buy admission speed with a melted server);
//   * hysteresis timelines stay valid, and RESUME/VIP/NORMAL drain in
//     class order (per-class queue waits are reported).
#include "bench_common.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

constexpr std::size_t kPoolSize = 3;        // 1 root + 3 spares...
constexpr std::uint32_t kOverload = 60;     // ...at 60 clients each = 240
constexpr std::size_t kCrowd = 700;         // ~3× capacity
constexpr SimTime kDuration = 90_sec;

DeploymentOptions surge_options(bool waiting_room) {
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 800, 800);
  options.config.visibility_radius = 50.0;
  options.config.overload_clients = kOverload;
  options.config.underload_clients = kOverload / 2;
  options.config.sustain_reports_to_split = 2;
  options.config.topology_cooldown = 2_sec;
  options.config.load_report_interval = 500_ms;
  options.config.pool_backoff_initial = 1_sec;
  options.config.pool_backoff_max = 8_sec;

  options.config.admission.enabled = true;
  // Same valve tuning as bench_overload_admission: SOFT on the first pool
  // denial, HARD after three — at the crest of a 3× crowd the valve WILL
  // close fully, which is where the two control loops diverge (deny-and-
  // give-up vs park-and-wait).
  options.config.admission.soft_denied_streak = 1;
  options.config.admission.hard_denied_streak = 3;
  // Small burst: an unattended bucket overflows after 1 s — exactly the
  // capacity defer-retry wastes while its cohort sleeps between retries.
  options.config.admission.token_rate_per_sec = 8.0;
  options.config.admission.token_burst = 8.0;
  options.config.admission.dwell = 1_sec;
  options.config.admission.recover_min = 4_sec;
  options.config.admission.defer_retry = 2_sec;

  options.config.admission.priority.queue_enabled = waiting_room;
  options.config.admission.priority.queue_capacity = 1024;
  options.config.admission.priority.age_step = 20_sec;
  options.config.admission.priority.update_interval = 500_ms;

  options.spec = quake_like();
  options.config.visibility_radius = options.spec.visibility_radius;
  options.game_node.service_per_message = SimTime::from_us(400);
  options.initial_servers = 1;
  options.pool_size = kPoolSize;
  options.map_objects = 100;
  options.seed = 2005;
  return options;
}

struct ClassStats {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  double tta_ms_sum = 0.0;  ///< over admitted bots
  /// Censored sum over the WHOLE class: admitted bots contribute their
  /// time-to-admit, never-admitted bots the full span from first join to
  /// run end.  This is the fair cross-mode metric — defer-retry's outright
  /// denials must not vanish from its average.
  double censored_ms_sum = 0.0;

  [[nodiscard]] double mean_tta_ms() const {
    return admitted > 0 ? tta_ms_sum / static_cast<double>(admitted) : 0.0;
  }
  [[nodiscard]] double mean_censored_ms() const {
    return offered > 0 ? censored_ms_sum / static_cast<double>(offered) : 0.0;
  }
};

struct RunResult {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t final_clients = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double delivery = 0.0;  ///< acks / actions over admitted clients
  double goodput = 0.0;   ///< acks / (offered × expected actions) — crowd-wide
  ClassStats vip;
  ClassStats normal;
  AdmissionSummary admission;
};

RunResult run_one(bool waiting_room, const char* label) {
  Deployment deployment(surge_options(waiting_room));
  MetricsSampler metrics(deployment, 1_sec);

  SurgeScenarioOptions scenario;
  scenario.background_bots = 50;
  scenario.flash_bots = kCrowd - scenario.background_bots;
  scenario.join_batch = 130;
  scenario.join_interval = 2_sec;
  scenario.flash_at = 5_sec;
  scenario.center = {400.0, 400.0};
  scenario.spread = 150.0;
  scenario.vip_fraction = 0.15;
  // Recovery: most of the admitted crowd drifts away from t=45 s, freeing
  // capacity.  The waiting room drains its line into the freed slots; the
  // defer-retry deployment can only re-admit clients that never gave up.
  scenario.leave_bots = 200;
  scenario.leave_batch = 100;
  scenario.leave_at = 45_sec;
  scenario.leave_interval = 5_sec;
  scenario.duration = kDuration;
  schedule_surge_scenario(deployment, scenario);
  deployment.run_until(scenario.duration);

  RunResult result;
  Histogram self_ms;
  std::uint64_t actions = 0;
  std::uint64_t acks = 0;
  for (const BotClient* bot : deployment.bots()) {
    ++result.offered;
    ClassStats& cls = bot->vip() ? result.vip : result.normal;
    ++cls.offered;
    if (!bot->ever_connected()) {
      // Never admitted: censored at run end — it waited (or was turned
      // away) for the rest of the run.
      cls.censored_ms_sum += (kDuration - bot->first_join_at()).ms();
      continue;
    }
    ++result.admitted;
    ++cls.admitted;
    cls.tta_ms_sum += bot->metrics().time_to_admit_ms;
    cls.censored_ms_sum += bot->metrics().time_to_admit_ms;
    self_ms.merge(bot->metrics().self_latency_ms);
    actions += bot->metrics().actions_sent;
    acks += bot->metrics().self_latency_ms.count();
  }
  result.p50_ms = self_ms.median();
  result.p99_ms = self_ms.percentile(99.0);
  result.delivery =
      actions > 0 ? static_cast<double>(acks) / static_cast<double>(actions)
                  : 0.0;
  // Crowd-wide goodput: delivered actions normalised by what the WHOLE
  // offered crowd would have sent had everyone been admitted at t=0 and
  // acted at the model rate for the full run.  Penalises both waiting at
  // the door and melted service.
  const double expected_per_client =
      kDuration.sec() / surge_options(false).spec.action_interval.sec();
  result.goodput = static_cast<double>(acks) /
                   (static_cast<double>(result.offered) * expected_per_client);
  result.final_clients = deployment.total_clients();
  result.admission = collect_admission(deployment);

  std::printf(
      "  %-6s offered=%4zu admitted=%4zu final=%4zu p50=%6.1fms p99=%7.1fms "
      "delivered=%5.1f%% goodput=%5.1f%%\n"
      "         admitted tta  VIP=%7.0fms (n=%zu)  NORMAL=%7.0fms (n=%zu)\n"
      "         censored tta  VIP=%7.0fms          NORMAL=%7.0fms  "
      "queued=%llu deferred=%llu denied=%llu\n",
      label, result.offered, result.admitted, result.final_clients,
      result.p50_ms, result.p99_ms, result.delivery * 100.0,
      result.goodput * 100.0, result.vip.mean_tta_ms(), result.vip.admitted,
      result.normal.mean_tta_ms(), result.normal.admitted,
      result.vip.mean_censored_ms(), result.normal.mean_censored_ms(),
      static_cast<unsigned long long>(result.admission.joins_queued),
      static_cast<unsigned long long>(result.admission.joins_deferred),
      static_cast<unsigned long long>(result.admission.joins_denied));
  if (waiting_room) {
    std::printf(
        "         queue waits: RESUME=%6.0fms (n=%llu)  VIP=%6.0fms (n=%llu)  "
        "NORMAL=%6.0fms (n=%llu)  maxDepth=%llu overflow=%llu\n",
        result.admission.mean_queue_wait_ms(0),
        static_cast<unsigned long long>(
            result.admission.queue_admitted_by_class[0]),
        result.admission.mean_queue_wait_ms(1),
        static_cast<unsigned long long>(
            result.admission.queue_admitted_by_class[1]),
        result.admission.mean_queue_wait_ms(2),
        static_cast<unsigned long long>(
            result.admission.queue_admitted_by_class[2]),
        static_cast<unsigned long long>(result.admission.max_queue_depth),
        static_cast<unsigned long long>(result.admission.queue_overflow));
  }
  return result;
}

void verdict(const char* what, bool pass) {
  std::printf("  %-44s: %s\n", what, pass ? "PASS" : "FAIL");
}

void run(const char* json_path) {
  header("SurgeQueue",
         "waiting-room drain vs PR-1 defer-retry under a 3x flash crowd");
  std::printf("  capacity = %zu servers x %u clients = %zu; crowd = %zu "
              "(15%% VIP); SOFT token rate = 8/s, burst 8\n\n",
              1 + kPoolSize, kOverload, (1 + kPoolSize) * kOverload, kCrowd);

  const RunResult defer = run_one(false, "defer");
  const RunResult queue = run_one(true, "queue");

  std::printf("\n[criteria]\n");
  verdict("goodput: queue > defer (strict)",
          queue.goodput > defer.goodput);
  verdict("admitted into play: queue >= defer",
          queue.admitted >= defer.admitted);
  // Time-to-admit uses the CENSORED mean (never-admitted bots count their
  // whole wait): defer-retry's JoinDeny give-ups must not be dropped from
  // its average just because they never got in.
  verdict("mean time-to-admit VIP: queue < defer",
          queue.vip.mean_censored_ms() < defer.vip.mean_censored_ms());
  verdict("mean time-to-admit NORMAL: queue < defer",
          queue.normal.mean_censored_ms() < defer.normal.mean_censored_ms());
  verdict("VIP drains ahead of NORMAL (queue waits)",
          queue.admission.mean_queue_wait_ms(1) <=
              queue.admission.mean_queue_wait_ms(2));
  verdict("admitted p99 within 2x of defer-retry",
          queue.p99_ms <= 2.0 * defer.p99_ms);
  verdict("hysteresis timelines valid (both runs)",
          defer.admission.timelines_valid && queue.admission.timelines_valid);
  std::printf("  time-to-admit VIP   : %6.0f ms -> %6.0f ms  (censored mean)\n",
              defer.vip.mean_censored_ms(), queue.vip.mean_censored_ms());
  std::printf("  time-to-admit NORMAL: %6.0f ms -> %6.0f ms  (censored mean)\n",
              defer.normal.mean_censored_ms(),
              queue.normal.mean_censored_ms());
  std::printf("  goodput             : %5.1f%% -> %5.1f%%\n",
              defer.goodput * 100.0, queue.goodput * 100.0);

  JsonReport report("surge_queue");
  const char* labels[2] = {"defer", "queue"};
  const RunResult* runs[2] = {&defer, &queue};
  for (int i = 0; i < 2; ++i) {
    report.add(labels[i], "goodput", runs[i]->goodput, "fraction");
    report.add(labels[i], "p99", runs[i]->p99_ms, "ms");
    report.add(labels[i], "admitted", static_cast<double>(runs[i]->admitted),
               "clients");
    report.add(labels[i], "censored_tta_vip", runs[i]->vip.mean_censored_ms(),
               "ms");
    report.add(labels[i], "censored_tta_normal",
               runs[i]->normal.mean_censored_ms(), "ms");
  }
  report.write(json_path);
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  matrix::bench::run(matrix::bench::json_report_path(argc, argv));
  return 0;
}
