// T-replica (paper §5): Matrix vs the commercial replicated-static model.
//
// "To handle hotspots, they allocate multiple tightly-coupled (completely
//  consistent) servers to handle the same partition, an approach that is
//  neither efficient nor very scalable.  Instead, Matrix techniques can be
//  used by these systems..."
//
// Same population, same game, comparable server counts: a replicated
// deployment (K=2 partitions × M replicas) vs Matrix growing on demand.
// The replicated scheme pays O(M) router fan-out for EVERY event; Matrix
// pays only for overlap-region events.  We report routing bytes per
// client action — the efficiency gap the paper asserts.
#include <set>

#include "baseline/replicated_static.h"
#include "bench_common.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

std::uint64_t total_actions_rep(const ReplicatedDeployment& deployment) {
  std::uint64_t actions = 0;
  for (const GameServer* game : deployment.game_servers()) {
    actions += game->stats().actions;
  }
  return actions;
}

void run(JsonReport& json) {
  header("T-replica", "routing cost: Matrix vs tightly-coupled replicas (§5)");

  const std::size_t population = 300;
  std::printf("\n%-18s %8s %14s %18s %18s\n", "scheme", "servers",
              "actions", "routing bytes", "bytes/action");

  // Replicated static at M = 1, 2, 4.
  for (std::size_t m : {1u, 2u, 4u}) {
    ReplicatedDeployment::Options options;
    options.config.world = Rect(0, 0, 1000, 1000);
    options.spec = bzflag_like();
    options.config.visibility_radius = options.spec.visibility_radius;
    options.partitions = 2;
    options.replicas = m;
    options.seed = 99;
    ReplicatedDeployment deployment(options);
    Rng rng(7);
    for (std::size_t i = 0; i < population; ++i) {
      deployment.add_bot({rng.next_double_in(0, 1000),
                          rng.next_double_in(0, 1000)});
    }
    deployment.run_until(40_sec);
    const std::uint64_t actions = total_actions_rep(deployment);
    const std::uint64_t bytes = deployment.routing_bytes();
    const double per_action =
        actions ? static_cast<double>(bytes) / static_cast<double>(actions)
                : 0.0;
    std::printf("%-18s %8zu %14llu %18llu %18.1f\n",
                ("replicated 2x" + std::to_string(m)).c_str(), 2 * m,
                static_cast<unsigned long long>(actions),
                static_cast<unsigned long long>(bytes), per_action);
    json.add("replicated_2x" + std::to_string(m), "routing_bytes_per_action",
             per_action, "bytes");
    json.add("replicated_2x" + std::to_string(m), "servers",
             static_cast<double>(2 * m));
  }

  // Matrix with the same population (uniform load → few servers needed).
  {
    auto options = paper_options();
    Deployment deployment(options);
    Scenario scenario(deployment);
    scenario.add_background_bots(100_ms, population);
    deployment.run_until(40_sec);
    std::uint64_t actions = 0;
    for (const GameServer* game : deployment.game_servers()) {
      actions += game->stats().actions;
    }
    // Same accounting as ReplicatedDeployment::routing_bytes: bytes
    // LEAVING routers toward game servers or other routers.
    std::set<NodeId> matrix_nodes, game_nodes;
    for (const MatrixServer* server : deployment.matrix_servers()) {
      matrix_nodes.insert(server->node_id());
    }
    for (const GameServer* game : deployment.game_servers()) {
      game_nodes.insert(game->node_id());
    }
    const std::uint64_t bytes =
        deployment.network().bytes_matching([&](NodeId src, NodeId dst) {
          return matrix_nodes.count(src) != 0 &&
                 (matrix_nodes.count(dst) != 0 || game_nodes.count(dst) != 0);
        });
    const double per_action =
        actions ? static_cast<double>(bytes) / static_cast<double>(actions)
                : 0.0;
    std::printf("%-18s %8zu %14llu %18llu %18.1f\n", "matrix",
                deployment.active_server_count(),
                static_cast<unsigned long long>(actions),
                static_cast<unsigned long long>(bytes), per_action);
    json.add("matrix", "routing_bytes_per_action", per_action, "bytes");
    json.add("matrix", "servers",
             static_cast<double>(deployment.active_server_count()));
  }

  std::printf(
      "\nReading: replicated-static routing cost grows linearly with the\n"
      "replica count M (every event reaches every replica); Matrix's cost\n"
      "is set by overlap geometry alone and stays flat as servers are\n"
      "added — the efficiency argument of the paper's related-work §5.\n");
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  matrix::bench::JsonReport json("replication");
  matrix::bench::run(json);
  return json.write(matrix::bench::json_report_path(argc, argv)) ? 0 : 1;
}
