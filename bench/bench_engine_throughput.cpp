// Engine hot-path throughput: events/sec and messages/sec on macro workloads.
//
// The simulation engine is the instrument every other bench measures with —
// its constant factors bound the scenarios the reproduction can afford.  The
// hot-path overhaul (allocation-free event scheduling, pooled message
// buffers, dense-id routing) is judged here on two macro workloads:
//
//   fig2_macro : the paper's Fig. 2 hotspot timeline (300 s, ~700 peak
//                clients, ~9.4M messages) — the message-heavy macro workload
//                every figure regenerates from.  The pre-overhaul engine ran
//                this at ~0.50M events/s; the acceptance bar is ≥3×.
//   mega_surge : MegaSurgeScenario — ≥10k concurrent clients across a 36-root
//                grid, the scale the old engine could not reach in a usable
//                wall-time budget.
//   giga_shards_K : GigaSurgeScenario (≥100k offered clients, 64 roots) on
//                the sharded conservative engine at K ∈ {1, 2, 4} — the
//                shard-scaling curve.  K=1 is the serial engine; speedup at
//                K>1 requires free cores (a single-core runner reports the
//                synchronization overhead honestly instead).
//
// Alongside throughput it reports the engine counters (events processed,
// peak event-heap depth, payload-buffer reuse rate) so a perf regression can
// be localized from the JSON artifact alone.  CI gates on events/sec via
// scripts/check_bench_regression.py against bench/baselines/engine_baseline.json.
#include <algorithm>
#include <chrono>

#include "bench_common.h"
#include "net/event_queue.h"
#include "util/rng.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

// ---- scheduler microbench ---------------------------------------------------
// Steady-state schedule+pop churn on a raw EventQueue at a fixed pending
// depth — the classic calendar-queue "hold model".  Run for both priority
// structures so the ladder's claimed win over the heap is measured, not
// assumed, at every depth the macro workloads visit (fig2 idles near 1k
// pending; giga peaks past 100k).
double scheduler_churn_ops_per_sec(EventQueue::Scheduler scheduler,
                                   std::size_t depth, std::uint64_t ops) {
  EventQueue queue;
  queue.set_scheduler(scheduler);
  Rng rng(0xB16B00B5ULL + depth);
  // Uniform horizons out to 10 sim-seconds: events land across the whole
  // ring, forcing bucket folds and periodic reseeds rather than a hot front.
  for (std::size_t i = 0; i < depth; ++i) {
    queue.schedule_at(SimTime::from_us(rng.next_in(0, 10'000'000)), [] {});
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    queue.step();
    queue.schedule_at(queue.now() + SimTime::from_us(rng.next_in(0, 10'000'000)),
                      [] {});
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  // One pop + one push per iteration.
  return 2.0 * static_cast<double>(ops) / wall;
}

void run_scheduler_microbench(JsonReport& json) {
  std::printf("\n[scheduler churn: pop+push ops/sec by pending depth]\n");
  std::printf("  %-12s %14s %14s %9s\n", "depth", "heap", "ladder", "speedup");
  for (const std::size_t depth :
       {std::size_t{1'000}, std::size_t{100'000}, std::size_t{1'000'000}}) {
    const std::uint64_t ops = 1'000'000;
    const double heap =
        scheduler_churn_ops_per_sec(EventQueue::Scheduler::kHeap, depth, ops);
    const double ladder =
        scheduler_churn_ops_per_sec(EventQueue::Scheduler::kLadder, depth, ops);
    std::printf("  %-12zu %14.0f %14.0f %8.2fx\n", depth, heap, ladder,
                ladder / heap);
    char run[32];
    std::snprintf(run, sizeof run, "sched_depth_%zuk", depth / 1'000);
    json.add(run, "heap_ops_per_sec", heap, "ops/s");
    json.add(run, "ladder_ops_per_sec", ladder, "ops/s");
    json.add(run, "ladder_speedup", ladder / heap, "x");
  }
}

/// The giga crowd with every hotspot confined to the TOP HALF of the world.
/// The deployment's shard plan hands each shard a contiguous slab of the
/// row-major root grid — i.e. a horizontal band of the world — so a top-half
/// crowd loads the first bands' shards while the bottom bands see only
/// background bots.  This is the workload the static grid-locality plan
/// cannot fix — the rebalancer's A/B demonstration runs on it.
void schedule_skewed_giga_scenario(Deployment& deployment,
                                   const GigaSurgeScenarioOptions& options) {
  Scenario scenario(deployment);
  scenario.add_background_bots(SimTime::from_ms(100), options.background_bots);
  const Rect& world = deployment.options().config.world;
  const double cell_w =
      (world.x1() - world.x0()) / static_cast<double>(options.hotspots_x);
  const double cell_h = (world.y1() - world.y0()) / 2.0 /
                        static_cast<double>(options.hotspots_y);
  for (std::size_t ix = 0; ix < options.hotspots_x; ++ix) {
    for (std::size_t iy = 0; iy < options.hotspots_y; ++iy) {
      const Vec2 center{world.x0() + (static_cast<double>(ix) + 0.5) * cell_w,
                        world.y0() + (static_cast<double>(iy) + 0.5) * cell_h};
      SimTime t = options.flash_at;
      for (std::size_t joined = 0; joined < options.bots_per_hotspot;) {
        const std::size_t batch =
            std::min(options.join_batch > 0 ? options.join_batch
                                            : options.bots_per_hotspot,
                     options.bots_per_hotspot - joined);
        scenario.add_hotspot_bots(t, batch, center, options.spread);
        joined += batch;
        t += options.join_interval;
      }
    }
  }
}

/// Busiest-shard events over the per-shard mean — 1.0 is a perfectly level
/// engine; the gap above 1.0 is wall-time the busiest core spends while the
/// others wait at the barrier.
double balance_ratio(const Network::EngineStats& engine) {
  if (engine.shard_events.size() < 2) return 1.0;
  std::uint64_t busiest = 0;
  std::uint64_t total = 0;
  for (const std::uint64_t events : engine.shard_events) {
    busiest = std::max(busiest, events);
    total += events;
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(engine.shard_events.size());
  return mean > 0.0 ? static_cast<double>(busiest) / mean : 1.0;
}

DeploymentOptions fig2_options() {
  DeploymentOptions options = paper_options();
  options.seed = 2005;
  return options;
}

DeploymentOptions mega_options() {
  // Shared with tests/mega_surge_test.cpp — see mega_surge_deployment_options.
  return mega_surge_deployment_options();
}

struct RunResult {
  double wall_sec = 0.0;
  double sim_sec = 0.0;
  std::uint64_t messages = 0;
  std::size_t peak_clients = 0;
  Network::EngineStats engine;
};

template <typename Schedule>
RunResult run_workload(DeploymentOptions options, SimTime duration,
                       Schedule&& schedule) {
  Deployment deployment(std::move(options));
  schedule(deployment);
  const auto t0 = std::chrono::steady_clock::now();
  deployment.run_until(duration);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult result;
  result.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  result.sim_sec = duration.sec();
  result.messages = deployment.network().total_messages();
  result.peak_clients = deployment.total_clients();
  result.engine = deployment.network().engine_stats();
  return result;
}

void report(JsonReport& json, const char* run, const RunResult& r) {
  const double events_per_sec =
      static_cast<double>(r.engine.events_processed) / r.wall_sec;
  const double messages_per_sec =
      static_cast<double>(r.messages) / r.wall_sec;
  const double reuse = r.engine.buffers_acquired > 0
                           ? static_cast<double>(r.engine.buffers_reused) /
                                 static_cast<double>(r.engine.buffers_acquired)
                           : 0.0;
  std::printf("\n[%s]\n", run);
  std::printf("  %-26s %12.3f\n", "wall seconds", r.wall_sec);
  std::printf("  %-26s %12.1f\n", "sim seconds", r.sim_sec);
  std::printf("  %-26s %12llu\n", "events processed",
              static_cast<unsigned long long>(r.engine.events_processed));
  std::printf("  %-26s %12llu\n", "messages",
              static_cast<unsigned long long>(r.messages));
  std::printf("  %-26s %12.0f\n", "events/sec", events_per_sec);
  std::printf("  %-26s %12.0f\n", "messages/sec", messages_per_sec);
  std::printf("  %-26s %12zu\n", "peak event-heap depth",
              r.engine.event_peak_pending);
  std::printf("  %-26s %11.1f%%\n", "payload-buffer reuse",
              100.0 * reuse);
  std::printf("  %-26s %12zu\n", "final clients", r.peak_clients);

  json.add(run, "events_per_sec", events_per_sec, "events/s");
  json.add(run, "messages_per_sec", messages_per_sec, "msgs/s");
  json.add(run, "events_processed",
           static_cast<double>(r.engine.events_processed), "events");
  json.add(run, "messages", static_cast<double>(r.messages), "msgs");
  json.add(run, "peak_event_heap", static_cast<double>(r.engine.event_peak_pending),
           "events");
  json.add(run, "buffer_reuse_fraction", reuse, "");
  json.add(run, "wall_seconds", r.wall_sec, "s");
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  using namespace matrix;
  using namespace matrix::bench;
  using namespace matrix::time_literals;

  header("bench_engine_throughput",
         "engine hot-path throughput on macro workloads");
  JsonReport json("engine_throughput");

  run_scheduler_microbench(json);

  {
    HotspotScenarioOptions scenario;  // the paper's Fig. 2 timeline
    auto r = run_workload(fig2_options(), scenario.duration,
                          [&](Deployment& d) {
                            schedule_hotspot_scenario(d, scenario);
                          });
    report(json, "fig2_macro", r);
  }
  {
    MegaSurgeScenarioOptions scenario;  // ≥10k concurrent clients
    auto r = run_workload(mega_options(), scenario.duration,
                          [&](Deployment& d) {
                            schedule_mega_surge_scenario(d, scenario);
                          });
    report(json, "mega_surge", r);
    std::printf("  offered clients            %12zu (>= 10k scale)\n",
                mega_surge_offered_clients(scenario));
  }
  {
    // Shard-scaling curve on the 100k-client workload (trimmed to a 3 s sim
    // so three engine configurations fit one bench run).  Wall-clock speedup
    // needs as many free cores as shards; the per-shard hash chains pin the
    // K>1 runs as deterministic regardless (tests/shard_engine_test.cpp).
    GigaSurgeScenarioOptions scenario;
    scenario.duration = 3_sec;
    std::printf("\n[giga shard scaling: %zu offered clients]\n",
                giga_surge_offered_clients(scenario));
    double base_events_per_sec = 0.0;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
      auto r = run_workload(giga_surge_deployment_options(shards),
                            scenario.duration, [&](Deployment& d) {
                              schedule_giga_surge_scenario(d, scenario);
                            });
      char run[32];
      std::snprintf(run, sizeof run, "giga_shards_%zu", shards);
      report(json, run, r);
      const double events_per_sec =
          static_cast<double>(r.engine.events_processed) / r.wall_sec;
      if (shards == 1) {
        base_events_per_sec = events_per_sec;
      } else if (base_events_per_sec > 0.0) {
        const double speedup = events_per_sec / base_events_per_sec;
        std::printf("  %-26s %12.2fx vs serial\n", "shard speedup", speedup);
        json.add(run, "speedup_vs_serial", speedup, "x");
      }
      std::printf("  %-26s %12llu\n", "cross-shard messages",
                  static_cast<unsigned long long>(
                      r.engine.cross_shard_messages));
      std::printf("  %-26s %12llu\n", "barrier windows",
                  static_cast<unsigned long long>(r.engine.windows));
      json.add(run, "cross_shard_messages",
               static_cast<double>(r.engine.cross_shard_messages), "msgs");
      json.add(run, "windows", static_cast<double>(r.engine.windows),
               "windows");
      if (shards > 1) {
        const double balance = balance_ratio(r.engine);
        std::printf("  %-26s %12.3fx busiest/mean\n", "shard balance",
                    balance);
        json.add(run, "balance_ratio", balance, "x");
      }
    }
    // Rebalancer A/B on the SKEWED giga crowd (all hotspots in the top
    // half of the world — the imbalance the static grid plan cannot fix;
    // the uniform curve above already sits near 1.0 busiest/mean).  The
    // rebalance-on run's busiest/mean ratio must sit below the off run's —
    // that gap is wall-time the busiest core spends grinding while the
    // other workers wait at the barrier.
    for (const bool rebalance : {false, true}) {
      DeploymentOptions options = giga_surge_deployment_options(4);
      if (rebalance) {
        options.config.engine.rebalance_threshold = 1.10;
        options.config.engine.rebalance_interval_events = 200'000;
      }
      auto r = run_workload(std::move(options), scenario.duration,
                            [&](Deployment& d) {
                              schedule_skewed_giga_scenario(d, scenario);
                            });
      const char* run = rebalance ? "giga_skew_4_rebalance" : "giga_skew_4";
      report(json, run, r);
      const double balance = balance_ratio(r.engine);
      std::printf("  %-26s %12.3fx busiest/mean\n", "shard balance", balance);
      json.add(run, "balance_ratio", balance, "x");
      if (rebalance) {
        std::printf("  %-26s %12llu\n", "rebalances",
                    static_cast<unsigned long long>(r.engine.rebalances));
        json.add(run, "rebalances",
                 static_cast<double>(r.engine.rebalances), "moves");
      }
    }
  }

  return json.write(json_report_path(argc, argv)) ? 0 : 1;
}
