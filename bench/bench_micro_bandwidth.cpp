// T-micro-bw (§4.2 ¶2): inter-Matrix-server traffic tracks overlap size.
//
// "...the amount of traffic sent between Matrix servers corresponded
//  directly to the size of the overlap regions."
//
// We fix a 4-server static grid and a uniform wandering population, then
// sweep the radius of visibility R.  Larger R ⇒ larger overlap regions ⇒
// more of the population's events fall into non-empty consistency sets ⇒
// proportionally more matrix↔matrix bytes.  The expected fraction of
// events forwarded equals the population-weighted overlap area fraction,
// which the table shows side by side with the measured traffic.
#include "bench_common.h"
#include "core/overlap.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

void run(JsonReport& json) {
  header("T-micro-bw", "matrix<->matrix traffic vs overlap-region size (sweep R)");

  std::printf("\n%8s %18s %16s %18s %20s\n", "R", "overlap area frac",
              "mm bytes", "mm bytes/action", "fwd per action");
  for (double radius : {15.0, 30.0, 60.0, 120.0, 240.0}) {
    auto options = paper_options();
    options.config.allow_split = false;
    options.config.allow_reclaim = false;
    options.initial_servers = 4;
    options.pool_size = 0;
    options.spec.visibility_radius = radius;
    options.config.visibility_radius = radius;
    options.seed = 31 + static_cast<std::uint64_t>(radius);

    Deployment deployment(options);
    Scenario scenario(deployment);
    scenario.add_background_bots(100_ms, 200);
    deployment.run_until(40_sec);

    // Mean overlap area fraction over the four partitions.
    double fraction = 0.0;
    const auto& map = deployment.coordinator().partition_map();
    for (const auto& entry : map.entries()) {
      fraction += overlap_area_fraction(
          build_overlap_regions(map, entry.server, radius,
                                options.config.metric),
          entry.range);
    }
    fraction /= static_cast<double>(map.size());

    const TrafficBreakdown traffic = collect_traffic(deployment);
    std::uint64_t actions = 0, fanned = 0;
    for (const GameServer* game : deployment.game_servers()) {
      actions += game->stats().actions;
    }
    for (const MatrixServer* server : deployment.matrix_servers()) {
      fanned += server->stats().packets_fanned_out;
    }
    const double bytes_per_action =
        actions ? static_cast<double>(traffic.matrix_to_matrix) /
                      static_cast<double>(actions)
                : 0.0;
    const double fwd_per_action =
        actions ? static_cast<double>(fanned) / static_cast<double>(actions)
                : 0.0;
    std::printf("%8.0f %18.3f %16llu %18.1f %20.3f\n", radius, fraction,
                static_cast<unsigned long long>(traffic.matrix_to_matrix),
                bytes_per_action, fwd_per_action);
    const std::string run_name = "r" + std::to_string(static_cast<int>(radius));
    json.add(run_name, "overlap_area_fraction", fraction);
    json.add(run_name, "mm_bytes",
             static_cast<double>(traffic.matrix_to_matrix), "bytes");
    json.add(run_name, "mm_bytes_per_action", bytes_per_action, "bytes");
    json.add(run_name, "forwards_per_action", fwd_per_action);
  }
  std::printf(
      "\nReading: bytes per action rises with the overlap area fraction —\n"
      "the uniform population's chance of standing in an overlap region.\n"
      "(It exceeds strict proportionality at large R because points deep in\n"
      "an overlap region have multi-peer consistency sets: one action then\n"
      "fans out to 2-3 servers.)\n");
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  matrix::bench::JsonReport json("micro_bandwidth");
  matrix::bench::run(json);
  return json.write(matrix::bench::json_report_path(argc, argv)) ? 0 : 1;
}
