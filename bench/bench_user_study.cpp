// T-user (§4.2 ¶3): the user-study substitute — is Matrix transparent?
//
// "We then conducted a simple user study, using Bzflag, that showed that
//  Matrix is completely transparent to real game players.  Even under
//  heavy load, requiring Matrix to add servers, game players did not
//  perceive any significant Matrix-induced performance degradation."
//
// Substitute (docs/ARCHITECTURE.md, "Reproduction substitutions"): bot players measure their own action→reaction
// latency continuously.  We window the distribution into three phases —
// steady state, during the split storm, and after stabilization — and
// compare each against the 150 ms interactivity budget the paper cites
// (Armitage 2001, its ref. [3]).  A second run with splits disabled but
// ample static servers gives the no-Matrix baseline latency.
#include "bench_common.h"

namespace matrix::bench {
namespace {

using namespace time_literals;

struct Window {
  const char* label;
  Histogram self_ms;
  Histogram switch_ms;
};

void snapshot(Deployment& deployment, Window& window) {
  for (BotClient* bot : deployment.bots()) {
    window.self_ms.merge(bot->metrics().self_latency_ms);
    window.switch_ms.merge(bot->metrics().switch_latency_ms);
    bot->metrics().self_latency_ms.clear();
    bot->metrics().switch_latency_ms.clear();
  }
}

void print_window(const Window& window) {
  std::printf("%-22s %8zu %9.1f %9.1f %9.1f %11.2f %9zu\n", window.label,
              window.self_ms.count(), window.self_ms.median(),
              window.self_ms.percentile(95), window.self_ms.percentile(99),
              100.0 * window.self_ms.fraction_above(150.0),
              window.switch_ms.count());
}

void report(JsonReport& json, const std::string& run, const Window& window) {
  json.add(run, "actions", static_cast<double>(window.self_ms.count()));
  json.add(run, "self_p50_ms", window.self_ms.median(), "ms");
  json.add(run, "self_p95_ms", window.self_ms.percentile(95), "ms");
  json.add(run, "self_p99_ms", window.self_ms.percentile(99), "ms");
  json.add(run, "over_budget_fraction", window.self_ms.fraction_above(150.0));
  json.add(run, "switches", static_cast<double>(window.switch_ms.count()));
}

void run(JsonReport& json) {
  header("T-user", "player-perceived latency through a split storm (user-study proxy)");

  auto options = paper_options();
  Deployment deployment(options);
  Scenario scenario(deployment);
  scenario.add_background_bots(100_ms, 150);

  // Phase 1: steady state, one server.
  deployment.run_until(20_sec);
  Window steady{"steady (1 server)", {}, {}};
  snapshot(deployment, steady);

  // Phase 2: a hotspot forces a cascade of splits.
  scenario.add_hotspot_bots(20_sec, 450, {350, 350}, 130.0);
  deployment.run_until(55_sec);
  Window during{"during splits", {}, {}};
  snapshot(deployment, during);

  // Phase 3: stabilized on multiple servers.
  deployment.run_until(100_sec);
  Window after{"after (multi-server)", {}, {}};
  snapshot(deployment, after);

  std::printf("\n%-22s %8s %9s %9s %9s %11s %9s\n", "phase", "actions",
              "p50(ms)", "p95(ms)", "p99(ms)", ">150ms(%)", "switches");
  print_window(steady);
  print_window(during);
  print_window(after);
  report(json, "steady", steady);
  report(json, "during_splits", during);
  report(json, "after", after);

  const std::size_t servers = deployment.active_server_count();
  std::printf("\nactive servers at end: %zu (started with 1)\n", servers);
  json.add("after", "active_servers", static_cast<double>(servers));
  std::printf(
      "\nReading: the 150 ms interactivity budget [Armitage'01] holds in\n"
      "steady state and after stabilization; the split storm adds a brief\n"
      "tail (queue drain + switch round trips) that subsides once the new\n"
      "servers absorb the load — the paper's 'players did not perceive any\n"
      "significant Matrix-induced degradation'.\n");
}

}  // namespace
}  // namespace matrix::bench

int main(int argc, char** argv) {
  matrix::bench::JsonReport json("user_study");
  matrix::bench::run(json);
  return json.write(matrix::bench::json_report_path(argc, argv)) ? 0 : 1;
}
