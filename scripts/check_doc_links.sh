#!/usr/bin/env bash
# Checks that every relative markdown link in the repo's documentation
# resolves to an existing file or directory.  External (http/https/mailto)
# links and pure #anchors are skipped.  Run from anywhere:
#
#   scripts/check_doc_links.sh
#
# Exits non-zero listing every broken link, so CI can gate on it.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
status=0

# The documentation surface: top-level markdown, docs/, and in-tree READMEs.
docs=$(find "$repo_root" -path "$repo_root/build*" -prune -o \
       -name "*.md" -print | sort)

for doc in $docs; do
  dir="$(dirname "$doc")"
  # Extract the target of every inline markdown link: [text](target)
  targets=$(grep -o '\[[^][]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
  for target in $targets; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    # Strip a trailing anchor, if any.
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $doc -> $target"
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "all documentation links resolve"
fi
exit "$status"
