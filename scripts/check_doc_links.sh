#!/usr/bin/env bash
# Checks that every relative markdown link in the repo's documentation
# resolves — the FILE must exist, and when the link carries a #fragment the
# ANCHOR must match a heading in the target document (GitHub slug rules:
# lowercase, punctuation stripped, spaces to dashes).  The documentation
# surface is every *.md outside build trees: top-level markdown, docs/, and
# in-tree READMEs (src/**/README.md included).  External
# (http/https/mailto) links are skipped.  Run from anywhere:
#
#   scripts/check_doc_links.sh
#
# Exits non-zero listing every broken link or dangling anchor, so CI can
# gate on it.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
status=0

docs=$(find "$repo_root" -path "$repo_root/build*" -prune -o \
       -name "*.md" -print | sort)

# GitHub-style anchor slugs of every heading in $1, one per line.
# Duplicate headings get "-1", "-2", ... suffixes exactly as GitHub
# numbers them, so links to both the first and repeated occurrences
# resolve — and a "-N" anchor with no such duplicate does NOT.
anchors_of() {
  # Strip fenced code blocks first: a '# comment' inside ```sh``` is not a
  # heading and must not mint a phantom slug (or shift the -N numbering).
  awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$1" 2>/dev/null \
    | grep -E '^#{1,6} ' | sed -E 's/^#{1,6} +//' \
    | tr '[:upper:]' '[:lower:]' \
    | sed -E 's/[^a-z0-9 _-]//g; s/ +/-/g' \
    | awk '{ n = seen[$0]++; if (n) print $0 "-" n; else print }'
}

check_anchor() {
  # $1 = markdown file, $2 = anchor (no leading '#'): exact slug match.
  anchors_of "$1" | grep -Fxq -- "$2"
}

for doc in $docs; do
  dir="$(dirname "$doc")"
  # Extract the target of every inline markdown link: [text](target)
  targets=$(grep -o '\[[^][]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
  for target in $targets; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${target%%#*}"
    anchor=""
    case "$target" in
      *"#"*) anchor="${target#*#}" ;;
    esac
    if [ -n "$path" ] && [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $doc -> $target"
      status=1
      continue
    fi
    # Anchor check: same-document (#foo) or into another markdown file.
    if [ -n "$anchor" ]; then
      if [ -z "$path" ]; then
        anchor_file="$doc"
      else
        anchor_file="$dir/$path"
      fi
      case "$anchor_file" in
        *.md)
          if ! check_anchor "$anchor_file" "$anchor"; then
            echo "DANGLING ANCHOR: $doc -> $target"
            status=1
          fi
          ;;
      esac
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "all documentation links and anchors resolve"
fi
exit "$status"
