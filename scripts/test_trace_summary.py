#!/usr/bin/env python3
"""Smoke tests for trace_summary.py (stdlib unittest; CI runs this).

Feeds a small synthetic flight-recorder dump through the CLI and asserts the
three things the tool exists for: the event census, the blackhole-suspect
report (a hello with no verdict in the ring), and the per-subject timeline
dump.  Run from anywhere:

    python3 scripts/test_trace_summary.py
"""
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "trace_summary.py")


def event(t_us, kind, subject, actor=0, a=0, b=0):
    return {"t_us": t_us, "kind": kind, "subject": subject, "actor": actor,
            "a": a, "b": b}


SYNTHETIC = [
    # Client 1: clean hello -> admitted -> bye.
    event(1000, "client_hello", 1, 10),
    event(1000, "client_admitted", 1, 10),
    event(900000, "client_bye", 1, 10, a=1),
    # Client 2: parked, handed off to node 11, adopted, drained, bye.
    event(2000, "client_hello", 2, 10),
    event(2000, "client_queued", 2, 10),
    event(50000, "queue_handoff_sent", 2, 10, a=11, b=2000),
    event(60000, "queue_handoff", 2, 5, a=11, b=2000),
    event(200000, "client_admitted", 2, 11),
    event(950000, "client_bye", 2, 11, a=1),
    # Client 3: the planted blackhole — hello with no verdict, ever.
    event(3000, "client_hello", 3, 10),
    # Server 10 sheds once.
    event(40000, "split_requested", 10),
    event(45000, "split_completed", 10, 11),
    # The engine migrates one server group from shard 2 to shard 0 at a
    # measured 1.42x imbalance (b is the ratio in permille).
    event(500000, "shard_rebalance", 7, 2, a=0, b=1420),
]


class TraceSummaryTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        fd, cls.trace_path = tempfile.mkstemp(suffix=".jsonl")
        with os.fdopen(fd, "w") as f:
            for e in SYNTHETIC:
                f.write(json.dumps(e) + "\n")

    @classmethod
    def tearDownClass(cls):
        os.unlink(cls.trace_path)

    def run_tool(self, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, self.trace_path, *extra],
            capture_output=True, text=True)

    def test_census_counts_every_kind(self):
        result = self.run_tool()
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("[census] 13 events", result.stdout)
        self.assertIn("client_hello", result.stdout)
        self.assertIn("queue_handoff_sent", result.stdout)
        self.assertIn("split_completed", result.stdout)

    def test_blackhole_suspect_is_reported(self):
        result = self.run_tool()
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("BLACKHOLE SUSPECTS (1)", result.stdout)
        self.assertIn("[3]", result.stdout)  # client 3 is the suspect
        self.assertIn("final outcome bye", result.stdout)

    def test_client_dump_shows_handoff_trail(self):
        result = self.run_tool("--client", "2")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("[client C2]", result.stdout)
        self.assertIn("queue_handoff_sent", result.stdout)
        self.assertIn("queue_handoff", result.stdout)
        self.assertIn("client_bye", result.stdout)
        # Client 1's trail must not bleed into the dump.
        self.assertNotIn("0.001000s client_hello", result.stdout)

    def test_server_dump_shows_shed(self):
        result = self.run_tool("--server", "10")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("[server S10]", result.stdout)
        self.assertIn("split_completed", result.stdout)

    def test_engine_timeline_reports_rebalance(self):
        result = self.run_tool()
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("[engine] 1 shard rebalances", result.stdout)
        self.assertIn("group@N7 shard 2 -> 0 imbalance 1.42x", result.stdout)

    def test_empty_trace_fails_cleanly(self):
        with tempfile.NamedTemporaryFile(suffix=".jsonl") as empty:
            result = subprocess.run(
                [sys.executable, SCRIPT, empty.name],
                capture_output=True, text=True)
        self.assertEqual(result.returncode, 1)
        self.assertIn("no events", result.stderr)


if __name__ == "__main__":
    unittest.main()
