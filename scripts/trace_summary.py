#!/usr/bin/env python3
"""Digest a flight-recorder trace (Tracer::dump_jsonl) into timelines.

Usage:
    trace_summary.py TRACE.jsonl [--client ID] [--server ID] [--top 10]

Input is the JSONL the obs layer dumps (src/obs/trace.cpp, quickstart, or a
test's TraceDumpOnFailure guard): one event per line,
    {"t_us": ..., "kind": "...", "subject": ..., "actor": ..., "a": ..., "b": ...}

Output:
  * an event-kind census (what the recorder saw);
  * per-client lifecycle timelines (hello -> admitted/denied/deferred/bye),
    with time-to-admit where both ends are in the ring;
  * per-server partition timelines (split/reclaim/adopt/deactivate);
  * an engine timeline of shard_rebalance migrations (who moved where, at
    what measured imbalance);
  * --client/--server print one subject's full event list for debugging.

Stdlib only — runs anywhere CI can run python3.
"""
import argparse
import collections
import json
import sys

CLIENT_KINDS = {
    "client_hello", "client_admitted", "client_denied", "client_deferred",
    "client_queued", "client_redirected", "client_bye", "queue_handoff",
    "queue_handoff_sent", "queue_handoff_drop",
}
SERVER_KINDS = {
    "split_requested", "pool_granted", "pool_denied", "pool_arbitrated",
    "split_completed", "reclaim_requested", "reclaim_declined",
    "reclaim_completed", "adopted", "deactivated", "admission_transition",
    "directive_broadcast", "directive_applied",
}


def load_events(path):
    events = []
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                print(f"  (skipping unparseable line {line_no})",
                      file=sys.stderr)
    events.sort(key=lambda e: e.get("t_us", 0))
    return events


def fmt_t(us):
    return f"{us / 1e6:.6f}s"


def census(events):
    counts = collections.Counter(e["kind"] for e in events)
    print(f"\n[census] {len(events)} events, "
          f"{fmt_t(events[0]['t_us'])} .. {fmt_t(events[-1]['t_us'])}")
    for kind, n in counts.most_common():
        print(f"  {kind:24s} {n}")
    return counts


def client_timelines(events, top):
    by_client = collections.defaultdict(list)
    for e in events:
        if e["kind"] in CLIENT_KINDS:
            by_client[e["subject"]].append(e)

    admits, outcomes = [], collections.Counter()
    open_hellos = []
    for client, trail in by_client.items():
        hello_t = None
        outcome = "none"
        for e in trail:
            if e["kind"] == "client_hello" and e.get("a", 0) == 0:
                hello_t = hello_t if hello_t is not None else e["t_us"]
            elif e["kind"] == "client_admitted":
                if hello_t is not None:
                    admits.append((e["t_us"] - hello_t, client))
                    hello_t = None
                outcome = "admitted"
            elif e["kind"] in ("client_denied", "client_deferred",
                               "client_bye"):
                hello_t = None
                outcome = e["kind"].replace("client_", "")
        outcomes[outcome] += 1
        if hello_t is not None:
            open_hellos.append(client)

    print(f"\n[clients] {len(by_client)} clients with lifecycle events")
    for outcome, n in outcomes.most_common():
        print(f"  final outcome {outcome:10s} {n}")
    if admits:
        admits.sort()
        n = len(admits)
        print(f"  time-to-admit ({n} measured in-ring): "
              f"p50 {admits[n // 2][0] / 1000:.2f} ms, "
              f"max {admits[-1][0] / 1000:.2f} ms")
        worst = ", ".join(f"C{c}={us / 1000:.1f}ms"
                          for us, c in admits[-top:][::-1])
        print(f"  slowest admits: {worst}")
    if open_hellos:
        print(f"  BLACKHOLE SUSPECTS ({len(open_hellos)}) — hello with no "
              f"admit/deny/defer/bye in the ring: "
              f"{sorted(open_hellos)[:top]}")


def server_timelines(events, top):
    by_server = collections.defaultdict(list)
    for e in events:
        if e["kind"] in SERVER_KINDS:
            by_server[e["subject"]].append(e)
    if not by_server:
        print("\n[servers] no partition-lifecycle events in the ring")
        return
    print(f"\n[servers] {len(by_server)} servers with lifecycle events")
    for server in sorted(by_server)[:top]:
        trail = by_server[server]
        kinds = collections.Counter(e["kind"] for e in trail)
        summary = ", ".join(f"{k}×{n}" for k, n in kinds.most_common())
        print(f"  S{server}: {summary}")


def engine_timeline(events, top):
    moves = [e for e in events if e["kind"] == "shard_rebalance"]
    if not moves:
        return
    print(f"\n[engine] {len(moves)} shard rebalances")
    for e in moves[:top]:
        print(f"  {fmt_t(e['t_us'])} group@N{e['subject']} shard "
              f"{e['actor']} -> {e['a']} imbalance {e['b'] / 1000:.2f}x")


def dump_subject(events, subject, kinds):
    trail = [e for e in events
             if e["kind"] in kinds and e["subject"] == subject]
    if not trail:
        print(f"  no events for subject {subject}")
        return
    for e in trail:
        print(f"  {fmt_t(e['t_us'])} {e['kind']:24s} actor={e['actor']} "
              f"a={e['a']} b={e['b']}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="JSONL trace dump")
    parser.add_argument("--client", type=int,
                        help="print one client's full timeline")
    parser.add_argument("--server", type=int,
                        help="print one server's full timeline")
    parser.add_argument("--top", type=int, default=10,
                        help="rows in ranked lists (default 10)")
    args = parser.parse_args()

    events = load_events(args.trace)
    if not events:
        print("no events in trace", file=sys.stderr)
        return 1

    census(events)
    if args.client is not None:
        print(f"\n[client C{args.client}]")
        dump_subject(events, args.client, CLIENT_KINDS)
        return 0
    if args.server is not None:
        print(f"\n[server S{args.server}]")
        dump_subject(events, args.server, SERVER_KINDS)
        return 0
    client_timelines(events, args.top)
    server_timelines(events, args.top)
    engine_timeline(events, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
