#!/usr/bin/env python3
"""Perf gate: fail when a bench JSON regresses against a checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.15]

Both files use the matrix_bench_json shape emitted by bench_common.h's
JsonReport ({"benchmarks": [{"name", "value", "unit"}, ...]}).  Every metric
present in the BASELINE is looked up in CURRENT; a higher-is-better metric
(the default) fails when current < baseline * (1 - tolerance).  Metrics whose
name ends in one of the LOWER_IS_BETTER suffixes fail in the other direction.

A baseline entry may carry its own "tolerance" field, which overrides the
command-line --tolerance for that metric alone — noisier metrics (wall-clock
message rates) get wider bands without loosening the gate on stable ones.

Baselines are deliberately conservative (well below a warm developer
machine's numbers) so the gate trips on real regressions — an engine change
that halves events/sec — rather than on CI-runner weather.  Refresh
bench/baselines/*.json when the engine legitimately gets faster.
"""
import argparse
import json
import sys

LOWER_IS_BETTER = ("wall_seconds", "_ms", "_seconds")


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: float(b["value"]) for b in doc.get("benchmarks", [])}


def load_tolerances(path):
    """Per-metric tolerance overrides declared in the baseline file."""
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: float(b["tolerance"])
            for b in doc.get("benchmarks", []) if "tolerance" in b}


def lower_is_better(name):
    return any(name.endswith(suffix) for suffix in LOWER_IS_BETTER)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    args = parser.parse_args()

    baseline = load_metrics(args.baseline)
    tolerances = load_tolerances(args.baseline)
    current = load_metrics(args.current)

    failures = []
    for name, base_value in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current report")
            continue
        value = current[name]
        tolerance = tolerances.get(name, args.tolerance)
        if lower_is_better(name):
            limit = base_value * (1.0 + tolerance)
            ok = value <= limit
            direction = "<="
        else:
            limit = base_value * (1.0 - tolerance)
            ok = value >= limit
            direction = ">="
        status = "ok  " if ok else "FAIL"
        print(f"  [{status}] {name}: {value:.6g} ({direction} {limit:.6g}, "
              f"baseline {base_value:.6g}, tol {tolerance:.0%})")
        if not ok:
            failures.append(f"{name}: {value:.6g} vs baseline {base_value:.6g}"
                            f" (tol {tolerance:.0%})")

    if failures:
        print(f"\nperf gate FAILED ({len(failures)} metric(s) regressed):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed ({len(baseline)} metric(s) within tolerance).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
