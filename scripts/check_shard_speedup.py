#!/usr/bin/env python3
"""Multi-core perf gate: the sharded engine must actually buy wall time.

Usage:
    check_shard_speedup.py BENCH_engine.json [--min-speedup 1.5] [--min-cores 2]

Reads the matrix_bench_json emitted by bench_engine_throughput and compares
the giga workload's K=1 and K=4 wall seconds.  The sharded engine's whole
reason to exist is that K cores finish the same simulation faster than one;
this gate fails the build when the K=4 run is not at least --min-speedup
times faster than the serial run — synchronization overhead eating the
cores, a lookahead regression re-serializing the windows, or a shard
imbalance parking three workers while one grinds.

On hosts without parallel hardware the gate SKIPS LOUDLY (exit 0): a
single-core runner measures only synchronization overhead, so failing there
would gate on the runner, not the engine.  The serial events/sec floors
(check_bench_regression.py) still protect those hosts.

Stdlib only — runs anywhere CI can run python3.
"""
import argparse
import json
import os
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", help="BENCH_engine.json from the bench run")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required K=4 vs K=1 wall-time ratio (default 1.5)")
    parser.add_argument("--min-cores", type=int, default=2,
                        help="cores below which the gate skips (default 2)")
    args = parser.parse_args()

    cores = os.cpu_count() or 1
    if cores < args.min_cores:
        print(f"SKIP: host has {cores} core(s) < {args.min_cores} — the K=4 "
              "wall-time gate needs parallel hardware to mean anything.\n"
            "      The serial events/sec floors (check_bench_regression.py) "
            "still gate this build.")
        return 0

    with open(args.bench) as f:
        doc = json.load(f)
    metrics = {b["name"]: float(b["value"])
               for b in doc.get("benchmarks", [])}

    print(f"[shard speedup gate] {cores} cores available")
    walls = {}
    for shards in (1, 2, 4):
        name = f"engine_throughput/giga_shards_{shards}/wall_seconds"
        if name in metrics:
            walls[shards] = metrics[name]
            base = walls.get(1, metrics[name])
            print(f"  K={shards}  wall {metrics[name]:8.3f}s  "
                  f"speedup {base / metrics[name]:5.2f}x")

    for shards in (1, 4):
        if shards not in walls:
            print(f"FAIL: giga_shards_{shards}/wall_seconds missing from "
                  f"{args.bench}", file=sys.stderr)
            return 1

    speedup = walls[1] / walls[4]
    if speedup < args.min_speedup:
        print(f"FAIL: K=4 wall-time speedup {speedup:.2f}x < required "
              f"{args.min_speedup:.2f}x on a {cores}-core host — the shards "
              "are not paying for their synchronization.", file=sys.stderr)
        return 1
    print(f"OK: K=4 runs {speedup:.2f}x faster than serial "
          f"(floor {args.min_speedup:.2f}x).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
