// hotspot_tour: a narrated, annotated walk through the paper's Fig. 2
// scenario at 1/5 scale, printing the topology as it evolves.
//
// Run:  ./build/examples/hotspot_tour
//
// Watch for the three phases the paper describes (§4.1):
//   1. the hotspot joins and the overloaded server splits recursively,
//      even when the first split doesn't relieve it ("this did not ease
//      the load as the hotspot was on the map portion retained by
//      server 1 ... hence server 1 spawned another server");
//   2. the load stabilizes across several servers;
//   3. clients leave and parents reclaim their children back to the pool.
#include <cstdio>
#include <string>

#include "sim/deployment.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

using namespace matrix;
using namespace matrix::time_literals;

namespace {

void print_topology(Deployment& deployment, double t) {
  std::printf("t=%5.1fs  servers:", t);
  const auto& matrices = deployment.matrix_servers();
  const auto& games = deployment.game_servers();
  for (std::size_t i = 0; i < matrices.size(); ++i) {
    if (!matrices[i]->active()) continue;
    const Rect& r = matrices[i]->range();
    std::printf("  S%zu[%g,%g..%g,%g]=%zuc/q%zu", i + 1, r.x0(), r.y0(),
                r.x1(), r.y1(), games[i]->client_count(),
                deployment.network().queue_length(games[i]->node_id()));
  }
  std::printf("   (pool: %zu idle)\n", deployment.pool().idle_count());
}

}  // namespace

int main() {
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 1000, 1000);
  options.config.overload_clients = 60;   // 1/5 of the paper's 300
  options.config.underload_clients = 30;  // 1/5 of the paper's 150
  options.config.topology_cooldown = 3_sec;
  options.spec = bzflag_like();
  options.initial_servers = 1;
  options.pool_size = 8;
  options.map_objects = 100;
  options.seed = 2005;

  Deployment deployment(options);
  Scenario scenario(deployment);

  std::printf("== phase 0: quiet world, one server ==\n");
  scenario.add_background_bots(100_ms, 20);
  deployment.run_until(5_sec);
  print_topology(deployment, 5.0);

  std::printf("\n== phase 1: 120-client hotspot at (350,350) joins at t=10 ==\n");
  scenario.add_hotspot_bots(10_sec, 120, {350, 350}, 120.0);
  for (double t : {12.0, 16.0, 20.0, 26.0, 34.0, 45.0}) {
    deployment.run_until(SimTime::from_sec(t));
    print_topology(deployment, t);
  }

  std::printf("\n== phase 2: steady state under load ==\n");
  deployment.run_until(70_sec);
  print_topology(deployment, 70.0);

  std::printf("\n== phase 3: the crowd leaves in waves; Matrix reclaims ==\n");
  scenario.remove_bots_at(72_sec, 40, Vec2{350, 350});
  scenario.remove_bots_at(87_sec, 40, Vec2{350, 350});
  scenario.remove_bots_at(102_sec, 40, Vec2{350, 350});
  for (double t : {80.0, 95.0, 110.0, 140.0, 170.0}) {
    deployment.run_until(SimTime::from_sec(t));
    print_topology(deployment, t);
  }

  const LatencySummary latency = collect_latency(deployment);
  std::uint64_t splits = 0, reclaims = 0;
  for (const MatrixServer* server : deployment.matrix_servers()) {
    splits += server->stats().splits_completed;
    reclaims += server->stats().reclaims_completed;
  }
  std::printf("\n== wrap-up ==\n");
  std::printf("splits: %llu, reclaims: %llu\n",
              static_cast<unsigned long long>(splits),
              static_cast<unsigned long long>(reclaims));
  std::printf("switch latency (redirect->welcome): median %.1f ms over %llu switches\n",
              latency.switch_ms.median(),
              static_cast<unsigned long long>(latency.switches));
  std::printf("self latency: p50 %.1f ms, p99 %.1f ms, over-150ms %.2f%%\n",
              latency.self_ms.median(), latency.self_ms.percentile(99),
              100.0 * latency.self_ms.fraction_above(150.0));
  return 0;
}
