// Quickstart: the smallest complete Matrix deployment.
//
//   * one game server + Matrix server pair, a coordinator, and a pool of
//     three spares;
//   * a handful of bot players wandering a 1000×1000 world;
//   * a flash crowd that forces Matrix to split — then leaves, and Matrix
//     reclaims the extra server.
//
// Run:  ./build/examples/quickstart
//
// Everything here goes through the public API surface a game developer
// would touch: DeploymentOptions (ops knobs), Deployment (wiring),
// Scenario (workload), MetricsSampler / collect_latency (observability).
// The game logic itself lives behind GameModelSpec — swap bzflag_like()
// for your own spec and nothing else changes.
//
// With MATRIX_TRACE=1 (or options.config.obs.trace_enabled = true) the run
// also drops its observability artifacts — quickstart_trace.jsonl (the
// flight recorder) and quickstart_registry.{jsonl,csv} (the unified metrics
// registry) — the files CI uploads from its obs-gate job.
#include <cstdio>

#include "obs/collect.h"
#include "obs/registry.h"
#include "sim/deployment.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

using namespace matrix;
using namespace matrix::time_literals;

int main() {
  // 1. Describe the deployment.  Thresholds are scaled down so the demo
  //    splits with a small crowd (the paper's production numbers are 300 /
  //    150 clients).
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 1000, 1000);
  options.config.overload_clients = 30;
  options.config.underload_clients = 15;
  options.config.topology_cooldown = 2_sec;
  options.spec = bzflag_like();  // tank-shooter traffic model, R = 60
  options.initial_servers = 1;
  options.pool_size = 3;
  options.seed = 7;

  // 2. Boot it: coordinator, pool, one active server owning the world.
  Deployment deployment(options);
  std::printf("booted: %zu active server(s), %zu spare(s) in the pool\n",
              deployment.active_server_count(), deployment.pool().idle_count());

  // 3. A few players wander in.
  for (int i = 0; i < 10; ++i) {
    deployment.add_bot({100.0 + 80.0 * i, 500.0});
  }
  deployment.run_until(5_sec);
  std::printf("t=5s   : %zu clients on %zu server(s)\n",
              deployment.total_clients(), deployment.active_server_count());

  // 4. A flash crowd shows up around (300, 300) — more than one server's
  //    overload threshold.
  Scenario scenario(deployment);
  scenario.add_hotspot_bots(5_sec, 60, {300, 300}, /*spread=*/90.0);
  deployment.run_until(25_sec);
  std::printf("t=25s  : %zu clients on %zu server(s)  <- Matrix split\n",
              deployment.total_clients(), deployment.active_server_count());

  // 5. The crowd leaves; Matrix consolidates back.
  deployment.remove_bots(60, Vec2{300, 300});
  deployment.run_until(70_sec);
  std::printf("t=70s  : %zu clients on %zu server(s)  <- Matrix reclaimed\n",
              deployment.total_clients(), deployment.active_server_count());

  // 6. What did the players experience?
  const LatencySummary latency = collect_latency(deployment);
  std::printf("\nplayer experience (action -> observed reaction):\n");
  std::printf("  actions: %llu   p50: %.1f ms   p99: %.1f ms   over 150 ms: %.2f%%\n",
              static_cast<unsigned long long>(latency.actions),
              latency.self_ms.median(), latency.self_ms.percentile(99),
              100.0 * latency.self_ms.fraction_above(150.0));
  std::printf("  server switches: %llu   median switch latency: %.1f ms\n",
              static_cast<unsigned long long>(latency.switches),
              latency.switch_ms.median());

  const TrafficBreakdown traffic = collect_traffic(deployment);
  std::printf("\ntraffic: client<->server %llu B, game<->matrix %llu B, "
              "matrix<->matrix %llu B, control %llu B\n",
              static_cast<unsigned long long>(traffic.client_to_server),
              static_cast<unsigned long long>(traffic.game_to_matrix),
              static_cast<unsigned long long>(traffic.matrix_to_matrix),
              static_cast<unsigned long long>(traffic.matrix_to_mc));

  // 7. Observability artifacts (src/obs/).  When tracing ran (MATRIX_TRACE=1
  //    turns it on without a recompile), dump the flight recorder and the
  //    unified metrics registry for offline digestion — e.g.
  //    scripts/trace_summary.py quickstart_trace.jsonl.
  if (deployment.network().tracer().enabled()) {
    const obs::Tracer& tracer = deployment.network().tracer();
    const obs::Registry registry = obs::collect_registry(deployment);
    const bool wrote = tracer.dump_jsonl("quickstart_trace.jsonl") &&
                       registry.write_jsonl("quickstart_registry.jsonl") &&
                       registry.write_csv("quickstart_registry.csv");
    std::printf("\ntracing: %llu events recorded, admit p99 %.1f ms — %s\n",
                static_cast<unsigned long long>(tracer.events_recorded()),
                tracer.histogram(obs::SpanKind::kAdmit).percentile_ms(99.0),
                wrote ? "wrote quickstart_trace.jsonl, "
                        "quickstart_registry.{jsonl,csv}"
                      : "artifact write FAILED");
    if (!wrote) return 1;
  }
  return 0;
}
