// custom_game: porting YOUR game server onto Matrix.
//
// The paper's central usability claim (§2.1, §6) is that an existing game
// needs "almost no modifications to the game client, and relatively simple
// modifications to the server code".  This example demonstrates exactly
// that surface: a tiny self-contained game — "Lantern", players light
// lanterns scattered in the world — written from scratch against the
// MatrixPort API, *without* using the stock GameServer at all.
//
// What the port costs (and nothing more):
//   1. forward every client packet, spatially tagged    (port.send_packet)
//   2. apply remote events Matrix delivers              (port.on_packet)
//   3. obey map-range orders: hand off state + clients  (port.on_map_range)
//   4. report load periodically                         (port.report_load)
//
// The rest of the file is plain game code that would exist anyway.
//
// Run:  ./build/examples/custom_game
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "api/matrix_port.h"
#include "core/config.h"
#include "core/coordinator.h"
#include "core/matrix_server.h"
#include "core/protocol_node.h"
#include "core/resource_pool.h"
#include "util/rng.h"

using namespace matrix;
using namespace matrix::time_literals;

namespace {

// Game-specific opcodes — opaque bytes as far as Matrix is concerned.
constexpr std::uint8_t kOpLight = 101;

/// A minimal game server: lanterns with positions, players who light them.
/// Matrix integration is confined to the four numbered blocks below.
class LanternServer : public ProtocolNode {
 public:
  explicit LanternServer(ServerId id) : id_(id) {}

  [[nodiscard]] std::string name() const override {
    return "lantern-" + std::to_string(id_.value());
  }

  void wire(NodeId matrix_node) {
    port_ = std::make_unique<MatrixPort>(network(), node_id(), matrix_node);

    // (2) Remote events: a player on ANOTHER server lit a lantern within
    // our players' visibility — apply it locally.
    port_->on_packet([this](const TaggedPacket& packet) {
      if (packet.kind == kOpLight) {
        light_lantern(packet.origin, /*remote=*/true);
      }
    });

    // (3) Topology orders: adjust authority, ship lanterns in the shed
    // range to the successor, acknowledge.
    port_->on_map_range([this](const MapRange& order) {
      if (!order.reclaim) authority_ = order.new_range;
      const bool shedding = !order.shed_range.empty() || order.reclaim;
      if (!shedding) return;
      ByteWriter blob;
      std::uint32_t moved = 0;
      for (auto it = lanterns_.begin(); it != lanterns_.end();) {
        if (order.reclaim || order.shed_range.contains(it->second)) {
          blob.f64(it->second.x);
          blob.f64(it->second.y);
          blob.u8(lit_.count(it->first) ? 1 : 0);
          it = lanterns_.erase(it);
          ++moved;
        } else {
          ++it;
        }
      }
      StateTransfer transfer;
      transfer.from_server = id_;
      transfer.to_game = order.shed_to_game;
      transfer.range = order.shed_range;
      transfer.object_count = moved;
      transfer.blob = blob.take();
      port_->transfer_state(transfer);
      port_->shed_done({order.topology_epoch, 0});
      if (order.reclaim) authority_ = Rect{};
    });

    // (3b) Inbound state from a shedding peer.
    port_->on_state_transfer([this](const StateTransfer& transfer) {
      ByteReader r(transfer.blob);
      for (std::uint32_t i = 0; i < transfer.object_count && r.ok(); ++i) {
        const double x = r.f64();
        const double y = r.f64();
        const bool lit = r.u8() != 0;
        const EntityId lid(next_lantern_++);
        lanterns_[lid] = {x, y};
        if (lit) lit_.insert(lid);
      }
    });
  }

  void seed_lanterns(std::size_t count, const Rect& area, Rng& rng) {
    for (std::size_t i = 0; i < count; ++i) {
      lanterns_[EntityId(next_lantern_++)] = {
          rng.next_double_in(area.x0(), area.x1()),
          rng.next_double_in(area.y0(), area.y1())};
    }
  }

  /// A (local, scripted) player lights the nearest lantern to `at`.
  void player_lights_near(Vec2 at) {
    light_lantern(at, /*remote=*/false);
    // (1) Tag with world coordinates and forward — one call.
    TaggedPacket packet;
    packet.client = ClientId(1);
    packet.entity = EntityId(1);
    packet.origin = at;
    packet.kind = kOpLight;
    packet.payload.assign(16, 0);
    port_->send_packet(packet);
  }

  /// (4) Periodic load report (scripted here; a real server timers it).
  void report(std::uint32_t clients) {
    LoadReport report;
    report.client_count = clients;
    port_->report_load(report);
  }

  [[nodiscard]] std::size_t lanterns() const { return lanterns_.size(); }
  [[nodiscard]] std::size_t lit() const { return lit_.size(); }
  [[nodiscard]] const Rect& authority() const { return authority_; }

 protected:
  void on_message(const Message& message, const Envelope&) override {
    // One line: everything Matrix-related is consumed by the port; a real
    // game would handle its client sockets in the else-branch.
    if (port_ != nullptr && port_->try_dispatch(message)) return;
  }

 private:
  void light_lantern(Vec2 at, bool remote) {
    EntityId best;
    double best_d = 1e18;
    for (const auto& [lid, pos] : lanterns_) {
      const double d = Vec2::distance_sq(pos, at);
      if (d < best_d) {
        best_d = d;
        best = lid;
      }
    }
    if (best.valid()) {
      lit_.insert(best);
      std::printf("  [%s] lantern near (%.0f,%.0f) lit%s — %zu/%zu lit\n",
                  name().c_str(), at.x, at.y, remote ? " (remote event)" : "",
                  lit_.size(), lanterns_.size());
    }
  }

  ServerId id_;
  std::unique_ptr<MatrixPort> port_;
  Rect authority_;
  std::map<EntityId, Vec2> lanterns_;
  std::set<EntityId> lit_;
  std::uint64_t next_lantern_ = 1;
};

}  // namespace

int main() {
  std::printf("Lantern: a custom game ported to Matrix via MatrixPort\n\n");

  Config config;
  config.world = Rect(0, 0, 400, 400);
  config.visibility_radius = 40.0;
  config.overload_clients = 50;
  config.underload_clients = 10;
  config.topology_cooldown = 1_sec;

  Network network(11);
  Coordinator coordinator(config);
  ResourcePool pool;
  const NodeId mc = network.attach(&coordinator);
  const NodeId pool_node = network.attach(&pool);

  // Two server pairs: one active, one spare.
  MatrixServer matrix1(ServerId(1), config), matrix2(ServerId(2), config);
  LanternServer game1(ServerId(1)), game2(ServerId(2));
  const NodeId m1 = network.attach(&matrix1);
  const NodeId g1 = network.attach(&game1);
  const NodeId m2 = network.attach(&matrix2);
  const NodeId g2 = network.attach(&game2);
  matrix1.wire({g1, mc, pool_node});
  matrix2.wire({g2, mc, pool_node});
  game1.wire(m1);
  game2.wire(m2);
  pool.add_entry({ServerId(2), m2, g2});

  matrix1.activate_root(config.world, {config.visibility_radius});
  Rng rng(3);
  game1.seed_lanterns(12, config.world, rng);
  network.run_until(100_ms);
  std::printf("server 1 owns %s with %zu lanterns\n\n",
              "[0,0 .. 400,400]", game1.lanterns());

  // Players light lanterns; then load forces a split.
  game1.player_lights_near({50, 50});
  game1.player_lights_near({350, 380});
  network.run_until(200_ms);

  std::printf("\noverload reported -> Matrix splits...\n");
  game1.report(80);
  game1.report(80);
  network.run_until(2_sec);
  std::printf("server 1 now owns %.0f..%.0f, server 2 owns %.0f..%.0f (x)\n",
              matrix1.range().x0(), matrix1.range().x1(),
              matrix2.range().x0(), matrix2.range().x1());
  std::printf("lanterns: server1=%zu server2=%zu (state transferred)\n\n",
              game1.lanterns(), game2.lanterns());

  // An event near the boundary propagates across servers: server 1's
  // player lights a lantern at x=210; server 2 (owning x<200... or >200)
  // hears about it because the point is inside the overlap region.
  std::printf("boundary event -> both servers apply it:\n");
  game1.player_lights_near({205, 200});
  network.run_until(3_sec);

  std::printf("\ntotal lit: %zu (server1) + %zu (server2)\n", game1.lit(),
              game2.lit());
  std::printf("\nporting cost: 4 integration points, ~60 lines. "
              "Everything else was game code.\n");
  return 0;
}
