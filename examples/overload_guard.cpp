// Overload guard — the admission subsystem in ~60 lines.
//
// A tiny deployment (1 root + 1 spare, overload at 30 clients) faces a
// 150-client flash crowd: more than twice what the whole deployment can
// absorb.  With the valve enabled, watch the admission state escalate as
// the pool runs dry, excess joins bounce at the boundary, and the admitted
// players keep playing.  Every knob used here lives in
// Config::admission (src/core/config.h); the mechanics are documented in
// src/control/README.md.
#include <cstdio>

#include "control/admission.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

using namespace matrix;
using namespace matrix::time_literals;

int main() {
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 400, 400);
  options.config.visibility_radius = 40.0;
  options.config.overload_clients = 30;
  options.config.underload_clients = 15;
  options.config.topology_cooldown = 2_sec;
  options.config.load_report_interval = 500_ms;

  options.config.admission.enabled = true;            // the whole trick
  options.config.admission.token_rate_per_sec = 3.0;  // SOFT trickle
  options.config.admission.token_burst = 6.0;
  options.config.admission.dwell = 1_sec;
  options.config.admission.recover_min = 3_sec;

  options.spec = bzflag_like();
  options.spec.visibility_radius = 40.0;
  options.initial_servers = 1;
  options.pool_size = 1;  // capacity: 2 × 30 = 60 clients
  options.map_objects = 30;
  options.seed = 1;

  Deployment deployment(options);

  OverloadScenarioOptions scenario;
  scenario.background_bots = 10;
  scenario.flash_bots = 140;
  scenario.join_batch = 35;
  scenario.join_interval = 1_sec;
  scenario.flash_at = 2_sec;
  scenario.center = {200.0, 200.0};
  scenario.spread = 80.0;
  scenario.duration = 25_sec;
  schedule_overload_scenario(deployment, scenario);
  deployment.run_until(scenario.duration);

  std::printf("offered %zu clients against a %zu-client deployment\n",
              overload_offered_clients(scenario),
              deployment_capacity_clients(deployment));

  const AdmissionSummary summary = collect_admission(deployment);
  std::printf("admitted %zu, deferred %llu, denied %llu; timelines %s\n",
              deployment.total_clients(),
              static_cast<unsigned long long>(summary.joins_deferred),
              static_cast<unsigned long long>(summary.joins_denied),
              summary.timelines_valid ? "valid" : "INVALID");

  for (const MatrixServer* server : deployment.matrix_servers()) {
    if (server->admission().transitions().empty()) continue;
    std::printf("S%llu admission timeline:\n",
                static_cast<unsigned long long>(server->server_id().value()));
    for (const AdmissionTransition& t : server->admission().transitions()) {
      std::printf("  %6.1f s  %s -> %s\n", t.at.sec(),
                  admission_state_name(t.from), admission_state_name(t.to));
    }
  }

  const LatencySummary latency = collect_latency(deployment);
  std::printf("admitted-client self latency p50/p99: %.1f / %.1f ms\n",
              latency.self_ms.median(), latency.self_ms.percentile(99.0));
  return 0;
}
