// rpg_world: a Daimonin-like RPG on Matrix — the paper's third test game.
//
// Demonstrates the two Matrix features the shooter examples don't touch:
//
//   * NON-PROXIMAL INTERACTIONS (paper §3.2.4): town-portal teleports whose
//     target lies far outside the caster's visibility radius.  Matrix
//     resolves the owner of the distant point through the MC — the only
//     time the coordinator appears on the data path.
//
//   * EXCEPTIONAL VISIBILITY RADII (paper §3.1): a minority of "seers"
//     (scrying spell) have a doubled radius.  Matrix maintains a second set
//     of overlap regions for them, so their events propagate further.
//
// Run:  ./build/examples/rpg_world
#include <cstdio>

#include "sim/deployment.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

using namespace matrix;
using namespace matrix::time_literals;

int main() {
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 1200, 1200);
  options.config.overload_clients = 80;
  options.config.underload_clients = 40;
  options.spec = daimonin_like();  // R=120, seers at R=240, 1% teleports
  options.config.visibility_radius = options.spec.visibility_radius;
  options.initial_servers = 4;  // a statically provisioned RPG shard...
  options.pool_size = 4;        // ...plus spares for the festival crowd
  options.map_objects = 400;
  options.seed = 13;

  Deployment deployment(options);
  std::printf("RPG shard up: %zu servers, world 1200x1200, R=%.0f (seers %.0f)\n",
              deployment.active_server_count(),
              options.spec.visibility_radius, options.spec.extra_radii[0]);

  // A settled population across the four provinces.
  Scenario scenario(deployment);
  scenario.add_background_bots(100_ms, 120);
  deployment.run_until(20_sec);

  std::uint64_t lookups = 0, fanned = 0;
  for (const MatrixServer* server : deployment.matrix_servers()) {
    lookups += server->stats().nonproximal_lookups;
    fanned += server->stats().packets_fanned_out;
  }
  std::printf("t=20s: %zu players settled; %llu cross-border events, "
              "%llu teleport/owner lookups via the MC\n",
              deployment.total_clients(),
              static_cast<unsigned long long>(fanned),
              static_cast<unsigned long long>(lookups));

  // Festival in the north-east province: the crowd triples there.
  std::printf("\na festival draws a crowd to (900, 900)...\n");
  scenario.add_hotspot_bots(20_sec, 160, {900, 900}, 140.0);
  deployment.run_until(80_sec);
  std::printf("t=80s: %zu players on %zu servers (pool: %zu idle)\n",
              deployment.total_clients(), deployment.active_server_count(),
              deployment.pool().idle_count());

  // Festival ends.
  deployment.remove_bots(160, Vec2{900, 900});
  deployment.run_until(160_sec);
  std::printf("t=160s: festival over — back to %zu servers\n",
              deployment.active_server_count());

  // The coordinator's data-path involvement stayed marginal even for an
  // RPG with teleports — the paper's centralization argument.
  lookups = 0;
  std::uint64_t data_packets = 0;
  for (const MatrixServer* server : deployment.matrix_servers()) {
    lookups += server->stats().nonproximal_lookups;
    data_packets += server->stats().packets_from_game;
  }
  std::printf("\ncoordinator involvement: %llu lookups for %llu data packets"
              " (%.3f%%)\n",
              static_cast<unsigned long long>(lookups),
              static_cast<unsigned long long>(data_packets),
              data_packets ? 100.0 * static_cast<double>(lookups) /
                                 static_cast<double>(data_packets)
                           : 0.0);

  const LatencySummary latency = collect_latency(deployment);
  std::printf("latency: p50 %.1f ms, p99 %.1f ms (budget 150 ms), "
              "switches %llu\n",
              latency.self_ms.median(), latency.self_ms.percentile(99),
              static_cast<unsigned long long>(latency.switches));
  return 0;
}
