// 2-D world coordinates.
//
// The paper's formulation is metric-space generic ("all games have some
// notion of geometric space"); every game it evaluates (BzFlag, Quake 2,
// Daimonin) uses a planar map, so the reproduction fixes dimension 2 and
// keeps the *metric* pluggable (geometry/metric.h).
#pragma once

#include <cmath>
#include <ostream>

namespace matrix {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a * k; }
  friend constexpr Vec2 operator/(Vec2 a, double k) { return {a.x / k, a.y / k}; }
  constexpr Vec2& operator+=(Vec2 b) {
    x += b.x;
    y += b.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 b) {
    x -= b.x;
    y -= b.y;
    return *this;
  }
  friend constexpr bool operator==(Vec2, Vec2) = default;

  [[nodiscard]] double length() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double length_sq() const { return x * x + y * y; }

  /// Unit vector in this direction; the zero vector normalizes to zero.
  [[nodiscard]] Vec2 normalized() const {
    const double len = length();
    return len > 0.0 ? Vec2{x / len, y / len} : Vec2{};
  }

  [[nodiscard]] static constexpr double dot(Vec2 a, Vec2 b) {
    return a.x * b.x + a.y * b.y;
  }

  [[nodiscard]] static double distance(Vec2 a, Vec2 b) { return (a - b).length(); }
  [[nodiscard]] static constexpr double distance_sq(Vec2 a, Vec2 b) {
    return (a - b).length_sq();
  }
};

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

}  // namespace matrix
