// Axis-aligned rectangles.
//
// Partitions in Matrix are axis-aligned rectangles (paper Section 3.2.4:
// overlap computation is "particularly easy ... if the map partitions are
// rectangular"), and split-to-left halves a rectangle.  Rects are half-open
// in spirit but stored with closed bounds; `contains` uses lo-inclusive /
// hi-exclusive semantics except at the world boundary, so that a point on a
// shared partition edge has exactly one home server.
#pragma once

#include <algorithm>
#include <optional>
#include <ostream>

#include "geometry/vec2.h"

namespace matrix {

class Rect {
 public:
  constexpr Rect() = default;
  constexpr Rect(double x0, double y0, double x1, double y1)
      : x0_(x0), y0_(y0), x1_(x1), y1_(y1) {}

  [[nodiscard]] static constexpr Rect from_corners(Vec2 lo, Vec2 hi) {
    return Rect(lo.x, lo.y, hi.x, hi.y);
  }
  [[nodiscard]] static Rect from_center(Vec2 c, double half_w, double half_h) {
    return Rect(c.x - half_w, c.y - half_h, c.x + half_w, c.y + half_h);
  }

  [[nodiscard]] constexpr double x0() const { return x0_; }
  [[nodiscard]] constexpr double y0() const { return y0_; }
  [[nodiscard]] constexpr double x1() const { return x1_; }
  [[nodiscard]] constexpr double y1() const { return y1_; }
  [[nodiscard]] constexpr Vec2 lo() const { return {x0_, y0_}; }
  [[nodiscard]] constexpr Vec2 hi() const { return {x1_, y1_}; }
  [[nodiscard]] constexpr double width() const { return x1_ - x0_; }
  [[nodiscard]] constexpr double height() const { return y1_ - y0_; }
  [[nodiscard]] constexpr double area() const { return width() * height(); }
  [[nodiscard]] constexpr Vec2 center() const {
    return {(x0_ + x1_) / 2.0, (y0_ + y1_) / 2.0};
  }

  [[nodiscard]] constexpr bool empty() const { return x1_ <= x0_ || y1_ <= y0_; }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  /// Half-open containment: [x0,x1) × [y0,y1).  Guarantees a point on the
  /// boundary between two adjacent partitions belongs to exactly one.
  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= x0_ && p.x < x1_ && p.y >= y0_ && p.y < y1_;
  }

  /// Closed containment: includes all four edges.  Used for world-boundary
  /// checks where the topmost/rightmost edge is still "in the world".
  [[nodiscard]] constexpr bool contains_closed(Vec2 p) const {
    return p.x >= x0_ && p.x <= x1_ && p.y >= y0_ && p.y <= y1_;
  }

  /// True when this rect fully contains `other`.
  [[nodiscard]] constexpr bool contains_rect(const Rect& other) const {
    return other.x0_ >= x0_ && other.x1_ <= x1_ && other.y0_ >= y0_ &&
           other.y1_ <= y1_;
  }

  /// Open-interior overlap test: touching edges do not count as
  /// intersection.  This matches partition semantics (adjacent partitions
  /// share an edge but no interior point).
  [[nodiscard]] constexpr bool intersects(const Rect& other) const {
    return x0_ < other.x1_ && other.x0_ < x1_ && y0_ < other.y1_ &&
           other.y0_ < y1_;
  }

  /// Intersection rectangle; empty Rect when disjoint.
  [[nodiscard]] Rect intersection(const Rect& other) const {
    const Rect r(std::max(x0_, other.x0_), std::max(y0_, other.y0_),
                 std::min(x1_, other.x1_), std::min(y1_, other.y1_));
    return r.empty() ? Rect() : r;
  }

  /// Minkowski inflation by `r` on every side.  Under the Chebyshev (L∞)
  /// metric this is exactly the set of points within distance `r` of the
  /// rect; under Euclidean it is the conservative axis-aligned bounding box
  /// of that set — the paper's "bounding box computation".
  [[nodiscard]] constexpr Rect inflated(double r) const {
    return Rect(x0_ - r, y0_ - r, x1_ + r, y1_ + r);
  }

  /// Clamps `p` to the closed rect.
  [[nodiscard]] Vec2 clamp(Vec2 p) const {
    return {std::clamp(p.x, x0_, x1_), std::clamp(p.y, y0_, y1_)};
  }

  /// Euclidean distance from `p` to the rect (0 inside).
  [[nodiscard]] double distance_to(Vec2 p) const {
    return Vec2::distance(p, clamp(p));
  }

  /// Chebyshev (L∞) distance from `p` to the rect (0 inside).
  [[nodiscard]] double chebyshev_distance_to(Vec2 p) const {
    const Vec2 q = clamp(p);
    return std::max(std::abs(p.x - q.x), std::abs(p.y - q.y));
  }

  /// Splits the rect in half across its longer dimension and returns
  /// {left-or-bottom half, right-or-top half}.  This is the paper's
  /// "split-to-left": the first element is handed to the new server.
  [[nodiscard]] std::pair<Rect, Rect> split_half() const {
    if (width() >= height()) {
      const double mid = (x0_ + x1_) / 2.0;
      return {Rect(x0_, y0_, mid, y1_), Rect(mid, y0_, x1_, y1_)};
    }
    const double mid = (y0_ + y1_) / 2.0;
    return {Rect(x0_, y0_, x1_, mid), Rect(x0_, mid, x1_, y1_)};
  }

  /// Splits at an arbitrary fraction (0,1) of the longer dimension; used by
  /// the load-aware split-policy extension.
  [[nodiscard]] std::pair<Rect, Rect> split_at(double fraction) const {
    fraction = std::clamp(fraction, 0.05, 0.95);
    if (width() >= height()) {
      const double mid = x0_ + width() * fraction;
      return {Rect(x0_, y0_, mid, y1_), Rect(mid, y0_, x1_, y1_)};
    }
    const double mid = y0_ + height() * fraction;
    return {Rect(x0_, y0_, x1_, mid), Rect(x0_, mid, x1_, y1_)};
  }

  /// The smallest rect covering both inputs.
  [[nodiscard]] static Rect bounding(const Rect& a, const Rect& b) {
    if (a.empty()) return b;
    if (b.empty()) return a;
    return Rect(std::min(a.x0_, b.x0_), std::min(a.y0_, b.y0_),
                std::max(a.x1_, b.x1_), std::max(a.y1_, b.y1_));
  }

 private:
  double x0_ = 0.0, y0_ = 0.0, x1_ = 0.0, y1_ = 0.0;
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.x0() << "," << r.y0() << " .. " << r.x1() << ","
            << r.y1() << "]";
}

}  // namespace matrix
