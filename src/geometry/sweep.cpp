#include "geometry/sweep.h"

#include <algorithm>
#include <map>

namespace matrix {

namespace {

/// Collects the sorted unique breakpoints of stamp edges along one axis,
/// clipped to [lo, hi].  The clip bounds themselves are always present.
std::vector<double> axis_breaks(double lo, double hi,
                                const std::vector<StampRect>& stamps,
                                bool x_axis) {
  std::vector<double> breaks{lo, hi};
  for (const auto& s : stamps) {
    const double a = x_axis ? s.rect.x0() : s.rect.y0();
    const double b = x_axis ? s.rect.x1() : s.rect.y1();
    if (a > lo && a < hi) breaks.push_back(a);
    if (b > lo && b < hi) breaks.push_back(b);
  }
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end()), breaks.end());
  return breaks;
}

}  // namespace

std::vector<ArrangementCell> decompose_arrangement(
    const Rect& clip, const std::vector<StampRect>& stamps) {
  std::vector<ArrangementCell> out;
  if (clip.empty()) return out;

  // Keep only stamps that actually reach into the clip rect.
  std::vector<StampRect> relevant;
  relevant.reserve(stamps.size());
  for (const auto& s : stamps) {
    if (s.rect.intersects(clip)) relevant.push_back(s);
  }
  if (relevant.empty()) {
    out.push_back({clip, {}});
    return out;
  }

  const std::vector<double> xs =
      axis_breaks(clip.x0(), clip.x1(), relevant, /*x_axis=*/true);
  const std::vector<double> ys =
      axis_breaks(clip.y0(), clip.y1(), relevant, /*x_axis=*/false);

  // Grid pass: payload set per elementary cell, evaluated at the cell centre
  // (the set is constant over the open cell by construction of the breaks).
  const std::size_t nx = xs.size() - 1;
  const std::size_t ny = ys.size() - 1;
  std::vector<std::vector<std::uint32_t>> cell_sets(nx * ny);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const Vec2 centre{(xs[ix] + xs[ix + 1]) / 2.0,
                        (ys[iy] + ys[iy + 1]) / 2.0};
      auto& set = cell_sets[iy * nx + ix];
      for (const auto& s : relevant) {
        if (s.rect.contains(centre)) set.push_back(s.payload);
      }
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
    }
  }

  // Coalesce: first merge runs of equal sets along x within each row, then
  // merge vertically-adjacent runs with equal x-extent and equal sets.
  struct Run {
    std::size_t ix0, ix1;  // column span [ix0, ix1)
    std::size_t iy0, iy1;  // row span    [iy0, iy1)
    std::vector<std::uint32_t> set;
    bool merged_up = false;
  };
  std::vector<std::vector<Run>> rows(ny);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    std::size_t ix = 0;
    while (ix < nx) {
      std::size_t jx = ix + 1;
      while (jx < nx && cell_sets[iy * nx + jx] == cell_sets[iy * nx + ix]) {
        ++jx;
      }
      rows[iy].push_back(
          {ix, jx, iy, iy + 1, cell_sets[iy * nx + ix], false});
      ix = jx;
    }
  }
  for (std::size_t iy = 1; iy < ny; ++iy) {
    for (auto& run : rows[iy]) {
      for (auto& above : rows[iy - 1]) {
        if (above.merged_up) continue;
        if (above.ix0 == run.ix0 && above.ix1 == run.ix1 &&
            above.iy1 == run.iy0 && above.set == run.set) {
          run.iy0 = above.iy0;
          above.merged_up = true;
          break;
        }
      }
    }
  }

  for (const auto& row : rows) {
    for (const auto& run : row) {
      if (run.merged_up) continue;
      out.push_back({Rect(xs[run.ix0], ys[run.iy0], xs[run.ix1], ys[run.iy1]),
                     run.set});
    }
  }
  return out;
}

}  // namespace matrix
