// Pluggable distance metrics.
//
// Paper Eq. 1 defines the consistency set through "a game-specific distance
// metric d(x,y)".  Matrix's overlap-region construction uses axis-aligned
// bounding boxes, which is *exact* for the Chebyshev (L∞) metric and a
// conservative over-approximation for the Euclidean metric (a server may be
// informed of an event slightly outside the true visibility disc — safe for
// consistency, mildly wasteful for bandwidth).  Both are provided; scenarios
// pick one in their config.
#pragma once

#include <algorithm>
#include <cmath>

#include "geometry/rect.h"
#include "geometry/vec2.h"

namespace matrix {

enum class Metric {
  /// L2 — the true visibility disc of most games.
  kEuclidean,
  /// L∞ — square visibility region; bounding-box overlap math is exact.
  kChebyshev,
};

/// d(a, b) under the chosen metric.
[[nodiscard]] inline double metric_distance(Metric m, Vec2 a, Vec2 b) {
  switch (m) {
    case Metric::kEuclidean:
      return Vec2::distance(a, b);
    case Metric::kChebyshev:
      return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
  }
  return 0.0;
}

/// Distance from a point to the nearest point of a rect (0 inside).
[[nodiscard]] inline double metric_distance(Metric m, Vec2 p, const Rect& r) {
  switch (m) {
    case Metric::kEuclidean:
      return r.distance_to(p);
    case Metric::kChebyshev:
      return r.chebyshev_distance_to(p);
  }
  return 0.0;
}

/// True when some point of `r` lies within distance `radius` of `p`
/// — i.e. `r` intersects the metric ball around `p`.  This is the ground
/// truth Eq. 1 predicate that overlap tables must agree with (exactly for
/// Chebyshev, conservatively for Euclidean).
[[nodiscard]] inline bool ball_intersects_rect(Metric m, Vec2 p, double radius,
                                               const Rect& r) {
  return metric_distance(m, p, r) <= radius;
}

}  // namespace matrix
