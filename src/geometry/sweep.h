// Rectangle-arrangement decomposition (coordinate sweep).
//
// Core geometric routine behind overlap-region construction: given a clip
// rectangle (one server's partition) and a set of stamp rectangles (the
// other partitions inflated by the visibility radius R), partition the clip
// rect into maximal axis-aligned cells such that every point inside a cell is
// covered by exactly the same subset of stamps.  That subset *is* the
// consistency set of those points (paper Eq. 1), and each emitted cell is one
// overlap region.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/rect.h"

namespace matrix {

/// One input rectangle with the caller's payload index (e.g. "peer server j").
struct StampRect {
  Rect rect;
  std::uint32_t payload = 0;
};

/// One output cell: an axis-aligned sub-rectangle of the clip rect, covered
/// by exactly `payloads` (sorted, unique).  Cells tile the clip rect.
struct ArrangementCell {
  Rect rect;
  std::vector<std::uint32_t> payloads;
};

/// Decomposes `clip` against `stamps`.
///
/// Guarantees:
///   * emitted cells are pairwise disjoint (open interiors) and tile `clip`;
///   * every interior point of a cell is covered by exactly the stamps listed
///     in `payloads` (boundary points follow lo-inclusive semantics);
///   * adjacent cells with identical payload sets are coalesced into maximal
///     rectangles (first along x, then greedily along y), so the output is
///     close to minimal.
///
/// Complexity: O(K² · log K) for K stamps overlapping the clip rect — K is
/// the number of *neighbouring* partitions, small in practice (the paper's
/// near-decomposability argument).
[[nodiscard]] std::vector<ArrangementCell> decompose_arrangement(
    const Rect& clip, const std::vector<StampRect>& stamps);

}  // namespace matrix
