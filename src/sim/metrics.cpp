#include "sim/metrics.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace matrix {

MetricsSampler::MetricsSampler(Deployment& deployment, SimTime interval)
    : deployment_(deployment), interval_(interval) {
  const std::size_t n = deployment_.game_servers().size();
  clients_.reserve(n);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::ostringstream cname, qname, aname;
    cname << "server" << (i + 1) << "_clients";
    qname << "server" << (i + 1) << "_queue";
    aname << "server" << (i + 1) << "_admission";
    clients_.emplace_back(cname.str());
    queues_.emplace_back(qname.str());
    admission_.emplace_back(aname.str());
  }
  schedule();
}

void MetricsSampler::schedule() {
  deployment_.network().events().schedule_after(interval_, [this] {
    if (!running_) return;
    sample();
    schedule();
  });
}

void MetricsSampler::sample() {
  const double t = deployment_.network().now().sec();
  const auto& games = deployment_.game_servers();
  for (std::size_t i = 0; i < games.size(); ++i) {
    const bool active = deployment_.server_is_active(i);
    clients_[i].record(t, active ? static_cast<double>(games[i]->client_count())
                                 : 0.0);
    queues_[i].record(
        t, active ? static_cast<double>(
                        deployment_.network().queue_length(games[i]->node_id()))
                  : 0.0);
    // The COMPOSED state (local valve + directive floor) — what the join
    // gate actually enforces; identical to the local state unless
    // coordinator-led global admission is active.
    admission_[i].record(
        t, active ? static_cast<double>(static_cast<std::uint8_t>(
                        deployment_.matrix_servers()[i]
                            ->effective_admission_state()))
                  : 0.0);
  }
  active_.record(t, static_cast<double>(deployment_.active_server_count()));
  total_.record(t, static_cast<double>(deployment_.total_clients()));
  pool_idle_.record(t, static_cast<double>(deployment_.pool().idle_count()));
}

double MetricsSampler::max_queue() const {
  double v = 0.0;
  for (const auto& series : queues_) v = std::max(v, series.max_value());
  return v;
}

double MetricsSampler::max_active_servers() const {
  return active_.max_value();
}

LatencySummary collect_latency(const Deployment& deployment) {
  LatencySummary summary;
  for (const BotClient* bot : deployment.bots()) {
    const auto& m = bot->metrics();
    summary.actions += m.actions_sent;
    summary.switches += m.switches;
    summary.self_ms.merge(m.self_latency_ms);
    summary.observer_ms.merge(m.observer_latency_ms);
    summary.switch_ms.merge(m.switch_latency_ms);
  }
  return summary;
}

TrafficBreakdown collect_traffic(Deployment& deployment) {
  TrafficBreakdown breakdown;
  std::set<NodeId> game_nodes, matrix_nodes, client_nodes;
  for (const GameServer* g : deployment.game_servers()) {
    game_nodes.insert(g->node_id());
  }
  for (const MatrixServer* m : deployment.matrix_servers()) {
    matrix_nodes.insert(m->node_id());
  }
  for (const BotClient* b : deployment.bots()) {
    client_nodes.insert(b->node_id());
  }
  const NodeId mc = deployment.coordinator().node_id();

  Network& net = deployment.network();
  breakdown.client_to_server = net.bytes_matching([&](NodeId a, NodeId b) {
    return (client_nodes.count(a) && game_nodes.count(b)) ||
           (game_nodes.count(a) && client_nodes.count(b));
  });
  breakdown.game_to_matrix = net.bytes_matching([&](NodeId a, NodeId b) {
    return (game_nodes.count(a) && matrix_nodes.count(b)) ||
           (matrix_nodes.count(a) && game_nodes.count(b));
  });
  breakdown.matrix_to_matrix = net.bytes_matching([&](NodeId a, NodeId b) {
    return matrix_nodes.count(a) && matrix_nodes.count(b);
  });
  breakdown.matrix_to_mc = net.bytes_matching([&](NodeId a, NodeId b) {
    return (matrix_nodes.count(a) && b == mc) ||
           (a == mc && matrix_nodes.count(b));
  });
  breakdown.total = net.total_bytes();
  return breakdown;
}

AdmissionSummary collect_admission(const Deployment& deployment) {
  AdmissionSummary summary;
  for (const GameServer* game : deployment.game_servers()) {
    summary.joins_denied += game->stats().joins_denied;
    summary.joins_deferred += game->stats().joins_deferred;
    summary.resumes_admitted += game->stats().resumes_admitted;
    const SurgeQueue::Stats& queue = game->surge_queue().stats();
    summary.joins_queued += queue.enqueued;
    summary.queue_admitted += queue.admitted;
    summary.queue_overflow += queue.overflow;
    summary.queue_flushed += queue.flushed;
    summary.queue_handed_off += queue.handed_off;
    summary.queue_adopted += queue.adopted;
    summary.queue_vip_capped += queue.vip_capped;
    summary.directives_applied += game->stats().directives_applied;
    summary.max_queue_depth = std::max(summary.max_queue_depth,
                                       queue.max_depth);
    for (std::size_t cls = 0; cls < 3; ++cls) {
      summary.queue_admitted_by_class[cls] += queue.admitted_by_class[cls];
      summary.queue_wait_us_by_class[cls] += queue.wait_us_sum_by_class[cls];
    }
  }
  for (const BotClient* bot : deployment.bots()) {
    summary.bots_denied += bot->metrics().joins_denied;
  }
  for (const MatrixServer* server : deployment.matrix_servers()) {
    const AdmissionController& admission = server->admission();
    summary.escalations += admission.stats().escalations;
    summary.relaxations += admission.stats().relaxations;
    // Lifetime tallies: transitions() is cleared when a pooled server is
    // re-adopted, so count from the stats and use the reset-proof
    // validity check rather than only the current timeline.
    summary.transitions +=
        admission.stats().escalations + admission.stats().relaxations;
    if (!admission.lifetime_timeline_valid()) {
      summary.timelines_valid = false;
    }
  }
  const Coordinator& mc = deployment.coordinator();
  summary.directives_broadcast = mc.directives_broadcast();
  summary.global_escalations = mc.global_admission().stats().escalations;
  summary.global_relaxations = mc.global_admission().stats().relaxations;
  summary.global_timeline_valid = mc.global_admission().timeline_valid();
  return summary;
}

}  // namespace matrix
