#include "sim/deployment.h"

#include <algorithm>
#include <cmath>

namespace matrix {

namespace {

/// Splits `world` into an n-tile grid (as square as possible) for the
/// initial/static server layout.
std::vector<Rect> grid_partitions(const Rect& world, std::size_t n) {
  std::vector<Rect> out;
  if (n == 0) return out;
  auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  // Distribute tiles row by row; the last row may be wider tiles so the
  // grid still exactly tiles the world.
  std::size_t made = 0;
  const double row_h = world.height() / static_cast<double>(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t remaining_rows = rows - r;
    const std::size_t in_this_row = std::min(
        cols, (n - made + remaining_rows - 1) / remaining_rows);
    const double col_w = world.width() / static_cast<double>(in_this_row);
    for (std::size_t c = 0; c < in_this_row; ++c) {
      const double x0 = world.x0() + col_w * static_cast<double>(c);
      const double y0 = world.y0() + row_h * static_cast<double>(r);
      // Snap the far edges to the world bounds to avoid float gaps.
      const double x1 =
          (c + 1 == in_this_row) ? world.x1() : x0 + col_w;
      const double y1 = (r + 1 == rows) ? world.y1() : y0 + row_h;
      out.emplace_back(x0, y0, x1, y1);
      ++made;
    }
  }
  return out;
}

}  // namespace

Deployment::Deployment(DeploymentOptions options)
    : options_(std::move(options)),
      network_(options_.seed),
      rng_(options_.seed * 0x9E3779B97F4A7C15ULL + 1) {
  // Parallel engine (src/net/network.h): shard the event queues before any
  // node attaches — configure_shards requires an empty network.
  network_.configure_shards(std::max<std::size_t>(1, options_.config.engine.shards),
                            options_.config.engine.threads);
  network_.set_scheduler(
      resolve_ladder_scheduler(options_.config.engine.ladder_scheduler)
          ? EventQueue::Scheduler::kLadder
          : EventQueue::Scheduler::kHeap);
  if (options_.config.engine.rebalance_threshold > 0.0) {
    network_.set_rebalance(options_.config.engine.rebalance_threshold,
                           options_.config.engine.rebalance_interval_events);
  }
  network_.set_default_link(options_.wan);

  // Observability (src/obs/): enable the tracer before any node attaches so
  // the flight recorder sees the deployment's whole life.  Recording is
  // passive — it sends nothing and draws no RNG — so traced runs stay
  // bit-identical to untraced ones (tests/determinism_test.cpp pins this).
  if (options_.config.obs.trace_enabled) {
    obs::TraceOptions trace;
    trace.ring_capacity = options_.config.obs.ring_capacity;
    trace.span_capacity = options_.config.obs.span_capacity;
    trace.record_sends = options_.config.obs.record_sends;
    network_.enable_tracing(trace);
  }

  coordinator_ = std::make_unique<Coordinator>(options_.config);
  coordinator_->set_generation(mc_generation_);
  // Shard plan: control-plane infrastructure (MC, pool) lives on shard 0;
  // each active root server pair takes a contiguous slab of the grid so
  // neighbouring regions — and their handoff chatter — tend to stay
  // intra-shard.  A matrix server and its co-located game server ALWAYS
  // share a shard, keeping the 30us co-located links out of the cross-shard
  // lookahead fold (the conservative window stays the 300us LAN latency).
  const NodeId mc_node = network_.attach(coordinator_.get(), options_.infra_node, 0);
  // Control-plane failsafe: the MC's liveness beat.  Started before any
  // server registers — the first broadcast round is empty, but
  // register_server sends each newcomer an immediate beat.
  if (options_.config.failsafe.enabled) coordinator_->start_heartbeats();
  pool_ = std::make_unique<ResourcePool>();
  pool_->configure(options_.config);  // grant-arbitration policy (src/policy/)
  const NodeId pool_node = network_.attach(pool_.get(), options_.infra_node, 0);
  // The pool reports occupancy to the MC, which rebroadcasts pool pressure
  // to every Matrix server (admission subsystem, src/control/).  Left
  // unwired when the valve is off so baseline runs carry zero extra
  // control traffic.
  if (options_.config.admission.enabled) pool_->wire(mc_node);

  const std::size_t total_servers =
      options_.initial_servers + options_.pool_size;
  std::vector<NodeId> infra_nodes{mc_node, pool_node};

  const std::size_t shard_count = network_.shard_count();
  for (std::size_t i = 0; i < total_servers; ++i) {
    const ServerId sid(i + 1);
    // Active root i owns grid tile i: contiguous slab mapping keeps adjacent
    // tiles on the same shard.  Pool spares round-robin across shards so the
    // servers a hotspot split activates don't all pile onto one queue.
    const std::size_t shard =
        i < options_.initial_servers && options_.initial_servers > 0
            ? i * shard_count / options_.initial_servers
            : (i - options_.initial_servers) % shard_count;
    auto matrix = std::make_unique<MatrixServer>(sid, options_.config);
    auto game =
        std::make_unique<GameServer>(sid, options_.spec, options_.config);
    const NodeId matrix_node =
        network_.attach(matrix.get(), options_.matrix_node, shard);
    const NodeId game_node = network_.attach(game.get(), options_.game_node, shard);
    matrix->wire({game_node, mc_node, pool_node});
    matrix->set_content_keys({"terrain/main.pak", "textures/atlas.pak",
                              "models/base.pak"});
    game->wire(matrix_node);
    network_.set_link_bidirectional(matrix_node, game_node,
                                    options_.colocated);
    // Rebalancing migrates the pair as one group, so the 30µs colocated
    // link above can never become a cross-shard lookahead bound.
    network_.define_colocated_group({matrix_node, game_node});
    infra_nodes.push_back(matrix_node);
    infra_nodes.push_back(game_node);

    matrix_ptrs_.push_back(matrix.get());
    game_ptrs_.push_back(game.get());
    matrix_servers_.push_back(std::move(matrix));
    game_servers_.push_back(std::move(game));
  }

  // LAN fabric between all infrastructure nodes, then restore the faster
  // co-located links between each game server and its Matrix server.
  for (std::size_t i = 0; i < infra_nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < infra_nodes.size(); ++j) {
      network_.set_link_bidirectional(infra_nodes[i], infra_nodes[j],
                                      options_.lan);
    }
  }
  for (std::size_t i = 0; i < matrix_ptrs_.size(); ++i) {
    network_.set_link_bidirectional(matrix_ptrs_[i]->node_id(),
                                    game_ptrs_[i]->node_id(),
                                    options_.colocated);
  }

  // Activate the initial grid; park the rest in the pool.
  const auto grid = grid_partitions(options_.config.world,
                                    options_.initial_servers);
  const auto radii = options_.spec.all_radii();
  const std::size_t objects_per_server =
      options_.initial_servers > 0
          ? options_.map_objects / options_.initial_servers
          : 0;
  for (std::size_t i = 0; i < options_.initial_servers; ++i) {
    matrix_ptrs_[i]->activate_root(grid[i], radii);
    game_ptrs_[i]->spawn_map_objects(objects_per_server, grid[i], rng_);
    game_ptrs_[i]->start();
  }
  for (std::size_t i = options_.initial_servers; i < total_servers; ++i) {
    pool_->add_entry({ServerId(i + 1), matrix_ptrs_[i]->node_id(),
                      game_ptrs_[i]->node_id()});
  }

  // Let registrations and initial overlap tables propagate.
  network_.run_until(network_.now() + SimTime::from_ms(50));
}

void Deployment::fail_over_coordinator() {
  kill_coordinator();
  revive_coordinator();
}

void Deployment::kill_coordinator() {
  if (!coordinator_alive()) return;
  // Kill the primary: undelivered control messages to it are lost, exactly
  // like a process crash.  Its heartbeat loop stops itself on the next
  // firing (Coordinator::schedule_heartbeat checks attachment) — the
  // resulting silence is what drives every server's failsafe to HOLD and
  // then FALLBACK.  The object itself is kept so its partition map stays
  // readable out of band (login path).
  network_.detach(coordinator_->node_id());
}

void Deployment::revive_coordinator() {
  if (coordinator_alive()) return;
  retired_coordinators_.push_back(std::move(coordinator_));

  // Bring up the standby and tell every Matrix server (ops-driven
  // reconfiguration; a production system would use a failure detector).
  coordinator_ = std::make_unique<Coordinator>(options_.config);
  ++mc_generation_;
  coordinator_->set_generation(mc_generation_);
  const NodeId standby =
      network_.attach(coordinator_.get(), options_.infra_node, 0);
  for (MatrixServer* server : matrix_ptrs_) {
    network_.set_link_bidirectional(standby, server->node_id(), options_.lan);
    McAnnounce announce;
    announce.mc_node = standby;
    announce.generation = mc_generation_;
    network_.send(standby, server->node_id(),
                  encode_message(Message{announce}));
  }
  for (GameServer* game : game_ptrs_) {
    network_.set_link_bidirectional(standby, game->node_id(), options_.lan);
  }
  network_.set_link_bidirectional(standby, pool_->node_id(), options_.lan);
  if (options_.config.admission.enabled) {
    pool_->wire(standby);  // re-point occupancy reports at the new MC
  }
  if (options_.config.failsafe.enabled) coordinator_->start_heartbeats();
}

bool Deployment::coordinator_alive() const {
  return network_.attached(coordinator_->node_id());
}

void Deployment::set_control_links(const LinkConfig& link) {
  for (MatrixServer* server : matrix_ptrs_) {
    network_.set_link_bidirectional(coordinator_->node_id(),
                                    server->node_id(), link);
  }
}

std::size_t Deployment::active_server_count() const {
  std::size_t n = 0;
  for (const MatrixServer* server : matrix_ptrs_) {
    if (server->active()) ++n;
  }
  return n;
}

std::size_t Deployment::total_clients() const {
  std::size_t n = 0;
  for (const GameServer* server : game_ptrs_) n += server->client_count();
  return n;
}

bool Deployment::server_is_active(std::size_t index) const {
  return index < matrix_ptrs_.size() && matrix_ptrs_[index]->active();
}

GameServer* Deployment::server_for(Vec2 position) {
  // The login path: real games resolve the entry server through a lobby
  // service; we consult the coordinator's map directly (out of band).
  const PartitionEntry* owner =
      coordinator_->partition_map().owner_of(position);
  if (owner != nullptr) {
    for (GameServer* game : game_ptrs_) {
      if (game->node_id() == owner->game_node) return game;
    }
  }
  // Map not yet populated (very early in the run): fall back to the first
  // active server.
  for (std::size_t i = 0; i < matrix_ptrs_.size(); ++i) {
    if (matrix_ptrs_[i]->active()) return game_ptrs_[i];
  }
  return game_ptrs_.front();
}

BotClient* Deployment::add_bot(Vec2 position, std::optional<Vec2> attraction,
                               double attraction_spread, bool vip) {
  auto bot = std::make_unique<BotClient>(client_ids_.next(), options_.spec,
                                         options_.config.world, rng_.fork());
  // Resolve the entry server BEFORE attaching so the bot can land on that
  // server's shard — its WAN chatter then starts (and usually stays)
  // intra-shard until a handoff migrates it.
  GameServer* entry = server_for(position);
  network_.attach(bot.get(), options_.client_node,
                  network_.shard_of(entry->node_id()));
  bot->set_attraction(attraction, attraction_spread);
  bot->set_vip(vip);
  bot->join(entry->node_id(), position);
  BotClient* raw = bot.get();
  bot_ptrs_.push_back(raw);
  bots_.push_back(std::move(bot));
  return raw;
}

std::size_t Deployment::remove_bots(std::size_t count,
                                    std::optional<Vec2> near) {
  std::vector<BotClient*> candidates;
  for (BotClient* bot : bot_ptrs_) {
    if (bot->connected()) candidates.push_back(bot);
  }
  if (near) {
    std::sort(candidates.begin(), candidates.end(),
              [&](const BotClient* a, const BotClient* b) {
                return Vec2::distance_sq(a->position(), *near) <
                       Vec2::distance_sq(b->position(), *near);
              });
  }
  const std::size_t n = std::min(count, candidates.size());
  for (std::size_t i = 0; i < n; ++i) candidates[i]->leave();
  return n;
}

}  // namespace matrix
