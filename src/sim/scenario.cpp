#include "sim/scenario.h"

namespace matrix {

// Scheduled lambdas capture the Deployment by pointer, not the Scenario:
// a Scenario is often a short-lived script builder (see
// schedule_hotspot_scenario) that dies long before its events fire.

void Scenario::add_background_bots(SimTime at, std::size_t count) {
  Deployment* deployment = &deployment_;
  deployment->network().events().schedule_at(at, [deployment, count] {
    const Rect& world = deployment->options().config.world;
    Rng& rng = deployment->rng();
    for (std::size_t i = 0; i < count; ++i) {
      deployment->add_bot({rng.next_double_in(world.x0(), world.x1()),
                           rng.next_double_in(world.y0(), world.y1())});
    }
  });
}

void Scenario::add_hotspot_bots(SimTime at, std::size_t count, Vec2 center,
                                double spread) {
  Deployment* deployment = &deployment_;
  deployment->network().events().schedule_at(
      at, [deployment, count, center, spread] {
        Rng& rng = deployment->rng();
        const Rect& world = deployment->options().config.world;
        for (std::size_t i = 0; i < count; ++i) {
          const Vec2 pos =
              world.clamp(center + Vec2{rng.next_normal() * spread,
                                        rng.next_normal() * spread});
          deployment->add_bot(pos, center, spread);
        }
      });
}

void Scenario::add_surge_bots(SimTime at, std::size_t count, Vec2 center,
                              double spread, double vip_fraction) {
  Deployment* deployment = &deployment_;
  deployment->network().events().schedule_at(
      at, [deployment, count, center, spread, vip_fraction] {
        Rng& rng = deployment->rng();
        const Rect& world = deployment->options().config.world;
        for (std::size_t i = 0; i < count; ++i) {
          const Vec2 pos =
              world.clamp(center + Vec2{rng.next_normal() * spread,
                                        rng.next_normal() * spread});
          const bool vip = rng.next_double() < vip_fraction;
          deployment->add_bot(pos, center, spread, vip);
        }
      });
}

void Scenario::remove_bots_at(SimTime at, std::size_t count,
                              std::optional<Vec2> near) {
  Deployment* deployment = &deployment_;
  deployment->network().events().schedule_at(at, [deployment, count, near] {
    deployment->remove_bots(count, near);
  });
}

// ---- ScenarioSpec -----------------------------------------------------------

ScenarioSpec& ScenarioSpec::background(SimTime at, std::size_t count) {
  Action action;
  action.kind = Action::Kind::kBackground;
  action.at = at;
  action.count = count;
  actions_.push_back(action);
  offered_ += count;
  return *this;
}

ScenarioSpec& ScenarioSpec::flash(SimTime at, std::size_t count, Vec2 center,
                                  double spread, double vip_fraction) {
  Action action;
  action.kind = Action::Kind::kFlash;
  action.at = at;
  action.count = count;
  action.center = center;
  action.spread = spread;
  action.vip_fraction = vip_fraction;
  actions_.push_back(action);
  offered_ += count;
  return *this;
}

ScenarioSpec& ScenarioSpec::ramp(SimTime from, std::size_t total,
                                 std::size_t batch, SimTime interval,
                                 Vec2 center, double spread,
                                 double vip_fraction) {
  SimTime t = from;
  for (std::size_t joined = 0; joined < total;) {
    // batch 0 would never advance; treat it as "everyone at once".
    const std::size_t n =
        std::min(batch > 0 ? batch : total, total - joined);
    flash(t, n, center, spread, vip_fraction);
    joined += n;
    t = t + interval;
  }
  return *this;
}

ScenarioSpec& ScenarioSpec::depart(SimTime at, std::size_t count,
                                   std::optional<Vec2> near) {
  Action action;
  action.kind = Action::Kind::kDepart;
  action.at = at;
  action.count = count;
  action.near = near;
  actions_.push_back(action);
  return *this;
}

ScenarioSpec& ScenarioSpec::departures(SimTime from, std::size_t total,
                                       std::size_t batch, SimTime interval,
                                       std::optional<Vec2> near) {
  SimTime t = from;
  for (std::size_t left = 0; left < total;) {
    const std::size_t n = std::min(batch > 0 ? batch : total, total - left);
    depart(t, n, near);
    left += n;
    t = t + interval;
  }
  return *this;
}

ScenarioSpec& ScenarioSpec::kill_mc(SimTime at) {
  Action action;
  action.kind = Action::Kind::kKillMc;
  action.at = at;
  actions_.push_back(action);
  return *this;
}

ScenarioSpec& ScenarioSpec::revive_mc(SimTime at) {
  Action action;
  action.kind = Action::Kind::kReviveMc;
  action.at = at;
  actions_.push_back(action);
  return *this;
}

ScenarioSpec& ScenarioSpec::degrade_control_links(SimTime at,
                                                  const LinkConfig& link) {
  Action action;
  action.kind = Action::Kind::kControlLink;
  action.at = at;
  action.link = link;
  actions_.push_back(action);
  return *this;
}

ScenarioSpec& ScenarioSpec::run_for(SimTime duration) {
  duration_ = duration;
  return *this;
}

void ScenarioSpec::schedule(Deployment& deployment) const {
  Scenario scenario(deployment);
  Deployment* raw = &deployment;
  for (const Action& action : actions_) {
    switch (action.kind) {
      case Action::Kind::kBackground:
        scenario.add_background_bots(action.at, action.count);
        break;
      case Action::Kind::kFlash:
        if (action.vip_fraction > 0.0) {
          scenario.add_surge_bots(action.at, action.count, action.center,
                                  action.spread, action.vip_fraction);
        } else {
          scenario.add_hotspot_bots(action.at, action.count, action.center,
                                    action.spread);
        }
        break;
      case Action::Kind::kDepart:
        scenario.remove_bots_at(action.at, action.count, action.near);
        break;
      case Action::Kind::kKillMc:
        deployment.network().events().schedule_at(
            action.at, [raw] { raw->kill_coordinator(); });
        break;
      case Action::Kind::kReviveMc:
        deployment.network().events().schedule_at(
            action.at, [raw] { raw->revive_coordinator(); });
        break;
      case Action::Kind::kControlLink: {
        const LinkConfig link = action.link;
        deployment.network().events().schedule_at(
            action.at, [raw, link] { raw->set_control_links(link); });
        break;
      }
    }
  }
}

void schedule_hotspot_scenario(Deployment& deployment,
                               const HotspotScenarioOptions& options) {
  Scenario scenario(deployment);

  // Background population from the start.
  scenario.add_background_bots(SimTime::from_ms(100), options.background_bots);

  // First hotspot: a flash crowd joins at one point (paper: "a hotspot of
  // 600 clients ... introduced at around the 10 second mark").
  scenario.add_hotspot_bots(options.first_hotspot_at, options.hotspot_bots,
                            options.first_hotspot);

  // Staged dissipation: groups leave at fixed intervals (paper: "indicated
  // by 200 clients disappearing at fixed intervals").
  SimTime t = options.first_hotspot_at + options.hold;
  std::size_t remaining = options.hotspot_bots;
  while (remaining > 0) {
    const std::size_t group = std::min(options.departure_group, remaining);
    scenario.remove_bots_at(t, group, options.first_hotspot);
    remaining -= group;
    t += options.departure_interval;
  }

  // Second hotspot at a different location (paper: "reintroduced at a
  // different position in the world at 170 seconds").
  if (options.second_hotspot) {
    scenario.add_hotspot_bots(options.second_hotspot_at,
                              options.second_hotspot_bots,
                              options.second_hotspot_center);
    SimTime t2 = options.second_hotspot_at + options.second_hold;
    std::size_t remaining2 = options.second_hotspot_bots;
    while (remaining2 > 0) {
      const std::size_t group = std::min(options.departure_group, remaining2);
      scenario.remove_bots_at(t2, group, options.second_hotspot_center);
      remaining2 -= group;
      t2 += options.departure_interval;
    }
  }
}

void schedule_overload_scenario(Deployment& deployment,
                                const OverloadScenarioOptions& options) {
  // The flash crowd arrives in waves, not one instant dump: real flash
  // crowds ramp, and the ramp is what lets splits race the arrivals until
  // the pool runs dry.
  ScenarioSpec()
      .background(SimTime::from_ms(100), options.background_bots)
      .ramp(options.flash_at, options.flash_bots, options.join_batch,
            options.join_interval, options.center, options.spread)
      .schedule(deployment);
}

void schedule_surge_scenario(Deployment& deployment,
                             const SurgeScenarioOptions& options) {
  Scenario scenario(deployment);
  scenario.add_background_bots(SimTime::from_ms(100), options.background_bots);

  // Waved arrivals, exactly like the overload scenario — but with a VIP
  // share so the queue's priority classes have something to sort.
  SimTime t = options.flash_at;
  for (std::size_t joined = 0; joined < options.flash_bots;) {
    const std::size_t batch = std::min(
        options.join_batch > 0 ? options.join_batch : options.flash_bots,
        options.flash_bots - joined);
    scenario.add_surge_bots(t, batch, options.center, options.spread,
                            options.vip_fraction);
    joined += batch;
    t += options.join_interval;
  }

  // Recovery: departures free capacity, letting the valve relax and the
  // waiting room drain.
  SimTime leave_t = options.leave_at;
  for (std::size_t left = 0; left < options.leave_bots;) {
    const std::size_t batch = std::min(
        options.leave_batch > 0 ? options.leave_batch : options.leave_bots,
        options.leave_bots - left);
    scenario.remove_bots_at(leave_t, batch, options.center);
    left += batch;
    leave_t += options.leave_interval;
  }
}

void schedule_multi_partition_surge_scenario(
    Deployment& deployment,
    const MultiPartitionSurgeScenarioOptions& options) {
  Scenario scenario(deployment);
  scenario.add_background_bots(SimTime::from_ms(100), options.background_bots);

  // All surges ramp in lock-step waves, one wave per center per interval —
  // simultaneous saturation is the point of this scenario.
  const std::size_t surges =
      std::min(options.centers.size(), options.flash_bots.size());
  for (std::size_t s = 0; s < surges; ++s) {
    SimTime t = options.flash_at;
    for (std::size_t joined = 0; joined < options.flash_bots[s];) {
      const std::size_t batch = std::min(
          options.join_batch > 0 ? options.join_batch : options.flash_bots[s],
          options.flash_bots[s] - joined);
      scenario.add_surge_bots(t, batch, options.centers[s], options.spread,
                              options.vip_fraction);
      joined += batch;
      t += options.join_interval;
    }
  }

  // Recovery departures near every center, proportional to its crowd.
  for (std::size_t s = 0; s < surges; ++s) {
    const auto leave_total = static_cast<std::size_t>(
        options.leave_fraction * static_cast<double>(options.flash_bots[s]));
    SimTime leave_t = options.leave_at;
    for (std::size_t left = 0; left < leave_total;) {
      const std::size_t batch = std::min(
          options.leave_batch > 0 ? options.leave_batch : leave_total,
          leave_total - left);
      scenario.remove_bots_at(leave_t, batch, options.centers[s]);
      left += batch;
      leave_t += options.leave_interval;
    }
  }
}

void schedule_contested_pool_scenario(
    Deployment& deployment, const ContestedPoolScenarioOptions& options) {
  // The arrival/churn mechanics mirror the multi-partition surge; what makes
  // the scenario "contested" is (a) running MORE surges than the deployment
  // parks spares (the caller's pool_size), so every PoolAcquire races the
  // others for the same server, and (b) the per-center stagger, which
  // decouples WHO ASKS FIRST from WHO NEEDS IT MOST.
  Scenario scenario(deployment);
  scenario.add_background_bots(SimTime::from_ms(100), options.background_bots);

  const std::size_t surges =
      std::min(options.centers.size(), options.flash_bots.size());
  for (std::size_t s = 0; s < surges; ++s) {
    SimTime t = options.flash_at + options.flash_stagger * s;
    for (std::size_t joined = 0; joined < options.flash_bots[s];) {
      const std::size_t batch = std::min(
          options.join_batch > 0 ? options.join_batch : options.flash_bots[s],
          options.flash_bots[s] - joined);
      scenario.add_surge_bots(t, batch, options.centers[s], options.spread,
                              options.vip_fraction);
      joined += batch;
      t += options.join_interval;
    }
  }

  // Churn departures near every center, proportional to its crowd.
  for (std::size_t s = 0; s < surges; ++s) {
    const auto leave_total = static_cast<std::size_t>(
        options.leave_fraction * static_cast<double>(options.flash_bots[s]));
    SimTime leave_t = options.leave_at;
    for (std::size_t left = 0; left < leave_total;) {
      const std::size_t batch = std::min(
          options.leave_batch > 0 ? options.leave_batch : leave_total,
          leave_total - left);
      scenario.remove_bots_at(leave_t, batch, options.centers[s]);
      left += batch;
      leave_t += options.leave_interval;
    }
  }
}

void schedule_mega_surge_scenario(Deployment& deployment,
                                  const MegaSurgeScenarioOptions& options) {
  Scenario scenario(deployment);
  scenario.add_background_bots(SimTime::from_ms(100), options.background_bots);

  // Hotspot centers on an evenly-spaced grid over the world, so the crowd
  // lands on every partition of a grid deployment at once — sustained
  // deployment-wide message pressure rather than one collapsing partition.
  const Rect& world = deployment.options().config.world;
  const double cell_w =
      (world.x1() - world.x0()) / static_cast<double>(options.hotspots_x);
  const double cell_h =
      (world.y1() - world.y0()) / static_cast<double>(options.hotspots_y);
  for (std::size_t ix = 0; ix < options.hotspots_x; ++ix) {
    for (std::size_t iy = 0; iy < options.hotspots_y; ++iy) {
      const Vec2 center{world.x0() + (static_cast<double>(ix) + 0.5) * cell_w,
                        world.y0() + (static_cast<double>(iy) + 0.5) * cell_h};
      SimTime t = options.flash_at;
      for (std::size_t joined = 0; joined < options.bots_per_hotspot;) {
        const std::size_t batch =
            std::min(options.join_batch > 0 ? options.join_batch
                                            : options.bots_per_hotspot,
                     options.bots_per_hotspot - joined);
        scenario.add_hotspot_bots(t, batch, center, options.spread);
        joined += batch;
        t += options.join_interval;
      }
    }
  }
}

void schedule_giga_surge_scenario(Deployment& deployment,
                                  const GigaSurgeScenarioOptions& options) {
  // Identical grid mechanics to the mega surge, rebottled at 10× the crowd.
  MegaSurgeScenarioOptions mega;
  mega.background_bots = options.background_bots;
  mega.hotspots_x = options.hotspots_x;
  mega.hotspots_y = options.hotspots_y;
  mega.bots_per_hotspot = options.bots_per_hotspot;
  mega.join_batch = options.join_batch;
  mega.join_interval = options.join_interval;
  mega.flash_at = options.flash_at;
  mega.spread = options.spread;
  mega.duration = options.duration;
  schedule_mega_surge_scenario(deployment, mega);
}

std::size_t deployment_capacity_clients(const Deployment& deployment) {
  return deployment.game_servers().size() *
         deployment.options().config.overload_clients;
}

void schedule_mc_outage_scenario(Deployment& deployment,
                                 const McOutageScenarioOptions& options) {
  ScenarioSpec spec;
  spec.background(SimTime::from_ms(100), options.load.background_bots)
      .ramp(options.load.flash_at, options.load.flash_bots,
            options.load.join_batch, options.load.join_interval,
            options.load.center, options.load.spread)
      .kill_mc(options.kill_at);
  if (options.revive_at.us() != 0) spec.revive_mc(options.revive_at);
  spec.run_for(options.load.duration).schedule(deployment);
}

void schedule_control_partition_scenario(
    Deployment& deployment, const ControlPartitionScenarioOptions& options) {
  ScenarioSpec()
      .background(SimTime::from_ms(100), options.load.background_bots)
      .ramp(options.load.flash_at, options.load.flash_bots,
            options.load.join_batch, options.load.join_interval,
            options.load.center, options.load.spread)
      .degrade_control_links(options.partition_at, options.degraded)
      .degrade_control_links(options.heal_at, options.healed)
      .run_for(options.load.duration)
      .schedule(deployment);
}

}  // namespace matrix
