// Run-time metrics collection.
//
// MetricsSampler polls the deployment on a fixed cadence and produces the
// exact series the paper's Figure 2 plots: clients per server over time
// (2a) and receive-queue length per server over time (2b), plus the active
// server count, pool occupancy, admission-state timelines (src/control/),
// and traffic-by-category totals used by the other benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/deployment.h"
#include "util/stats.h"

namespace matrix {

class MetricsSampler {
 public:
  /// Starts sampling `deployment` every `interval` until stop() or the
  /// deployment's event queue stops being pumped.
  MetricsSampler(Deployment& deployment, SimTime interval);

  void stop() { running_ = false; }

  /// One clients-per-server series per server slot (index = ServerId - 1).
  [[nodiscard]] const std::vector<TimeSeries>& clients_per_server() const {
    return clients_;
  }
  /// One queue-length series per server slot (game-server receive queue).
  [[nodiscard]] const std::vector<TimeSeries>& queue_per_server() const {
    return queues_;
  }
  [[nodiscard]] const TimeSeries& active_servers() const { return active_; }
  [[nodiscard]] const TimeSeries& total_clients() const { return total_; }
  [[nodiscard]] const TimeSeries& pool_idle() const { return pool_idle_; }
  /// One admission-state series per server slot (0=NORMAL 1=SOFT 2=HARD;
  /// inactive servers sample as 0).  Samples the COMPOSED state — local
  /// valve + global directive floor, strictest wins.
  [[nodiscard]] const std::vector<TimeSeries>& admission_per_server() const {
    return admission_;
  }

  /// Peak queue length seen on any server.
  [[nodiscard]] double max_queue() const;
  /// Peak simultaneous active servers.
  [[nodiscard]] double max_active_servers() const;

 private:
  void sample();
  void schedule();

  Deployment& deployment_;
  SimTime interval_;
  bool running_ = true;
  std::vector<TimeSeries> clients_;
  std::vector<TimeSeries> queues_;
  std::vector<TimeSeries> admission_;
  TimeSeries active_{"active_servers"};
  TimeSeries total_{"total_clients"};
  TimeSeries pool_idle_{"pool_idle"};
};

/// Aggregates bot-side latency metrics across a deployment, optionally
/// restricted to a time window recorded by the caller.
struct LatencySummary {
  Histogram self_ms;
  Histogram observer_ms;
  Histogram switch_ms;
  std::uint64_t actions = 0;
  std::uint64_t switches = 0;
};

[[nodiscard]] LatencySummary collect_latency(const Deployment& deployment);

/// Traffic split by component category, derived from link stats.
struct TrafficBreakdown {
  std::uint64_t client_to_server = 0;  ///< bot↔game bytes (both directions)
  std::uint64_t game_to_matrix = 0;    ///< co-located forwarding
  std::uint64_t matrix_to_matrix = 0;  ///< peer consistency traffic
  std::uint64_t matrix_to_mc = 0;      ///< control plane (tables, lookups)
  std::uint64_t total = 0;
};

[[nodiscard]] TrafficBreakdown collect_traffic(Deployment& deployment);

/// Deployment-wide admission tallies (src/control/), aggregated from the
/// game servers (enforcement), bots (experience), and Matrix servers
/// (control plane).
struct AdmissionSummary {
  std::uint64_t joins_denied = 0;     ///< JoinDeny sent by game servers
  std::uint64_t joins_deferred = 0;   ///< JoinDefer sent by game servers
  std::uint64_t resumes_admitted = 0; ///< live sessions passed a closed valve
  std::uint64_t bots_denied = 0;      ///< bots that gave up after JoinDeny
  std::uint64_t transitions = 0;      ///< state changes across all servers
  std::uint64_t escalations = 0;
  std::uint64_t relaxations = 0;
  /// True when every Matrix server's recorded timeline satisfies the
  /// dwell/recover hysteresis contract (admission_timeline_valid).
  bool timelines_valid = true;

  // Surge queue ("waiting room", src/control/surge_queue.h), aggregated
  // over every game server's queue:
  std::uint64_t joins_queued = 0;     ///< parked instead of bounced
  std::uint64_t queue_admitted = 0;   ///< drained into live sessions
  std::uint64_t queue_overflow = 0;   ///< refused at queue capacity
  std::uint64_t queue_flushed = 0;    ///< returned to client retry (reclaim)
  std::uint64_t queue_handed_off = 0; ///< extracted for cross-server handoff
  std::uint64_t queue_adopted = 0;    ///< re-parked here from another server
  std::uint64_t queue_vip_capped = 0; ///< drains where the fairness cap bound
  std::uint64_t max_queue_depth = 0;  ///< deepest waiting room seen

  // Coordinator-led global admission (src/control/global_admission.h):
  std::uint64_t directives_broadcast = 0;  ///< sent by the MC
  std::uint64_t directives_applied = 0;    ///< applied at game servers
  std::uint64_t global_escalations = 0;    ///< directive floor escalations
  std::uint64_t global_relaxations = 0;
  /// True when the MC's directive-floor timeline satisfies the same
  /// dwell/recover hysteresis contract as the per-server valves.
  bool global_timeline_valid = true;
  /// Per-class admit counts and wait sums (index = PriorityClass:
  /// 0 RESUME, 1 VIP, 2 NORMAL).
  std::uint64_t queue_admitted_by_class[3] = {0, 0, 0};
  std::uint64_t queue_wait_us_by_class[3] = {0, 0, 0};

  /// Mean queue wait of admitted entries in `cls`, ms; 0 when none.
  [[nodiscard]] double mean_queue_wait_ms(std::size_t cls) const {
    if (cls >= 3 || queue_admitted_by_class[cls] == 0) return 0.0;
    return static_cast<double>(queue_wait_us_by_class[cls]) / 1000.0 /
           static_cast<double>(queue_admitted_by_class[cls]);
  }
};

[[nodiscard]] AdmissionSummary collect_admission(const Deployment& deployment);

}  // namespace matrix
