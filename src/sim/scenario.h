// Scenario scripting — the workload generators of the evaluation.
//
// A Scenario schedules population changes on a Deployment's event queue:
// background players wandering the world, hotspot flash crowds joining at a
// point, staged departures.  HotspotScenario reproduces the paper's Fig. 2
// timeline exactly (600-client hotspot at t=10 s, staged 200-client
// departures, second hotspot elsewhere at t=170 s).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/deployment.h"

namespace matrix {

/// Low-level scripting helpers; compose for custom scenarios.
class Scenario {
 public:
  explicit Scenario(Deployment& deployment) : deployment_(deployment) {}

  /// Spawns `count` bots at uniformly random positions at time `at`.
  void add_background_bots(SimTime at, std::size_t count);

  /// Spawns `count` bots at `center` (with spread) at time `at`; they stay
  /// attracted to the hotspot.
  void add_hotspot_bots(SimTime at, std::size_t count, Vec2 center,
                        double spread = 20.0);

  /// Like add_hotspot_bots, but each bot is VIP with probability
  /// `vip_fraction` — the priority-mixed arrivals of a SurgeScenario.
  void add_surge_bots(SimTime at, std::size_t count, Vec2 center,
                      double spread, double vip_fraction);

  /// Removes `count` connected bots at time `at`, nearest to `near` first.
  void remove_bots_at(SimTime at, std::size_t count,
                      std::optional<Vec2> near = std::nullopt);

 private:
  Deployment& deployment_;
};

/// Fluent scenario composer — the one scheduling surface shared by the
/// canned workloads here, the control-plane chaos scenarios below, and the
/// randomized fuzzer (src/fuzz/fuzz_scenario.cpp).  Collect arrival waves,
/// departures, and chaos actions; schedule() then scripts them all onto a
/// deployment in insertion order (which is also the same-instant firing
/// order, so two specs that list the same actions produce byte-identical
/// runs).
///
///   ScenarioSpec()
///       .background(SimTime::from_ms(100), 50)
///       .ramp(flash_at, 1200, 150, SimTime::from_sec(2.0), center, 150.0)
///       .kill_mc(SimTime::from_sec(15.0))
///       .revive_mc(SimTime::from_sec(75.0))
///       .run_for(SimTime::from_sec(90.0))
///       .schedule(deployment);
class ScenarioSpec {
 public:
  /// `count` bots spawn uniformly over the world at `at`.
  ScenarioSpec& background(SimTime at, std::size_t count);
  /// One flash wave at `center`.  A zero `vip_fraction` spawns plain
  /// hotspot bots; non-zero mixes VIPs in (surge-queue priority classes).
  ScenarioSpec& flash(SimTime at, std::size_t count, Vec2 center,
                      double spread, double vip_fraction = 0.0);
  /// Waved arrival: `total` bots in `batch`-sized flashes every `interval`
  /// starting at `from` (batch 0 = everyone at once) — the canonical
  /// flash-crowd ramp every canned scenario uses.
  ScenarioSpec& ramp(SimTime from, std::size_t total, std::size_t batch,
                     SimTime interval, Vec2 center, double spread,
                     double vip_fraction = 0.0);
  /// `count` connected bots leave at `at`, nearest `near` first.
  ScenarioSpec& depart(SimTime at, std::size_t count,
                       std::optional<Vec2> near = std::nullopt);
  /// Staged departures: `total` bots in `batch` groups every `interval`.
  ScenarioSpec& departures(SimTime from, std::size_t total, std::size_t batch,
                           SimTime interval,
                           std::optional<Vec2> near = std::nullopt);

  // ---- control-plane chaos (src/control/control_plane.h) -------------------
  /// The coordinator process dies at `at` (Deployment::kill_coordinator):
  /// its heartbeats fall silent and every control message toward it is lost.
  ScenarioSpec& kill_mc(SimTime at);
  /// A standby MC (next generation) comes up at `at`
  /// (Deployment::revive_coordinator).
  ScenarioSpec& revive_mc(SimTime at);
  /// Re-links MC↔Matrix with `link` at `at` (Deployment::set_control_links)
  /// — drop 1.0 is a control partition, high latency a delayed/reordering
  /// control path.  Schedule a second call with a healthy link to heal.
  ScenarioSpec& degrade_control_links(SimTime at, const LinkConfig& link);

  /// Declares the intended run length (recorded, not enforced — callers
  /// still drive run_until), so scenario builders can hand the duration and
  /// the schedule around as one value.
  ScenarioSpec& run_for(SimTime duration);

  [[nodiscard]] SimTime duration() const { return duration_; }
  /// Crowd size at the crest (background + every flash wave).
  [[nodiscard]] std::size_t offered_clients() const { return offered_; }

  /// Scripts every collected action onto `deployment`'s event queue.
  void schedule(Deployment& deployment) const;

 private:
  struct Action {
    enum class Kind : std::uint8_t {
      kBackground,
      kFlash,
      kDepart,
      kKillMc,
      kReviveMc,
      kControlLink,
    };
    Kind kind;
    SimTime at;
    std::size_t count = 0;
    Vec2 center;
    double spread = 0.0;
    double vip_fraction = 0.0;
    std::optional<Vec2> near;
    LinkConfig link;
  };

  std::vector<Action> actions_;
  SimTime duration_{};
  std::size_t offered_ = 0;
};

/// The paper's Fig. 2 workload, parameterised.
struct HotspotScenarioOptions {
  std::size_t background_bots = 100;
  std::size_t hotspot_bots = 600;
  Vec2 first_hotspot{150.0, 150.0};
  SimTime first_hotspot_at = SimTime::from_sec(10.0);
  /// Departures begin after the hotspot has been held this long...
  SimTime hold = SimTime::from_sec(75.0);
  /// ...leaving in groups of `departure_group` every `departure_interval`.
  std::size_t departure_group = 200;
  SimTime departure_interval = SimTime::from_sec(15.0);

  bool second_hotspot = true;
  Vec2 second_hotspot_center{850.0, 850.0};
  SimTime second_hotspot_at = SimTime::from_sec(170.0);
  std::size_t second_hotspot_bots = 600;
  SimTime second_hold = SimTime::from_sec(50.0);

  SimTime duration = SimTime::from_sec(300.0);
};

/// Schedules the full Fig. 2 timeline onto `deployment`.  Call
/// deployment.run_until(options.duration) afterwards.
void schedule_hotspot_scenario(Deployment& deployment,
                               const HotspotScenarioOptions& options);

/// Beyond-capacity workload (admission subsystem, src/control/): a flash
/// crowd keeps arriving in waves until the offered population exceeds what
/// the whole deployment — every root plus every spare in the pool — can
/// absorb.  The paper's evaluation stops at "the pool ran dry"; this
/// scenario is about what happens *after* that point.  With admission off
/// the stuck partition's latency collapses unboundedly; with it on, excess
/// joins are deferred/denied at the valve and admitted sessions keep their
/// delivery rate.
struct OverloadScenarioOptions {
  std::size_t background_bots = 50;

  /// Flash-crowd arrival: `flash_bots` join in `join_batch`-sized waves
  /// every `join_interval`, starting at `flash_at`, centred on `center`
  /// with a town-square-sized footprint `spread`.
  std::size_t flash_bots = 1200;
  std::size_t join_batch = 150;
  SimTime join_interval = SimTime::from_sec(2.0);
  SimTime flash_at = SimTime::from_sec(5.0);
  Vec2 center{500.0, 500.0};
  double spread = 150.0;

  SimTime duration = SimTime::from_sec(60.0);
};

/// Schedules the flash-crowd waves.  Call
/// deployment.run_until(options.duration) afterwards.
void schedule_overload_scenario(Deployment& deployment,
                                const OverloadScenarioOptions& options);

/// Offered clients at the crest of an OverloadScenario.
[[nodiscard]] inline std::size_t overload_offered_clients(
    const OverloadScenarioOptions& options) {
  return options.background_bots + options.flash_bots;
}

/// Nominal deployment capacity: every server slot (roots + pool) at the
/// overload threshold.  An OverloadScenario should offer more than this.
[[nodiscard]] std::size_t deployment_capacity_clients(
    const Deployment& deployment);

/// Surge workload (surge queue, src/control/surge_queue.h): the same
/// beyond-capacity flash crowd as OverloadScenario, but with a VIP share
/// among the arrivals and an optional recovery phase in which part of the
/// crowd leaves again.  With the waiting room off this exercises PR 1's
/// defer-retry control loop; with it on, gated joins park server-side and
/// drain by priority class — bench_surge_queue compares the two.
struct SurgeScenarioOptions {
  std::size_t background_bots = 50;

  /// Flash-crowd arrival, identical shape to OverloadScenarioOptions.
  std::size_t flash_bots = 1200;
  std::size_t join_batch = 150;
  SimTime join_interval = SimTime::from_sec(2.0);
  SimTime flash_at = SimTime::from_sec(5.0);
  Vec2 center{500.0, 500.0};
  double spread = 150.0;

  /// Share of flash arrivals flagged VIP (uniform per bot).
  double vip_fraction = 0.15;

  /// Recovery: `leave_bots` connected players (nearest the hotspot) depart
  /// in `leave_batch` groups every `leave_interval` starting at `leave_at`,
  /// freeing capacity for the waiting room to drain into.  0 disables.
  std::size_t leave_bots = 0;
  std::size_t leave_batch = 100;
  SimTime leave_at = SimTime::from_sec(45.0);
  SimTime leave_interval = SimTime::from_sec(5.0);

  SimTime duration = SimTime::from_sec(90.0);
};

/// Schedules the surge waves (and recovery departures).  Call
/// deployment.run_until(options.duration) afterwards.
void schedule_surge_scenario(Deployment& deployment,
                             const SurgeScenarioOptions& options);

/// Offered clients at the crest of a SurgeScenario.
[[nodiscard]] inline std::size_t surge_offered_clients(
    const SurgeScenarioOptions& options) {
  return options.background_bots + options.flash_bots;
}

/// Multi-partition surge (coordinator-led global admission,
/// src/control/global_admission.h): SEVERAL flash crowds saturate
/// different partitions of a multi-root deployment at once — the regime
/// where purely per-server valves admit unevenly, because no single
/// server sees that the whole deployment is past capacity.  Crowd sizes
/// are deliberately unequal (`flash_bots` per surge), so the deepest
/// waiting room starves hardest without a coordinator weighting the drain
/// budget toward it.  Mid-surge, the crowds themselves force splits onto
/// whatever pool spares remain — exercising the cross-server queue handoff
/// (parked clients re-park on the child that now owns their region).
struct MultiPartitionSurgeScenarioOptions {
  std::size_t background_bots = 60;

  /// One simultaneous surge per entry: crowd size at `centers[i]`.  Only
  /// the first min(centers, flash_bots) pairs are scheduled — keep the
  /// vectors the same length; `multi_partition_offered_clients` counts the
  /// same pairing, so the two can never disagree about the offered crowd.
  std::vector<std::size_t> flash_bots{420, 260, 140};
  std::vector<Vec2> centers{{150.0, 150.0}, {850.0, 150.0}, {150.0, 850.0}};

  std::size_t join_batch = 70;
  SimTime join_interval = SimTime::from_sec(2.0);
  SimTime flash_at = SimTime::from_sec(5.0);
  double spread = 90.0;
  double vip_fraction = 0.15;

  /// Recovery: this fraction of each surge's crowd departs (nearest the
  /// center first), freeing capacity the waiting rooms drain into.  The
  /// per-center departure volume scales with the crowd, so the big crowd's
  /// partition frees the most slots — and whoever refills them fastest
  /// wins the recovery.  0 disables.
  double leave_fraction = 0.0;
  std::size_t leave_batch = 60;
  SimTime leave_at = SimTime::from_sec(50.0);
  SimTime leave_interval = SimTime::from_sec(5.0);

  SimTime duration = SimTime::from_sec(90.0);
};

/// Schedules the simultaneous surges (and recovery).  Call
/// deployment.run_until(options.duration) afterwards.
void schedule_multi_partition_surge_scenario(
    Deployment& deployment, const MultiPartitionSurgeScenarioOptions& options);

/// Offered clients at the crest of a MultiPartitionSurgeScenario — sums
/// exactly the surges the scheduler pairs up (min of the two vectors).
[[nodiscard]] inline std::size_t multi_partition_offered_clients(
    const MultiPartitionSurgeScenarioOptions& options) {
  std::size_t total = options.background_bots;
  const std::size_t surges =
      std::min(options.centers.size(), options.flash_bots.size());
  for (std::size_t s = 0; s < surges; ++s) total += options.flash_bots[s];
  return total;
}

/// Contested-pool workload (load-policy layer, src/policy/): MORE partitions
/// overload simultaneously than the resource pool holds spares, so every
/// PoolAcquire is a contest — the regime where grant ARBITRATION (who gets
/// the spare) decides the deployment's worst-partition experience, not just
/// whether a split happens.  Crowd sizes are deliberately unequal: under
/// FCFS the spare goes to whichever partition's retry happens to land
/// first (often a small crowd's), while need-weighted arbitration
/// (DirectivePolicy) hands it to the most starved partition.  Pair it with
/// a deployment whose pool_size < centers.size(); mid-run churn keeps
/// releasing and re-contesting the spares so the arbitration fires
/// repeatedly, not once.  `bench_policy_grants` runs exactly this head-to-
/// head.
struct ContestedPoolScenarioOptions {
  std::size_t background_bots = 40;

  /// One simultaneous surge per entry (pair with `centers`, same pairing
  /// rule as MultiPartitionSurgeScenarioOptions).  Four unequal crowds by
  /// default — run them against fewer spares than surges.
  std::vector<std::size_t> flash_bots{240, 130, 90, 70};
  std::vector<Vec2> centers{
      {150.0, 150.0}, {850.0, 150.0}, {150.0, 850.0}, {850.0, 850.0}};

  std::size_t join_batch = 60;
  SimTime join_interval = SimTime::from_sec(2.0);
  SimTime flash_at = SimTime::from_sec(5.0);
  /// Per-center stagger: center `s` begins surging at
  /// flash_at + s × flash_stagger.  Listing the SMALL crowds first with a
  /// non-zero stagger reproduces the FCFS pathology head-on: the lightest
  /// partition overloads (and asks the pool) first, so arrival-order grants
  /// hand it the spare while the big crowd that arrives moments later
  /// starves.  0 keeps all surges simultaneous.
  SimTime flash_stagger{};
  double spread = 80.0;
  double vip_fraction = 0.10;

  /// Churn: this fraction of each crowd departs mid-run (nearest its
  /// center first), freeing capacity — and, when a split collapses back,
  /// releasing the spare for the next contest.
  double leave_fraction = 0.5;
  std::size_t leave_batch = 20;
  SimTime leave_at = SimTime::from_sec(40.0);
  SimTime leave_interval = SimTime::from_sec(4.0);

  SimTime duration = SimTime::from_sec(120.0);
};

/// Schedules the contested-pool surges.  Call
/// deployment.run_until(options.duration) afterwards.
void schedule_contested_pool_scenario(
    Deployment& deployment, const ContestedPoolScenarioOptions& options);

/// Ten-thousand-client macro workload (the engine-scale proof for the
/// hot-path overhaul): a grid of simultaneous flash crowds plus a uniform
/// background population, sized an order of magnitude beyond every other
/// scenario.  Pair it with a deployment whose root grid can actually admit
/// the crowd (≥ offered/overload_clients roots) — the point is sustained
/// 10k-client steady-state message traffic, not admission-control behaviour;
/// bench_engine_throughput and tests/mega_surge_test.cpp run exactly this.
struct MegaSurgeScenarioOptions {
  std::size_t background_bots = 2000;

  /// Flash crowds arrive at an hx × hy grid of hotspot centers spread
  /// evenly over the world, `bots_per_hotspot` each.
  std::size_t hotspots_x = 4;
  std::size_t hotspots_y = 2;
  std::size_t bots_per_hotspot = 1024;

  std::size_t join_batch = 256;
  SimTime join_interval = SimTime::from_ms(500);
  SimTime flash_at = SimTime::from_sec(2.0);
  double spread = 70.0;

  SimTime duration = SimTime::from_sec(20.0);
};

/// Schedules the grid of flash crowds.  Call
/// deployment.run_until(options.duration) afterwards.
void schedule_mega_surge_scenario(Deployment& deployment,
                                  const MegaSurgeScenarioOptions& options);

/// Offered clients at the crest of a MegaSurgeScenario (10,192 with the
/// defaults — the ≥10k bar).
[[nodiscard]] inline std::size_t mega_surge_offered_clients(
    const MegaSurgeScenarioOptions& options) {
  return options.background_bots +
         options.hotspots_x * options.hotspots_y * options.bots_per_hotspot;
}

/// The canonical deployment for the default MegaSurgeScenario — shared by
/// bench_engine_throughput (whose numbers CI's perf-gate compares against a
/// checked-in baseline) and tests/mega_surge_test.cpp (the tier-1 scale
/// assertions), so the gated workload and the proven workload cannot drift
/// apart.  36 roots × the paper's 300-client overload threshold = 10.8k
/// capacity, on production-grade hosts (50 µs per message ⇒ ~20k msg/s per
/// server, vs the paper benches' deliberately modest 200 µs): the 10k crowd
/// is admitted and PLAYS — sustained full-rate traffic, not one collapsing
/// partition's queue (OverloadScenario covers that regime).
[[nodiscard]] inline DeploymentOptions mega_surge_deployment_options() {
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 1000, 1000);
  options.config.overload_clients = 300;
  options.config.underload_clients = 150;
  options.config.sustain_reports_to_split = 2;
  options.config.topology_cooldown = SimTime::from_sec(3.0);
  options.config.load_report_interval = SimTime::from_ms(500);
  options.config.policy.kind = LoadPolicyKind::kClassic;
  options.spec = bzflag_like();
  options.config.visibility_radius = options.spec.visibility_radius;
  options.game_node.service_per_message = SimTime::from_us(50);
  options.initial_servers = 36;
  options.pool_size = 4;
  options.map_objects = 360;
  options.seed = 2005;
  return options;
}

/// Hundred-thousand-client macro workload — the SHARDED engine's scale
/// proof (net/network.h conservative parallel engine).  The same grid-of-
/// hotspots shape as MegaSurgeScenario, an order of magnitude bigger: 8×4
/// hotspot centers × 2880 bots + 8000 background = 100,160 offered clients.
/// Runs at RPG traffic rates (4 Hz actions/updates) so the per-client cost
/// is the paper's Daimonin signature, not an FPS firehose; the point is the
/// ENGINE carrying a six-figure concurrent population, partitioned across
/// shards, not the admission story.  tests/giga_surge_test.cpp and
/// bench_engine_throughput's scaling mode run exactly this.
struct GigaSurgeScenarioOptions {
  std::size_t background_bots = 8000;

  std::size_t hotspots_x = 8;
  std::size_t hotspots_y = 4;
  std::size_t bots_per_hotspot = 2880;

  std::size_t join_batch = 1440;
  SimTime join_interval = SimTime::from_ms(250);
  SimTime flash_at = SimTime::from_ms(500);
  double spread = 60.0;

  SimTime duration = SimTime::from_sec(4.0);
};

/// Schedules the giga grid of flash crowds.  Call
/// deployment.run_until(options.duration) afterwards.
void schedule_giga_surge_scenario(Deployment& deployment,
                                  const GigaSurgeScenarioOptions& options);

/// Offered clients at the crest of a GigaSurgeScenario (100,160 with the
/// defaults — the ≥100k bar).
[[nodiscard]] inline std::size_t giga_surge_offered_clients(
    const GigaSurgeScenarioOptions& options) {
  return options.background_bots +
         options.hotspots_x * options.hotspots_y * options.bots_per_hotspot;
}

/// The canonical deployment for the default GigaSurgeScenario, shared by
/// tests/giga_surge_test.cpp and bench_engine_throughput's shard-scaling
/// mode.  64 roots × an 1800-client overload threshold = 115k capacity on
/// heavyweight hosts (20 µs per message), so the 100k crowd is admitted and
/// plays; `shards` picks the engine partition count (1 = the serial engine).
[[nodiscard]] inline DeploymentOptions giga_surge_deployment_options(
    std::size_t shards) {
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 2000, 2000);
  options.config.overload_clients = 1800;
  options.config.underload_clients = 900;
  options.config.sustain_reports_to_split = 4;
  options.config.topology_cooldown = SimTime::from_sec(5.0);
  options.config.load_report_interval = SimTime::from_sec(1.0);
  options.config.policy.kind = LoadPolicyKind::kClassic;
  options.config.engine.shards = shards;
  options.spec = daimonin_like();
  options.config.visibility_radius = options.spec.visibility_radius;
  options.game_node.service_per_message = SimTime::from_us(20);
  options.initial_servers = 64;
  options.pool_size = 4;
  options.map_objects = 640;
  options.seed = 2005;
  return options;
}

/// Offered clients at the crest of a ContestedPoolScenario.
[[nodiscard]] inline std::size_t contested_pool_offered_clients(
    const ContestedPoolScenarioOptions& options) {
  std::size_t total = options.background_bots;
  const std::size_t surges =
      std::min(options.centers.size(), options.flash_bots.size());
  for (std::size_t s = 0; s < surges; ++s) total += options.flash_bots[s];
  return total;
}

// ---- control-plane chaos workloads (src/control/control_plane.h) -----------

/// MC-outage chaos: the overload flash crowd with the coordinator crashing
/// mid-surge and — optionally — a standby reviving later.  The regime the
/// heartbeat failsafe exists for: with Config::failsafe.enabled every
/// matrix/game server rides NORMAL → HOLD → FALLBACK on the silence, keeps
/// admitting on its local valve, and recovers when the standby's beats
/// arrive; with it off, whatever directive floor was in force at the crash
/// stays frozen forever.  bench_mc_outage runs exactly this head-to-head.
struct McOutageScenarioOptions {
  /// Crowd shape (arrivals keep coming THROUGH the outage).
  OverloadScenarioOptions load;
  /// Coordinator killed here — default mid-ramp, well before the crest.
  SimTime kill_at = SimTime::from_sec(15.0);
  /// Standby (next generation) brought up here; zero = dead for the rest
  /// of the run.
  SimTime revive_at{};
};

/// Schedules the flash crowd plus the outage.  Call
/// deployment.run_until(options.load.duration) afterwards.
void schedule_mc_outage_scenario(Deployment& deployment,
                                 const McOutageScenarioOptions& options);

/// Control-partition chaos: the MC stays alive but its links to every
/// Matrix server degrade over a window — drop 1.0 is a full partition
/// (silence, like an outage, but undelivered directives are LOST not
/// queued), partial drop with high latency is the delayed/reordered
/// control path that stale-epoch/stale-seq admission exists for.
struct ControlPartitionScenarioOptions {
  /// Crowd shape (arrivals keep coming through the partition).
  OverloadScenarioOptions load;
  SimTime partition_at = SimTime::from_sec(15.0);
  SimTime heal_at = SimTime::from_sec(45.0);
  /// MC↔Matrix link during the window; default black-holes everything.
  LinkConfig degraded{SimTime::from_us(300), 125e6, 1.0};
  /// Link restored at heal_at (the deployment's LAN defaults).
  LinkConfig healed{SimTime::from_us(300), 125e6, 0.0};
};

/// Schedules the flash crowd plus the partition window.  Call
/// deployment.run_until(options.load.duration) afterwards.
void schedule_control_partition_scenario(
    Deployment& deployment, const ControlPartitionScenarioOptions& options);

}  // namespace matrix
