// Scenario scripting — the workload generators of the evaluation.
//
// A Scenario schedules population changes on a Deployment's event queue:
// background players wandering the world, hotspot flash crowds joining at a
// point, staged departures.  HotspotScenario reproduces the paper's Fig. 2
// timeline exactly (600-client hotspot at t=10 s, staged 200-client
// departures, second hotspot elsewhere at t=170 s).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/deployment.h"

namespace matrix {

/// Low-level scripting helpers; compose for custom scenarios.
class Scenario {
 public:
  explicit Scenario(Deployment& deployment) : deployment_(deployment) {}

  /// Spawns `count` bots at uniformly random positions at time `at`.
  void add_background_bots(SimTime at, std::size_t count);

  /// Spawns `count` bots at `center` (with spread) at time `at`; they stay
  /// attracted to the hotspot.
  void add_hotspot_bots(SimTime at, std::size_t count, Vec2 center,
                        double spread = 20.0);

  /// Removes `count` connected bots at time `at`, nearest to `near` first.
  void remove_bots_at(SimTime at, std::size_t count,
                      std::optional<Vec2> near = std::nullopt);

 private:
  Deployment& deployment_;
};

/// The paper's Fig. 2 workload, parameterised.
struct HotspotScenarioOptions {
  std::size_t background_bots = 100;
  std::size_t hotspot_bots = 600;
  Vec2 first_hotspot{150.0, 150.0};
  SimTime first_hotspot_at = SimTime::from_sec(10.0);
  /// Departures begin after the hotspot has been held this long...
  SimTime hold = SimTime::from_sec(75.0);
  /// ...leaving in groups of `departure_group` every `departure_interval`.
  std::size_t departure_group = 200;
  SimTime departure_interval = SimTime::from_sec(15.0);

  bool second_hotspot = true;
  Vec2 second_hotspot_center{850.0, 850.0};
  SimTime second_hotspot_at = SimTime::from_sec(170.0);
  std::size_t second_hotspot_bots = 600;
  SimTime second_hold = SimTime::from_sec(50.0);

  SimTime duration = SimTime::from_sec(300.0);
};

/// Schedules the full Fig. 2 timeline onto `deployment`.  Call
/// deployment.run_until(options.duration) afterwards.
void schedule_hotspot_scenario(Deployment& deployment,
                               const HotspotScenarioOptions& options);

}  // namespace matrix
