// Result artifacts: CSV writers for time series and distributions.
//
// The bench binaries print human-readable tables; for plotting (gnuplot,
// pandas) they can additionally drop CSV files next to the binary.  Kept
// deliberately dependency-free.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "util/stats.h"

namespace matrix {

/// Writes aligned time series as one CSV: t, <name1>, <name2>, ...
/// Series are step-sampled on a fixed grid so ragged sampling times line
/// up.  Returns false if the file could not be opened.
inline bool write_timeseries_csv(const std::string& path,
                                 const std::vector<const TimeSeries*>& series,
                                 double t_end, double dt = 1.0) {
  std::ofstream out(path);
  if (!out) return false;
  out << "t";
  for (const TimeSeries* s : series) out << "," << s->name();
  out << "\n";
  for (double t = 0.0; t <= t_end; t += dt) {
    out << t;
    for (const TimeSeries* s : series) out << "," << s->value_at(t);
    out << "\n";
  }
  return static_cast<bool>(out);
}

/// Writes a latency distribution as percentile rows: p, value.
inline bool write_percentiles_csv(const std::string& path,
                                  const Histogram& histogram) {
  std::ofstream out(path);
  if (!out) return false;
  out << "percentile,value\n";
  for (double p : {1.0,  5.0,  10.0, 25.0, 50.0, 75.0, 90.0,
                   95.0, 99.0, 99.9, 100.0}) {
    out << p << "," << histogram.percentile(p) << "\n";
  }
  return static_cast<bool>(out);
}

}  // namespace matrix
