// Deployment — wires a complete Matrix system onto a simulated network.
//
// One Deployment owns: the network, the Matrix Coordinator, the resource
// pool, every (Matrix server, game server) pair — active roots plus pooled
// spares — and all bot clients.  It corresponds to "what the operators rack
// and boot" in the paper's evaluation: the initial grid of servers, the
// spare pool Matrix draws from during hotspots, and the link fabric (LAN
// between servers, WAN to clients, loopback-fast between co-located game
// and Matrix processes).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/coordinator.h"
#include "core/matrix_server.h"
#include "core/resource_pool.h"
#include "game/bot_client.h"
#include "game/game_model.h"
#include "game/game_server.h"
#include "net/network.h"

namespace matrix {

struct DeploymentOptions {
  Config config;
  GameModelSpec spec;

  /// Servers active at t=0, tiled as a grid over the world.  1 reproduces
  /// the paper's Matrix runs (grow on demand); N>1 with allow_split=false
  /// reproduces the static-partitioning baseline.
  std::size_t initial_servers = 1;
  /// Spare servers parked in the resource pool.
  std::size_t pool_size = 8;
  /// Map objects seeded across the world at t=0.
  std::size_t map_objects = 200;

  std::uint64_t seed = 42;

  // Link fabric.  Clients ride the default (WAN) link; server-to-server,
  // server-to-MC and server-to-pool links are LAN; each game server and its
  // Matrix server are co-located (paper §3.2.2).
  LinkConfig wan{SimTime::from_ms(25), 12.5e6, 0.0};    // 100 Mbps, 25 ms
  LinkConfig lan{SimTime::from_us(300), 125e6, 0.0};    // 1 Gbps, 0.3 ms
  LinkConfig colocated{SimTime::from_us(30), 1.25e9, 0.0};

  // Service capacities.  The game-server figure is the deployment's real
  // bottleneck (the paper's asymptotic analysis: per-server I/O bounds
  // scalability): 200 µs/message ⇒ ~5k msg/s, so 300 clients at 10 Hz is
  // ~60% utilisation and a 600-client hotspot is ~120% — queues grow until
  // Matrix splits, which is exactly Fig. 2b's shape.
  NodeConfig game_node{SimTime::from_us(200), SimTime::from_us(2),
                       std::nullopt};
  NodeConfig matrix_node{SimTime::from_us(20), SimTime::from_us(1),
                         std::nullopt};
  NodeConfig infra_node{SimTime::from_us(20), SimTime::from_us(1),
                        std::nullopt};
  NodeConfig client_node{SimTime::from_us(5), SimTime::from_us(1),
                         std::nullopt};
};

class Deployment {
 public:
  explicit Deployment(DeploymentOptions options);

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] const DeploymentOptions& options() const { return options_; }
  [[nodiscard]] Coordinator& coordinator() { return *coordinator_; }
  [[nodiscard]] const Coordinator& coordinator() const { return *coordinator_; }
  [[nodiscard]] ResourcePool& pool() { return *pool_; }

  /// All server pairs, active and pooled, in ServerId order.
  [[nodiscard]] const std::vector<MatrixServer*>& matrix_servers() const {
    return matrix_ptrs_;
  }
  [[nodiscard]] const std::vector<GameServer*>& game_servers() const {
    return game_ptrs_;
  }
  [[nodiscard]] const std::vector<BotClient*>& bots() const {
    return bot_ptrs_;
  }

  /// Number of Matrix servers currently owning a partition.
  [[nodiscard]] std::size_t active_server_count() const;
  /// Clients across all game servers.
  [[nodiscard]] std::size_t total_clients() const;

  /// Creates a bot and connects it to the server owning `position`
  /// (resolved through the coordinator's map — the stand-in for the game's
  /// login service).  `vip` rides the surge queue's priority classes
  /// (src/control/surge_queue.h).  Returns the bot for scripting.
  BotClient* add_bot(Vec2 position,
                     std::optional<Vec2> attraction = std::nullopt,
                     double attraction_spread = 15.0, bool vip = false);

  /// Disconnects `count` bots, preferring those closest to `near` when
  /// given (hotspot dissipation removes hotspot bots, not random ones).
  std::size_t remove_bots(std::size_t count,
                          std::optional<Vec2> near = std::nullopt);

  /// Advances simulated time.
  void run_until(SimTime t) { network_.run_until(t); }

  /// Kills the current Matrix Coordinator and brings up a fresh standby
  /// (the paper's "well understood replication techniques" note, §3.2.4).
  /// The standby rebuilds the partition map from the re-registrations its
  /// McAnnounce solicits; routing continues uninterrupted throughout
  /// because overlap tables live on the Matrix servers.  Equivalent to
  /// kill_coordinator() immediately followed by revive_coordinator().
  void fail_over_coordinator();

  /// Kills the current MC and brings up NO standby: control messages to it
  /// are lost and its heartbeats fall silent — the failsafe outage the
  /// control plane (src/control/control_plane.h) is built to survive.  The
  /// dead MC's partition map stays readable, so the out-of-band login path
  /// (add_bot → server_for) keeps resolving entry servers, exactly like a
  /// lobby service holding a cached map.
  void kill_coordinator();

  /// Brings up a fresh standby MC (next generation) after
  /// kill_coordinator(): announces it to every Matrix server, re-points the
  /// pool, and restarts heartbeats.  No-op if the MC is alive.
  void revive_coordinator();

  /// True while the current MC is attached (not killed).
  [[nodiscard]] bool coordinator_alive() const;

  /// Re-links every Matrix server to the MC with `link` in both directions
  /// — the chaos knob for control-plane partitions (drop 1.0) and slow /
  /// lossy control paths.  Data-plane and client links are untouched.
  void set_control_links(const LinkConfig& link);

  /// True while the nodes of `server` index are attached/usable.
  [[nodiscard]] bool server_is_active(std::size_t index) const;

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  GameServer* server_for(Vec2 position);

  DeploymentOptions options_;
  Network network_;
  Rng rng_;

  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<Coordinator>> retired_coordinators_;
  std::uint64_t mc_generation_ = 1;
  std::unique_ptr<ResourcePool> pool_;
  std::vector<std::unique_ptr<MatrixServer>> matrix_servers_;
  std::vector<std::unique_ptr<GameServer>> game_servers_;
  std::vector<std::unique_ptr<BotClient>> bots_;
  std::vector<MatrixServer*> matrix_ptrs_;
  std::vector<GameServer*> game_ptrs_;
  std::vector<BotClient*> bot_ptrs_;
  IdGenerator<ClientId> client_ids_;
};

}  // namespace matrix
