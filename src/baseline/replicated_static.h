// Replicated-static baseline — the commercial-MMOG model of the paper's §5.
//
// "Commercial MMOG systems, such as Everquest and Final Fantasy XI,
//  carefully partition the game world between different servers ...  To
//  handle hotspots, they allocate multiple tightly-coupled (completely
//  consistent) servers to handle the same partition, an approach that is
//  neither efficient nor very scalable."
//
// Model: K static partitions × M replicas each.  Clients of a partition are
// spread round-robin over its replicas.  Every game event must reach every
// replica of its partition (tight coupling / complete consistency), plus —
// as in Matrix — the replicas of neighbouring partitions when the event
// falls in an overlap region.  The ReplicaRouter below plays the role a
// Matrix server plays in a Matrix deployment, so game servers and bots run
// unmodified; only the routing fabric differs.  That keeps the comparison
// honest: the measured difference is purely the O(M) replication fan-out.
#pragma once

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/overlap.h"
#include "core/partition.h"
#include "core/protocol_node.h"
#include "game/bot_client.h"
#include "game/game_model.h"
#include "game/game_server.h"
#include "net/network.h"

namespace matrix {

/// The routing process co-located with each replica's game server.
/// Static: its partition, replica group, and overlap table are fixed at
/// wiring time; there is no coordinator, pool, split, or reclaim.
class ReplicaRouter : public ProtocolNode {
 public:
  ReplicaRouter(ServerId id, Config config)
      : id_(id), config_(std::move(config)) {}

  [[nodiscard]] std::string name() const override {
    return "replica-router-" + std::to_string(id_.value());
  }

  struct StaticWiring {
    NodeId game_node;
    Rect range;
    /// Game-server nodes of the OTHER replicas of this partition.
    std::vector<NodeId> sibling_games;
    /// Overlap regions against neighbouring partitions; peers listed as
    /// router nodes (one per neighbouring partition's replica).
    std::vector<OverlapRegionWire> overlap;
    /// Full static map for owner queries (client migration), with one
    /// representative game node per partition (round-robin happens at the
    /// deployment layer via rotation).
    PartitionMap static_map;
  };

  void wire_static(StaticWiring wiring) {
    wiring_ = std::move(wiring);
    index_ = RegionIndex(wiring_.range, wiring_.overlap);
  }

  struct Stats {
    std::uint64_t packets_from_game = 0;
    std::uint64_t replica_fanout = 0;   ///< copies to sibling replicas
    std::uint64_t neighbour_fanout = 0; ///< copies to other partitions
    std::uint64_t peer_packets_delivered = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Rect& range() const { return wiring_.range; }

 protected:
  void on_message(const Message& message, const Envelope& envelope) override;

 private:
  ServerId id_;
  Config config_;
  StaticWiring wiring_;
  RegionIndex index_;
  Stats stats_;
};

/// A complete replicated-static deployment: network, K×M server pairs,
/// bots.  Mirrors sim::Deployment's surface where the benches need it.
class ReplicatedDeployment {
 public:
  struct Options {
    Config config;
    GameModelSpec spec;
    std::size_t partitions = 2;   ///< K, tiled as a grid
    std::size_t replicas = 2;     ///< M per partition
    std::uint64_t seed = 42;
    LinkConfig wan{SimTime::from_ms(25), 12.5e6, 0.0};
    LinkConfig lan{SimTime::from_us(300), 125e6, 0.0};
    NodeConfig game_node{SimTime::from_us(200), SimTime::from_us(2), {}};
    NodeConfig router_node{SimTime::from_us(20), SimTime::from_us(1), {}};
  };

  explicit ReplicatedDeployment(Options options);

  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] const std::vector<GameServer*>& game_servers() const {
    return game_ptrs_;
  }
  [[nodiscard]] const std::vector<ReplicaRouter*>& routers() const {
    return router_ptrs_;
  }
  [[nodiscard]] const std::vector<BotClient*>& bots() const {
    return bot_ptrs_;
  }

  /// Adds a bot at `position`, assigned round-robin across the replicas of
  /// the owning partition.
  BotClient* add_bot(Vec2 position,
                     std::optional<Vec2> attraction = std::nullopt,
                     double attraction_spread = 15.0);

  void run_until(SimTime t) { network_.run_until(t); }

  [[nodiscard]] std::size_t total_clients() const;
  /// Total matrix-role (router↔router and router↔game fan-out) bytes.
  [[nodiscard]] std::uint64_t routing_bytes() const;

 private:
  Options options_;
  Network network_;
  Rng rng_;
  std::vector<std::unique_ptr<ReplicaRouter>> routers_;
  std::vector<std::unique_ptr<GameServer>> game_servers_;
  std::vector<std::unique_ptr<BotClient>> bots_;
  std::vector<ReplicaRouter*> router_ptrs_;
  std::vector<GameServer*> game_ptrs_;
  std::vector<BotClient*> bot_ptrs_;
  std::vector<Rect> partitions_;
  std::vector<std::size_t> next_replica_;  ///< round-robin per partition
  IdGenerator<ClientId> client_ids_;
};

}  // namespace matrix
