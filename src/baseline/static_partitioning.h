// Static-partitioning baseline (paper §4, related work §5).
//
// Commercial MMOGs of the paper's era statically assigned world regions to
// servers.  Matrix with splits and reclaims disabled *is* that scheme — the
// routing path (overlap tables, consistency sets) is identical, so the
// comparison isolates exactly the paper's contribution: dynamic
// repartitioning.  This header packages that configuration so benches and
// tests can't accidentally compare against a subtly different router.
#pragma once

#include <cstddef>

#include "sim/deployment.h"

namespace matrix {

/// Deployment options for a static N-server grid over `base.config.world`.
/// Starts from `base` so game model, link fabric, and service capacities
/// stay identical to the Matrix run being compared against.
[[nodiscard]] inline DeploymentOptions static_partitioning_options(
    DeploymentOptions base, std::size_t servers) {
  base.config.allow_split = false;
  base.config.allow_reclaim = false;
  base.initial_servers = servers;
  base.pool_size = 0;
  return base;
}

/// Matrix-enabled options sharing everything else with the static baseline:
/// starts at `initial_servers` and may grow into `pool_size` spares.
[[nodiscard]] inline DeploymentOptions adaptive_options(
    DeploymentOptions base, std::size_t initial_servers,
    std::size_t pool_size) {
  base.config.allow_split = true;
  base.config.allow_reclaim = true;
  base.initial_servers = initial_servers;
  base.pool_size = pool_size;
  return base;
}

}  // namespace matrix
