#include "baseline/replicated_static.h"

#include <cmath>

namespace matrix {

void ReplicaRouter::on_message(const Message& message,
                               const Envelope& envelope) {
  if (const auto* packet = std::get_if<TaggedPacket>(&message)) {
    if (packet->peer_forwarded) {
      // From another router: hand to our game server (already verified at
      // the origin; static topology makes re-verification redundant).
      ++stats_.peer_packets_delivered;
      send(wiring_.game_node, *packet);
      return;
    }
    ++stats_.packets_from_game;
    TaggedPacket copy = *packet;
    copy.peer_forwarded = true;
    // Tight coupling: EVERY sibling replica hears EVERY event — this is
    // the O(M) cost the paper calls out.
    for (NodeId sibling : wiring_.sibling_games) {
      ++stats_.replica_fanout;
      send(sibling, copy);
    }
    // Cross-partition visibility, same as Matrix: overlap-region lookup.
    if (const OverlapRegionWire* region = index_.find(packet->origin)) {
      for (NodeId peer_router : region->peer_matrix_nodes) {
        ++stats_.neighbour_fanout;
        send(peer_router, copy);
      }
    }
    return;
  }
  if (const auto* query = std::get_if<OwnerQuery>(&message)) {
    // Static map: answer locally (no coordinator exists here).
    OwnerReply reply;
    reply.client = query->client;
    reply.seq = query->seq;
    if (const PartitionEntry* owner =
            wiring_.static_map.owner_of(query->point)) {
      reply.found = true;
      reply.server = owner->server;
      reply.game_node = owner->game_node;
    }
    send(envelope.src, reply);
    return;
  }
  // LoadReports, ShedDone etc. are ignored: nothing adapts here.
  (void)envelope;
}

namespace {

std::vector<Rect> grid(const Rect& world, std::size_t n) {
  std::vector<Rect> out;
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  std::size_t made = 0;
  const double row_h = world.height() / static_cast<double>(rows);
  for (std::size_t r = 0; r < rows && made < n; ++r) {
    const std::size_t remaining_rows = rows - r;
    const std::size_t in_row =
        std::min(cols, (n - made + remaining_rows - 1) / remaining_rows);
    const double col_w = world.width() / static_cast<double>(in_row);
    for (std::size_t c = 0; c < in_row; ++c) {
      const double x0 = world.x0() + col_w * static_cast<double>(c);
      const double y0 = world.y0() + row_h * static_cast<double>(r);
      out.emplace_back(x0, y0,
                       c + 1 == in_row ? world.x1() : x0 + col_w,
                       r + 1 == rows ? world.y1() : y0 + row_h);
      ++made;
    }
  }
  return out;
}

}  // namespace

ReplicatedDeployment::ReplicatedDeployment(Options options)
    : options_(std::move(options)),
      network_(options_.seed),
      rng_(options_.seed ^ 0x5DEECE66DULL) {
  network_.set_default_link(options_.wan);
  partitions_ = grid(options_.config.world, options_.partitions);
  next_replica_.assign(options_.partitions, 0);

  // One PartitionMap entry per partition; the representative game node is
  // replica 0 (owner queries rotate implicitly as clients re-ask).
  // Router node ids are needed for overlap peers: one router per replica,
  // but cross-partition events only need to reach each partition once per
  // replica — we list ALL replicas' routers as peers (full consistency).
  const std::size_t k = options_.partitions;
  const std::size_t m = options_.replicas;

  // Create all pairs first.
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t r = 0; r < m; ++r) {
      const ServerId sid(p * m + r + 1);
      auto router = std::make_unique<ReplicaRouter>(sid, options_.config);
      auto game =
          std::make_unique<GameServer>(sid, options_.spec, options_.config);
      const NodeId router_node =
          network_.attach(router.get(), options_.router_node);
      network_.attach(game.get(), options_.game_node);
      game->wire(router_node);
      router_ptrs_.push_back(router.get());
      game_ptrs_.push_back(game.get());
      routers_.push_back(std::move(router));
      game_servers_.push_back(std::move(game));
    }
  }

  // LAN between all server-side nodes.
  std::vector<NodeId> infra;
  for (const auto* r : router_ptrs_) infra.push_back(r->node_id());
  for (const auto* g : game_ptrs_) infra.push_back(g->node_id());
  for (std::size_t i = 0; i < infra.size(); ++i) {
    for (std::size_t j = i + 1; j < infra.size(); ++j) {
      network_.set_link_bidirectional(infra[i], infra[j], options_.lan);
    }
  }

  // Static map (one representative per partition).
  PartitionMap static_map;
  for (std::size_t p = 0; p < k; ++p) {
    static_map.upsert({ServerId(p * m + 1),
                       router_ptrs_[p * m]->node_id(),
                       game_ptrs_[p * m]->node_id(), partitions_[p]});
  }

  // Wire each router: siblings, overlap table (peers expanded to every
  // replica of each neighbouring partition), static map, and push the
  // authority range to its game server.
  for (std::size_t p = 0; p < k; ++p) {
    // Overlap regions computed once on the K-partition map.
    const auto base_regions = build_overlap_regions(
        static_map, ServerId(p * m + 1), options_.spec.visibility_radius,
        options_.config.metric);
    // Expand each peer partition into its M replica routers.
    std::vector<OverlapRegionWire> expanded = base_regions;
    for (auto& region : expanded) {
      std::vector<ServerId> servers;
      std::vector<NodeId> nodes;
      for (std::size_t i = 0; i < region.peer_servers.size(); ++i) {
        const std::size_t peer_partition =
            (region.peer_servers[i].value() - 1) / m;
        for (std::size_t r = 0; r < m; ++r) {
          servers.push_back(ServerId(peer_partition * m + r + 1));
          nodes.push_back(router_ptrs_[peer_partition * m + r]->node_id());
        }
      }
      region.peer_servers = std::move(servers);
      region.peer_matrix_nodes = std::move(nodes);
    }

    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t idx = p * m + r;
      ReplicaRouter::StaticWiring wiring;
      wiring.game_node = game_ptrs_[idx]->node_id();
      wiring.range = partitions_[p];
      for (std::size_t r2 = 0; r2 < m; ++r2) {
        if (r2 != r) {
          wiring.sibling_games.push_back(game_ptrs_[p * m + r2]->node_id());
        }
      }
      wiring.overlap = expanded;
      wiring.static_map = static_map;
      router_ptrs_[idx]->wire_static(std::move(wiring));

      // Hand the game server its (fixed) authority.
      MapRange range;
      range.new_range = partitions_[p];
      network_.send(router_ptrs_[idx]->node_id(),
                    game_ptrs_[idx]->node_id(),
                    encode_message(Message{range}));
    }
  }
  network_.run_until(network_.now() + SimTime::from_ms(50));
}

BotClient* ReplicatedDeployment::add_bot(Vec2 position,
                                         std::optional<Vec2> attraction,
                                         double attraction_spread) {
  std::size_t partition = 0;
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    if (partitions_[p].contains(position)) {
      partition = p;
      break;
    }
  }
  const std::size_t replica = next_replica_[partition]++ % options_.replicas;
  GameServer* home = game_ptrs_[partition * options_.replicas + replica];

  auto bot = std::make_unique<BotClient>(client_ids_.next(), options_.spec,
                                         options_.config.world, rng_.fork());
  network_.attach(bot.get());
  bot->set_attraction(attraction, attraction_spread);
  bot->join(home->node_id(), position);
  BotClient* raw = bot.get();
  bot_ptrs_.push_back(raw);
  bots_.push_back(std::move(bot));
  return raw;
}

std::size_t ReplicatedDeployment::total_clients() const {
  std::size_t n = 0;
  for (const GameServer* game : game_ptrs_) n += game->client_count();
  return n;
}

std::uint64_t ReplicatedDeployment::routing_bytes() const {
  std::uint64_t bytes = 0;
  for (const ReplicaRouter* router : router_ptrs_) {
    // Count bytes leaving each router toward games/routers.
    for (const ReplicaRouter* other : router_ptrs_) {
      bytes += network_.stats(router->node_id(), other->node_id()).bytes;
    }
    for (const GameServer* game : game_ptrs_) {
      bytes += network_.stats(router->node_id(), game->node_id()).bytes;
    }
  }
  return bytes;
}

}  // namespace matrix
