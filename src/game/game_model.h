// Game models — synthetic equivalents of the paper's three test games.
//
// The paper validated Matrix with BzFlag (tank shooter), Quake 2 (FPS), and
// Daimonin (RPG).  We cannot ship those engines, but Matrix never sees game
// logic — only traffic: packet rates, payload sizes, movement speed, and the
// visibility radius.  Each model therefore captures the *traffic signature*
// of its genre; docs/ARCHITECTURE.md ("Reproduction substitutions") records
// why this preserves the evaluation's behaviour.  The numbers are stated
// per model below.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace matrix {

/// Action opcodes shared by all models (the `kind` byte in ClientAction and
/// TaggedPacket; opaque to Matrix itself).
enum class ActionKind : std::uint8_t {
  kMove = 1,      ///< position update
  kFire = 2,      ///< shot with an aim point (proximal target)
  kChat = 3,      ///< chat line (bigger payload)
  kInteract = 4,  ///< NPC/object interaction
  kTeleport = 5,  ///< non-proximal interaction (distant target)
};

struct GameModelSpec {
  std::string name;

  /// Radius of visibility R (world units); the single most important knob —
  /// it determines overlap-region size and thus inter-server traffic.
  double visibility_radius = 60.0;
  /// Exceptional radius classes (paper §3.1: "The Matrix API does allow
  /// game servers to specify different visibility radii for exceptions,
  /// and internally creates distinct sets of overlap regions, each for a
  /// different R"), e.g. a commander/scrying view.
  std::vector<double> extra_radii;
  /// Fraction of clients whose events use radius class 1 (the first entry
  /// of extra_radii) instead of the default.  Assignment is a deterministic
  /// hash of the globally-unique client id, so it survives handoffs.
  double exceptional_radius_fraction = 0.0;

  /// Mean time between a client's actions (exponential-ish, jittered).
  SimTime action_interval = SimTime::from_ms(100);
  /// Avatar movement speed, world units/sec.
  double move_speed = 25.0;
  /// Server broadcast tick: one digest ServerUpdate per client per tick.
  SimTime update_tick = SimTime::from_ms(100);

  // Payload sizes (bytes) by action kind.
  std::size_t move_payload = 24;
  std::size_t fire_payload = 32;
  std::size_t chat_payload = 120;
  std::size_t interact_payload = 48;

  // Action mix (fractions of non-move actions; remainder are moves).
  double fire_fraction = 0.0;
  double chat_fraction = 0.0;
  double interact_fraction = 0.0;
  /// Fraction of actions that are non-proximal (teleport/global) — these
  /// exercise the MC lookup path.
  double non_proximal_fraction = 0.0;

  [[nodiscard]] std::size_t payload_size(ActionKind kind) const {
    switch (kind) {
      case ActionKind::kMove: return move_payload;
      case ActionKind::kFire: return fire_payload;
      case ActionKind::kChat: return chat_payload;
      case ActionKind::kInteract: return interact_payload;
      case ActionKind::kTeleport: return move_payload;
    }
    return move_payload;
  }

  [[nodiscard]] std::vector<double> all_radii() const {
    std::vector<double> radii{visibility_radius};
    radii.insert(radii.end(), extra_radii.begin(), extra_radii.end());
    return radii;
  }
};

/// BzFlag-like tank shooter: 10 Hz actions, brisk movement, frequent shots,
/// moderate visibility radius.  This is the paper's Fig. 2 game.
[[nodiscard]] inline GameModelSpec bzflag_like() {
  GameModelSpec spec;
  spec.name = "bzflag-like";
  spec.visibility_radius = 60.0;
  spec.action_interval = SimTime::from_ms(100);
  spec.move_speed = 25.0;
  spec.update_tick = SimTime::from_ms(100);
  spec.fire_fraction = 0.25;
  spec.chat_fraction = 0.01;
  spec.non_proximal_fraction = 0.001;
  return spec;
}

/// Quake2-like FPS: twitch movement at 20 Hz, small visibility radius,
/// heavy fire mix — the highest packet rate, smallest overlap regions.
[[nodiscard]] inline GameModelSpec quake_like() {
  GameModelSpec spec;
  spec.name = "quake-like";
  spec.visibility_radius = 35.0;
  spec.action_interval = SimTime::from_ms(50);
  spec.move_speed = 45.0;
  spec.update_tick = SimTime::from_ms(50);
  spec.fire_fraction = 0.35;
  spec.chat_fraction = 0.002;
  spec.non_proximal_fraction = 0.0005;
  return spec;
}

/// Daimonin-like RPG: slow 4 Hz actions, slow walking, chatty players and
/// NPC interactions, large visibility radius — low rate but wide overlap
/// regions, plus occasional town-portal teleports (non-proximal).
[[nodiscard]] inline GameModelSpec daimonin_like() {
  GameModelSpec spec;
  spec.name = "daimonin-like";
  spec.visibility_radius = 120.0;
  // A few "seers" (scrying spell) get a doubled visibility radius — the
  // exceptional-radius case the paper's API supports.
  spec.extra_radii = {240.0};
  spec.exceptional_radius_fraction = 0.05;
  spec.action_interval = SimTime::from_ms(250);
  spec.move_speed = 8.0;
  spec.update_tick = SimTime::from_ms(250);
  spec.fire_fraction = 0.05;
  spec.chat_fraction = 0.15;
  spec.interact_fraction = 0.20;
  spec.non_proximal_fraction = 0.01;
  return spec;
}

}  // namespace matrix
