// Flat open-address table of ghost entities, keyed by EntityId.
//
// Every TaggedPacket a game server receives updates (or inserts) the ghost
// replica of the acting remote avatar — at 10k-client scale that is millions
// of touches per run, and a node-based std::unordered_map pays a heap
// round-trip per insert and a cache miss per probe.  The ghost workload
// needs only three operations — upsert, bulk prune, clear — so this table
// stores Entity values inline with linear probing and handles removal by
// rebuilding (pruning runs once per load report, far off the hot path).
// No operation here is order-sensitive: iteration feeds order-independent
// bucket-count sums and prune keeps/drops each entry independently, so
// swapping table layouts cannot perturb traces.
#pragma once

#include <cstdint>
#include <vector>

#include "game/entity.h"
#include "util/hash_mix.h"

namespace matrix {

class GhostTable {
 public:
  /// Returns the ghost for `id`, inserting a default Entity (with `id` set)
  /// when absent.  The reference is valid until the next upsert.
  Entity& upsert(EntityId id) {
    if ((size_ + 1) * 2 > slots_.size()) grow();
    const std::size_t index = find_slot(id);
    Entity& slot = slots_[index];
    if (!slot.id.valid()) {
      slot.id = id;
      ++size_;
    }
    return slot;
  }

  /// Drops every entity for which `keep` returns false (bulk rebuild).
  template <typename Keep>
  void prune(Keep&& keep) {
    std::vector<Entity> survivors;
    survivors.reserve(size_);
    for (const Entity& slot : slots_) {
      if (slot.id.valid() && keep(slot)) survivors.push_back(slot);
    }
    if (survivors.size() == size_) return;  // nothing pruned
    for (Entity& slot : slots_) slot = Entity{};
    size_ = 0;
    for (const Entity& entity : survivors) upsert(entity.id) = entity;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entity& slot : slots_) {
      if (slot.id.valid()) fn(slot);
    }
  }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  [[nodiscard]] std::size_t find_slot(EntityId id) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = splitmix64(id.value()) & mask;
    while (slots_[i].id.valid() && slots_[i].id != id) i = (i + 1) & mask;
    return i;
  }

  void grow() {
    std::vector<Entity> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Entity{});
    size_ = 0;
    for (const Entity& slot : old) {
      if (slot.id.valid()) upsert(slot.id) = slot;
    }
  }

  std::vector<Entity> slots_;  // id.valid() marks an occupied slot
  std::size_t size_ = 0;
};

}  // namespace matrix
