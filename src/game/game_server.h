// Generic game server (paper §3.2.2).
//
// "The game server is the software that stores the state of the game world
// and coordinates the activity of the players."  This implementation is the
// game-side half of the Matrix contract, written only against the MatrixPort
// API — exactly the modification surface the paper claims a real game needs
// ("relatively simple modifications to the server code"):
//
//   * owns client sessions, avatars, and map objects in its authority range;
//   * tags every client packet with world coordinates and forwards it to
//     Matrix (it never talks to other game servers directly, except through
//     Matrix relays);
//   * applies range-verified remote events from Matrix to local ghosts and
//     rebroadcasts them to interested local clients;
//   * reports load periodically;
//   * obeys MapRange orders: transfers map-object state, hands off clients
//     to the named successor, and acknowledges with ShedDone;
//   * migrates clients that walk out of its range, using Matrix's owner
//     lookup to find the right destination;
//   * enforces the admission valve (src/control/): its Matrix server pushes
//     NORMAL/SOFT/HARD via AdmissionUpdate, and NEW joins are denied (HARD)
//     or token-budgeted (SOFT) with JoinDeny/JoinDefer.  Resumed joins —
//     redirects and boundary migrations — always pass: protection sheds new
//     load, never live sessions;
//   * optionally runs the surge-queue "waiting room"
//     (src/control/surge_queue.h): gated joins are parked in a bounded
//     priority queue (RESUME > VIP > NORMAL, aged against starvation) and
//     drained as the token budget refills or the valve relaxes, with
//     QueueUpdate position/ETA notifications replacing client-side
//     defer-retry loops;
//   * under coordinator-led global admission (src/control/
//     global_admission.h) it composes the relayed AdmissionDirective floor
//     with the locally pushed valve state (strictest wins), swaps the
//     directive's token-budget share into its join bucket, bounds the VIP
//     share of each drain burst (`priority.vip_drain_cap`), and — while a
//     directive is active — hands parked joins displaced by a split or
//     reclaim to the server that now owns their region (class and accrued
//     age preserved) instead of flushing them to client-side retry.
//
// Game-genre specifics (rates, payload sizes, radius) come from the injected
// GameModelSpec; the server logic itself is game-agnostic.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "api/matrix_port.h"
#include "control/admission.h"
#include "control/control_plane.h"
#include "control/surge_queue.h"
#include "control/token_bucket.h"
#include "core/config.h"
#include "core/protocol_node.h"
#include "game/entity.h"
#include "game/ghost_table.h"
#include "game/game_model.h"
#include "policy/load_view.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "util/stats.h"

namespace matrix {

class GameServer : public ProtocolNode {
 public:
  GameServer(ServerId id, GameModelSpec spec, Config config)
      : id_(id), spec_(std::move(spec)), config_(std::move(config)) {}

  /// Connects this game server to its co-located Matrix server.  Must be
  /// called after both nodes are attached to the network.
  void wire(NodeId matrix_node);

  /// Begins periodic load reporting and update ticks.
  void start();

  /// Seeds `count` map objects uniformly over `area` (deployment-time, on
  /// root servers only; subsequent ownership moves via state transfer).
  void spawn_map_objects(std::size_t count, const Rect& area, Rng& rng);

  /// Shard rebalancing moved this server: re-bind the control plane's
  /// tracer pointer to the new owner shard's deferred tracer.
  void on_shard_migrated() override;

  // ---- observability --------------------------------------------------------

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ServerId server_id() const { return id_; }
  [[nodiscard]] const Rect& authority() const { return authority_; }
  [[nodiscard]] std::size_t client_count() const { return sessions_.size(); }
  [[nodiscard]] std::size_t map_object_count() const {
    return map_objects_.size();
  }
  [[nodiscard]] std::size_t ghost_count() const { return ghosts_.size(); }
  [[nodiscard]] const GameModelSpec& spec() const { return spec_; }
  /// Admission state last pushed by the co-located Matrix server.
  [[nodiscard]] AdmissionState admission_state() const {
    return admission_state_;
  }
  /// The state the join gate actually enforces: the pushed valve state
  /// composed with the coordinator's directive floor, strictest wins.
  [[nodiscard]] AdmissionState effective_admission_state() const {
    return compose_admission(admission_state_, directive_floor_);
  }
  /// True while a coordinator directive is in force here.
  [[nodiscard]] bool directive_active() const { return directive_active_; }
  /// This server's control-plane failsafe view (freshness is driven by
  /// McHeartbeats relayed through the co-located Matrix server).
  [[nodiscard]] const ControlPlane& control_plane() const {
    return control_plane_;
  }
  [[nodiscard]] FailsafeState failsafe_state() const {
    return control_plane_.state();
  }
  /// The surge queue ("waiting room"); empty forever unless
  /// Config::admission.priority.queue_enabled.
  [[nodiscard]] const SurgeQueue& surge_queue() const { return surge_queue_; }
  /// This server's instantaneous load in the shared LoadSignals vocabulary
  /// (policy/load_view.h) — the one snapshot LoadReport, the admission
  /// valve, and the coordinator's LoadDigest aggregate all derive from.
  [[nodiscard]] LoadSignals local_signals() const;

  struct Stats {
    std::uint64_t hellos = 0;
    std::uint64_t actions = 0;
    std::uint64_t unknown_client_actions = 0;  ///< mid-switch strays
    std::uint64_t remote_events = 0;
    std::uint64_t updates_sent = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t clients_redirected = 0;
    std::uint64_t clients_migrated = 0;  ///< walked across a boundary
    std::uint64_t sheds = 0;
    std::uint64_t state_objects_sent = 0;
    std::uint64_t state_objects_received = 0;
    std::uint64_t load_reports = 0;
    std::uint64_t joins_denied = 0;    ///< HARD admission refusals
    std::uint64_t joins_deferred = 0;  ///< SOFT token budget exhausted
    /// Resumed joins (redirect/migration) that bypassed a non-NORMAL valve.
    std::uint64_t resumes_admitted = 0;
    // Surge queue (src/control/surge_queue.h); parked/drained/overflow
    // tallies live in SurgeQueue::Stats (see surge_queue()).
    std::uint64_t queue_updates_sent = 0;
    /// Coordinator directives applied (global admission).
    std::uint64_t directives_applied = 0;
    /// Cross-server queue handoffs: messages sent on split/reclaim, and
    /// entries from received handoffs this server could not adopt
    /// (fell back to JoinDefer).
    std::uint64_t queue_handoffs_sent = 0;
    std::uint64_t queue_handoff_rejected = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  void on_message(const Message& message, const Envelope& envelope) override;
  /// Frame fast path: forwarded TaggedPackets and ClientActions — the two
  /// per-message hot paths — are handled from zero-copy partial parses,
  /// skipping the Message-variant decode (neither consumes the payload
  /// bytes: remote events update ghosts, actions re-tag a fresh payload).
  bool on_frame(const Envelope& envelope) override;

 private:
  struct Session {
    NodeId client_node;
    EntityId avatar;
    Vec2 position;
    std::uint32_t migrate_query_seq = 0;  ///< nonzero while migration pending
  };

  // client traffic
  void handle_hello(const ClientHello& hello, const Envelope& envelope);
  void handle_action(const ClientAction& action, const Envelope& envelope);
  void handle_action_core(ClientId client, std::uint8_t kind_byte,
                          Vec2 position, const std::optional<Vec2>& target,
                          std::uint32_t seq, SimTime sent_at,
                          const Envelope& envelope);
  void handle_bye(const ClientBye& bye);

  // Matrix callbacks
  void handle_remote_packet(const TaggedPacket& packet);
  void apply_remote_event(EntityId entity, ClientId client, Vec2 origin,
                          const std::optional<Vec2>& target,
                          std::uint8_t radius_class, SimTime sent_at,
                          std::uint8_t kind);
  void handle_map_range(const MapRange& range);
  void handle_state_transfer(const StateTransfer& transfer);
  void handle_client_state(const ClientStateTransfer& transfer);
  void handle_owner_reply(const OwnerReply& reply);
  void handle_admission(const AdmissionUpdate& update);
  void handle_directive(const AdmissionDirective& directive);
  void handle_queue_handoff(const QueueHandoff& handoff);
  // Control-plane failsafe (src/control/control_plane.h): heartbeat intake,
  // the degradation tick, and the FALLBACK entry hook that rescinds frozen
  // coordinator state in favour of the local valve.
  void handle_heartbeat(const McHeartbeat& beat);
  void schedule_failsafe_tick();
  void on_failsafe_degraded();
  /// The admission gate for a fresh (non-resume) join; true ⇒ admit.
  [[nodiscard]] bool admit_join(const ClientHello& hello, NodeId client_node);
  /// Trace-layer bookkeeping (src/obs/) for a refused join: records the
  /// deny/defer event and retires the client's open admit/queue-wait spans.
  /// No-ops when tracing is disabled.
  void trace_join_deferred(ClientId client);
  void trace_join_denied(ClientId client);
  /// Creates the session and sends Welcome (the post-gate half of a join).
  void admit_session(ClientId client, NodeId client_node, Vec2 position,
                     std::uint32_t redirect_seq);

  // surge queue (src/control/surge_queue.h)
  void park_join(const ClientHello& hello, NodeId client_node);
  /// Admits from the queue while the valve and token budget allow.
  void drain_surge_queue();
  /// Position/ETA notification to one waiting client.  `position` is the
  /// client's 1-based rank (callers already hold the drain order; passing
  /// it in keeps the notification sweep O(n log n), not O(n² log n)).
  void send_queue_update(ClientId client, NodeId client_node,
                         std::uint32_t position, std::uint32_t depth);
  void schedule_queue_tick();
  /// Zeroes the vip_drain_cap tallies once the room is empty — called on
  /// EVERY path that can empty it (drain, flush, handoff, ClientBye), so
  /// each occupancy episode starts with a fresh fairness window.
  void reset_drain_fairness_if_empty();
  /// Sends every parked join back to client-side retry (server lost its
  /// range, or is shutting its waiting room).
  void flush_surge_queue();
  /// True while displaced parked joins should be handed to the new owner
  /// instead of flushed (global admission directive active).
  [[nodiscard]] bool queue_handoff_active() const;
  /// Hands `entries` to `to_game` via Matrix (no-op on empty).
  void send_queue_handoff(std::vector<SurgeEntry> entries, NodeId to_game);

  void redirect_client(ClientId client, Session& session, NodeId to_game,
                       ServerId to_server);
  void broadcast_event(Vec2 origin, double radius, SimTime origin_sent_at,
                       std::uint8_t kind, ClientId actor,
                       std::uint32_t actor_seq);
  void maybe_migrate(ClientId client, Session& session);
  void schedule_load_report();
  void schedule_update_tick();
  [[nodiscard]] LoadReport build_load_report();
  [[nodiscard]] double radius_for(std::uint8_t radius_class) const;
  /// Deterministic exceptional-radius assignment by client id (stable
  /// across handoffs because client ids are globally unique).
  [[nodiscard]] std::uint8_t radius_class_for(ClientId client) const;

  ServerId id_;
  GameModelSpec spec_;
  Config config_;
  std::unique_ptr<MatrixPort> port_;

  Rect authority_;
  /// The per-tick hot table (median/fan-out/estimate sweeps): sorted-vector
  /// storage, ascending-ClientId iteration exactly like the std::map it
  /// replaced (send order is trace-visible — the golden hashes pin it).
  FlatMap<ClientId, Session> sessions_;
  std::map<EntityId, Entity> map_objects_;
  /// Ghost replicas of remote avatars, updated once per forwarded packet —
  /// a hot-path table (flat open-address storage; see game/ghost_table.h
  /// for why iteration order cannot perturb traces).
  GhostTable ghosts_;
  /// Avatar state that arrived (ClientStateTransfer) before the client's
  /// hello; consumed when the hello lands.
  FlatMap<ClientId, Entity> pending_avatars_;

  /// Events accumulated since the last update tick, flushed as one digest
  /// ServerUpdate per interested client (real servers batch exactly like
  /// this; per-event broadcast would melt both the real and simulated NIC).
  struct PendingEvent {
    Vec2 origin;
    double radius;
    SimTime sent_at;
    std::uint8_t kind;
  };
  std::vector<PendingEvent> pending_events_;
  /// Oldest sent_at among pending_events_ (valid while non-empty),
  /// maintained on push so the update tick does not rescan the batch.
  SimTime pending_oldest_{};

  void push_pending(const PendingEvent& event) {
    if (pending_events_.empty() || event.sent_at < pending_oldest_) {
      pending_oldest_ = event.sent_at;
    }
    pending_events_.push_back(event);
  }

  /// Scratch bucket grid for the update tick's visible-entity estimate: an
  /// epoch-stamped open-address table (linear probing, ≤25% load factor)
  /// kept across ticks.  Epoch stamping makes "clear" a counter increment,
  /// so the tick performs no allocation and no table wipe in steady state.
  /// Count sums are order-independent, so determinism is unaffected.
  std::vector<std::uint64_t> grid_keys_;
  std::vector<std::uint32_t> grid_counts_;
  std::vector<std::uint32_t> grid_stamps_;
  std::uint32_t grid_epoch_ = 0;

  void grid_prepare(std::size_t entries);
  void grid_bump(std::uint64_t key);
  [[nodiscard]] std::uint32_t grid_count(std::uint64_t key) const;

  std::uint32_t next_redirect_seq_ = 1;
  std::uint32_t next_query_seq_ = 1;
  std::uint64_t next_object_serial_ = 1;
  std::uint64_t started_epoch_ = 0;
  bool started_ = false;
  std::uint64_t msgs_since_report_ = 0;
  SimTime last_report_at_{};

  // Admission enforcement (src/control/): the Matrix server decides the
  // state; this server spends the SOFT-mode token budget locally so no
  // per-join round trip exists.
  AdmissionState admission_state_ = AdmissionState::kNormal;
  TokenBucket join_bucket_{config_.admission.token_rate_per_sec,
                           config_.admission.token_burst};
  // Coordinator-led global admission (src/control/global_admission.h):
  // floor composed into the gate, token share swapped into join_bucket_.
  AdmissionState directive_floor_ = AdmissionState::kNormal;
  bool directive_active_ = false;
  /// Epoch/seq admission for every coordinator-originated state flip
  /// (AdmissionUpdate, AdmissionDirective, relayed McHeartbeat) plus the
  /// heartbeat-freshness failsafe state machine.  Replaces the old ad-hoc
  /// admission_seq_seen_ / directive_seq_seen_ watermarks.
  ControlPlane control_plane_{config_.failsafe};
  // Surge queue (src/control/surge_queue.h): the server-owned waiting room
  // replacing client-side defer-retry when enabled.
  SurgeQueue surge_queue_{config_.admission.priority};
  bool queue_tick_scheduled_ = false;
  /// Fairness tallies for `priority.vip_drain_cap`: admissions (and VIP
  /// admissions) since the room last became non-empty.  Persist across
  /// drain calls so a token-bound one-admit-per-tick drain still converges
  /// to the capped share; reset when the room empties.
  std::uint64_t drain_vip_ = 0;
  std::uint64_t drain_total_ = 0;

  /// Gated fresh joins seen — only advanced when the TEST-ONLY
  /// Config::fault.swallow_gated_join_every knob is armed.
  std::uint64_t fault_gated_seen_ = 0;

  Stats stats_;
};

}  // namespace matrix
