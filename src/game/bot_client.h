// Bot clients — the reproduction's players.
//
// Each bot is a scripted game client: it wanders the world (optionally
// pulled toward a hotspot), emits actions at its game model's rate, and is
// entirely unaware of Matrix — it only ever talks to "its" game server and
// obeys Redirect orders, exactly the transparency the paper's §3.2.1 claims
// for real clients.
//
// Bots double as the measurement instruments of the user-study substitute:
//   * self latency    — own action → ack from the home server;
//   * observer latency — a remote event's origin timestamp → digest arrival;
//   * switch latency  — Redirect received → Welcome from the new server;
//   * time-to-admit   — first join attempt → first Welcome (the waiting-room
//     metric: how long the valve + surge queue kept the player out).
//
// When the server runs the surge queue (src/control/surge_queue.h) a gated
// bot receives QueueUpdate instead of JoinDefer: it parks quietly and waits
// for the server to admit it — no retry traffic at all.  A bot can be
// flagged VIP (set_vip) to ride the queue's priority classes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/protocol_node.h"
#include "game/game_model.h"
#include "geometry/rect.h"
#include "util/rng.h"
#include "util/stats.h"

namespace matrix {

class BotClient : public ProtocolNode {
 public:
  BotClient(ClientId id, GameModelSpec spec, Rect world, Rng rng)
      : id_(id),
        spec_(std::move(spec)),
        world_(world),
        rng_(rng) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ClientId client_id() const { return id_; }
  [[nodiscard]] Vec2 position() const { return position_; }
  [[nodiscard]] bool connected() const { return connected_; }
  /// True once any Welcome has been received — distinguishes an admitted
  /// client (whose session must never be cut) from one that was denied or
  /// is still deferred at the valve.
  [[nodiscard]] bool ever_connected() const { return ever_connected_; }
  /// True while a JoinDefer retry is scheduled.
  [[nodiscard]] bool defer_pending() const { return defer_pending_; }
  /// True while parked in a server-side surge queue (QueueUpdate received,
  /// Welcome still pending).
  [[nodiscard]] bool queue_pending() const { return queued_; }
  [[nodiscard]] NodeId current_server() const { return server_node_; }

  /// Marks this bot as VIP for the surge queue's priority classes.  Takes
  /// effect on the next join().
  void set_vip(bool vip) { vip_ = vip; }
  [[nodiscard]] bool vip() const { return vip_; }

  /// Time of the first join() attempt ever (valid once ever_joined()).
  /// With time_to_admit_ms this lets a bench censor never-admitted bots at
  /// run end instead of silently dropping them from wait statistics.
  [[nodiscard]] bool ever_joined() const { return ever_joined_; }
  [[nodiscard]] SimTime first_join_at() const { return first_join_at_; }

  /// Connects to `game_server` at `position` and starts the action loop.
  void join(NodeId game_server, Vec2 position);

  /// Says goodbye and stops acting.  The bot can join() again later.
  void leave();

  /// Pulls the bot's movement toward `point` (std::nullopt resumes free
  /// wandering).  `spread` is the standard deviation of the bot's waypoints
  /// around the point — the hotspot's footprint.  A town-square hotspot has
  /// a footprint of tens to hundreds of world units; this is what lets map
  /// cuts eventually divide the crowd (and what the paper's Fig. 2 implies,
  /// since its 600-client hotspot was absorbed by ~4 servers).
  void set_attraction(std::optional<Vec2> point, double spread = 15.0) {
    attraction_ = point;
    attraction_spread_ = spread;
  }
  /// The hotspot this bot is pinned to, if any — lets a bench attribute
  /// bots to their surge center without re-deriving it from positions.
  [[nodiscard]] const std::optional<Vec2>& attraction() const {
    return attraction_;
  }

  // ---- measurement ----------------------------------------------------------

  struct Metrics {
    Histogram self_latency_ms;      ///< action → own ack
    Histogram observer_latency_ms;  ///< remote event origin → digest arrival
    Histogram switch_latency_ms;    ///< redirect → welcome
    std::uint64_t actions_sent = 0;
    std::uint64_t updates_received = 0;
    std::uint64_t switches = 0;
    std::uint64_t joins_denied = 0;    ///< JoinDeny received (gave up)
    std::uint64_t joins_deferred = 0;  ///< JoinDefer received (will retry)
    std::uint64_t queue_updates = 0;   ///< QueueUpdate received (waiting room)
    std::uint32_t max_queue_position = 0;  ///< worst rank seen while parked
    /// First join attempt → first Welcome, in ms; negative while never
    /// admitted.  The per-class drain metric of bench_surge_queue.
    double time_to_admit_ms = -1.0;
  };
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }

 protected:
  void on_message(const Message& message, const Envelope& envelope) override;
  /// Frame fast path: ServerUpdates — the one message a bot receives at
  /// tick rate — are handled from a zero-copy partial parse (only ack_seq
  /// and the origin timestamp matter; the digest payload is opaque).
  bool on_frame(const Envelope& envelope) override;

 private:
  void schedule_next_action();
  void act();
  void move(double dt_sec);
  [[nodiscard]] ActionKind choose_kind();

  ClientId id_;
  GameModelSpec spec_;
  Rect world_;
  Rng rng_;

  NodeId server_node_;
  bool connected_ = false;
  bool playing_ = false;
  bool ever_connected_ = false;
  bool defer_pending_ = false;
  bool queued_ = false;  ///< parked in a server-side surge queue
  bool vip_ = false;
  bool ever_joined_ = false;
  SimTime first_join_at_{};  ///< for the time-to-admit metric
  std::uint64_t play_epoch_ = 0;  ///< guards stale action timers

  Vec2 position_;
  Vec2 waypoint_;
  std::optional<Vec2> attraction_;
  double attraction_spread_ = 15.0;
  SimTime last_move_at_{};

  std::uint32_t next_seq_ = 1;
  // Outstanding action timestamps for self-latency pairing: a fixed ring
  // keyed by seq, overwritten as newer actions arrive — zero per-action
  // allocation (this is the bot hot path).  A sample is lost only when the
  // ack trails its action by a full window of newer actions (≥12.8 s at
  // 10 Hz) — wider coverage under ack delay than the old 64-entry bounded
  // map, which also evicted its oldest unacked entries in that regime.
  struct PendingAck {
    std::uint32_t seq = 0;  ///< 0 = empty/consumed
    SimTime sent_at{};
  };
  static constexpr std::size_t kOutstandingWindow = 128;
  std::array<PendingAck, kOutstandingWindow> outstanding_{};

  // Switch measurement.
  bool switch_pending_ = false;
  std::uint32_t switch_seq_ = 0;
  SimTime redirect_received_at_{};

  Metrics metrics_;
};

}  // namespace matrix
