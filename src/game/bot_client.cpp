#include "game/bot_client.h"

#include <algorithm>
#include <sstream>

namespace matrix {

std::string BotClient::name() const {
  std::ostringstream oss;
  oss << "client-" << id_.value();
  return oss.str();
}

void BotClient::join(NodeId game_server, Vec2 position) {
  server_node_ = game_server;
  position_ = world_.clamp(position);
  waypoint_ = position_;
  playing_ = true;
  connected_ = false;
  defer_pending_ = false;
  queued_ = false;
  last_move_at_ = now();
  ++play_epoch_;
  if (!ever_joined_) {
    ever_joined_ = true;
    first_join_at_ = now();
  }

  ClientHello hello;
  hello.client = id_;
  hello.position = position_;
  hello.priority = vip_ ? 1 : 0;
  send(server_node_, hello);
  schedule_next_action();
}

void BotClient::leave() {
  if (!playing_ && !defer_pending_ && !queued_) return;
  playing_ = false;
  defer_pending_ = false;  // cancels a scheduled JoinDefer retry
  queued_ = false;         // ClientBye also removes us from the surge queue
  connected_ = false;
  ++play_epoch_;
  send(server_node_, ClientBye{id_});
}

bool BotClient::on_frame(const Envelope& envelope) {
  const std::vector<std::uint8_t>& frame = envelope.payload;
  if (frame.empty()) return false;
  if (frame[0] == kQueueUpdateWireType) {
    // Waiting-room ping: sent to every parked client on every drain tick, so
    // a deep surge queue makes this the second-hottest client-bound frame.
    // Mirrors the QueueUpdate branch of on_message exactly.
    const auto view = parse_queue_update_frame(frame);
    if (!view) return false;  // malformed: the generic path counts it
    if ((!playing_ && !queued_) || connected_ || view->client != id_) {
      return true;
    }
    server_node_ = envelope.src;
    ++metrics_.queue_updates;
    metrics_.max_queue_position =
        std::max(metrics_.max_queue_position, view->position);
    if (!queued_) {
      queued_ = true;
      playing_ = false;
      defer_pending_ = false;
      ++play_epoch_;  // parks the action loop
    }
    return true;
  }
  if (frame[0] != kServerUpdateWireType) return false;
  const auto view = parse_server_update_frame(frame);
  if (!view) return false;  // malformed: the generic path counts it
  if (!playing_) return true;
  ++metrics_.updates_received;
  if (view->ack_seq != 0) {
    PendingAck& slot = outstanding_[view->ack_seq % kOutstandingWindow];
    if (slot.seq == view->ack_seq) {
      metrics_.self_latency_ms.add((now() - slot.sent_at).ms());
      slot.seq = 0;  // consumed; a duplicate ack won't pair twice
    }
  } else if (view->origin_sent_at.us() > 0) {
    metrics_.observer_latency_ms.add((now() - view->origin_sent_at).ms());
  }
  return true;
}

void BotClient::on_message(const Message& message, const Envelope& envelope) {
  if (const auto* welcome = std::get_if<Welcome>(&message)) {
    if (!ever_connected_) {
      metrics_.time_to_admit_ms = (now() - first_join_at_).ms();
    }
    // The admitting server may differ from the one we helloed (the surge
    // queue hands parked joins across servers on split/merge); follow it.
    server_node_ = envelope.src;
    connected_ = true;
    ever_connected_ = true;
    if (queued_) {
      // The surge queue drained us into a session: resume acting (the
      // action loop was parked along with the join).
      queued_ = false;
      playing_ = true;
      last_move_at_ = now();
      ++play_epoch_;
      schedule_next_action();
    }
    if (switch_pending_ && welcome->redirect_seq == switch_seq_) {
      switch_pending_ = false;
      metrics_.switch_latency_ms.add((now() - redirect_received_at_).ms());
      ++metrics_.switches;
    }
    return;
  }
  if (const auto* redirect = std::get_if<Redirect>(&message)) {
    if (!playing_) return;
    // Switch servers: reconnect, resuming our avatar.  The paper's design
    // makes this invisible to the player; switch latency tells us whether
    // that claim holds.
    switch_pending_ = true;
    switch_seq_ = redirect->redirect_seq;
    redirect_received_at_ = now();
    server_node_ = redirect->new_game_node;
    ClientHello hello;
    hello.client = id_;
    hello.position = position_;
    hello.resume = true;
    hello.redirect_seq = redirect->redirect_seq;
    hello.priority = vip_ ? 1 : 0;
    send(server_node_, hello);
    return;
  }
  if (const auto* update = std::get_if<ServerUpdate>(&message)) {
    if (!playing_) return;
    ++metrics_.updates_received;
    if (update->ack_seq != 0) {
      PendingAck& slot = outstanding_[update->ack_seq % kOutstandingWindow];
      if (slot.seq == update->ack_seq) {
        metrics_.self_latency_ms.add((now() - slot.sent_at).ms());
        slot.seq = 0;  // consumed; a duplicate ack won't pair twice
      }
    } else if (update->origin_sent_at.us() > 0) {
      metrics_.observer_latency_ms.add((now() - update->origin_sent_at).ms());
    }
    return;
  }
  if (const auto* queue = std::get_if<QueueUpdate>(&message)) {
    if ((!playing_ && !queued_) || connected_ || queue->client != id_) return;
    // Parked in the server's surge queue: stop acting and wait quietly —
    // the server owns the retry loop now and will Welcome us when a slot
    // opens.  No timer, no retry traffic.  The queue itself can move
    // between servers (handoff on split/merge); track whoever holds us so
    // a leave() reaches the right waiting room.
    server_node_ = envelope.src;
    ++metrics_.queue_updates;
    metrics_.max_queue_position =
        std::max(metrics_.max_queue_position, queue->position);
    if (!queued_) {
      queued_ = true;
      playing_ = false;
      defer_pending_ = false;
      ++play_epoch_;  // parks the action loop
    }
    return;
  }
  if (const auto* deny = std::get_if<JoinDeny>(&message)) {
    if ((!playing_ && !queued_) || connected_ || deny->client != id_) return;
    // Refused at the valve (admission HARD, or the waiting room overflowed):
    // give up.  A real launcher would surface "servers full, retry later";
    // the scenario's measure is simply how many players were turned away.
    ++metrics_.joins_denied;
    playing_ = false;
    queued_ = false;
    ++play_epoch_;
    return;
  }
  if (const auto* defer = std::get_if<JoinDefer>(&message)) {
    if ((!playing_ && !queued_) || connected_ || defer->client != id_) return;
    // Throttled (admission SOFT), or flushed out of a waiting room whose
    // server lost its range: stop acting and retry after the server's
    // hint, jittered so a deferred cohort does not stampede back in phase.
    // A handoff the destination could not adopt defers from the NEW owner;
    // retry wherever the defer came from.
    server_node_ = envelope.src;
    ++metrics_.joins_deferred;
    playing_ = false;
    queued_ = false;
    defer_pending_ = true;
    const std::uint64_t epoch = ++play_epoch_;
    const double jitter = 1.0 + rng_.next_double() * 0.5;
    const auto delay =
        SimTime::from_ms(defer->retry_after.ms() * jitter);
    network()->events_for(node_id()).schedule_after(delay, [this, epoch] {
      if (playing_ || play_epoch_ != epoch || !defer_pending_) return;
      join(server_node_, position_);
    });
    return;
  }
}

void BotClient::schedule_next_action() {
  const std::uint64_t epoch = play_epoch_;
  // Jittered inter-action gap: exponential with the model's mean, clamped
  // so a bot neither bursts unrealistically nor goes silent.
  const double mean_ms = spec_.action_interval.ms();
  const double gap_ms = std::clamp(rng_.next_exponential(mean_ms),
                                   mean_ms * 0.25, mean_ms * 4.0);
  network()->events_for(node_id()).schedule_after(SimTime::from_ms(gap_ms), [this, epoch] {
    if (!playing_ || play_epoch_ != epoch) return;
    act();
    schedule_next_action();
  });
}

ActionKind BotClient::choose_kind() {
  const double roll = rng_.next_double();
  double acc = spec_.non_proximal_fraction;
  if (roll < acc) return ActionKind::kTeleport;
  acc += spec_.fire_fraction;
  if (roll < acc) return ActionKind::kFire;
  acc += spec_.chat_fraction;
  if (roll < acc) return ActionKind::kChat;
  acc += spec_.interact_fraction;
  if (roll < acc) return ActionKind::kInteract;
  return ActionKind::kMove;
}

void BotClient::move(double dt_sec) {
  // Waypoint wander, with the waypoint pinned near the attraction point
  // when a hotspot is active.
  const double arrive = std::max(2.0, spec_.move_speed * 0.2);
  if (Vec2::distance(position_, waypoint_) < arrive) {
    if (attraction_) {
      waypoint_ = world_.clamp(
          *attraction_ + Vec2{rng_.next_normal() * attraction_spread_,
                              rng_.next_normal() * attraction_spread_});
    } else {
      waypoint_ = {rng_.next_double_in(world_.x0(), world_.x1()),
                   rng_.next_double_in(world_.y0(), world_.y1())};
    }
  }
  const Vec2 direction = (waypoint_ - position_).normalized();
  const double step = std::min(spec_.move_speed * dt_sec,
                               Vec2::distance(position_, waypoint_));
  position_ = world_.clamp(position_ + direction * step);
}

void BotClient::act() {
  const double dt = (now() - last_move_at_).sec();
  last_move_at_ = now();
  move(dt);

  ClientAction action;
  action.client = id_;
  const ActionKind kind = choose_kind();
  action.kind = static_cast<std::uint8_t>(kind);
  action.position = position_;
  action.seq = next_seq_++;
  action.sent_at = now();

  if (kind == ActionKind::kFire) {
    // Aim somewhere within visual range.
    action.target = world_.clamp(
        position_ + Vec2{rng_.next_double_in(-1.0, 1.0),
                         rng_.next_double_in(-1.0, 1.0)} *
                        (spec_.visibility_radius * 0.8));
  } else if (kind == ActionKind::kTeleport) {
    // Non-proximal: anywhere in the world (town portal, map ping, ...).
    action.target = Vec2{rng_.next_double_in(world_.x0(), world_.x1()),
                         rng_.next_double_in(world_.y0(), world_.y1())};
  }

  action.payload.assign(spec_.payload_size(kind), 0);
  outstanding_[action.seq % kOutstandingWindow] = {action.seq, action.sent_at};
  send(server_node_, action);
  ++metrics_.actions_sent;
}

}  // namespace matrix
