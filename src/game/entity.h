// Game entities and their wire form.
//
// A game server's dynamic state is a set of entities: player avatars (bound
// to a client) and map objects (trees, buildings, power-ups).  Splits and
// reclaims move this state between servers (paper §3.2.2), so entities have
// a compact serialization used by StateTransfer blobs.  Static content (map
// textures, meshes) is NOT an entity — it is pre-cached and referenced by
// content keys only.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/vec2.h"
#include "util/codec.h"
#include "util/ids.h"

namespace matrix {

enum class EntityKind : std::uint8_t {
  kAvatar = 1,     ///< player-controlled; owned by a client session
  kMapObject = 2,  ///< world furniture; owned by the partition
  kGhost = 3,      ///< replica of a remote avatar seen across a boundary
};

struct Entity {
  EntityId id;
  EntityKind kind = EntityKind::kMapObject;
  Vec2 position;
  ClientId owner;        ///< valid only for avatars/ghosts
  std::uint32_t variant = 0;  ///< game-specific subtype (tree vs building...)

  void encode(ByteWriter& w) const {
    w.id(id);
    w.u8(static_cast<std::uint8_t>(kind));
    w.f64(position.x);
    w.f64(position.y);
    w.id(owner);
    w.u32(variant);
  }

  static Entity decode(ByteReader& r) {
    Entity e;
    e.id = r.id<EntityId>();
    e.kind = static_cast<EntityKind>(r.u8());
    e.position.x = r.f64();
    e.position.y = r.f64();
    e.owner = r.id<ClientId>();
    e.variant = r.u32();
    return e;
  }
};

/// Serializes a batch of entities into a StateTransfer blob.
[[nodiscard]] inline std::vector<std::uint8_t> encode_entities(
    const std::vector<Entity>& entities) {
  ByteWriter w;
  w.varint(entities.size());
  for (const Entity& e : entities) e.encode(w);
  return w.take();
}

/// Parses a StateTransfer blob back into entities; stops on malformed input.
[[nodiscard]] inline std::vector<Entity> decode_entities(
    std::span<const std::uint8_t> blob) {
  ByteReader r(blob);
  std::vector<Entity> out;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    out.push_back(Entity::decode(r));
  }
  return out;
}

/// Avatars get ids derived from their globally-unique client id, so two
/// servers can never mint clashing avatar ids during a handoff.
[[nodiscard]] constexpr EntityId avatar_entity_id(ClientId client) {
  return EntityId(client.value() | (1ULL << 63));
}

}  // namespace matrix
