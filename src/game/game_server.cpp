#include "game/game_server.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/hash_mix.h"
#include "util/log.h"

namespace matrix {

namespace {

/// Round a coordinate into a visibility-radius-sized bucket (for the
/// approximate visible-entity count used to size update digests).
std::int64_t bucket(double v, double cell) {
  return static_cast<std::int64_t>(std::floor(v / cell));
}

}  // namespace

void GameServer::grid_prepare(std::size_t entries) {
  std::size_t size = grid_keys_.size() < 64 ? 64 : grid_keys_.size();
  while (size < entries * 4) size *= 2;  // load factor ≤ 25%
  // Grow-only: shrinking on entity-count dips would re-allocate every tick
  // when the population straddles a power-of-two boundary.
  if (grid_keys_.size() != size) {
    grid_keys_.assign(size, 0);
    grid_counts_.assign(size, 0);
    grid_stamps_.assign(size, 0);
    grid_epoch_ = 0;
  }
  ++grid_epoch_;
}

void GameServer::grid_bump(std::uint64_t key) {
  const std::size_t mask = grid_keys_.size() - 1;
  std::size_t i = splitmix64(key) & mask;
  while (grid_stamps_[i] == grid_epoch_) {
    if (grid_keys_[i] == key) {
      ++grid_counts_[i];
      return;
    }
    i = (i + 1) & mask;
  }
  grid_stamps_[i] = grid_epoch_;
  grid_keys_[i] = key;
  grid_counts_[i] = 1;
}

std::uint32_t GameServer::grid_count(std::uint64_t key) const {
  const std::size_t mask = grid_keys_.size() - 1;
  std::size_t i = splitmix64(key) & mask;
  while (grid_stamps_[i] == grid_epoch_) {
    if (grid_keys_[i] == key) return grid_counts_[i];
    i = (i + 1) & mask;
  }
  return 0;
}

std::string GameServer::name() const {
  std::ostringstream oss;
  oss << "game-" << id_.value();
  return oss.str();
}

void GameServer::wire(NodeId matrix_node) {
  port_ = std::make_unique<MatrixPort>(network(), node_id(), matrix_node);
  port_->on_packet([this](const TaggedPacket& p) { handle_remote_packet(p); });
  port_->on_map_range([this](const MapRange& r) { handle_map_range(r); });
  port_->on_state_transfer(
      [this](const StateTransfer& t) { handle_state_transfer(t); });
  port_->on_client_state(
      [this](const ClientStateTransfer& t) { handle_client_state(t); });
  port_->on_owner_reply([this](const OwnerReply& r) { handle_owner_reply(r); });
  port_->on_admission(
      [this](const AdmissionUpdate& u) { handle_admission(u); });
  port_->on_directive(
      [this](const AdmissionDirective& d) { handle_directive(d); });
  port_->on_queue_handoff(
      [this](const QueueHandoff& h) { handle_queue_handoff(h); });
  port_->on_heartbeat([this](const McHeartbeat& b) { handle_heartbeat(b); });
}

void GameServer::handle_admission(const AdmissionUpdate& update) {
  if (control_plane_.admit(now(), {ControlKind::kAdmissionUpdate, 0,
                                   update.seq}) != ControlVerdict::kApply) {
    return;  // reordered/stale update
  }
  admission_state_ = admission_state_from_wire(update.state);
  // A relaxed valve is a drain opportunity: NORMAL empties the waiting room
  // outright, SOFT lets it spend whatever the bucket has accrued.
  if (!surge_queue_.empty()) {
    drain_surge_queue();
    if (!surge_queue_.empty()) schedule_queue_tick();
  }
}

void GameServer::handle_directive(const AdmissionDirective& directive) {
  if (control_plane_.admit(now(), {ControlKind::kDirective, 0,
                                   directive.seq}) != ControlVerdict::kApply) {
    return;  // reordered/stale — or held while the failsafe is degraded
  }
  directive_active_ = directive.active;
  directive_floor_ = directive.active
                         ? admission_state_from_wire(directive.floor)
                         : AdmissionState::kNormal;
  // Swap the deployment-wide budget share into the join bucket; a rescind
  // (or a shareless directive) restores the local config rate.
  const double rate = directive.active && directive.token_rate > 0.0
                          ? directive.token_rate
                          : config_.admission.token_rate_per_sec;
  join_bucket_.set_rate(now(), rate);
  ++stats_.directives_applied;
  network()->tracer().record(
      now(), obs::TraceKind::kDirectiveApplied, id_.value(), node_id().value(),
      directive.active ? static_cast<std::int64_t>(directive.floor) : 0);
  // A lowered floor or a fatter share may make the waiting room drainable.
  if (!surge_queue_.empty()) {
    drain_surge_queue();
    if (!surge_queue_.empty()) schedule_queue_tick();
  }
}

void GameServer::trace_join_deferred(ClientId client) {
  obs::Tracer& tracer = network()->tracer();
  tracer.record(now(), obs::TraceKind::kClientDeferred, client.value(),
                node_id().value());
  tracer.close_span(now(), obs::SpanKind::kQueueWait, client.value(),
                    /*success=*/false);
  tracer.close_span(now(), obs::SpanKind::kAdmit, client.value(),
                    /*success=*/false);
}

void GameServer::trace_join_denied(ClientId client) {
  obs::Tracer& tracer = network()->tracer();
  tracer.record(now(), obs::TraceKind::kClientDenied, client.value(),
                node_id().value());
  tracer.close_span(now(), obs::SpanKind::kQueueWait, client.value(),
                    /*success=*/false);
  tracer.close_span(now(), obs::SpanKind::kAdmit, client.value(),
                    /*success=*/false);
}

bool GameServer::admit_join(const ClientHello& hello, NodeId client_node) {
  if (!config_.admission.enabled) return true;
  if (hello.resume) {
    // Redirects and boundary migrations carry a live session; the valve
    // only sheds NEW load — a resume always passes, even to a server that
    // currently owns no range (seed behaviour).
    if (effective_admission_state() != AdmissionState::kNormal) {
      ++stats_.resumes_admitted;
    }
    return true;
  }
  if (authority_.empty()) {
    // Parked (reclaimed) or not yet activated: this server owns no range,
    // so a fresh session created here would play against nobody.
    // Reachable when a deferred client's retry races a reclaim; defer
    // again — if the server is re-granted the retry lands normally,
    // otherwise the client keeps backing off exactly as it would against
    // a full deployment.
    ++stats_.joins_deferred;
    trace_join_deferred(hello.client);
    send(client_node, JoinDefer{hello.client, config_.admission.defer_retry});
    return false;
  }
  if (config_.fault.swallow_gated_join_every != 0 &&
      effective_admission_state() != AdmissionState::kNormal &&
      ++fault_gated_seen_ % config_.fault.swallow_gated_join_every == 0) {
    // TEST-ONLY: the gated hello black-holes — no reply, no park, no trace
    // resolution.  The blackhole invariant must catch this.
    return false;
  }
  const bool waiting_room = config_.admission.priority.queue_enabled;
  switch (effective_admission_state()) {
    case AdmissionState::kNormal:
      return true;
    case AdmissionState::kSoft:
      // While anyone is parked, a fresh join may not race the waiting room
      // to the bucket — the queue owns the drain order.
      if ((!waiting_room || surge_queue_.empty()) &&
          join_bucket_.try_take(now())) {
        return true;
      }
      if (waiting_room) {
        park_join(hello, client_node);
        return false;
      }
      ++stats_.joins_deferred;
      trace_join_deferred(hello.client);
      send(client_node, JoinDefer{hello.client, config_.admission.defer_retry});
      return false;
    case AdmissionState::kHard:
      if (waiting_room) {
        // The waiting room replaces the outright refusal: the client parks
        // and is admitted when the valve reopens, instead of giving up.
        park_join(hello, client_node);
        return false;
      }
      ++stats_.joins_denied;
      trace_join_denied(hello.client);
      send(client_node, JoinDeny{hello.client, config_.admission.deny_retry});
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Surge queue (src/control/surge_queue.h)
// ---------------------------------------------------------------------------

void GameServer::park_join(const ClientHello& hello, NodeId client_node) {
  if (surge_queue_.contains(hello.client)) {
    // Duplicate hello (an impatient client re-asking): refresh its view of
    // the line rather than double-parking or bouncing it.
    send_queue_update(hello.client, client_node,
                      surge_queue_.position_of(hello.client, now()),
                      static_cast<std::uint32_t>(surge_queue_.size()));
    return;
  }
  const PriorityClass cls = hello.resume
                                ? PriorityClass::kResume
                                : priority_class_from_wire(hello.priority);
  if (!surge_queue_.enqueue(now(), hello.client, client_node, hello.position,
                            cls)) {
    // The waiting room itself is bounded; past capacity we are back to the
    // hard refusal (overflow is tallied in SurgeQueue::Stats).
    ++stats_.joins_denied;
    trace_join_denied(hello.client);
    send(client_node, JoinDeny{hello.client, config_.admission.deny_retry});
    return;
  }
  {
    obs::Tracer& tracer = network()->tracer();
    tracer.record(now(), obs::TraceKind::kClientQueued, hello.client.value(),
                  node_id().value(), static_cast<std::int64_t>(cls));
    tracer.open_span(now(), obs::SpanKind::kQueueWait, hello.client.value());
  }
  send_queue_update(hello.client, client_node,
                    surge_queue_.position_of(hello.client, now()),
                    static_cast<std::uint32_t>(surge_queue_.size()));
  schedule_queue_tick();
}

void GameServer::admit_session(ClientId client, NodeId client_node,
                               Vec2 position, std::uint32_t redirect_seq) {
  Session session;
  session.client_node = client_node;
  session.avatar = avatar_entity_id(client);
  session.position = position;
  if (auto it = pending_avatars_.find(client); it != pending_avatars_.end()) {
    // The avatar state beat the client here (normal handoff order).  The
    // client's own position report wins — it is fresher.
    pending_avatars_.erase(it);
  }
  sessions_[client] = session;

  obs::Tracer& tracer = network()->tracer();
  tracer.record(now(), obs::TraceKind::kClientAdmitted, client.value(),
                node_id().value(), redirect_seq);
  if (redirect_seq != 0) {
    // A resumed session: the client followed a Redirect here, closing the
    // handoff that redirect_client opened.
    tracer.close_span(now(), obs::SpanKind::kHandoff, client.value());
  } else {
    // A fresh admit (direct or drained from the waiting room): the wait is
    // over — both spans resolve into their latency histograms.
    tracer.close_span(now(), obs::SpanKind::kQueueWait, client.value());
    tracer.close_span(now(), obs::SpanKind::kAdmit, client.value());
  }

  Welcome welcome;
  welcome.client = client;
  welcome.avatar = session.avatar;
  welcome.authority = authority_;
  welcome.redirect_seq = redirect_seq;
  send(client_node, welcome);
}

void GameServer::drain_surge_queue() {
  // Paid-priority fairness: bound the VIP-effective share of the drain
  // while the room stays occupied.  The tallies persist ACROSS drain
  // calls (a token-bound drain may admit one entry per tick — per-call
  // counters would then skip VIPs on every tick for any cap < 1, turning
  // the bound into "VIPs always last") and reset when the room empties.
  // The ceil() allowance admits the first VIP of an episode for any
  // cap > 0.  The cap acts on EFFECTIVE class: RESUME (and anything aged
  // to RESUME) always passes, a NORMAL aged to VIP is capped like a paid
  // VIP; when the cap binds and a NORMAL entry waits, the NORMAL entry
  // takes the slot instead.
  const double vip_cap = config_.admission.priority.vip_drain_cap;
  while (!surge_queue_.empty() && !authority_.empty()) {
    const AdmissionState state = effective_admission_state();
    if (state == AdmissionState::kHard) break;
    if (state == AdmissionState::kSoft && !join_bucket_.try_take(now())) {
      break;
    }
    bool skip_vip = false;
    if (vip_cap < 1.0) {
      const double allowed = std::ceil(
          vip_cap * static_cast<double>(drain_total_ + 1) - 1e-9);
      skip_vip = static_cast<double>(drain_vip_ + 1) > allowed;
    }
    std::optional<SurgeEntry> entry = surge_queue_.pop(now(), skip_vip);
    if (!entry) {
      // Only VIP-effective entries remain; admitting one beats wasting the
      // token (the cap throttles VIPs relative to waiting NORMALs, it is
      // not a quota against an empty lane).
      entry = surge_queue_.pop(now());
    }
    if (!entry) break;
    ++drain_total_;
    if (surge_queue_.effective_class_at(*entry, now()) == PriorityClass::kVip) {
      ++drain_vip_;
    }
    admit_session(entry->client, entry->client_node, entry->position,
                  /*redirect_seq=*/0);
  }
  reset_drain_fairness_if_empty();
}

void GameServer::reset_drain_fairness_if_empty() {
  if (!surge_queue_.empty()) return;
  drain_vip_ = 0;
  drain_total_ = 0;
}

void GameServer::send_queue_update(ClientId client, NodeId client_node,
                                   std::uint32_t position,
                                   std::uint32_t depth) {
  QueueUpdate update;
  update.client = client;
  update.position = position;
  update.depth = depth;
  // Best-effort ETA at the SOFT drain rate — the bucket's CURRENT rate,
  // which is the directive's token-budget share while one is in force.  A
  // valve stuck in HARD drains nothing, so the hint is a floor, not a
  // promise.
  const double rate = join_bucket_.rate();
  update.eta = rate > 0.0
                   ? SimTime::from_sec(static_cast<double>(position) / rate)
                   : config_.admission.defer_retry;
  send(client_node, update);
  ++stats_.queue_updates_sent;
}

void GameServer::schedule_queue_tick() {
  if (queue_tick_scheduled_) return;
  queue_tick_scheduled_ = true;
  network()->events_for(node_id()).schedule_after(
      config_.admission.priority.update_interval, [this] {
        queue_tick_scheduled_ = false;
        drain_surge_queue();
        if (surge_queue_.empty()) return;
        const auto order = surge_queue_.ordered(now());
        const auto depth = static_cast<std::uint32_t>(order.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
          send_queue_update(order[i]->client, order[i]->client_node,
                            static_cast<std::uint32_t>(i + 1), depth);
        }
        schedule_queue_tick();
      });
}

void GameServer::flush_surge_queue() {
  // Parked joins cannot be admitted by a server that owns no range; hand
  // them back to the client-side retry loop (JoinDefer is transient — if
  // this server is re-granted, the retry lands normally).
  for (const SurgeEntry& entry : surge_queue_.flush(now())) {
    ++stats_.joins_deferred;
    trace_join_deferred(entry.client);
    send(entry.client_node,
         JoinDefer{entry.client, config_.admission.defer_retry});
  }
  reset_drain_fairness_if_empty();
}

bool GameServer::queue_handoff_active() const {
  return config_.admission.priority.queue_enabled &&
         config_.admission.global.enabled &&
         config_.admission.global.queue_handoff && directive_active_;
}

void GameServer::send_queue_handoff(std::vector<SurgeEntry> entries,
                                    NodeId to_game) {
  if (entries.empty()) return;
  QueueHandoff handoff;
  handoff.from_server = id_;
  handoff.to_game = to_game;
  handoff.entries.reserve(entries.size());
  obs::Tracer& tracer = network()->tracer();
  for (const SurgeEntry& entry : entries) {
    QueueHandoffEntry wire;
    wire.client = entry.client;
    wire.client_node = entry.client_node;
    wire.position = entry.position;
    wire.cls = static_cast<std::uint8_t>(entry.cls);
    wire.enqueued_at = entry.enqueued_at;
    handoff.entries.push_back(wire);
    // One sent event per entry: the conservation invariant
    // (src/fuzz/invariants.cpp) matches each against an adopt / defer /
    // duplicate-drop at the destination, and b carries the accrued-age
    // baseline the adopt-side event must reproduce.
    tracer.record(now(), obs::TraceKind::kQueueHandoffSent,
                  entry.client.value(), node_id().value(),
                  static_cast<std::int64_t>(to_game.value()),
                  entry.enqueued_at.us());
  }
  if (config_.fault.drop_queue_handoff) return;  // TEST-ONLY: entries vanish
  port_->transfer_queue(handoff);
  ++stats_.queue_handoffs_sent;
}

void GameServer::handle_queue_handoff(const QueueHandoff& handoff) {
  bool adopted_any = false;
  for (const QueueHandoffEntry& wire : handoff.entries) {
    // A client can race its own handoff (gave up and re-helloed here, or
    // was already admitted): never double-park, never demote a session.
    if (sessions_.count(wire.client) != 0 ||
        surge_queue_.contains(wire.client)) {
      network()->tracer().record(
          now(), obs::TraceKind::kQueueHandoffDrop, wire.client.value(),
          node_id().value(), sessions_.count(wire.client) != 0 ? 1 : 2);
      continue;
    }
    SurgeEntry entry;
    entry.client = wire.client;
    entry.client_node = wire.client_node;
    entry.position = wire.position;
    entry.cls = priority_class_from_handoff_wire(wire.cls);
    entry.enqueued_at = wire.enqueued_at;
    if (config_.fault.reset_handoff_age) {
      entry.enqueued_at = now();  // TEST-ONLY: accrued age lost in transit
    }
    const bool can_adopt = config_.admission.priority.queue_enabled &&
                           !authority_.empty() && surge_queue_.adopt(entry);
    if (!can_adopt) {
      // No waiting room to re-park in (capacity, no range, queue off):
      // fall back to client-side retry, exactly like a flush would have.
      ++stats_.queue_handoff_rejected;
      ++stats_.joins_deferred;
      trace_join_deferred(wire.client);
      send(wire.client_node,
           JoinDefer{wire.client, config_.admission.defer_retry});
      continue;
    }
    adopted_any = true;
    network()->tracer().record(
        now(), obs::TraceKind::kQueueHandoff, wire.client.value(),
        handoff.from_server.value(),
        static_cast<std::int64_t>(node_id().value()),
        entry.enqueued_at.us());
    send_queue_update(wire.client, wire.client_node,
                      surge_queue_.position_of(wire.client, now()),
                      static_cast<std::uint32_t>(surge_queue_.size()));
  }
  if (adopted_any) {
    drain_surge_queue();
    if (!surge_queue_.empty()) schedule_queue_tick();
  }
}

void GameServer::start() {
  if (started_) return;
  started_ = true;
  ++started_epoch_;
  last_report_at_ = now();
  schedule_load_report();
  schedule_update_tick();
  control_plane_.bind(&network()->tracer_for(node_id()), node_id().value());
  if (config_.failsafe.enabled) {
    control_plane_.start(now());
    schedule_failsafe_tick();
  }
}

void GameServer::on_shard_migrated() {
  control_plane_.bind(&network()->tracer_for(node_id()), node_id().value());
}

void GameServer::handle_heartbeat(const McHeartbeat& beat) {
  if (!config_.failsafe.enabled) return;
  control_plane_.admit(now(),
                       {ControlKind::kHeartbeat, beat.generation, beat.seq});
}

void GameServer::schedule_failsafe_tick() {
  const std::uint64_t epoch = started_epoch_;
  network()->events_for(node_id()).schedule_after(
      config_.failsafe.check_interval, [this, epoch] {
        if (!started_ || started_epoch_ != epoch) return;
        const bool was_fallback = control_plane_.fallback();
        if (control_plane_.tick(now()) && !was_fallback &&
            control_plane_.fallback()) {
          on_failsafe_degraded();
        }
        schedule_failsafe_tick();
      });
}

void GameServer::on_failsafe_degraded() {
  // FALLBACK: the coordinator (or the path to it) is gone — the directive
  // in force is a frozen snapshot that will never be rescinded.  Drop it
  // and run on the local valve alone, restoring the local token rate the
  // directive's budget share had displaced.
  if (directive_active_ || directive_floor_ != AdmissionState::kNormal) {
    directive_active_ = false;
    directive_floor_ = AdmissionState::kNormal;
    join_bucket_.set_rate(now(), config_.admission.token_rate_per_sec);
    MATRIX_INFO("game", name() << " failsafe FALLBACK: dropped directive "
                               << "floor, restored local token rate");
    // The relaxed gate may make the waiting room drainable right away.
    if (!surge_queue_.empty()) {
      drain_surge_queue();
      if (!surge_queue_.empty()) schedule_queue_tick();
    }
  }
}

void GameServer::spawn_map_objects(std::size_t count, const Rect& area,
                                   Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    Entity object;
    object.id = EntityId(0x4000'0000'0000'0000ULL + next_object_serial_++);
    object.kind = EntityKind::kMapObject;
    object.position = {rng.next_double_in(area.x0(), area.x1()),
                       rng.next_double_in(area.y0(), area.y1())};
    object.variant = static_cast<std::uint32_t>(rng.next_below(8));
    map_objects_.emplace(object.id, object);
  }
}

bool GameServer::on_frame(const Envelope& envelope) {
  const std::vector<std::uint8_t>& frame = envelope.payload;
  if (frame.empty()) return false;
  if (frame[0] == kTaggedPacketWireType) {
    // Mirrors on_message → try_dispatch → handle_remote_packet: an unwired
    // server has no port to consume the packet, so the generic path (which
    // drops it) must handle the frame instead.
    if (port_ == nullptr) return false;
    const auto view = parse_tagged_packet_frame(frame);
    if (!view) return false;  // malformed: the generic path counts it
    ++msgs_since_report_;
    apply_remote_event(view->entity, view->client, view->origin, view->target,
                       view->radius_class, view->client_sent_at, view->kind);
    return true;
  }
  if (frame[0] == kClientActionWireType) {
    const auto view = parse_client_action_frame(frame);
    if (!view) return false;
    ++msgs_since_report_;
    handle_action_core(view->client, view->kind, view->position, view->target,
                       view->seq, view->sent_at, envelope);
    return true;
  }
  return false;
}

void GameServer::on_message(const Message& message, const Envelope& envelope) {
  ++msgs_since_report_;
  if (port_ != nullptr && port_->try_dispatch(message)) return;

  if (const auto* hello = std::get_if<ClientHello>(&message)) {
    handle_hello(*hello, envelope);
  } else if (const auto* action = std::get_if<ClientAction>(&message)) {
    handle_action(*action, envelope);
  } else if (const auto* bye = std::get_if<ClientBye>(&message)) {
    handle_bye(*bye);
  }
}

// ---------------------------------------------------------------------------
// Client traffic
// ---------------------------------------------------------------------------

void GameServer::handle_hello(const ClientHello& hello,
                              const Envelope& envelope) {
  ++stats_.hellos;
  {
    obs::Tracer& tracer = network()->tracer();
    tracer.record(now(), obs::TraceKind::kClientHello, hello.client.value(),
                  node_id().value(), hello.resume ? 1 : 0);
    // One admit span per fresh join attempt, opened at the valve.  A
    // deferred client's retry opens a new one; open_span keeps the earliest
    // start for a client already parked in the waiting room.
    if (!hello.resume) {
      tracer.open_span(now(), obs::SpanKind::kAdmit, hello.client.value());
    }
  }
  if (!admit_join(hello, envelope.src)) return;  // no session was created
  admit_session(hello.client, envelope.src, hello.position,
                hello.redirect_seq);
}

void GameServer::handle_action(const ClientAction& action,
                               const Envelope& envelope) {
  handle_action_core(action.client, action.kind, action.position,
                     action.target, action.seq, action.sent_at, envelope);
}

void GameServer::handle_action_core(ClientId client, std::uint8_t kind_byte,
                                    Vec2 position,
                                    const std::optional<Vec2>& target,
                                    std::uint32_t seq, SimTime sent_at,
                                    const Envelope& envelope) {
  auto it = sessions_.find(client);
  if (it == sessions_.end()) {
    // Client is mid-switch and this packet raced the redirect; its new home
    // will see the next one.
    ++stats_.unknown_client_actions;
    return;
  }
  ++stats_.actions;
  Session& session = it->second;
  session.client_node = envelope.src;
  session.position = position;

  const auto kind = static_cast<ActionKind>(kind_byte);
  const std::uint8_t radius_class = radius_class_for(client);

  // Tag with world coordinates and hand to Matrix — the single line of
  // integration the paper's API story hinges on.
  TaggedPacket packet;
  packet.client = client;
  packet.entity = session.avatar;
  packet.origin = position;
  packet.target = target;
  packet.radius_class = radius_class;
  packet.kind = kind_byte;
  packet.seq = seq;
  packet.client_sent_at = sent_at;
  packet.payload.assign(spec_.payload_size(kind), 0);
  port_->send_packet(packet);

  // Immediate ack to the actor: this is the "response latency" the paper's
  // user study measures (action → observed reaction).
  ServerUpdate ack;
  ack.kind = kind_byte;
  ack.position = position;
  ack.ack_seq = seq;
  ack.origin_sent_at = sent_at;
  send(envelope.src, ack);
  ++stats_.acks_sent;

  // Everyone nearby sees the event at the next update tick.
  push_pending({position, radius_for(radius_class), sent_at, kind_byte});
  if (target && kind == ActionKind::kFire) {
    // Shots also matter where they land.
    push_pending({*target, radius_for(radius_class), sent_at, kind_byte});
  }

  maybe_migrate(client, session);
}

void GameServer::handle_bye(const ClientBye& bye) {
  obs::Tracer& tracer = network()->tracer();
  // a records whether the bye found a live session: a bye that finds none
  // where the trace says one lives means the session vanished untraced
  // (every legitimate erasure — redirect, shed, bye — records an event).
  tracer.record(now(), obs::TraceKind::kClientBye, bye.client.value(),
                node_id().value(),
                sessions_.count(bye.client) != 0 ? 1 : 0);
  tracer.close_span(now(), obs::SpanKind::kQueueWait, bye.client.value(),
                    /*success=*/false);
  tracer.close_span(now(), obs::SpanKind::kAdmit, bye.client.value(),
                    /*success=*/false);
  tracer.close_span(now(), obs::SpanKind::kHandoff, bye.client.value(),
                    /*success=*/false);
  surge_queue_.remove(bye.client);  // gave up while waiting
  reset_drain_fairness_if_empty();
  sessions_.erase(bye.client);
  pending_avatars_.erase(bye.client);
}

void GameServer::maybe_migrate(ClientId client, Session& session) {
  if (authority_.empty() || session.migrate_query_seq != 0) return;
  if (authority_.contains(session.position)) return;
  // Hysteresis: only migrate once clearly outside (half a visibility radius
  // of slack) so boundary jitter doesn't ping-pong the client.
  const double margin =
      metric_distance(config_.metric, session.position, authority_);
  if (margin < spec_.visibility_radius * 0.25) return;
  session.migrate_query_seq = next_query_seq_++;
  OwnerQuery query;
  query.point = session.position;
  query.client = client;
  query.seq = session.migrate_query_seq;
  port_->query_owner(query);
}

void GameServer::handle_owner_reply(const OwnerReply& reply) {
  auto it = sessions_.find(reply.client);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  if (session.migrate_query_seq != reply.seq) return;  // stale answer
  session.migrate_query_seq = 0;
  if (!reply.found || reply.game_node == node_id()) return;
  // Re-check: the client may have wandered back meanwhile.
  if (authority_.contains(session.position)) return;
  ++stats_.clients_migrated;
  redirect_client(reply.client, session, reply.game_node, reply.server);
  sessions_.erase(it);
}

void GameServer::redirect_client(ClientId client, Session& session,
                                 NodeId to_game, ServerId to_server) {
  // Avatar state travels server→server via Matrix; the client is told to
  // reconnect.  Both carry the redirect_seq so switch latency is measurable
  // end-to-end.
  Entity avatar;
  avatar.id = session.avatar;
  avatar.kind = EntityKind::kAvatar;
  avatar.position = session.position;
  avatar.owner = client;

  ClientStateTransfer transfer;
  transfer.client = client;
  transfer.entity = session.avatar;
  transfer.to_game = to_game;
  ByteWriter w;
  avatar.encode(w);
  transfer.blob = w.take();
  port_->transfer_client_state(transfer);

  Redirect redirect;
  redirect.new_game_node = to_game;
  redirect.new_server = to_server;
  redirect.redirect_seq = next_redirect_seq_++;
  send(session.client_node, redirect);
  ++stats_.clients_redirected;
  obs::Tracer& tracer = network()->tracer();
  tracer.record(now(), obs::TraceKind::kClientRedirected, client.value(),
                node_id().value(), static_cast<std::int64_t>(to_game.value()));
  tracer.open_span(now(), obs::SpanKind::kHandoff, client.value());
}

// ---------------------------------------------------------------------------
// Matrix callbacks
// ---------------------------------------------------------------------------

void GameServer::handle_remote_packet(const TaggedPacket& packet) {
  apply_remote_event(packet.entity, packet.client, packet.origin,
                     packet.target, packet.radius_class,
                     packet.client_sent_at, packet.kind);
}

void GameServer::apply_remote_event(EntityId entity, ClientId client,
                                    Vec2 origin,
                                    const std::optional<Vec2>& target,
                                    std::uint8_t radius_class, SimTime sent_at,
                                    std::uint8_t kind) {
  ++stats_.remote_events;
  // Maintain a ghost replica of the remote avatar so local players "see"
  // across the partition boundary — the localized consistency the paper's
  // overlap regions exist to provide.
  Entity& ghost = ghosts_.upsert(entity);
  ghost.kind = EntityKind::kGhost;
  ghost.position = origin;
  ghost.owner = client;

  const double radius = radius_for(radius_class);
  push_pending({origin, radius, sent_at, kind});
  if (target && authority_.contains(*target)) {
    // Non-proximal interaction landing in our range (teleport arrival,
    // remote shot impact).
    push_pending({*target, radius, sent_at, kind});
  }
}

void GameServer::handle_map_range(const MapRange& range) {
  const bool shedding = !range.shed_range.empty() || range.reclaim;
  if (!range.reclaim) {
    authority_ = range.new_range;
    if (!started_ && !authority_.empty()) start();
  }

  if (!shedding) return;
  ++stats_.sheds;

  // 1. Map-object state in the shed range moves to the successor.
  std::vector<Entity> moving;
  for (auto it = map_objects_.begin(); it != map_objects_.end();) {
    if (range.reclaim || range.shed_range.contains(it->second.position)) {
      moving.push_back(it->second);
      it = map_objects_.erase(it);
    } else {
      ++it;
    }
  }
  if (!moving.empty()) {
    StateTransfer transfer;
    transfer.from_server = id_;
    transfer.to_game = range.shed_to_game;
    transfer.range = range.reclaim ? authority_ : range.shed_range;
    transfer.object_count = static_cast<std::uint32_t>(moving.size());
    transfer.blob = encode_entities(moving);
    port_->transfer_state(transfer);
    stats_.state_objects_sent += moving.size();
  }

  // 2. Clients standing in the shed range are handed off.
  std::uint32_t redirected = 0;
  bool fault_leaked = false;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (range.reclaim || range.shed_range.contains(it->second.position)) {
      if (config_.fault.leak_session_on_shed && !fault_leaked) {
        // TEST-ONLY: drop the session without a Redirect — the trace last
        // saw this client admitted here, the server forgot it.  The
        // client-count conservation invariant must catch this.
        fault_leaked = true;
        it = sessions_.erase(it);
        continue;
      }
      redirect_client(it->first, it->second, range.shed_to_game,
                      range.shed_to_server);
      it = sessions_.erase(it);
      ++redirected;
    } else {
      ++it;
    }
  }

  // 3. Parked joins whose region moved: while a global-admission directive
  // is active they re-park on the new owner (class + age preserved);
  // otherwise they stay here (split) or are flushed to retry (reclaim),
  // the PR-2 behaviour.
  if (!range.reclaim && queue_handoff_active() && !surge_queue_.empty()) {
    send_queue_handoff(surge_queue_.extract_range(range.shed_range, now()),
                       range.shed_to_game);
    reset_drain_fairness_if_empty();
  }

  if (range.reclaim) {
    authority_ = Rect{};
    ghosts_.clear();
    pending_events_.clear();
    if (queue_handoff_active() && !surge_queue_.empty()) {
      // The whole room follows the range back to the parent instead of
      // being dumped into client-side retry.
      send_queue_handoff(surge_queue_.extract_all(now()),
                         range.shed_to_game);
      reset_drain_fairness_if_empty();
    } else {
      flush_surge_queue();
    }
  }

  ShedDone done;
  done.topology_epoch = range.topology_epoch;
  done.clients_redirected = redirected;
  port_->shed_done(done);
}

void GameServer::handle_state_transfer(const StateTransfer& transfer) {
  for (Entity& entity : decode_entities(transfer.blob)) {
    map_objects_[entity.id] = entity;
    ++stats_.state_objects_received;
  }
}

void GameServer::handle_client_state(const ClientStateTransfer& transfer) {
  ByteReader r(transfer.blob);
  const Entity avatar = Entity::decode(r);
  if (sessions_.count(transfer.client) != 0) return;  // hello won the race
  pending_avatars_[transfer.client] = avatar;
}

// ---------------------------------------------------------------------------
// Periodic work
// ---------------------------------------------------------------------------

std::uint8_t GameServer::radius_class_for(ClientId client) const {
  if (spec_.extra_radii.empty() || spec_.exceptional_radius_fraction <= 0.0) {
    return 0;
  }
  // SplitMix64 finalizer over the id: uniform, stable, server-independent.
  const std::uint64_t z = splitmix64(client.value() + 0x9E3779B97F4A7C15ULL);
  const double u =
      static_cast<double>(z >> 11) * 0x1.0p-53;  // uniform in [0,1)
  return u < spec_.exceptional_radius_fraction ? 1 : 0;
}

double GameServer::radius_for(std::uint8_t radius_class) const {
  if (radius_class == 0) return spec_.visibility_radius;
  const std::size_t idx = radius_class - 1;
  if (idx < spec_.extra_radii.size()) return spec_.extra_radii[idx];
  return spec_.visibility_radius;
}

LoadSignals GameServer::local_signals() const {
  LoadSignals signals;
  signals.client_count = static_cast<std::uint32_t>(sessions_.size());
  signals.queue_length =
      static_cast<std::uint32_t>(network()->queue_length(node_id()));
  signals.waiting_count = static_cast<std::uint32_t>(surge_queue_.size());
  return signals;
}

LoadReport GameServer::build_load_report() {
  const LoadSignals signals = local_signals();
  LoadReport report;
  report.client_count = signals.client_count;
  report.queue_length = signals.queue_length;
  const double interval_sec = (now() - last_report_at_).sec();
  report.msgs_per_sec =
      interval_sec > 0.0
          ? static_cast<double>(msgs_since_report_) / interval_sec
          : 0.0;
  report.waiting_count = signals.waiting_count;

  if (!sessions_.empty()) {
    std::vector<double> xs, ys;
    xs.reserve(sessions_.size());
    ys.reserve(sessions_.size());
    for (const auto& [client, session] : sessions_) {
      xs.push_back(session.position.x);
      ys.push_back(session.position.y);
    }
    const auto mid = xs.size() / 2;
    std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                     xs.end());
    std::nth_element(ys.begin(), ys.begin() + static_cast<std::ptrdiff_t>(mid),
                     ys.end());
    report.median_position = {xs[mid], ys[mid]};
  }
  return report;
}

void GameServer::schedule_load_report() {
  const std::uint64_t epoch = started_epoch_;
  network()->events_for(node_id()).schedule_after(
      config_.load_report_interval, [this, epoch] {
        if (!started_ || started_epoch_ != epoch) return;
        port_->report_load(build_load_report());
        ++stats_.load_reports;
        msgs_since_report_ = 0;
        last_report_at_ = now();

        // Prune ghosts that drifted far from our range (their owners moved
        // away; no further updates will refresh them).
        const double keep_radius = spec_.visibility_radius * 1.5;
        ghosts_.prune([&](const Entity& ghost) {
          return authority_.empty() ||
                 metric_distance(config_.metric, ghost.position, authority_) <=
                     keep_radius;
        });
        schedule_load_report();
      });
}

void GameServer::schedule_update_tick() {
  const std::uint64_t epoch = started_epoch_;
  network()->events_for(node_id()).schedule_after(spec_.update_tick, [this, epoch] {
    if (!started_ || started_epoch_ != epoch) return;

    if (!sessions_.empty()) {
      // Approximate each client's visible-entity count with an R-sized
      // bucket grid (sum over the 3×3 neighbourhood); sizes the digest.
      const double cell = std::max(spec_.visibility_radius, 1.0);
      grid_prepare(sessions_.size() + ghosts_.size());
      auto key = [cell](Vec2 p) {
        const auto ix = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(bucket(p.x, cell)));
        const auto iy = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(bucket(p.y, cell)));
        return (ix << 32) | iy;
      };
      for (const auto& [client, session] : sessions_) {
        grid_bump(key(session.position));
      }
      ghosts_.for_each(
          [&](const Entity& ghost) { grid_bump(key(ghost.position)); });

      SimTime oldest = now();
      if (!pending_events_.empty()) oldest = std::min(oldest, pending_oldest_);

      for (const auto& [client, session] : sessions_) {
        std::uint32_t visible = 0;
        const auto bx = bucket(session.position.x, cell);
        const auto by = bucket(session.position.y, cell);
        for (std::int64_t dx = -1; dx <= 1; ++dx) {
          for (std::int64_t dy = -1; dy <= 1; ++dy) {
            const auto ix = static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(bx + dx));
            const auto iy = static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(by + dy));
            visible += grid_count((ix << 32) | iy);
          }
        }
        ServerUpdate update;
        update.kind = 0;  // digest
        update.position = session.position;
        update.ack_seq = 0;
        update.origin_sent_at = pending_events_.empty() ? now() : oldest;
        update.payload.assign(
            12 + 8 * std::min<std::uint32_t>(visible, 32), 0);
        send(session.client_node, update);
        ++stats_.updates_sent;
      }
    }
    pending_events_.clear();
    schedule_update_tick();
  });
}

}  // namespace matrix
