#include "fuzz/invariants.h"

#include <sstream>

#include "obs/collect.h"
#include "obs/registry.h"
#include "sim/deployment.h"

namespace matrix::fuzz {

bool InvariantReport::fired(std::string_view invariant) const {
  return fired_counts.find(std::string(invariant)) != fired_counts.end();
}

void InvariantReport::add(std::string invariant, std::string detail) {
  const std::uint64_t seen = ++fired_counts[invariant];
  if (seen <= kMaxDetailsPerInvariant) {
    violations.push_back({std::move(invariant), std::move(detail)});
  }
}

std::string InvariantReport::summary() const {
  std::ostringstream out;
  if (ok()) {
    out << "all invariants hold (" << events_checked << " events, "
        << clients_tracked << " clients";
    if (anomalies > 0) out << ", " << anomalies << " tolerated races";
    out << ")";
    return out.str();
  }
  out << "INVARIANT VIOLATIONS (" << events_checked << " events, "
      << clients_tracked << " clients):\n";
  for (const auto& [name, count] : fired_counts) {
    out << "  " << name << " x" << count << "\n";
  }
  for (const InvariantViolation& v : violations) {
    out << "  [" << v.invariant << "] " << v.detail << "\n";
  }
  return out.str();
}

namespace {

/// Per-client lifecycle state, replayed from the event stream.  The grammar
/// deliberately tolerates the known benign races (a ClientBye overtaken by
/// the client's own queue handoff or redirect resurrects the client at the
/// new home as a "zombie"); everything else is a conservation bug.
enum class CState : std::uint8_t {
  kOut,           ///< no session, not parked, no join pending
  kAdmitPending,  ///< fresh hello sent, outcome not yet recorded
  kQueued,        ///< parked in `node`'s waiting room
  kPlaying,       ///< session live at `node`
  kRedirected,    ///< told to resume at `node`, resume not yet recorded
};

const char* cstate_name(CState s) {
  switch (s) {
    case CState::kOut: return "out";
    case CState::kAdmitPending: return "admit-pending";
    case CState::kQueued: return "queued";
    case CState::kPlaying: return "playing";
    case CState::kRedirected: return "redirected";
  }
  return "?";
}

struct ClientTrack {
  CState state = CState::kOut;
  std::uint64_t node = 0;  ///< queued/playing node, or redirect target
  /// A waiting-room entry for this client is traveling between servers.
  bool handoff_in_flight = false;
  std::int64_t handoff_age_us = 0;
  std::uint64_t handoff_dst = 0;
  std::uint64_t adoptions = 0;
  /// A hello was recorded and no verdict has followed yet.  The gate is
  /// synchronous: every hello is resolved (admit / deny / defer / queue)
  /// within the same handle_hello call, i.e. at the same trace instant —
  /// so a hello still pending at ANY later instant was swallowed.
  bool hello_pending = false;
  SimTime hello_at{};
};

std::string client_detail(std::uint64_t client, const ClientTrack& track,
                          const obs::TraceEvent& event) {
  std::ostringstream out;
  out << "client " << client << " [" << cstate_name(track.state) << "@"
      << track.node << (track.handoff_in_flight ? ", handoff in flight" : "")
      << "] got " << obs::trace_kind_name(event.kind) << " at t="
      << event.at.us() << "us actor=" << event.actor << " a=" << event.a
      << " b=" << event.b;
  return out.str();
}

/// Last applied control update per (node, ControlKind) — the watermark the
/// control-monotonic invariant checks kControlApplied events against.
struct ControlTrack {
  bool seen = false;
  std::int64_t epoch = 0;
  std::int64_t seq = 0;
};

/// Legal failsafe edges (control_plane.h): NORMAL→HOLD, HOLD→FALLBACK,
/// HOLD→NORMAL, FALLBACK→NORMAL.
bool failsafe_edge_legal(std::int64_t from, std::int64_t to) {
  return (from == 0 && to == 1) || (from == 1 && to == 2) ||
         (from == 1 && to == 0) || (from == 2 && to == 0);
}

/// Lossy-control-links mode: drop the conservation invariants that assume
/// reliable delivery, keep the state-machine ones (see InvariantOptions).
void strip_delivery_invariants(InvariantReport& report) {
  const auto suppressed = [](const std::string& name) {
    return name == kInvBlackhole || name == kInvClientConservation ||
           name == kInvQueueConservation || name == kInvAgeConservation;
  };
  std::vector<InvariantViolation> kept;
  for (InvariantViolation& violation : report.violations) {
    if (!suppressed(violation.invariant)) kept.push_back(std::move(violation));
  }
  report.violations = std::move(kept);
  for (auto it = report.fired_counts.begin();
       it != report.fired_counts.end();) {
    it = suppressed(it->first) ? report.fired_counts.erase(it) : ++it;
  }
}

}  // namespace

InvariantReport check_trace(const std::vector<obs::TraceEvent>& events,
                            const InvariantOptions& options,
                            const EndState* expected) {
  InvariantReport report;
  std::map<std::uint64_t, ClientTrack> clients;

  // Control-plane failsafe (src/control/control_plane.h).
  std::map<std::pair<std::uint64_t, std::uint64_t>, ControlTrack> control;
  std::map<std::uint64_t, std::int64_t> failsafe_state;  // node → state

  std::uint64_t sheds = 0;  // split + reclaim completions seen so far
  // Contiguous same-instant same-source run of handoff-sent events — one
  // extract_range/extract_all burst.
  std::uint64_t burst = 0;
  std::uint64_t burst_actor = 0;
  SimTime burst_at{};
  bool burst_reported = false;

  for (const obs::TraceEvent& event : events) {
    ++report.events_checked;
    ++report.kind_counts[static_cast<std::size_t>(event.kind)];

    if (event.kind == obs::TraceKind::kQueueHandoffSent) {
      if (burst > 0 && event.actor == burst_actor && event.at == burst_at) {
        ++burst;
      } else {
        burst = 1;
        burst_actor = event.actor;
        burst_at = event.at;
        burst_reported = false;
      }
      if (options.max_handoff_burst > 0 &&
          burst > options.max_handoff_burst && !burst_reported) {
        burst_reported = true;
        std::ostringstream out;
        out << "node " << burst_actor << " shed more than "
            << options.max_handoff_burst
            << " waiting-room entries in one burst at t=" << burst_at.us()
            << "us";
        report.add(kInvHandoffChurn, out.str());
      }
    } else {
      burst = 0;
    }

    // Synchronous-gate rule: a recorded hello is resolved within the same
    // handle_hello call, so its verdict event carries the same timestamp.
    // A pending hello surviving to any later instant was swallowed.
    switch (event.kind) {
      case obs::TraceKind::kClientAdmitted:
      case obs::TraceKind::kClientDenied:
      case obs::TraceKind::kClientDeferred:
      case obs::TraceKind::kClientQueued: {
        ClientTrack& c = clients[event.subject];
        if (c.hello_pending) {
          if (event.at != c.hello_at) {
            std::ostringstream out;
            out << "client " << event.subject << " hello at t="
                << c.hello_at.us() << "us sat unresolved until "
                << obs::trace_kind_name(event.kind) << " at t="
                << event.at.us() << "us (the gate is synchronous)";
            report.add(kInvBlackhole, out.str());
          }
          c.hello_pending = false;
        }
        break;
      }
      case obs::TraceKind::kClientBye:
      case obs::TraceKind::kClientRedirected:
      case obs::TraceKind::kQueueHandoffSent:
      case obs::TraceKind::kQueueHandoff:
      case obs::TraceKind::kQueueHandoffDrop: {
        ClientTrack& c = clients[event.subject];
        if (c.hello_pending) {
          std::ostringstream out;
          out << "client " << event.subject << " hello at t="
              << c.hello_at.us() << "us was never resolved (next event "
              << obs::trace_kind_name(event.kind) << " at t=" << event.at.us()
              << "us)";
          report.add(kInvBlackhole, out.str());
          c.hello_pending = false;
        }
        break;
      }
      default:
        break;
    }

    switch (event.kind) {
      case obs::TraceKind::kSplitCompleted:
      case obs::TraceKind::kReclaimCompleted:
        ++sheds;
        break;

      case obs::TraceKind::kClientHello: {
        ClientTrack& c = clients[event.subject];
        if (c.hello_pending) {
          std::ostringstream out;
          out << "client " << event.subject << " hello at t="
              << c.hello_at.us()
              << "us was never resolved (another hello followed at t="
              << event.at.us() << "us)";
          report.add(kInvBlackhole, out.str());
        }
        c.hello_pending = true;
        c.hello_at = event.at;
        if (event.a == 0 && (c.state == CState::kOut ||
                             c.state == CState::kAdmitPending)) {
          c.state = CState::kAdmitPending;
          c.node = event.actor;
        }
        // Resume hellos and duplicate hellos while queued/playing change
        // nothing; the admitted/queued outcome events carry the state.
        break;
      }

      case obs::TraceKind::kClientAdmitted: {
        ClientTrack& c = clients[event.subject];
        if (event.a != 0) {
          // Resume after a redirect.
          if (c.state == CState::kRedirected) {
            if (c.node != event.actor) {
              report.add(kInvClientConservation,
                         client_detail(event.subject, c, event) +
                             " (resumed at a node it was not redirected to)");
            }
          } else if (c.state == CState::kPlaying) {
            if (c.node != event.actor) {
              report.add(kInvClientConservation,
                         client_detail(event.subject, c, event) +
                             " (second live session)");
            }
          } else if (c.state == CState::kQueued) {
            report.add(kInvQueueConservation,
                       client_detail(event.subject, c, event) +
                           " (resume admit for a parked client)");
          } else {
            ++report.anomalies;  // zombie resume after a racing bye
          }
        } else {
          // Fresh admit: direct or drained from the waiting room.
          switch (c.state) {
            case CState::kAdmitPending:
              break;
            case CState::kQueued:
              if (c.node != event.actor) {
                report.add(kInvQueueConservation,
                           client_detail(event.subject, c, event) +
                               " (drained by a node that does not hold it)");
              }
              break;
            case CState::kPlaying:
              if (c.node != event.actor) {
                report.add(kInvClientConservation,
                           client_detail(event.subject, c, event) +
                               " (second live session)");
              }
              break;
            case CState::kRedirected:
            case CState::kOut:
              ++report.anomalies;  // zombie drain/admit after a racing bye
              break;
          }
        }
        c.state = CState::kPlaying;
        c.node = event.actor;
        break;
      }

      case obs::TraceKind::kClientDenied:
      case obs::TraceKind::kClientDeferred: {
        ClientTrack& c = clients[event.subject];
        if (c.state == CState::kPlaying) {
          report.add(kInvClientConservation,
                     client_detail(event.subject, c, event) +
                         " (valve refused a client with a live session)");
        }
        // A deferred handed-off entry (destination could not adopt) resolves
        // the in-flight handoff.
        if (c.handoff_in_flight &&
            event.kind == obs::TraceKind::kClientDeferred) {
          c.handoff_in_flight = false;
        }
        c.state = CState::kOut;
        break;
      }

      case obs::TraceKind::kClientQueued: {
        ClientTrack& c = clients[event.subject];
        if (c.state == CState::kPlaying) {
          report.add(kInvClientConservation,
                     client_detail(event.subject, c, event) +
                         " (parked while holding a live session)");
        } else if (c.state == CState::kQueued) {
          report.add(kInvQueueConservation,
                     client_detail(event.subject, c, event) +
                         " (parked twice)");
        }
        c.state = CState::kQueued;
        c.node = event.actor;
        break;
      }

      case obs::TraceKind::kClientRedirected: {
        ClientTrack& c = clients[event.subject];
        if (c.state != CState::kPlaying || c.node != event.actor) {
          report.add(kInvClientConservation,
                     client_detail(event.subject, c, event) +
                         " (redirect of a session the actor does not hold)");
        }
        c.state = CState::kRedirected;
        c.node = static_cast<std::uint64_t>(event.a);
        break;
      }

      case obs::TraceKind::kClientBye: {
        ClientTrack& c = clients[event.subject];
        if (c.state == CState::kPlaying && c.node == event.actor &&
            event.a == 0) {
          report.add(kInvClientConservation,
                     client_detail(event.subject, c, event) +
                         " (bye found no session where the trace says one "
                         "lives — the session vanished untraced)");
        }
        c.state = CState::kOut;  // in-flight handoffs resolve later
        break;
      }

      case obs::TraceKind::kQueueHandoffSent: {
        ClientTrack& c = clients[event.subject];
        if (c.state != CState::kQueued || c.node != event.actor) {
          report.add(kInvQueueConservation,
                     client_detail(event.subject, c, event) +
                         " (handed off an entry the source does not hold)");
        }
        if (c.handoff_in_flight) {
          report.add(kInvQueueConservation,
                     client_detail(event.subject, c, event) +
                         " (second handoff while one is in flight)");
        }
        c.state = CState::kOut;
        c.handoff_in_flight = true;
        c.handoff_age_us = event.b;
        c.handoff_dst = static_cast<std::uint64_t>(event.a);
        break;
      }

      case obs::TraceKind::kQueueHandoff: {  // adopted at the destination
        ClientTrack& c = clients[event.subject];
        if (!c.handoff_in_flight) {
          report.add(kInvQueueConservation,
                     client_detail(event.subject, c, event) +
                         " (adopted with no handoff in flight)");
        } else {
          if (event.b != c.handoff_age_us) {
            std::ostringstream out;
            out << "client " << event.subject
                << " lost accrued age across handoff: enqueued_at "
                << c.handoff_age_us << "us sent, " << event.b
                << "us adopted (node " << event.a << ")";
            report.add(kInvAgeConservation, out.str());
          }
          if (static_cast<std::uint64_t>(event.a) != c.handoff_dst) {
            report.add(kInvQueueConservation,
                       client_detail(event.subject, c, event) +
                           " (adopted by a node it was not sent to)");
          }
          c.handoff_in_flight = false;
        }
        if (c.state != CState::kOut) {
          report.add(kInvQueueConservation,
                     client_detail(event.subject, c, event) +
                         " (adopted while already queued or playing)");
        }
        c.state = CState::kQueued;
        c.node = static_cast<std::uint64_t>(event.a);
        ++c.adoptions;
        if (c.adoptions > sheds + 2) {
          std::ostringstream out;
          out << "client " << event.subject << " adopted " << c.adoptions
              << " times across only " << sheds
              << " topology sheds (handoff ping-pong)";
          report.add(kInvHandoffChurn, out.str());
        }
        break;
      }

      case obs::TraceKind::kQueueHandoffDrop: {
        ClientTrack& c = clients[event.subject];
        if (!c.handoff_in_flight) {
          report.add(kInvQueueConservation,
                     client_detail(event.subject, c, event) +
                         " (duplicate-drop with no handoff in flight)");
        }
        c.handoff_in_flight = false;
        break;
      }

      case obs::TraceKind::kControlApplied: {
        // subject=node, actor=ControlKind, a=epoch, b=seq.  Heartbeats and
        // announces are freshness signals with their own epoch rule; the
        // sequenced kinds recorded here must be strictly increasing.
        ControlTrack& track = control[{event.subject, event.actor}];
        if (track.seen && (event.a < track.epoch ||
                           (event.a == track.epoch && event.b <= track.seq))) {
          std::ostringstream out;
          out << "node " << event.subject << " applied control kind "
              << event.actor << " (epoch " << event.a << ", seq " << event.b
              << ") at t=" << event.at.us() << "us after (epoch "
              << track.epoch << ", seq " << track.seq
              << ") — a stale or duplicate update changed state";
          report.add(kInvControlMonotonic, out.str());
        }
        track.seen = true;
        track.epoch = event.a;
        track.seq = event.b;
        break;
      }

      case obs::TraceKind::kFailsafeTransition: {
        // subject=node, a=new state, b=old state.
        std::int64_t& state = failsafe_state[event.subject];
        std::ostringstream where;
        where << "node " << event.subject << " failsafe " << event.b << "→"
              << event.a << " at t=" << event.at.us() << "us";
        if (event.a == event.b) {
          report.add(kInvFailsafeTimeline,
                     where.str() + " (self-transition)");
        } else if (event.b != state) {
          std::ostringstream out;
          out << where.str() << " does not chain from the tracked state "
              << state;
          report.add(kInvFailsafeTimeline, out.str());
        } else if (!failsafe_edge_legal(event.b, event.a)) {
          report.add(kInvFailsafeTimeline,
                     where.str() + " (illegal edge — states may not be "
                                   "skipped)");
        }
        state = event.a;
        break;
      }

      default:
        break;  // engine / partition / admission events: censused above
    }
  }

  report.clients_tracked = clients.size();

  // The synchronous-gate rule also holds at stream end: a hello's verdict
  // is recorded by the same call that recorded the hello, so a pending
  // hello here (quiesced or not) was swallowed.
  for (const auto& [client, c] : clients) {
    if (c.hello_pending) {
      std::ostringstream out;
      out << "client " << client << " hello at t=" << c.hello_at.us()
          << "us was never resolved (stream ended)";
      report.add(kInvBlackhole, out.str());
    }
  }

  if (options.expect_quiesced) {
    for (const auto& [client, c] : clients) {
      if (c.state == CState::kAdmitPending) {
        std::ostringstream out;
        out << "client " << client << " hello at node " << c.node
            << " never resolved (no admit/deny/defer/queue/bye)";
        report.add(kInvBlackhole, out.str());
      } else if (c.state == CState::kQueued) {
        std::ostringstream out;
        out << "client " << client << " still parked at node " << c.node
            << " after quiesce";
        report.add(kInvBlackhole, out.str());
      } else if (c.state == CState::kRedirected) {
        std::ostringstream out;
        out << "client " << client << " redirected toward node " << c.node
            << " and never resumed or left";
        report.add(kInvBlackhole, out.str());
      }
      if (c.handoff_in_flight) {
        std::ostringstream out;
        out << "client " << client
            << " waiting-room handoff toward node " << c.handoff_dst
            << " never adopted, deferred, or dropped";
        report.add(kInvQueueConservation, out.str());
      }
    }
  }

  if (expected != nullptr) {
    EndState derived;
    for (const auto& [client, c] : clients) {
      if (c.state == CState::kPlaying) ++derived.playing_by_node[c.node];
      if (c.state == CState::kQueued) ++derived.queued_by_node[c.node];
    }
    const auto compare = [&report](const char* what, const char* invariant,
                                   const std::map<std::uint64_t,
                                                  std::uint64_t>& trace_side,
                                   const std::map<std::uint64_t,
                                                  std::uint64_t>& live_side) {
      auto value = [](const std::map<std::uint64_t, std::uint64_t>& m,
                      std::uint64_t k) {
        auto it = m.find(k);
        return it == m.end() ? std::uint64_t{0} : it->second;
      };
      std::map<std::uint64_t, std::uint64_t> nodes;
      for (const auto& [node, n] : trace_side) nodes[node] = n;
      for (const auto& [node, n] : live_side) nodes.emplace(node, 0);
      for (const auto& [node, unused] : nodes) {
        (void)unused;
        const std::uint64_t t = value(trace_side, node);
        const std::uint64_t l = value(live_side, node);
        if (t != l) {
          std::ostringstream out;
          out << what << " mismatch at node " << node << ": trace says " << t
              << ", deployment holds " << l;
          report.add(invariant, out.str());
        }
      }
    };
    compare("playing count", kInvClientConservation, derived.playing_by_node,
            expected->playing_by_node);
    compare("queued count", kInvQueueConservation, derived.queued_by_node,
            expected->queued_by_node);
  }

  if (options.lossy_control_links) strip_delivery_invariants(report);

  return report;
}

InvariantReport check_deployment(Deployment& deployment,
                                 InvariantOptions options) {
  const obs::Tracer& tracer = deployment.network().tracer();
  if (options.max_handoff_burst == 0 &&
      deployment.options().config.admission.priority.queue_enabled) {
    options.max_handoff_burst =
        deployment.options().config.admission.priority.queue_capacity;
  }

  const std::vector<obs::TraceEvent> events = tracer.ring_snapshot();
  const bool truncated = tracer.events_recorded() > events.size();

  InvariantReport report;
  if (truncated) {
    // A wrapped ring means the lifecycle story has no beginning; judging
    // conservation on a suffix would produce nonsense either way.
    std::ostringstream out;
    out << "flight recorder wrapped: " << tracer.events_recorded()
        << " events recorded, ring holds " << events.size()
        << " — raise Config::obs.ring_capacity for invariant checking";
    report.add(kInvSetup, out.str());
  } else {
    EndState actual;
    const EndState* expected = nullptr;
    if (options.check_end_state) {
      for (const GameServer* game : deployment.game_servers()) {
        const std::uint64_t node = game->node_id().value();
        if (game->client_count() > 0) {
          actual.playing_by_node[node] = game->client_count();
        }
        if (game->surge_queue().size() > 0) {
          actual.queued_by_node[node] = game->surge_queue().size();
        }
      }
      expected = &actual;
    }
    report = check_trace(events, options, expected);

    // Registry/trace cross-check: the aggregated waiting-room counters must
    // tell the same handoff story as the event stream.
    const obs::Registry registry = obs::collect_registry(deployment);
    const auto handed_off =
        static_cast<std::uint64_t>(registry.value("admission.queue.handed_off"));
    const auto adopted =
        static_cast<std::uint64_t>(registry.value("admission.queue.adopted"));
    if (handed_off != report.count(obs::TraceKind::kQueueHandoffSent)) {
      std::ostringstream out;
      out << "registry handed_off=" << handed_off << " but trace recorded "
          << report.count(obs::TraceKind::kQueueHandoffSent)
          << " handoff-sent events";
      report.add(kInvQueueConservation, out.str());
    }
    if (adopted != report.count(obs::TraceKind::kQueueHandoff)) {
      std::ostringstream out;
      out << "registry adopted=" << adopted << " but trace recorded "
          << report.count(obs::TraceKind::kQueueHandoff)
          << " handoff-adopt events";
      report.add(kInvQueueConservation, out.str());
    }
  }

  // Span accounting: nothing dropped for capacity, and — after a quiesced
  // run — nothing left open.
  if (tracer.span_drops() > 0) {
    std::ostringstream out;
    out << tracer.span_drops()
        << " span opens dropped at capacity — raise Config::obs.span_capacity";
    report.add(kInvSpanAccounting, out.str());
  }
  if (options.expect_quiesced) {
    const auto note_open = [&](obs::SpanKind kind, const char* invariant) {
      const std::size_t open = tracer.open_span_count(kind);
      if (open == 0) return;
      std::ostringstream out;
      out << open << " " << obs::span_kind_name(kind)
          << " spans still open after quiesce; keys:";
      const auto keys = tracer.open_span_keys(kind);
      for (std::size_t i = 0; i < keys.size() && i < 8; ++i) {
        out << " " << keys[i];
      }
      if (keys.size() > 8) out << " ...";
      report.add(invariant, out.str());
    };
    note_open(obs::SpanKind::kAdmit, kInvBlackhole);
    note_open(obs::SpanKind::kQueueWait, kInvBlackhole);
    note_open(obs::SpanKind::kHandoff, kInvBlackhole);
    note_open(obs::SpanKind::kSplit, kInvSpanAccounting);
    note_open(obs::SpanKind::kReclaim, kInvSpanAccounting);
  }

  // Hysteresis validity, everywhere an admission timeline lives: each
  // server's valve (admission_timeline_valid over the whole lifetime,
  // resets included) and the coordinator's directive floor.
  for (const MatrixServer* server : deployment.matrix_servers()) {
    if (!server->admission().lifetime_timeline_valid()) {
      std::ostringstream out;
      out << "server " << server->server_id().value()
          << " admission timeline violates the dwell/recover_min contract";
      report.add(kInvAdmissionTimeline, out.str());
    }
  }
  if (!deployment.coordinator().global_admission().timeline_valid()) {
    report.add(kInvAdmissionTimeline,
               "coordinator directive-floor timeline violates the "
               "dwell/recover_min contract");
  }

  // Failsafe timeline validity, everywhere a control plane lives: both
  // halves of every server pair record their own transitions, and each
  // recorded heartbeat age must justify the transition it triggered.
  const FailsafeConfig& failsafe = deployment.options().config.failsafe;
  for (const MatrixServer* server : deployment.matrix_servers()) {
    if (!failsafe_timeline_valid(server->control_plane().transitions(),
                                 failsafe)) {
      std::ostringstream out;
      out << "matrix server " << server->server_id().value()
          << " failsafe timeline violates the tau1/tau2 contract";
      report.add(kInvFailsafeTimeline, out.str());
    }
  }
  for (const GameServer* game : deployment.game_servers()) {
    if (!failsafe_timeline_valid(game->control_plane().transitions(),
                                 failsafe)) {
      std::ostringstream out;
      out << "game server " << game->server_id().value()
          << " failsafe timeline violates the tau1/tau2 contract";
      report.add(kInvFailsafeTimeline, out.str());
    }
  }

  if (options.lossy_control_links) strip_delivery_invariants(report);

  return report;
}

bool quiesce(Deployment& deployment, SimTime max_extra) {
  for (BotClient* bot : deployment.bots()) {
    bot->leave();  // no-op for bots that already gave up
  }
  const obs::Tracer& tracer = deployment.network().tracer();
  const SimTime start = deployment.network().now();
  const SimTime step = SimTime::from_sec(1.0);

  const auto quiet = [&deployment, &tracer] {
    for (const GameServer* game : deployment.game_servers()) {
      if (game->surge_queue().size() > 0) return false;
    }
    if (!tracer.enabled()) return true;
    for (const obs::SpanKind kind :
         {obs::SpanKind::kAdmit, obs::SpanKind::kQueueWait,
          obs::SpanKind::kHandoff, obs::SpanKind::kSplit,
          obs::SpanKind::kReclaim}) {
      if (tracer.open_span_count(kind) != 0) return false;
    }
    return true;
  };

  for (SimTime elapsed{}; elapsed < max_extra; elapsed = elapsed + step) {
    deployment.run_until(start + elapsed + step);
    if (quiet()) return true;
  }
  return quiet();
}

}  // namespace matrix::fuzz
