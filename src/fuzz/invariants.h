// Trace-invariants harness — the correctness oracle behind the scenario
// fuzzer (docs/TESTING.md).
//
// PR 6 gave every deployment a flight recorder of typed lifecycle events;
// this harness turns that stream into a set of invariants that must hold
// for ANY run, whatever the workload, topology, or knob settings:
//
//   blackhole             every hello resolves (PLAYING / deny / defer /
//                         bye); after a quiesced run nothing is still
//                         pending, parked, or mid-redirect, and no
//                         admit/queue-wait/handoff span is left open.
//   client-conservation   client counts are conserved across split/merge/
//                         handoff/adopt: the per-client lifecycle grammar
//                         holds (no double sessions, no redirect of a
//                         nonexistent session, no valve action against a
//                         live session), and the trace-derived playing set
//                         equals each game server's actual session table.
//   queue-conservation    every waiting-room entry extracted for a
//                         cross-server handoff is accounted for at the
//                         destination (adopted, deferred back to retry, or
//                         duplicate-dropped) — entries never vanish or
//                         duplicate; trace and registry tallies agree.
//   age-conservation      a handed-off entry keeps its accrued age: the
//                         enqueued_at the destination adopts is the one the
//                         source extracted.
//   handoff-churn         handoff volume is bounded: one shed's burst never
//                         exceeds the waiting-room capacity, and no client
//                         is re-adopted more often than topology changed.
//   admission-timeline    every admission timeline (each server's valve,
//                         the coordinator's directive floor) satisfies the
//                         hysteresis contract — admission_timeline_valid,
//                         machine-checked everywhere.
//   span-accounting       no span was dropped for capacity and, after a
//                         quiesced run, no split/reclaim span leaks open.
//   failsafe-timeline     every control-plane failsafe timeline is legal:
//                         NORMAL→HOLD→FALLBACK→NORMAL transitions only, no
//                         self-loops or skipped states in the trace, and the
//                         live planes' recorded heartbeat ages respect the
//                         configured tau1/tau2 (failsafe_timeline_valid).
//   control-monotonic     applied control updates are strictly monotonic
//                         per (node, kind) in (epoch, seq) — a stale or
//                         duplicate coordinator message never changes state.
//   setup                 not an invariant of the system but of the run:
//                         the flight recorder must be deep enough to hold
//                         the whole lifecycle history, else the checks
//                         above would be judging a truncated story.
//
// The checker is two-layered on purpose: check_trace() is a pure function
// over an event vector (so tests can feed synthetic streams and prove each
// rule fires), and check_deployment() wraps it with everything only the
// live deployment knows — actual session tables, open spans, controller
// timelines, the registry snapshot.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/sim_time.h"

namespace matrix {
class Deployment;
}  // namespace matrix

namespace matrix::fuzz {

// Invariant names — the `invariant` field of every violation, and the keys
// docs/TESTING.md catalogs.
inline constexpr const char* kInvBlackhole = "blackhole";
inline constexpr const char* kInvClientConservation = "client-conservation";
inline constexpr const char* kInvQueueConservation = "queue-conservation";
inline constexpr const char* kInvAgeConservation = "age-conservation";
inline constexpr const char* kInvHandoffChurn = "handoff-churn";
inline constexpr const char* kInvAdmissionTimeline = "admission-timeline";
inline constexpr const char* kInvSpanAccounting = "span-accounting";
inline constexpr const char* kInvSetup = "setup";
/// Control-plane failsafe (src/control/control_plane.h): every failsafe
/// timeline chains legally in the trace (NORMAL→HOLD→FALLBACK→NORMAL, no
/// self-transitions, no skipped states), and — in check_deployment — every
/// live plane's transition record satisfies failsafe_timeline_valid against
/// the configured tau1/tau2.
inline constexpr const char* kInvFailsafeTimeline = "failsafe-timeline";
/// Applied control updates are strictly monotonic per (node, kind): each
/// kControlApplied's (epoch, seq) lexicographically exceeds the previous
/// one.  A duplicate or regression here means a stale coordinator message
/// changed state — the bug class the epoch-stamped ControlUpdate API exists
/// to make impossible.
inline constexpr const char* kInvControlMonotonic = "control-monotonic";

struct InvariantViolation {
  std::string invariant;
  std::string detail;
};

struct InvariantOptions {
  /// Upper bound on one shed's contiguous handoff burst (set it to the
  /// waiting-room capacity); 0 skips the burst check.
  std::uint64_t max_handoff_burst = 0;
  /// The run was quiesced (every bot told to leave, then drained): nothing
  /// may still be pending, parked, mid-redirect, or in-flight, and no
  /// lifecycle span may be open.
  bool expect_quiesced = false;
  /// Compare the trace-derived end state against the live deployment's
  /// session tables and waiting rooms (check_deployment only).
  bool check_end_state = true;
  /// The run degraded control links (drop > 0 on MC↔Matrix): weakened
  /// invariant set.  Conservation stories that assume reliable delivery —
  /// blackhole, client/queue/age conservation — are suppressed, because a
  /// lost control message can legitimately strand a lifecycle mid-flight
  /// (e.g. a directive that never re-opened a frozen waiting room).  The
  /// control-plane invariants (admission-timeline, failsafe-timeline,
  /// control-monotonic, span capacity, handoff churn) still apply in full:
  /// loss may starve state machines, never corrupt them.
  bool lossy_control_links = false;
};

/// Everything recorded about one checked run.  `violations` keeps at most
/// kMaxDetailsPerInvariant entries per invariant; `fired_counts` keeps the
/// full tally so a stream of one bug class cannot drown out another.
struct InvariantReport {
  static constexpr std::size_t kMaxDetailsPerInvariant = 16;

  std::vector<InvariantViolation> violations;
  std::map<std::string, std::uint64_t> fired_counts;
  std::uint64_t events_checked = 0;
  std::uint64_t clients_tracked = 0;
  /// Tolerated zombie races (a bye overtaken by its own handoff or
  /// redirect): legal, rare, worth counting.
  std::uint64_t anomalies = 0;
  /// Event census by TraceKind — what the checker actually saw, so tests
  /// can assert a scenario exercised the machinery they think it did.
  std::uint64_t kind_counts[static_cast<std::size_t>(obs::TraceKind::kCount)] =
      {};

  [[nodiscard]] bool ok() const { return fired_counts.empty(); }
  [[nodiscard]] bool fired(std::string_view invariant) const;
  [[nodiscard]] std::uint64_t count(obs::TraceKind kind) const {
    return kind_counts[static_cast<std::size_t>(kind)];
  }
  /// Multi-line human summary: per-invariant tallies then the retained
  /// violation details.  "all invariants hold" when ok().
  [[nodiscard]] std::string summary() const;

  void add(std::string invariant, std::string detail);
};

/// Trace-derived expected end state, for comparing against the live
/// deployment (or a synthetic expectation in tests): clients playing /
/// parked per game NODE id.
struct EndState {
  std::map<std::uint64_t, std::uint64_t> playing_by_node;
  std::map<std::uint64_t, std::uint64_t> queued_by_node;
};

/// Pure checker: replays the per-client lifecycle state machine over
/// `events` (oldest first, as Tracer::ring_snapshot returns them) and
/// applies every trace-level invariant.  With `expected`, the trace-derived
/// final playing/queued sets must match it exactly.
[[nodiscard]] InvariantReport check_trace(
    const std::vector<obs::TraceEvent>& events,
    const InvariantOptions& options, const EndState* expected = nullptr);

/// Whole-deployment checker: ring snapshot through check_trace (with the
/// actual session tables and waiting rooms as the expected end state), plus
/// the live-only invariants — open spans, span drops, ring depth, every
/// admission-controller timeline, and registry/trace cross-checks.
[[nodiscard]] InvariantReport check_deployment(Deployment& deployment,
                                               InvariantOptions options = {});

/// Drives the deployment to rest so end-of-run invariants are meaningful:
/// tells every bot to leave, then advances time in steps until no
/// client-lifecycle or topology span remains open (splits, reclaims and
/// queue drains in flight get to finish).  Returns true when the
/// deployment went quiet within `max_extra`; false means something is
/// stuck — run check_deployment with expect_quiesced to find out what.
bool quiesce(Deployment& deployment,
             SimTime max_extra = SimTime::from_sec(60.0));

}  // namespace matrix::fuzz
