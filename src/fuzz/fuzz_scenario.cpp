#include "fuzz/fuzz_scenario.h"

#include <sstream>

#include "obs/trace.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace matrix::fuzz {

namespace {

/// Smallest power of two ≥ n.
std::size_t pow2_at_least(std::size_t n) {
  std::size_t cap = 16;
  while (cap < n) cap *= 2;
  return cap;
}

}  // namespace

std::string FuzzPlan::describe() const {
  std::ostringstream out;
  const Config& config = deployment.config;
  out << "seed=" << seed << " policy="
      << load_policy_kind_name(config.policy.kind) << " servers="
      << deployment.initial_servers << "+" << deployment.pool_size
      << "pool overload=" << config.overload_clients << " shards="
      << config.engine.shards << " admission="
      << (config.admission.enabled ? "on" : "off");
  if (config.engine.rebalance_threshold > 0.0) {
    out << " rebalance=" << config.engine.rebalance_threshold;
  }
  if (config.admission.enabled) {
    out << " queue="
        << (config.admission.priority.queue_enabled
                ? std::to_string(config.admission.priority.queue_capacity)
                : std::string("off"))
        << " global=" << (config.admission.global.enabled ? "on" : "off");
  }
  out << " offered=" << offered_clients << " waves=" << waves.size()
      << " departures=" << departures.size() << " duration="
      << duration.sec() << "s";
  if (config.failsafe.enabled) {
    out << " failsafe=on";
    if (chaos.kill_at.us() != 0) {
      out << " mc-kill@" << chaos.kill_at.sec() << "s";
      if (chaos.revive_at.us() != 0) {
        out << " revive@" << chaos.revive_at.sec() << "s";
      }
    }
    if (chaos.degrade_at.us() != 0) {
      out << " ctl-degrade@" << chaos.degrade_at.sec() << "s-"
          << chaos.heal_at.sec() << "s drop="
          << chaos.degraded.drop_probability;
    }
  }
  return out.str();
}

FuzzPlan make_fuzz_plan(std::uint64_t seed, LoadPolicyKind policy) {
  // Stream-split from the deployment's own seed so the plan's choices and
  // the bots' movement never share a sequence.
  Rng rng(seed ^ 0xF0CCACC1AFbeefULL);
  FuzzPlan plan;
  plan.seed = seed;

  DeploymentOptions& d = plan.deployment;
  Config& config = d.config;

  // ---- grid topology & capacity --------------------------------------------
  static constexpr std::size_t kGrids[] = {1, 1, 2, 4, 4, 6, 9};
  d.initial_servers = kGrids[rng.next_below(std::size(kGrids))];
  d.pool_size = static_cast<std::size_t>(rng.next_in(0, 5));
  d.map_objects = static_cast<std::size_t>(rng.next_in(40, 160));
  d.seed = seed * 2 + 1;  // the deployment's own stream, decoupled from ours

  config.overload_clients = static_cast<std::uint32_t>(rng.next_in(80, 240));
  config.underload_clients = config.overload_clients / 2;
  config.sustain_reports_to_split =
      static_cast<std::uint32_t>(rng.next_in(1, 3));
  config.topology_cooldown =
      SimTime::from_sec(rng.next_double_in(2.0, 6.0));
  config.policy.kind = policy;
  d.spec = bzflag_like();
  config.visibility_radius = d.spec.visibility_radius;

  // ---- engine ---------------------------------------------------------------
  // A slice of cases runs the sharded conservative engine so the replay gate
  // (run_fuzz_case twice, byte-identical traces) and every invariant check
  // also cover barrier merges and per-shard RNG streams.  Drawn from a
  // DERIVED stream, not `rng`: the shard count must not shift the scenario
  // draws below, so every historical seed still expands to the same world —
  // some of them just run it sharded now.
  Rng shard_rng(seed ^ 0x5A4DED5A4DEDULL);
  config.engine.shards =
      shard_rng.next_bool(0.3) ? static_cast<std::size_t>(shard_rng.next_in(2, 4))
                               : 1;
  // Shard rebalancing rides the same derived stream, with its draws appended
  // AFTER the shard draws: every historical seed still expands to the exact
  // world it always did — sharded cases now also migrate server groups
  // mid-run some of the time, putting barrier-time migration under the
  // replay gate and every invariant check.
  if (config.engine.shards > 1 && shard_rng.next_bool(0.5)) {
    config.engine.rebalance_threshold = shard_rng.next_double_in(1.05, 1.5);
    config.engine.rebalance_interval_events =
        static_cast<std::uint64_t>(shard_rng.next_in(20'000, 200'000));
  }

  // ---- link fabric ----------------------------------------------------------
  d.wan.latency = SimTime::from_ms(rng.next_double_in(5.0, 40.0));
  d.lan.latency = SimTime::from_us(rng.next_in(100, 1000));
  d.colocated.latency = SimTime::from_us(rng.next_in(10, 60));
  // drop stays 0 everywhere: conservation invariants assume reliable links.

  d.game_node.service_per_message =
      SimTime::from_us(rng.next_in(60, 160));

  // ---- admission / waiting room / global ------------------------------------
  AdmissionConfig& admission = config.admission;
  admission.enabled = rng.next_bool(0.85);
  if (admission.enabled) {
    admission.soft_load_fraction = rng.next_double_in(0.6, 0.9);
    admission.hard_load_fraction =
        admission.soft_load_fraction + rng.next_double_in(0.2, 0.5);
    admission.token_rate_per_sec = rng.next_double_in(8.0, 40.0);
    admission.token_burst = admission.token_rate_per_sec * 2.0;
    admission.dwell = SimTime::from_sec(rng.next_double_in(1.0, 3.0));
    admission.recover_min = SimTime::from_sec(rng.next_double_in(3.0, 8.0));
    admission.defer_retry = SimTime::from_sec(rng.next_double_in(1.0, 3.0));
    admission.soft_waiting_count =
        rng.next_bool(0.5) ? static_cast<std::uint32_t>(rng.next_in(16, 64))
                           : 0;
    admission.hard_waiting_count = admission.soft_waiting_count == 0
                                       ? 0
                                       : admission.soft_waiting_count * 4;

    SurgePriorityConfig& priority = admission.priority;
    priority.queue_enabled = rng.next_bool(0.6);
    priority.queue_capacity = static_cast<std::uint32_t>(rng.next_in(32, 256));
    priority.age_step = rng.next_bool(0.5)
                            ? SimTime::from_sec(rng.next_double_in(3.0, 15.0))
                            : SimTime{};
    priority.vip_drain_cap = rng.next_double_in(0.3, 1.0);

    GlobalAdmissionConfig& global = admission.global;
    global.enabled = rng.next_bool(0.5);
    global.soft_pressure = rng.next_double_in(0.5, 0.75);
    global.hard_pressure = global.soft_pressure + rng.next_double_in(0.1, 0.3);
    global.token_rate_total = rng.next_double_in(16.0, 64.0);
    global.dwell = SimTime::from_sec(rng.next_double_in(1.0, 3.0));
    global.recover_min = SimTime::from_sec(rng.next_double_in(3.0, 8.0));
    global.queue_handoff = rng.next_bool(0.9);
  }

  // ---- crowd shape ----------------------------------------------------------
  plan.duration = SimTime::from_sec(rng.next_double_in(25.0, 45.0));
  const Rect world = config.world;

  const auto random_center = [&rng, &world] {
    return Vec2{rng.next_double_in(world.x0() + 50.0, world.x1() - 50.0),
                rng.next_double_in(world.y0() + 50.0, world.y1() - 50.0)};
  };

  const std::size_t background = static_cast<std::size_t>(rng.next_in(20, 60));
  plan.waves.push_back({SimTime::from_ms(100), background, Vec2{}, 0.0, 0.0,
                        /*background=*/true});
  plan.offered_clients = background;

  std::size_t remaining =
      static_cast<std::size_t>(rng.next_in(100, 360));
  const std::size_t crowds = static_cast<std::size_t>(rng.next_in(1, 3));
  std::vector<Vec2> centers;
  for (std::size_t c = 0; c < crowds; ++c) {
    const std::size_t share =
        c + 1 == crowds ? remaining
                        : remaining / 2 +
                              static_cast<std::size_t>(
                                  rng.next_below(remaining / 2 + 1));
    remaining -= share;
    if (share == 0) continue;
    const Vec2 center = random_center();
    centers.push_back(center);
    const double spread = rng.next_double_in(30.0, 150.0);
    const double vip = rng.next_bool(0.6) ? rng.next_double_in(0.05, 0.4) : 0.0;
    const SimTime start =
        SimTime::from_sec(rng.next_double_in(1.0, plan.duration.sec() * 0.3));

    switch (rng.next_below(3)) {
      case 0: {  // flash: the whole crowd in one or two bursts
        const std::size_t first = share / 2 + rng.next_below(share / 2 + 1);
        plan.waves.push_back({start, first, center, spread, vip, false});
        if (share > first) {
          plan.waves.push_back({start + SimTime::from_sec(1.0), share - first,
                                center, spread, vip, false});
        }
        break;
      }
      case 1: {  // ramp: even batches every interval
        const std::size_t batches =
            static_cast<std::size_t>(rng.next_in(3, 8));
        const SimTime interval =
            SimTime::from_sec(rng.next_double_in(0.5, 2.5));
        for (std::size_t b = 0; b < batches; ++b) {
          const std::size_t n =
              b + 1 == batches ? share - (share / batches) * b
                               : share / batches;
          if (n == 0) continue;
          plan.waves.push_back(
              {start + interval * static_cast<std::int64_t>(b), n, center,
               spread, vip, false});
        }
        break;
      }
      default: {  // diurnal: swell, then a partial ebb scheduled as churn
        const std::size_t swell = share;
        const std::size_t batches = 4;
        const SimTime interval =
            SimTime::from_sec(rng.next_double_in(1.0, 3.0));
        for (std::size_t b = 0; b < batches; ++b) {
          const std::size_t n =
              b + 1 == batches ? swell - (swell / batches) * b
                               : swell / batches;
          if (n == 0) continue;
          plan.waves.push_back(
              {start + interval * static_cast<std::int64_t>(b), n, center,
               spread, vip, false});
        }
        const SimTime ebb_at =
            start + interval * 4 + SimTime::from_sec(rng.next_double_in(
                                       2.0, plan.duration.sec() * 0.3));
        plan.departures.push_back({ebb_at, swell / 2, center});
        break;
      }
    }
    plan.offered_clients += share;
  }

  // ---- churn departures -----------------------------------------------------
  if (rng.next_bool(0.4)) {
    const std::size_t rounds = static_cast<std::size_t>(rng.next_in(1, 3));
    for (std::size_t r = 0; r < rounds; ++r) {
      const SimTime at = SimTime::from_sec(
          rng.next_double_in(plan.duration.sec() * 0.4,
                             plan.duration.sec() * 0.9));
      const std::size_t count =
          static_cast<std::size_t>(rng.next_in(10, 60));
      std::optional<Vec2> near;
      if (!centers.empty() && rng.next_bool(0.6)) {
        near = centers[rng.next_below(centers.size())];
      }
      plan.departures.push_back({at, count, near});
    }
  }

  // ---- observability: the ring must hold the WHOLE lifecycle history --------
  ObsConfig& obs = config.obs;
  obs.trace_enabled = true;
  obs.record_sends = false;  // the firehose would dwarf the lifecycle story
  static constexpr std::size_t kMultipliers[] = {1, 2, 4};
  const std::size_t mult = kMultipliers[rng.next_below(3)];
  obs.ring_capacity =
      pow2_at_least((plan.offered_clients * 160 + 16384) * mult);
  obs.span_capacity = pow2_at_least(plan.offered_clients * 8 + 1024);

  // ---- control-plane chaos (src/control/control_plane.h) -------------------
  // Drawn LAST, so every earlier stream (topology, knobs, crowd, obs) is
  // byte-identical to the pre-chaos corpus: old seeds keep their shapes.
  if (rng.next_bool(0.35)) {
    config.failsafe.enabled = true;
    FuzzChaos& chaos = plan.chaos;
    const double duration_sec = plan.duration.sec();
    const double tau2_sec = config.failsafe.tau2.sec();
    if (rng.next_bool(0.6)) {
      // Hard outage: the MC process dies mid-run; 70% of the time a standby
      // revives after the failsafe has had time to reach FALLBACK.
      chaos.kill_at = SimTime::from_sec(
          rng.next_double_in(duration_sec * 0.25, duration_sec * 0.5));
      if (rng.next_bool(0.7)) {
        chaos.revive_at =
            chaos.kill_at + SimTime::from_sec(rng.next_double_in(
                                tau2_sec + 3.0, tau2_sec + 15.0));
      }
    } else {
      // Partition / lossy window: the MC lives, its links do not.  Half the
      // windows black-hole everything (a clean partition), half drop or
      // delay a fraction — the reordered/delayed control path that
      // stale-seq/stale-epoch admission exists for.
      chaos.degrade_at = SimTime::from_sec(
          rng.next_double_in(duration_sec * 0.25, duration_sec * 0.5));
      chaos.heal_at =
          chaos.degrade_at + SimTime::from_sec(rng.next_double_in(
                                 tau2_sec + 3.0, tau2_sec + 15.0));
      chaos.degraded = plan.deployment.lan;
      if (rng.next_bool(0.5)) {
        chaos.degraded.drop_probability = 1.0;
      } else {
        chaos.degraded.drop_probability = rng.next_double_in(0.2, 0.8);
        chaos.degraded.latency = SimTime::from_ms(
            rng.next_double_in(20.0, 300.0));
      }
    }
  } else if (rng.next_bool(0.25)) {
    // Failsafe armed with NO chaos: heartbeats stay fresh the whole run, so
    // the plane must remain a behavioural no-op (every invariant of a
    // healthy run still has to hold).
    config.failsafe.enabled = true;
  }

  return plan;
}

FuzzResult run_fuzz_case(std::uint64_t seed, LoadPolicyKind policy,
                         const FuzzRunOptions& options) {
  FuzzResult result;
  result.plan = make_fuzz_plan(seed, policy);

  DeploymentOptions deployment_options = result.plan.deployment;
  if (options.mutate) options.mutate(deployment_options);

  Deployment deployment(deployment_options);
  // The plan expands onto the shared fluent builder (sim/scenario.h) — the
  // same scheduling surface the canned and chaos scenarios use, so a fuzzed
  // run and a hand-written one differ only in where the numbers came from.
  ScenarioSpec spec;
  for (const FuzzWave& wave : result.plan.waves) {
    if (wave.background) {
      spec.background(wave.at, wave.count);
    } else {
      spec.flash(wave.at, wave.count, wave.center, wave.spread,
                 wave.vip_fraction);
    }
  }
  for (const FuzzDeparture& departure : result.plan.departures) {
    spec.depart(departure.at, departure.count, departure.near);
  }
  const FuzzChaos& chaos = result.plan.chaos;
  if (chaos.kill_at.us() != 0) {
    spec.kill_mc(chaos.kill_at);
    if (chaos.revive_at.us() != 0) spec.revive_mc(chaos.revive_at);
  }
  if (chaos.degrade_at.us() != 0) {
    spec.degrade_control_links(chaos.degrade_at, chaos.degraded);
    spec.degrade_control_links(chaos.heal_at, result.plan.deployment.lan);
  }
  spec.run_for(result.plan.duration).schedule(deployment);

  deployment.run_until(result.plan.duration);

  // Mid-run conservation: at any processed instant the trace-derived
  // playing/queued sets equal the live session tables exactly (sessions are
  // only ever created or erased at traced points), so a leak is visible
  // HERE — before the teardown byes at quiesce would mask it.
  InvariantOptions mid_options;
  mid_options.expect_quiesced = false;
  mid_options.lossy_control_links = chaos.lossy();
  const InvariantReport mid_report = check_deployment(deployment, mid_options);

  result.quiesced = quiesce(deployment);

  InvariantOptions invariant_options;
  invariant_options.expect_quiesced = true;
  invariant_options.lossy_control_links = chaos.lossy();
  result.report = check_deployment(deployment, invariant_options);

  // Fold mid-run findings in (details prefixed so a red run says when the
  // invariant tripped), deduplicating anything the final pass re-found.
  for (const InvariantViolation& violation : mid_report.violations) {
    bool duplicate = false;
    for (const InvariantViolation& final_violation : result.report.violations) {
      if (final_violation.invariant == violation.invariant &&
          final_violation.detail == violation.detail) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      result.report.add(violation.invariant, "mid-run: " + violation.detail);
    }
  }
  if (!result.quiesced) {
    result.report.add(kInvBlackhole,
                      "deployment did not quiesce within the drain budget");
  }

  if (options.capture_trace) {
    std::ostringstream jsonl;
    deployment.network().tracer().dump_jsonl(jsonl);
    result.trace_jsonl = jsonl.str();
  }
  return result;
}

}  // namespace matrix::fuzz
