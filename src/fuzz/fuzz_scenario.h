// Randomized scenario fuzzer (docs/TESTING.md).
//
// One 64-bit seed deterministically expands into a complete scenario — the
// deployment (grid size, pool depth, link latencies, service rates), the
// Config knobs (admission valve, waiting room, global admission, policy,
// observability ring sizes), and the crowd (ramp / flash / diurnal wave mix,
// crest sizes, VIP share, churn departures).  The run is then driven to
// rest and every trace invariant (src/fuzz/invariants.h) is checked.
//
// Determinism is the contract that makes a red run actionable: the same
// seed always produces byte-identical trace output, so any violation found
// by the CI sweep replays locally with `matrix_fuzz --seed N`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/invariants.h"
#include "sim/deployment.h"

namespace matrix::fuzz {

/// One scheduled arrival wave of the fuzzed crowd.
struct FuzzWave {
  SimTime at;
  std::size_t count = 0;
  Vec2 center;
  double spread = 50.0;
  double vip_fraction = 0.0;
  /// Background waves spawn uniformly over the world instead of at center.
  bool background = false;
};

/// One scheduled churn departure.
struct FuzzDeparture {
  SimTime at;
  std::size_t count = 0;
  /// Depart nearest this hotspot first (background churn when unset).
  std::optional<Vec2> near;
};

/// Control-plane chaos scheduled for one seed (control-plane failsafe,
/// src/control/control_plane.h).  Only armed on plans that also enable
/// Config::failsafe.
struct FuzzChaos {
  /// Coordinator killed here; zero = no outage.
  SimTime kill_at{};
  /// Standby (next generation) revived here; zero = dead for the rest.
  SimTime revive_at{};
  /// MC↔Matrix links swap to `degraded` over [degrade_at, heal_at);
  /// degrade_at zero = no window.
  SimTime degrade_at{};
  SimTime heal_at{};
  LinkConfig degraded;

  [[nodiscard]] bool any() const {
    return kill_at.us() != 0 || degrade_at.us() != 0;
  }
  /// True when control messages can be LOST (not merely delayed or cut off
  /// from a dead MC) — the condition for the weakened invariant set
  /// (InvariantOptions::lossy_control_links).
  [[nodiscard]] bool lossy() const {
    return degrade_at.us() != 0 && degraded.drop_probability > 0.0;
  }
};

/// The fully-expanded scenario for one seed.  Everything a run needs is
/// here — inspect it (describe()) to see what a seed actually exercises.
struct FuzzPlan {
  std::uint64_t seed = 0;
  DeploymentOptions deployment;
  std::vector<FuzzWave> waves;
  std::vector<FuzzDeparture> departures;
  FuzzChaos chaos;
  SimTime duration;
  /// Crowd size at the crest (all waves summed).
  std::size_t offered_clients = 0;

  /// One-line human summary of the scenario shape.
  [[nodiscard]] std::string describe() const;
};

/// Expands `seed` into a scenario under the given load policy.  Pure: the
/// same (seed, policy) always yields the same plan.
[[nodiscard]] FuzzPlan make_fuzz_plan(std::uint64_t seed,
                                      LoadPolicyKind policy);

struct FuzzRunOptions {
  /// Applied to the plan's DeploymentOptions before the deployment is
  /// built — the hook mutation tests use to arm Config::fault knobs or
  /// force a subsystem on.
  std::function<void(DeploymentOptions&)> mutate;
  /// Capture the full flight-recorder stream as JSONL into
  /// FuzzResult::trace_jsonl (for replay comparison and failure dumps).
  bool capture_trace = false;
};

struct FuzzResult {
  FuzzPlan plan;
  InvariantReport report;
  /// quiesce() went quiet within its budget.  A false here with a clean
  /// report still means something is stuck — the caller should treat it as
  /// a failure (check_deployment will usually have said why).
  bool quiesced = false;
  /// Flight-recorder JSONL (oldest first) when capture_trace was set.
  std::string trace_jsonl;
};

/// Builds the plan, runs it, quiesces, and checks every invariant.
[[nodiscard]] FuzzResult run_fuzz_case(std::uint64_t seed,
                                       LoadPolicyKind policy,
                                       const FuzzRunOptions& options = {});

}  // namespace matrix::fuzz
