// MatrixPort — the game-developer API (paper §2.1, §3.2.2).
//
// This is the entire surface a game server needs to run under Matrix.  The
// paper's design criteria are reflected directly:
//
//   * Separation of concerns: the game never sees overlap tables, splits,
//     the coordinator, or peer servers — it tags packets with coordinates
//     and reacts to a handful of callbacks.
//   * No new security model: the game keeps its client connections; Matrix
//     only sits between game servers.
//   * Multiple platforms / minimal changes: the port is plain callbacks over
//     byte payloads; no game types leak into Matrix and vice versa.
//
// Usage sketch (see examples/quickstart.cpp for a complete program):
//
//   MatrixPort port(network, my_node, my_matrix_node);
//   port.on_packet([&](const TaggedPacket& p) { apply_remote_event(p); });
//   port.on_map_range([&](const MapRange& r) { adjust_authority(r); });
//   ...
//   port.send_packet(tagged);     // every client packet, spatially tagged
//   port.report_load(load);      // periodically
//
// The game server calls `try_dispatch` from its message handler; the port
// consumes Matrix-originated messages and returns false for everything else
// (client traffic), which the game handles itself.
#pragma once

#include <functional>

#include "core/protocol.h"
#include "net/network.h"

namespace matrix {

class MatrixPort {
 public:
  /// `self` is the game server's node; `matrix_node` its co-located Matrix
  /// server.
  MatrixPort(Network* network, NodeId self, NodeId matrix_node)
      : network_(network), self_(self), matrix_node_(matrix_node) {}

  // ---- outbound (game → Matrix) --------------------------------------------

  /// Forwards a spatially-tagged game packet for consistency routing.
  /// Returns wire bytes sent.
  std::size_t send_packet(const TaggedPacket& packet) {
    return send_body(packet);
  }

  /// Periodic load report; drives split/reclaim decisions.
  std::size_t report_load(const LoadReport& report) {
    return send_body(report);
  }

  /// Bulk map-object state destined for `transfer.to_game`, relayed via
  /// Matrix during splits/reclaims.
  std::size_t transfer_state(const StateTransfer& transfer) {
    return send_body(transfer);
  }

  /// One switching client's avatar state, relayed via Matrix.
  std::size_t transfer_client_state(const ClientStateTransfer& transfer) {
    return send_body(transfer);
  }

  /// Acknowledges that a MapRange-ordered shed has completed.
  std::size_t shed_done(const ShedDone& done) { return send_body(done); }

  /// Surge-queue entries whose region moved to `handoff.to_game` in a
  /// split/reclaim, relayed via Matrix so they re-park there with class
  /// and accrued age preserved (coordinator-led global admission).
  std::size_t transfer_queue(const QueueHandoff& handoff) {
    return send_body(handoff);
  }

  /// Asks Matrix which game server owns `query.point` (client migration:
  /// "Matrix provides the identity of the appropriate game server").  The
  /// answer arrives on the on_owner_reply callback.
  std::size_t query_owner(const OwnerQuery& query) {
    return send_body(query);
  }

  // ---- inbound callbacks (Matrix → game) ------------------------------------

  using PacketHandler = std::function<void(const TaggedPacket&)>;
  using MapRangeHandler = std::function<void(const MapRange&)>;
  using StateHandler = std::function<void(const StateTransfer&)>;
  using ClientStateHandler = std::function<void(const ClientStateTransfer&)>;
  using OwnerReplyHandler = std::function<void(const OwnerReply&)>;
  using AdmissionHandler = std::function<void(const AdmissionUpdate&)>;
  using DirectiveHandler = std::function<void(const AdmissionDirective&)>;
  using QueueHandoffHandler = std::function<void(const QueueHandoff&)>;
  using HeartbeatHandler = std::function<void(const McHeartbeat&)>;

  /// A remote event relevant to this server's partition (range-verified by
  /// the Matrix server before delivery).
  void on_packet(PacketHandler handler) { packet_ = std::move(handler); }
  /// The authoritative map range changed (split/reclaim/initial).
  void on_map_range(MapRangeHandler handler) { map_range_ = std::move(handler); }
  /// Incoming bulk state from another game server.
  void on_state_transfer(StateHandler handler) { state_ = std::move(handler); }
  /// Incoming avatar state for a client about to connect here.
  void on_client_state(ClientStateHandler handler) {
    client_state_ = std::move(handler);
  }
  /// Answer to an earlier query_owner.
  void on_owner_reply(OwnerReplyHandler handler) {
    owner_reply_ = std::move(handler);
  }
  /// The admission valve changed state (src/control/): the game server
  /// should start/stop gating new joins accordingly.
  void on_admission(AdmissionHandler handler) {
    admission_ = std::move(handler);
  }
  /// A coordinator-led admission directive arrived (relayed by the Matrix
  /// server): floor state and this server's token-budget share.
  void on_directive(DirectiveHandler handler) {
    directive_ = std::move(handler);
  }
  /// Parked joins handed off from another server's surge queue.
  void on_queue_handoff(QueueHandoffHandler handler) {
    queue_handoff_ = std::move(handler);
  }
  /// A coordinator liveness beat, relayed by the co-located Matrix server
  /// (control-plane failsafe; only sent when Config::failsafe.enabled).
  void on_heartbeat(HeartbeatHandler handler) {
    heartbeat_ = std::move(handler);
  }

  /// Routes a decoded message to the registered callback.  Returns true if
  /// the message belonged to Matrix (consumed), false if it is the game's
  /// own traffic.
  bool try_dispatch(const Message& message) {
    if (const auto* packet = std::get_if<TaggedPacket>(&message)) {
      if (packet_) packet_(*packet);
      return true;
    }
    if (const auto* range = std::get_if<MapRange>(&message)) {
      if (map_range_) map_range_(*range);
      return true;
    }
    if (const auto* state = std::get_if<StateTransfer>(&message)) {
      if (state_) state_(*state);
      return true;
    }
    if (const auto* cstate = std::get_if<ClientStateTransfer>(&message)) {
      if (client_state_) client_state_(*cstate);
      return true;
    }
    if (const auto* reply = std::get_if<OwnerReply>(&message)) {
      if (owner_reply_) owner_reply_(*reply);
      return true;
    }
    if (const auto* update = std::get_if<AdmissionUpdate>(&message)) {
      if (admission_) admission_(*update);
      return true;
    }
    if (const auto* directive = std::get_if<AdmissionDirective>(&message)) {
      if (directive_) directive_(*directive);
      return true;
    }
    if (const auto* handoff = std::get_if<QueueHandoff>(&message)) {
      if (queue_handoff_) queue_handoff_(*handoff);
      return true;
    }
    if (const auto* beat = std::get_if<McHeartbeat>(&message)) {
      if (heartbeat_) heartbeat_(*beat);
      return true;
    }
    return false;
  }

  [[nodiscard]] NodeId matrix_node() const { return matrix_node_; }

 private:
  std::size_t send(const Message& message) {
    ByteWriter writer(network_->rent_buffer());
    encode_message_into(writer, message);
    return network_->send(self_, matrix_node_, writer.take());
  }

  /// Typed fast path: no Message-variant copy per outbound call.
  template <typename Body>
  std::size_t send_body(const Body& body) {
    ByteWriter writer(network_->rent_buffer());
    encode_one_into(writer, body);
    return network_->send(self_, matrix_node_, writer.take());
  }

  Network* network_;
  NodeId self_;
  NodeId matrix_node_;
  PacketHandler packet_;
  MapRangeHandler map_range_;
  StateHandler state_;
  ClientStateHandler client_state_;
  OwnerReplyHandler owner_reply_;
  AdmissionHandler admission_;
  DirectiveHandler directive_;
  QueueHandoffHandler queue_handoff_;
  HeartbeatHandler heartbeat_;
};

}  // namespace matrix
