// Coordinator-led global admission — the deployment-wide valve above the
// per-server ones.
//
// PR 1/PR 2 made overload a first-class regime, but every valve is still
// local: when several partitions saturate at once, each AdmissionController
// reacts only to its own signals, so a flash crowd spanning partitions is
// admitted unevenly — the partition that happened to close its valve last
// soaks up the whole deployment's join pressure while another's waiting
// room starves.  The Matrix Coordinator is the one node that already sees
// everything (PoolStatus from the pool, and now a LoadDigest per server);
// this class turns that vantage point into a directive:
//
//   * a PRESSURE SCORE folding pool occupancy, mean load, the share of
//     servers already elevated, and aggregate waiting-room depth into one
//     deployment-wide number in [0, 1];
//   * a FLOOR state (NORMAL/SOFT/HARD) derived from the score under the
//     same hysteresis contract as the local valve — escalation immediate,
//     relaxation one level at a time after dwell + recover_min of calm,
//     machine-checked by admission_timeline_valid;
//   * per-server TOKEN-BUDGET SHARES: the deployment-wide SOFT budget is
//     divided in proportion to each server's waiting-room depth (plus a
//     floor share), so the most starved partitions drain first.
//
// The coordinator broadcasts the result as AdmissionDirective messages;
// each Matrix server composes the floor with its local decision (strictest
// wins — compose_admission in admission.h) and its game server swaps the
// directive share into its join bucket.  Like everything in src/control/,
// the subsystem is off by default (Config::admission.global.enabled).
#pragma once

#include <cstdint>
#include <vector>

#include "control/admission.h"
#include "core/config.h"
#include "policy/load_view.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace matrix {

class GlobalAdmission {
 public:
  GlobalAdmission(const GlobalAdmissionConfig& config,
                  std::uint32_t overload_clients);

  /// One server's digest, as carried by the LoadDigest wire message: the
  /// shared LoadSignals triple (policy/load_view.h) plus the server's LOCAL
  /// valve state.
  struct ServerDigest {
    LoadSignals load;
    AdmissionState state = AdmissionState::kNormal;
  };

  /// Feeds one server digest / the pool's occupancy, then re-evaluates the
  /// floor.  Returns true when the floor CHANGED (the caller should
  /// broadcast immediately; share drift alone is rebroadcast on the
  /// directive_interval cadence — see broadcast_due()).
  bool observe_server(SimTime now, ServerId server, const ServerDigest& digest);
  bool observe_pool(SimTime now, std::uint32_t idle, std::uint32_t total);

  /// Drops a server from the aggregate (unregistered/reclaimed).  Returns
  /// true when the re-evaluation changed the floor — losing a calm server
  /// can push the mean terms over a threshold, and that clamp must
  /// broadcast as immediately as any other escalation.
  bool forget_server(SimTime now, ServerId server);

  // ---- directive contents ---------------------------------------------------

  [[nodiscard]] AdmissionState floor() const { return floor_; }
  /// A directive is in force while the floor is elevated.
  [[nodiscard]] bool active() const {
    return floor_ != AdmissionState::kNormal;
  }
  /// Deployment pressure score in [0, 1] at the last evaluation.
  [[nodiscard]] double pressure() const { return breakdown_.total(); }
  /// The score split into its weighted terms (policy/load_view.h) — the
  /// "why" behind the floor, consumable by policies, benches, and tests.
  [[nodiscard]] const PressureBreakdown& breakdown() const {
    return breakdown_;
  }
  /// Aggregate surge-queue depth across all digests.
  [[nodiscard]] std::uint32_t waiting_total() const;
  /// `server`'s share of the deployment-wide SOFT token budget: its
  /// token_rate_floor plus a waiting-room-depth-weighted slice of the
  /// remainder, so shares across tracked servers sum to exactly
  /// token_rate_total.  Only meaningful while active().
  [[nodiscard]] double share_for(ServerId server) const;

  /// True when an unchanged-floor share refresh is due (directive_interval
  /// since the last broadcast).  The caller stamps broadcasts with
  /// mark_broadcast().
  [[nodiscard]] bool broadcast_due(SimTime now) const;
  void mark_broadcast(SimTime now) {
    last_broadcast_ = now;
    ever_broadcast_ = true;
  }

  // ---- observability / invariants -------------------------------------------

  /// Floor transitions, under the exact contract of the per-server valve.
  [[nodiscard]] const std::vector<AdmissionTransition>& transitions() const {
    return transitions_;
  }
  /// Hysteresis-contract check on the floor timeline
  /// (admission_timeline_valid with this config's dwell/recover_min).
  [[nodiscard]] bool timeline_valid() const;

  struct Stats {
    std::uint64_t observations = 0;
    std::uint64_t escalations = 0;
    std::uint64_t relaxations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t tracked_servers() const { return digests_.size(); }

  /// Severity the current aggregate maps to before hysteresis (exposed for
  /// tests, mirroring AdmissionController::target_for).
  [[nodiscard]] AdmissionState target() const;

 private:
  struct Tracked {
    ServerId server;
    ServerDigest digest;
  };

  /// Re-evaluates pressure and applies the floor transition rules; true on
  /// a floor change.
  bool evaluate(SimTime now);
  [[nodiscard]] PressureBreakdown compute_pressure() const;
  void transition(SimTime now, AdmissionState to);

  GlobalAdmissionConfig config_;
  std::uint32_t overload_clients_;

  std::vector<Tracked> digests_;
  std::uint32_t pool_idle_ = 0;
  std::uint32_t pool_total_ = 0;  ///< 0 ⇒ pool occupancy unknown

  AdmissionState floor_ = AdmissionState::kNormal;
  PressureBreakdown breakdown_;
  SimTime last_transition_{};
  SimTime calm_since_{};
  bool calm_ = false;
  bool ever_transitioned_ = false;
  SimTime last_broadcast_{};
  bool ever_broadcast_ = false;

  std::vector<AdmissionTransition> transitions_;
  Stats stats_;
};

}  // namespace matrix
