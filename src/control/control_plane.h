// Control-plane failsafe — one epoch-stamped ingestion path for every
// coordinator-originated state flip, plus the heartbeat-driven NORMAL /
// HOLD / FALLBACK degradation machine (ROADMAP "Control-plane failsafe").
//
// Before this layer, staleness checking was scattered: the matrix server
// compared AdmissionDirective.seq against one counter, McAnnounce.generation
// against another, the game server kept its own seq counters for
// AdmissionUpdate and relayed directives, and PoolPressure was applied
// unconditionally.  A coordinator fail-over had to reset the right subset of
// those counters in the right order or a server would act on a dead brain's
// directives.  ControlPlane replaces all of it with a single entry point:
//
//   ControlVerdict v = plane.admit(now, {kind, epoch, seq});
//   if (v == ControlVerdict::kApply) { ...act on the payload... }
//
// Every rule lives here:
//   * epoch (= MC generation) supersedes seq: a higher epoch flips the
//     plane atomically (all per-kind seq counters reset together, one
//     kControlEpochFlip trace), a lower epoch is dropped;
//   * within an epoch, sequenced kinds must strictly increase;
//   * while the failsafe is degraded (HOLD/FALLBACK), coordinator-originated
//     payloads (directives, pool pressure) are refused outright — a delayed
//     directive from a possibly-dead coordinator is exactly the "stale
//     brain" input the machine exists to fence off.  Only a fresh heartbeat
//     or announce restores trust.
//
// The failsafe machine itself (driven by heartbeat age):
//
//   NORMAL    fresh MC: obey directives.
//   HOLD      heartbeat silence >= tau1: freeze the current directive and
//             pool view rather than acting on them — the directive stays in
//             force, but no new pool-grant-seeking decisions are derived
//             from coordinator state (DirectivePolicy need drops to zero).
//   FALLBACK  silence >= tau2: deterministic local-only behaviour — the
//             frozen directive is dropped (local valve and local token rate
//             take back over), splits needing pool grants are suppressed,
//             reclaim turns conservative.
//
// Degradation never skips a level (NORMAL→HOLD→FALLBACK); recovery on a
// fresh heartbeat jumps straight back to NORMAL.  The recorded timeline is
// machine-checked by failsafe_timeline_valid(), the same contract shape as
// admission_timeline_valid().
//
// Disabled (Config::failsafe.enabled == false, the default) the machine is
// inert — state() is always NORMAL, no transitions are recorded, admit()
// reproduces the historical ad-hoc accept/reject decisions bit-for-bit, so
// the pinned golden-trace hashes are unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "obs/trace.h"
#include "util/sim_time.h"

namespace matrix {

enum class FailsafeState : std::uint8_t {
  kNormal = 0,
  kHold = 1,
  kFallback = 2,
};

[[nodiscard]] const char* failsafe_state_name(FailsafeState state);

/// Which coordinator-originated control flow an update belongs to.  Each
/// sequenced kind keeps its own seq counter inside the current epoch.
enum class ControlKind : std::uint8_t {
  kAnnounce = 0,    ///< McAnnounce: epoch-stamped, unsequenced
  kHeartbeat,       ///< McHeartbeat: epoch-stamped + sequenced
  kDirective,       ///< AdmissionDirective (MC → matrix, matrix → game relay)
  kAdmissionUpdate, ///< AdmissionUpdate (matrix → game; local, never gated)
  kPoolPressure,    ///< PoolPressure: unsequenced, gated while degraded
  kCount,
};

[[nodiscard]] const char* control_kind_name(ControlKind kind);

/// The stamp every control update carries into admit().  `epoch` is the MC
/// generation (0 = not epoch-stamped: an intra-epoch message); `seq` is the
/// per-kind sequence number (0 = unsequenced).
struct ControlUpdate {
  ControlKind kind = ControlKind::kDirective;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};

enum class ControlVerdict : std::uint8_t {
  kApply = 0,      ///< act on the payload
  kStaleEpoch,     ///< from a superseded coordinator generation
  kStaleSeq,       ///< replay or reorder within the current epoch
  kHeld,           ///< refused while the failsafe is degraded (HOLD/FALLBACK)
};

/// One recorded failsafe state change.  `heartbeat_age` is the silence
/// (now − last accepted heartbeat) at the instant of the transition — the
/// quantity the validity check judges tau1/tau2 against, so the check does
/// not depend on tick cadence.
struct FailsafeTransition {
  SimTime at{};
  FailsafeState from = FailsafeState::kNormal;
  FailsafeState to = FailsafeState::kNormal;
  SimTime heartbeat_age{};
};

class ControlPlane {
 public:
  explicit ControlPlane(const FailsafeConfig& config) : config_(config) {}

  /// Wires the trace sink and the owning node's id (trace subject).  The
  /// tracer may be null (unit tests).
  void bind(obs::Tracer* tracer, std::uint64_t subject) {
    tracer_ = tracer;
    subject_ = subject;
  }

  /// Starts the heartbeat clock: silence is measured from here until the
  /// first heartbeat lands.  Call once when the owner begins ticking.
  void start(SimTime now) {
    last_heartbeat_ = now;
    started_ = true;
  }

  /// THE control-update entry point.  Applies the epoch/seq/degradation
  /// rules and mutates plane state (epoch flip, seq counters, heartbeat
  /// clock, recovery) exactly when the verdict is kApply.
  ControlVerdict admit(SimTime now, const ControlUpdate& update);

  /// Advances the failsafe machine against the heartbeat clock.  Returns
  /// true when the state changed.  No-op unless enabled and started.
  bool tick(SimTime now);

  [[nodiscard]] FailsafeState state() const { return state_; }
  /// HOLD or FALLBACK: coordinator state is no longer trusted.
  [[nodiscard]] bool degraded() const {
    return state_ != FailsafeState::kNormal;
  }
  [[nodiscard]] bool fallback() const {
    return state_ == FailsafeState::kFallback;
  }

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t last_seq(ControlKind kind) const {
    return last_seq_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] SimTime last_heartbeat() const { return last_heartbeat_; }

  /// Full failsafe transition timeline since construction.
  [[nodiscard]] const std::vector<FailsafeTransition>& transitions() const {
    return transitions_;
  }

  struct Stats {
    std::uint64_t applied = 0;
    std::uint64_t stale_epoch_drops = 0;
    std::uint64_t stale_seq_drops = 0;
    std::uint64_t held_drops = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t epoch_flips = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// TEST-ONLY (Config::fault.stale_directive_replay): accept stale
  /// sequenced updates instead of rejecting them, so the planted
  /// stale-directive bug actually re-applies — and the monotonicity
  /// invariant over kControlApplied traces catches it.
  void set_fault_accept_stale(bool on) { fault_accept_stale_ = on; }

 private:
  void flip_epoch(SimTime now, std::uint64_t epoch);
  void note_heartbeat(SimTime now);
  void transition(SimTime now, FailsafeState to);

  FailsafeConfig config_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t subject_ = 0;

  std::uint64_t epoch_ = 0;
  std::uint64_t last_seq_[static_cast<std::size_t>(ControlKind::kCount)] = {};

  FailsafeState state_ = FailsafeState::kNormal;
  SimTime last_heartbeat_{};
  bool started_ = false;
  bool fault_accept_stale_ = false;

  std::vector<FailsafeTransition> transitions_;
  Stats stats_;
};

/// Checks a recorded failsafe timeline against the degradation contract:
///   * no self-transitions, and consecutive entries chain (from == prev to);
///   * only the legal edges NORMAL→HOLD, HOLD→FALLBACK, HOLD→NORMAL,
///     FALLBACK→NORMAL — degradation never skips a level, recovery never
///     stops half-way;
///   * timestamps are non-decreasing;
///   * HOLD is entered at heartbeat age >= tau1, FALLBACK at age >= tau2,
///     and recovery to NORMAL at age < tau1 (a fresh beat);
///   * across a consecutive HOLD→FALLBACK pair the wall gap equals the age
///     gap (the silence ran uninterrupted — no beat landed in between).
[[nodiscard]] bool failsafe_timeline_valid(
    const std::vector<FailsafeTransition>& timeline,
    const FailsafeConfig& config);

}  // namespace matrix
