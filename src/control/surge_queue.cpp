#include "control/surge_queue.h"

#include <algorithm>

namespace matrix {

const char* priority_class_name(PriorityClass cls) {
  switch (cls) {
    case PriorityClass::kResume: return "RESUME";
    case PriorityClass::kVip: return "VIP";
    case PriorityClass::kNormal: return "NORMAL";
  }
  return "?";
}

PriorityClass priority_class_from_wire(std::uint8_t wire) {
  // Unknown future wire values degrade to NORMAL, never up to RESUME.
  return wire == 1 ? PriorityClass::kVip : PriorityClass::kNormal;
}

bool SurgeQueue::enqueue(SimTime now, ClientId client, NodeId client_node,
                         Vec2 position, PriorityClass cls) {
  if (entries_.size() >= config_.queue_capacity) {
    ++stats_.overflow;
    return false;
  }
  SurgeEntry entry;
  entry.client = client;
  entry.client_node = client_node;
  entry.position = position;
  entry.cls = cls;
  entry.enqueued_at = now;
  entry.seq = next_seq_++;
  entries_.push_back(entry);
  ++stats_.enqueued;
  stats_.max_depth = std::max<std::uint64_t>(stats_.max_depth, entries_.size());
  return true;
}

PriorityClass SurgeQueue::effective_class(const SurgeEntry& entry,
                                          SimTime now) const {
  auto cls = static_cast<std::uint8_t>(entry.cls);
  if (config_.age_step.us() > 0 && cls > 0) {
    const auto steps = static_cast<std::uint64_t>(
        (now - entry.enqueued_at).us() / config_.age_step.us());
    cls -= static_cast<std::uint8_t>(std::min<std::uint64_t>(steps, cls));
  }
  return static_cast<PriorityClass>(cls);
}

std::size_t SurgeQueue::best_index(SimTime now) const {
  std::size_t best = entries_.size();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (best == entries_.size()) {
      best = i;
      continue;
    }
    const auto ci = effective_class(entries_[i], now);
    const auto cb = effective_class(entries_[best], now);
    if (ci < cb || (ci == cb && entries_[i].seq < entries_[best].seq)) {
      best = i;
    }
  }
  return best;
}

std::optional<SurgeEntry> SurgeQueue::pop(SimTime now) {
  const std::size_t i = best_index(now);
  if (i >= entries_.size()) return std::nullopt;
  SurgeEntry entry = entries_[i];
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
  ++stats_.admitted;
  const auto cls = static_cast<std::size_t>(entry.cls);
  ++stats_.admitted_by_class[cls];
  stats_.wait_us_sum_by_class[cls] +=
      static_cast<std::uint64_t>((now - entry.enqueued_at).us());
  return entry;
}

bool SurgeQueue::remove(ClientId client) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [client](const SurgeEntry& e) { return e.client == client; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  ++stats_.removed;
  return true;
}

std::vector<SurgeEntry> SurgeQueue::flush(SimTime now) {
  std::vector<SurgeEntry> out;
  out.reserve(entries_.size());
  for (const SurgeEntry* entry : ordered(now)) out.push_back(*entry);
  stats_.flushed += entries_.size();
  entries_.clear();
  return out;
}

bool SurgeQueue::contains(ClientId client) const {
  return std::any_of(
      entries_.begin(), entries_.end(),
      [client](const SurgeEntry& e) { return e.client == client; });
}

std::vector<const SurgeEntry*> SurgeQueue::ordered(SimTime now) const {
  std::vector<const SurgeEntry*> out;
  out.reserve(entries_.size());
  for (const SurgeEntry& entry : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [this, now](const SurgeEntry* a, const SurgeEntry* b) {
              const auto ca = effective_class(*a, now);
              const auto cb = effective_class(*b, now);
              if (ca != cb) return ca < cb;
              return a->seq < b->seq;
            });
  return out;
}

std::uint32_t SurgeQueue::position_of(ClientId client, SimTime now) const {
  const auto order = ordered(now);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i]->client == client) return static_cast<std::uint32_t>(i + 1);
  }
  return 0;
}

}  // namespace matrix
