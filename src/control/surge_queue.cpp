#include "control/surge_queue.h"

#include <algorithm>

namespace matrix {

const char* priority_class_name(PriorityClass cls) {
  switch (cls) {
    case PriorityClass::kResume: return "RESUME";
    case PriorityClass::kVip: return "VIP";
    case PriorityClass::kNormal: return "NORMAL";
  }
  return "?";
}

PriorityClass priority_class_from_wire(std::uint8_t wire) {
  // Unknown future wire values degrade to NORMAL, never up to RESUME.
  return wire == 1 ? PriorityClass::kVip : PriorityClass::kNormal;
}

PriorityClass priority_class_from_handoff_wire(std::uint8_t wire) {
  // 0/1/2 round-trip; anything else (corrupt frame, future class) degrades
  // to NORMAL — an invalid enum would index the per-class stats arrays out
  // of bounds at drain time.
  return wire <= static_cast<std::uint8_t>(PriorityClass::kNormal)
             ? static_cast<PriorityClass>(wire)
             : PriorityClass::kNormal;
}

bool SurgeQueue::enqueue(SimTime now, ClientId client, NodeId client_node,
                         Vec2 position, PriorityClass cls) {
  if (entries_.size() >= config_.queue_capacity) {
    ++stats_.overflow;
    return false;
  }
  SurgeEntry entry;
  entry.client = client;
  entry.client_node = client_node;
  entry.position = position;
  entry.cls = cls;
  entry.enqueued_at = now;
  entry.seq = next_seq_++;
  entries_.push_back(entry);
  ++stats_.enqueued;
  stats_.max_depth = std::max<std::uint64_t>(stats_.max_depth, entries_.size());
  return true;
}

bool SurgeQueue::adopt(const SurgeEntry& entry) {
  if (entries_.size() >= config_.queue_capacity) {
    ++stats_.overflow;
    return false;
  }
  SurgeEntry adopted = entry;
  // Fresh local ticket; drain rank is preserved by the enqueue-time key in
  // drains_before(), not the seq.
  adopted.seq = next_seq_++;
  entries_.push_back(adopted);
  ++stats_.adopted;
  stats_.max_depth = std::max<std::uint64_t>(stats_.max_depth, entries_.size());
  return true;
}

std::vector<SurgeEntry> SurgeQueue::extract_range(const Rect& range,
                                                  SimTime now) {
  std::vector<SurgeEntry> out;
  for (const SurgeEntry* entry : ordered(now)) {
    if (range.contains(entry->position)) out.push_back(*entry);
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const SurgeEntry& e) {
                                  return range.contains(e.position);
                                }),
                 entries_.end());
  stats_.handed_off += out.size();
  return out;
}

PriorityClass SurgeQueue::effective_class(const SurgeEntry& entry,
                                          SimTime now) const {
  auto cls = static_cast<std::uint8_t>(entry.cls);
  if (config_.age_step.us() > 0 && cls > 0) {
    const auto steps = static_cast<std::uint64_t>(
        (now - entry.enqueued_at).us() / config_.age_step.us());
    cls -= static_cast<std::uint8_t>(std::min<std::uint64_t>(steps, cls));
  }
  return static_cast<PriorityClass>(cls);
}

bool SurgeQueue::drains_before(const SurgeEntry& a, const SurgeEntry& b,
                               SimTime now) const {
  const auto ca = effective_class(a, now);
  const auto cb = effective_class(b, now);
  if (ca != cb) return ca < cb;
  if (a.enqueued_at != b.enqueued_at) return a.enqueued_at < b.enqueued_at;
  return a.seq < b.seq;
}

std::size_t SurgeQueue::best_index(SimTime now, bool skip_vip) const {
  std::size_t best = entries_.size();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (skip_vip && effective_class(entries_[i], now) == PriorityClass::kVip) {
      continue;
    }
    if (best == entries_.size() ||
        drains_before(entries_[i], entries_[best], now)) {
      best = i;
    }
  }
  return best;
}

SurgeEntry SurgeQueue::take(std::size_t i, SimTime now) {
  SurgeEntry entry = entries_[i];
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
  ++stats_.admitted;
  const auto cls = static_cast<std::size_t>(entry.cls);
  ++stats_.admitted_by_class[cls];
  stats_.wait_us_sum_by_class[cls] +=
      static_cast<std::uint64_t>((now - entry.enqueued_at).us());
  return entry;
}

std::optional<SurgeEntry> SurgeQueue::pop(SimTime now, bool skip_vip) {
  const std::size_t i = best_index(now, skip_vip);
  if (i >= entries_.size()) return std::nullopt;
  if (skip_vip) {
    // The cap actually bound only if a VIP would otherwise have drained.
    const std::size_t unfiltered = best_index(now, /*skip_vip=*/false);
    if (unfiltered != i) ++stats_.vip_capped;
  }
  return take(i, now);
}

bool SurgeQueue::remove(ClientId client) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [client](const SurgeEntry& e) { return e.client == client; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  ++stats_.removed;
  return true;
}

std::vector<SurgeEntry> SurgeQueue::take_everything(SimTime now,
                                                    std::uint64_t& counter) {
  std::vector<SurgeEntry> out;
  out.reserve(entries_.size());
  for (const SurgeEntry* entry : ordered(now)) out.push_back(*entry);
  counter += entries_.size();
  entries_.clear();
  return out;
}

std::vector<SurgeEntry> SurgeQueue::extract_all(SimTime now) {
  return take_everything(now, stats_.handed_off);
}

std::vector<SurgeEntry> SurgeQueue::flush(SimTime now) {
  return take_everything(now, stats_.flushed);
}

bool SurgeQueue::contains(ClientId client) const {
  return std::any_of(
      entries_.begin(), entries_.end(),
      [client](const SurgeEntry& e) { return e.client == client; });
}

std::vector<const SurgeEntry*> SurgeQueue::ordered(SimTime now) const {
  std::vector<const SurgeEntry*> out;
  out.reserve(entries_.size());
  for (const SurgeEntry& entry : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [this, now](const SurgeEntry* a, const SurgeEntry* b) {
              return drains_before(*a, *b, now);
            });
  return out;
}

std::uint32_t SurgeQueue::position_of(ClientId client, SimTime now) const {
  const auto order = ordered(now);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i]->client == client) return static_cast<std::uint32_t>(i + 1);
  }
  return 0;
}

}  // namespace matrix
