#include "control/admission.h"

#include <algorithm>
#include <cmath>

namespace matrix {

const char* admission_state_name(AdmissionState state) {
  switch (state) {
    case AdmissionState::kNormal: return "NORMAL";
    case AdmissionState::kSoft: return "SOFT";
    case AdmissionState::kHard: return "HARD";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         std::uint32_t overload_clients)
    : config_(config),
      overload_clients_(overload_clients),
      bucket_(config.token_rate_per_sec, config.token_burst) {}

AdmissionState AdmissionController::target_for(
    const AdmissionSignals& signals) const {
  // Round to nearest so 0.29 × 100 = 28.999... still means 29 ("reach this
  // fraction"), not a silent truncation to 28.
  const auto load_at = [this](double fraction) {
    return static_cast<std::uint32_t>(std::llround(
        fraction * static_cast<double>(overload_clients_)));
  };

  if (signals.load.client_count >= load_at(config_.hard_load_fraction) ||
      signals.load.queue_length >= config_.hard_queue_length ||
      (config_.hard_denied_streak > 0 &&
       signals.split_denied_streak >= config_.hard_denied_streak) ||
      (config_.hard_waiting_count > 0 &&
       signals.load.waiting_count >= config_.hard_waiting_count)) {
    return AdmissionState::kHard;
  }

  const bool pool_pressure =
      signals.pool_idle_fraction >= 0.0 &&
      signals.pool_idle_fraction <= config_.soft_pool_idle_fraction &&
      signals.load.client_count >= load_at(config_.pool_pressure_load_fraction);
  if (signals.load.client_count >= load_at(config_.soft_load_fraction) ||
      signals.load.queue_length >= config_.soft_queue_length ||
      (config_.soft_denied_streak > 0 &&
       signals.split_denied_streak >= config_.soft_denied_streak) ||
      (config_.soft_waiting_count > 0 &&
       signals.load.waiting_count >= config_.soft_waiting_count) ||
      pool_pressure) {
    return AdmissionState::kSoft;
  }

  return AdmissionState::kNormal;
}

void AdmissionController::transition(SimTime now, AdmissionState to) {
  transitions_.push_back({now, state_, to});
  if (to > state_) {
    ++stats_.escalations;
  } else {
    ++stats_.relaxations;
  }
  state_ = to;
  last_transition_ = now;
  ever_transitioned_ = true;
  calm_ = false;  // any change re-arms the stability window
}

bool AdmissionController::observe(SimTime now,
                                  const AdmissionSignals& signals) {
  if (!config_.enabled) return false;
  ++stats_.observations;
  const AdmissionState target = target_for(signals);

  if (target > state_) {
    // Escalation is immediate: a saturated server must close the valve now,
    // regardless of dwell — oscillation is prevented on the way down.
    transition(now, target);
    return true;
  }

  if (target == state_) {
    // The signals still justify the current state: not calm.
    calm_ = false;
    return false;
  }

  // target < state_: candidate relaxation.  Track the continuous window in
  // which the signals sit below the current state's severity...
  if (!calm_) {
    calm_ = true;
    calm_since_ = now;
  }
  // ...and only step down (one level at a time) once that window reaches
  // recover_min and the dwell time since the last change has passed.
  const bool dwell_ok = !ever_transitioned_ || now - last_transition_ >= config_.dwell;
  const bool recovered = config_.fault_skip_recover_min ||
                         now - calm_since_ >= config_.recover_min;
  if (dwell_ok && recovered) {
    transition(now, static_cast<AdmissionState>(
                        static_cast<std::uint8_t>(state_) - 1));
    return true;
  }
  return false;
}

bool AdmissionController::try_admit(SimTime now) {
  switch (state_) {
    case AdmissionState::kNormal:
      ++stats_.admitted;
      return true;
    case AdmissionState::kSoft:
      if (bucket_.try_take(now)) {
        ++stats_.admitted;
        return true;
      }
      ++stats_.soft_denied;
      return false;
    case AdmissionState::kHard:
      ++stats_.hard_denied;
      return false;
  }
  return false;
}

bool AdmissionController::lifetime_timeline_valid() const {
  return lifetime_timeline_valid_ &&
         admission_timeline_valid(transitions_, config_);
}

void AdmissionController::reset(SimTime now) {
  lifetime_timeline_valid_ =
      lifetime_timeline_valid_ && admission_timeline_valid(transitions_, config_);
  state_ = AdmissionState::kNormal;
  last_transition_ = now;
  calm_ = false;
  ever_transitioned_ = false;
  bucket_.reset(now);
  transitions_.clear();
}

bool admission_timeline_valid(const std::vector<AdmissionTransition>& timeline,
                              const AdmissionConfig& config) {
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const AdmissionTransition& t = timeline[i];
    if (t.to == t.from) return false;  // self-transitions are forbidden
    if (i > 0 && timeline[i - 1].to != t.from) return false;  // broken chain
    if (i > 0 && t.at < timeline[i - 1].at) return false;     // time warp
    if (t.to < t.from) {
      // Relaxation: one level at a time, after dwell AND recover_min since
      // the previous transition (the stability window cannot predate it).
      if (static_cast<std::uint8_t>(t.from) -
              static_cast<std::uint8_t>(t.to) != 1) {
        return false;
      }
      if (i > 0) {
        const SimTime gap = t.at - timeline[i - 1].at;
        if (gap < config.dwell || gap < config.recover_min) return false;
      }
    }
  }
  return true;
}

}  // namespace matrix
