#include "control/control_plane.h"

namespace matrix {

const char* failsafe_state_name(FailsafeState state) {
  switch (state) {
    case FailsafeState::kNormal: return "NORMAL";
    case FailsafeState::kHold: return "HOLD";
    case FailsafeState::kFallback: return "FALLBACK";
  }
  return "?";
}

const char* control_kind_name(ControlKind kind) {
  switch (kind) {
    case ControlKind::kAnnounce: return "announce";
    case ControlKind::kHeartbeat: return "heartbeat";
    case ControlKind::kDirective: return "directive";
    case ControlKind::kAdmissionUpdate: return "admission_update";
    case ControlKind::kPoolPressure: return "pool_pressure";
    case ControlKind::kCount: break;
  }
  return "?";
}

ControlVerdict ControlPlane::admit(SimTime now, const ControlUpdate& update) {
  const auto slot = static_cast<std::size_t>(update.kind);
  const auto kind_id = static_cast<std::uint64_t>(update.kind);

  // Epoch-stamped kinds first: a superseded generation is dropped before
  // any other rule, a newer one flips the whole plane atomically.
  const bool epoch_stamped = update.kind == ControlKind::kAnnounce ||
                             update.kind == ControlKind::kHeartbeat;
  if (epoch_stamped) {
    if (update.epoch < epoch_) {
      ++stats_.stale_epoch_drops;
      if (tracer_ != nullptr) {
        tracer_->record(now, obs::TraceKind::kControlStaleDrop, subject_,
                        kind_id, static_cast<std::int64_t>(update.epoch),
                        static_cast<std::int64_t>(update.seq));
      }
      return ControlVerdict::kStaleEpoch;
    }
    if (update.epoch > epoch_) flip_epoch(now, update.epoch);
  }

  // Sequenced replay/reorder within the current epoch.
  if (update.seq != 0 && update.seq <= last_seq_[slot]) {
    ++stats_.stale_seq_drops;
    if (tracer_ != nullptr) {
      tracer_->record(now, obs::TraceKind::kControlStaleDrop, subject_,
                      kind_id, static_cast<std::int64_t>(epoch_),
                      static_cast<std::int64_t>(update.seq));
    }
    if (!fault_accept_stale_) return ControlVerdict::kStaleSeq;
    // Planted bug (Config::fault.stale_directive_replay): fall through and
    // act on the stale update anyway.  The duplicate kControlApplied below
    // is what kInvControlMonotonic catches.
  }

  // Degraded failsafe: coordinator-derived payloads are refused until a
  // fresh heartbeat/announce restores trust.  Heartbeats and announces are
  // themselves the recovery signal; admission updates are matrix-local.
  const bool coordinator_payload = update.kind == ControlKind::kDirective ||
                                   update.kind == ControlKind::kPoolPressure;
  if (config_.enabled && degraded() && coordinator_payload) {
    ++stats_.held_drops;
    if (tracer_ != nullptr) {
      tracer_->record(now, obs::TraceKind::kControlStaleDrop, subject_,
                      kind_id, static_cast<std::int64_t>(epoch_),
                      static_cast<std::int64_t>(update.seq));
    }
    return ControlVerdict::kHeld;
  }

  if (update.seq > last_seq_[slot]) last_seq_[slot] = update.seq;
  ++stats_.applied;
  if (update.seq != 0 && tracer_ != nullptr) {
    tracer_->record(now, obs::TraceKind::kControlApplied, subject_, kind_id,
                    static_cast<std::int64_t>(epoch_),
                    static_cast<std::int64_t>(update.seq));
  }
  if (epoch_stamped) note_heartbeat(now);
  return ControlVerdict::kApply;
}

bool ControlPlane::tick(SimTime now) {
  if (!config_.enabled || !started_) return false;
  bool changed = false;
  // Step one level at a time so degradation never skips HOLD even when a
  // tick lands late; both entries may then carry the same timestamp, which
  // the validator accepts (the age gap is zero too).
  for (;;) {
    const SimTime age = now - last_heartbeat_;
    if (state_ == FailsafeState::kNormal && age >= config_.tau1) {
      transition(now, FailsafeState::kHold);
      changed = true;
      continue;
    }
    if (state_ == FailsafeState::kHold && age >= config_.tau2) {
      transition(now, FailsafeState::kFallback);
      changed = true;
      continue;
    }
    return changed;
  }
}

void ControlPlane::flip_epoch(SimTime now, std::uint64_t epoch) {
  const std::uint64_t old = epoch_;
  epoch_ = epoch;
  for (auto& seq : last_seq_) seq = 0;
  ++stats_.epoch_flips;
  if (tracer_ != nullptr) {
    tracer_->record(now, obs::TraceKind::kControlEpochFlip, subject_, 0,
                    static_cast<std::int64_t>(epoch),
                    static_cast<std::int64_t>(old));
  }
}

void ControlPlane::note_heartbeat(SimTime now) {
  ++stats_.heartbeats;
  last_heartbeat_ = now;
  if (!config_.enabled) return;
  if (degraded()) transition(now, FailsafeState::kNormal);
}

void ControlPlane::transition(SimTime now, FailsafeState to) {
  const FailsafeState from = state_;
  state_ = to;
  transitions_.push_back({now, from, to, now - last_heartbeat_});
  if (tracer_ != nullptr) {
    tracer_->record(now, obs::TraceKind::kFailsafeTransition, subject_, 0,
                    static_cast<std::int64_t>(to),
                    static_cast<std::int64_t>(from));
  }
}

bool failsafe_timeline_valid(const std::vector<FailsafeTransition>& timeline,
                             const FailsafeConfig& config) {
  FailsafeState prev_state = FailsafeState::kNormal;
  SimTime prev_at{};
  bool have_prev = false;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const FailsafeTransition& t = timeline[i];
    if (t.from == t.to) return false;
    if (t.from != prev_state) return false;  // first must leave NORMAL
    if (have_prev && t.at < prev_at) return false;
    switch (t.to) {
      case FailsafeState::kHold:
        if (t.from != FailsafeState::kNormal) return false;
        if (t.heartbeat_age < config.tau1) return false;
        break;
      case FailsafeState::kFallback:
        if (t.from != FailsafeState::kHold) return false;
        if (t.heartbeat_age < config.tau2) return false;
        // The silence ran uninterrupted from the HOLD entry: wall gap ==
        // age gap (a beat in between would have recovered to NORMAL).
        if (i > 0 && timeline[i - 1].to == FailsafeState::kHold &&
            t.at - timeline[i - 1].at !=
                t.heartbeat_age - timeline[i - 1].heartbeat_age) {
          return false;
        }
        break;
      case FailsafeState::kNormal:
        // Recovery only on a fresh beat, and always straight to NORMAL.
        if (t.heartbeat_age >= config.tau1) return false;
        break;
    }
    prev_state = t.to;
    prev_at = t.at;
    have_prev = true;
  }
  return true;
}

}  // namespace matrix
