// Admission & overload protection — the boundary valve for pool-exhausted
// deployments.
//
// Matrix absorbs hotspots by splitting partitions onto spare servers, but
// once the resource pool runs dry the middleware itself has no remaining
// move: clients keep connecting into a saturated partition and latency
// collapses unboundedly.  This subsystem makes that regime explicit instead
// of unmodeled, following the control-plane shape of the Continuity design
// (SNIPPETS.md): an enforceable three-state admission machine,
//
//   NORMAL  admit every join;
//   SOFT    admit under a token budget (rate + burst), defer the rest;
//   HARD    deny new joins outright (fast fail);
//
// driven by per-server load signals (reported client count, receive-queue
// depth, consecutive pool denials) plus the deployment-wide pool-occupancy
// signal the coordinator broadcasts.  Sessions already admitted are never
// cut: handoffs/resumes bypass the valve, so protection degrades *new*
// traffic, not live players.
//
// Hysteresis is mandatory, not optional: escalation is immediate (a
// saturated server must close the valve now), relaxation is slow — the
// signals must sit *below* the current state's severity continuously for
// `recover_min`, no transition may follow another within `dwell`, and
// relaxation steps down one level at a time (HARD→SOFT→NORMAL).  Those three
// rules are machine-checkable on the recorded timeline; see
// admission_timeline_valid().
//
// Knobs live in AdmissionConfig (core/config.h); the subsystem is disabled
// by default so the paper-faithful benches are untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "control/token_bucket.h"
#include "core/config.h"
#include "policy/load_view.h"
#include "util/sim_time.h"

namespace matrix {

enum class AdmissionState : std::uint8_t {
  kNormal = 0,
  kSoft = 1,
  kHard = 2,
};

[[nodiscard]] const char* admission_state_name(AdmissionState state);

/// Maps a wire byte (AdmissionUpdate.state, AdmissionDirective.floor) back
/// to a state.  Out-of-range values clamp to kHard — a corrupt or
/// future-version frame must fail the valve CLOSED, never open (an
/// unmatched enum in a gate switch would otherwise fall through to
/// "admit").
[[nodiscard]] constexpr AdmissionState admission_state_from_wire(
    std::uint8_t wire) {
  return wire <= static_cast<std::uint8_t>(AdmissionState::kHard)
             ? static_cast<AdmissionState>(wire)
             : AdmissionState::kHard;
}

/// Composition rule for coordinator-led global admission
/// (control/global_admission.h): a server's effective valve state is its
/// local decision composed with the coordinator's directive floor —
/// strictest wins.  The local controller's hysteresis timeline is untouched
/// by composition (the floor is an external clamp, not a local transition).
[[nodiscard]] constexpr AdmissionState compose_admission(
    AdmissionState local, AdmissionState floor) {
  return local > floor ? local : floor;
}

/// One load observation, assembled by the Matrix server from its game
/// server's LoadReport, direct queue observation, its own split-denied
/// streak, and the coordinator's pool-pressure broadcasts.  The load triple
/// is the shared LoadSignals vocabulary (policy/load_view.h) — the same
/// snapshot the load-policy layer and the coordinator's global-admission
/// aggregate consume.
struct AdmissionSignals {
  /// Client count, receive-queue depth, and surge-queue ("waiting room")
  /// depth; waiting_count is only consulted when the
  /// soft/hard_waiting_count thresholds are non-zero.
  LoadSignals load;
  /// Consecutive PoolDeny answers since the last successful grant.
  std::uint32_t split_denied_streak = 0;
  /// Idle fraction of the deployment's spare pool; negative ⇒ unknown.
  double pool_idle_fraction = -1.0;
};

/// One recorded state change, for metrics and invariant checking.
struct AdmissionTransition {
  SimTime at;
  AdmissionState from = AdmissionState::kNormal;
  AdmissionState to = AdmissionState::kNormal;
};

class AdmissionController {
 public:
  AdmissionController(const AdmissionConfig& config,
                      std::uint32_t overload_clients);

  /// Feeds one observation and applies the transition rules.  Returns true
  /// when the admission state changed.
  bool observe(SimTime now, const AdmissionSignals& signals);

  [[nodiscard]] AdmissionState state() const { return state_; }

  /// The join gate: NORMAL always admits, HARD never does, SOFT spends one
  /// token.  (The game server enforces joins with its own bucket replica;
  /// this one backs the controller's unit tests and metrics.)
  bool try_admit(SimTime now);

  /// Severity the given signals map to before hysteresis — the "target"
  /// state of the Continuity mode-selection equation.  Exposed for tests.
  [[nodiscard]] AdmissionState target_for(const AdmissionSignals& signals) const;

  /// Full transition timeline since construction/reset.
  [[nodiscard]] const std::vector<AdmissionTransition>& transitions() const {
    return transitions_;
  }

  /// Hysteresis-contract check over the controller's WHOLE life: the
  /// current timeline plus every pre-reset one (reset() folds the check in
  /// before clearing, so a violation can never be laundered by re-adoption).
  [[nodiscard]] bool lifetime_timeline_valid() const;

  struct Stats {
    std::uint64_t observations = 0;
    std::uint64_t escalations = 0;
    std::uint64_t relaxations = 0;
    std::uint64_t admitted = 0;
    std::uint64_t soft_denied = 0;  ///< token budget exhausted
    std::uint64_t hard_denied = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Returns to NORMAL with a full bucket and an empty timeline (a pooled
  /// server being re-adopted starts a fresh admission life).
  void reset(SimTime now);

 private:
  void transition(SimTime now, AdmissionState to);

  AdmissionConfig config_;
  std::uint32_t overload_clients_;

  AdmissionState state_ = AdmissionState::kNormal;
  SimTime last_transition_{};
  /// Start of the current continuous below-state-severity window; invalid
  /// while the signals still justify the current state.
  SimTime calm_since_{};
  bool calm_ = false;
  bool ever_transitioned_ = false;
  bool lifetime_timeline_valid_ = true;

  TokenBucket bucket_;
  std::vector<AdmissionTransition> transitions_;
  Stats stats_;
};

/// Checks a recorded timeline against the hysteresis contract:
///   * relaxations step down exactly one level;
///   * a relaxation follows the previous transition by >= dwell and >=
///     recover_min (the stability window cannot predate the last change);
///   * escalations may be immediate but must go strictly up.
[[nodiscard]] bool admission_timeline_valid(
    const std::vector<AdmissionTransition>& timeline,
    const AdmissionConfig& config);

}  // namespace matrix
