// Surge queue — the "waiting room" for joins gated by the admission valve.
//
// PR 1's valve answers a gated join with JoinDefer/JoinDeny and leaves the
// control loop on the CLIENT: each deferred client sleeps a jittered hint
// and retries blind, so a flash crowd thrashes on retries, tokens are won in
// arrival-race order, and the deployment has no notion of who should get in
// first.  The surge queue moves that loop to the SERVER: a gated join is
// parked in a bounded priority queue and admitted the moment the token
// budget (or a valve relaxation) allows — in an order the operator chose.
//
// Priority classes, highest first:
//
//   RESUME  a live session re-joining (redirect/migration).  These normally
//           bypass the valve entirely ("sessions are sacred"); the class
//           exists so that any resume that does get parked — and any NORMAL
//           entry aged all the way up — outranks everything else.
//   VIP     joins flagged by the game (subscribers, party members of an
//           admitted player, ...); `ClientHello::priority` carries the flag.
//   NORMAL  everyone else.
//
// Within a class the order is strict FIFO.  Aging prevents starvation:
// after each `age_step` of waiting an entry is promoted one class, so a
// NORMAL join cannot be overtaken forever by a stream of fresh VIPs.  The
// queue is bounded (`queue_capacity`); an enqueue beyond the bound is
// refused and the caller falls back to JoinDeny.
//
// The queue is a passive container driven by the game server (enqueue on
// gated joins, drain on admission updates and periodic ticks — see
// game/game_server.cpp); it does no scheduling of its own, which keeps it
// trivially testable.  Knobs live in SurgePriorityConfig
// (`Config::admission.priority`, core/config.h), default off.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.h"
#include "geometry/rect.h"
#include "geometry/vec2.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace matrix {

enum class PriorityClass : std::uint8_t {
  kResume = 0,  ///< highest — a parked live session, or fully-aged entry
  kVip = 1,
  kNormal = 2,
};

[[nodiscard]] const char* priority_class_name(PriorityClass cls);

/// Maps ClientHello::priority (wire byte) to a class for a FRESH join.
/// Resumes never reach the queue through this path.
[[nodiscard]] PriorityClass priority_class_from_wire(std::uint8_t wire);

/// Maps QueueHandoffEntry::cls (wire byte) back to a class.  Unlike the
/// hello path this must round-trip all three classes (a parked RESUME can
/// be handed off); unknown future values degrade to NORMAL, never up.
[[nodiscard]] PriorityClass priority_class_from_handoff_wire(
    std::uint8_t wire);

/// One parked join: everything the game server needs to admit the client
/// later without a fresh ClientHello.
struct SurgeEntry {
  ClientId client;
  NodeId client_node;  ///< where Welcome / QueueUpdate go
  Vec2 position;       ///< requested spawn position
  PriorityClass cls = PriorityClass::kNormal;
  SimTime enqueued_at{};
  std::uint64_t seq = 0;  ///< admission ticket: FIFO order within a class
};

class SurgeQueue {
 public:
  explicit SurgeQueue(const SurgePriorityConfig& config) : config_(config) {}

  /// Parks a join.  Returns false when the queue is at capacity (the
  /// caller must fall back to JoinDeny).  Precondition: the client is not
  /// already queued — callers gate on contains() first, where a duplicate
  /// means "refresh the waiter's view", not "deny".
  bool enqueue(SimTime now, ClientId client, NodeId client_node,
               Vec2 position, PriorityClass cls);

  /// Re-parks an entry handed off from another server (split/merge): the
  /// original class and enqueue time are preserved, so accrued age — and
  /// therefore aging promotions and drain rank — survive the handoff.
  /// False when at capacity (the caller falls back to JoinDefer).
  bool adopt(const SurgeEntry& entry);

  /// Removes and returns every entry whose requested position lies in
  /// `range`, in drain order — the handoff set when that range is shed to
  /// another server.  Counted in stats as handed_off.
  std::vector<SurgeEntry> extract_range(const Rect& range, SimTime now);

  /// Removes and returns everything, in drain order, counted as
  /// handed_off — the reclaim-side handoff (flush() is the give-up
  /// variant: same emptying, counted as flushed).
  std::vector<SurgeEntry> extract_all(SimTime now);

  /// Removes and returns the entry next in line at `now` (best effective
  /// class, FIFO within it); nullopt when empty.  Records the entry's wait
  /// in the per-class admission stats.  With `skip_vip`, the best entry
  /// whose EFFECTIVE class is not VIP is taken instead (nullopt when only
  /// VIP-effective entries remain) — the paid-priority fairness cap's
  /// escape hatch.  The filter acts on the effective class: RESUME (and
  /// anything aged to RESUME) is never skipped, while a NORMAL aged up to
  /// VIP is capped like a paid VIP until its next promotion lifts it
  /// clear.
  std::optional<SurgeEntry> pop(SimTime now, bool skip_vip = false);

  /// Effective (aged) class of `entry` at `now` — public so the drain loop
  /// can account its fairness burst by what actually outranked whom.
  [[nodiscard]] PriorityClass effective_class_at(const SurgeEntry& entry,
                                                 SimTime now) const {
    return effective_class(entry, now);
  }

  /// Drops `client` (left while waiting).  False if not queued.
  bool remove(ClientId client);

  /// Empties the queue, returning the dropped entries in drain order (the
  /// game server flushes them back to client-side retry when it loses its
  /// range mid-wait).
  std::vector<SurgeEntry> flush(SimTime now);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool contains(ClientId client) const;

  /// Entries in current drain order (for the notification sweep).  The
  /// pointers are invalidated by any mutation.
  [[nodiscard]] std::vector<const SurgeEntry*> ordered(SimTime now) const;

  /// 1-based rank of `client` in the current drain order; 0 if absent.
  [[nodiscard]] std::uint32_t position_of(ClientId client, SimTime now) const;

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t admitted = 0;  ///< popped for admission
    std::uint64_t overflow = 0;  ///< refused: queue at capacity
    std::uint64_t removed = 0;   ///< client left while waiting
    std::uint64_t flushed = 0;   ///< dropped by flush()
    std::uint64_t handed_off = 0;  ///< extracted for cross-server handoff
    std::uint64_t adopted = 0;     ///< re-parked here from another server
    std::uint64_t vip_capped = 0;  ///< drains where the fairness cap bound
    std::uint64_t max_depth = 0;
    /// Per-ORIGINAL-class admission tallies (index = PriorityClass).
    std::uint64_t admitted_by_class[3] = {0, 0, 0};
    std::uint64_t wait_us_sum_by_class[3] = {0, 0, 0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// Class after aging at `now`: promoted one level per elapsed age_step,
  /// saturating at kResume.  With age_step == 0, aging is off.
  [[nodiscard]] PriorityClass effective_class(const SurgeEntry& entry,
                                              SimTime now) const;
  /// True when `a` drains before `b` at `now`: best effective class first,
  /// then oldest enqueue time, then lowest seq.  (For purely local entries
  /// enqueue time and seq order coincide; the time key exists so an entry
  /// adopted from another server ranks by its true age, not its re-park
  /// instant.)
  [[nodiscard]] bool drains_before(const SurgeEntry& a, const SurgeEntry& b,
                                   SimTime now) const;
  /// Index of the entry next in line (optionally skipping VIP-effective
  /// entries); entries_.size() when none qualifies.
  [[nodiscard]] std::size_t best_index(SimTime now, bool skip_vip) const;
  /// Empties the queue in drain order, charging `counter` (the flushed /
  /// handed_off stat of the public variants).
  std::vector<SurgeEntry> take_everything(SimTime now, std::uint64_t& counter);
  /// Removes entries_[i] and records its admission in the per-class stats.
  SurgeEntry take(std::size_t i, SimTime now);

  SurgePriorityConfig config_;
  std::vector<SurgeEntry> entries_;  ///< unordered; drain order is computed
  std::uint64_t next_seq_ = 1;
  Stats stats_;
};

}  // namespace matrix
