// Token bucket — the SOFT-mode admission budget (see admission.h).
//
// Classic continuous-refill bucket over simulated time:
//
//   tokens(t) = min(burst, tokens(t0) + rate * (t - t0))
//
// The bucket starts full so a server entering SOFT mode can still absorb a
// short join burst before throttling to the steady rate.  Used by the
// AdmissionController for its own accounting and by the game server as the
// local enforcement point (control plane decides the state, the dataplane
// spends the budget — no round trip per join).
#pragma once

#include <algorithm>

#include "util/sim_time.h"

namespace matrix {

class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue continuously up to `burst` capacity.
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// Takes `cost` tokens if available at `now`; false ⇒ budget exhausted.
  bool try_take(SimTime now, double cost = 1.0) {
    refill(now);
    if (tokens_ < cost) return false;
    tokens_ -= cost;
    return true;
  }

  /// Tokens available at `now` (after refill), for tests and metrics.
  [[nodiscard]] double available(SimTime now) {
    refill(now);
    return tokens_;
  }

  /// Refills to full (state reset, e.g. when a pooled server is re-adopted).
  void reset(SimTime now) {
    tokens_ = burst_;
    last_refill_ = now;
  }

  /// Changes the refill rate from `now` on (coordinator-led directives swap
  /// a server's budget share in and out).  Accrual up to `now` happens at
  /// the OLD rate; banked tokens and the burst cap are untouched.
  void set_rate(SimTime now, double rate_per_sec) {
    refill(now);
    rate_ = rate_per_sec;
  }

  [[nodiscard]] double rate() const { return rate_; }

 private:
  void refill(SimTime now) {
    if (now <= last_refill_) return;
    tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_refill_).sec());
    last_refill_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  SimTime last_refill_{};
};

}  // namespace matrix
