#include "control/global_admission.h"

#include <algorithm>

namespace matrix {

GlobalAdmission::GlobalAdmission(const GlobalAdmissionConfig& config,
                                 std::uint32_t overload_clients)
    : config_(config), overload_clients_(overload_clients) {}

bool GlobalAdmission::observe_server(SimTime now, ServerId server,
                                     const ServerDigest& digest) {
  if (!config_.enabled) return false;
  auto it = std::find_if(digests_.begin(), digests_.end(),
                         [&](const Tracked& t) { return t.server == server; });
  if (it == digests_.end()) {
    digests_.push_back({server, digest});
  } else {
    it->digest = digest;
  }
  ++stats_.observations;
  return evaluate(now);
}

bool GlobalAdmission::observe_pool(SimTime now, std::uint32_t idle,
                                   std::uint32_t total) {
  if (!config_.enabled) return false;
  pool_idle_ = idle;
  pool_total_ = total;
  ++stats_.observations;
  return evaluate(now);
}

bool GlobalAdmission::forget_server(SimTime now, ServerId server) {
  const auto it = std::remove_if(
      digests_.begin(), digests_.end(),
      [&](const Tracked& t) { return t.server == server; });
  if (it == digests_.end()) return false;
  digests_.erase(it, digests_.end());
  return config_.enabled && evaluate(now);
}

std::uint32_t GlobalAdmission::waiting_total() const {
  std::uint32_t total = 0;
  for (const Tracked& t : digests_) total += t.digest.load.waiting_count;
  return total;
}

PressureBreakdown GlobalAdmission::compute_pressure() const {
  if (digests_.empty()) return {};
  const auto n = static_cast<double>(digests_.size());
  const auto overload = static_cast<double>(std::max(1u, overload_clients_));

  PressureBreakdown breakdown;
  // Pool: 1.0 when the spare pool is dry (a split can no longer save a
  // saturated partition), 0 when fully idle or never heard from.
  breakdown.pool_term =
      pool_total_ > 0 ? 1.0 - static_cast<double>(pool_idle_) /
                                  static_cast<double>(pool_total_)
                      : 0.0;

  // Mean load fraction vs the overload threshold, saturating at 1.
  double load_sum = 0.0;
  double elevated_sum = 0.0;
  double waiting_sum = 0.0;
  for (const Tracked& t : digests_) {
    load_sum += std::min(
        1.0, static_cast<double>(t.digest.load.client_count) / overload);
    switch (t.digest.state) {
      case AdmissionState::kNormal: break;
      case AdmissionState::kSoft: elevated_sum += 0.5; break;
      case AdmissionState::kHard: elevated_sum += 1.0; break;
    }
    waiting_sum += static_cast<double>(t.digest.load.waiting_count);
  }
  breakdown.load_term = load_sum / n;
  breakdown.elevated_term = elevated_sum / n;
  // Waiting rooms holding half an overload-threshold's worth of joins per
  // server saturate this term.
  breakdown.waiting_term = std::min(1.0, waiting_sum / (n * overload * 0.5));
  return breakdown;
}

AdmissionState GlobalAdmission::target() const {
  const double pressure = breakdown_.total();
  if (pressure >= config_.hard_pressure) return AdmissionState::kHard;
  if (pressure >= config_.soft_pressure) return AdmissionState::kSoft;
  return AdmissionState::kNormal;
}

void GlobalAdmission::transition(SimTime now, AdmissionState to) {
  transitions_.push_back({now, floor_, to});
  if (to > floor_) {
    ++stats_.escalations;
  } else {
    ++stats_.relaxations;
  }
  floor_ = to;
  last_transition_ = now;
  ever_transitioned_ = true;
  calm_ = false;
}

bool GlobalAdmission::evaluate(SimTime now) {
  breakdown_ = compute_pressure();
  const AdmissionState want = target();

  if (want > floor_) {
    // Same contract as the local valve: escalation is immediate — a
    // deployment past its pressure threshold must clamp every server now.
    transition(now, want);
    return true;
  }
  if (want == floor_) {
    calm_ = false;
    return false;
  }
  if (!calm_) {
    calm_ = true;
    calm_since_ = now;
  }
  const bool dwell_ok =
      !ever_transitioned_ || now - last_transition_ >= config_.dwell;
  if (dwell_ok && now - calm_since_ >= config_.recover_min) {
    transition(now, static_cast<AdmissionState>(
                        static_cast<std::uint8_t>(floor_) - 1));
    return true;
  }
  return false;
}

double GlobalAdmission::share_for(ServerId server) const {
  // Weight each server by 1 + waiting-room depth: a starved partition's
  // deep line earns it proportionally more of the deployment-wide budget.
  // Every server is paid its token_rate_floor FIRST and only the remainder
  // is divided by weight, so the granted shares sum to exactly
  // token_rate_total (clamping up after a plain division would overspend
  // the budget by up to N×floor).
  double weight_sum = 0.0;
  double weight = 0.0;
  for (const Tracked& t : digests_) {
    const double w = 1.0 + static_cast<double>(t.digest.load.waiting_count);
    weight_sum += w;
    if (t.server == server) weight = w;
  }
  if (weight_sum <= 0.0 || weight <= 0.0) return config_.token_rate_floor;
  const double distributable = std::max(
      0.0, config_.token_rate_total -
               config_.token_rate_floor * static_cast<double>(digests_.size()));
  return config_.token_rate_floor + distributable * weight / weight_sum;
}

bool GlobalAdmission::broadcast_due(SimTime now) const {
  if (!active()) return false;
  if (!ever_broadcast_) return true;
  return now - last_broadcast_ >= config_.directive_interval;
}

bool GlobalAdmission::timeline_valid() const {
  // The floor obeys the exact per-server hysteresis contract; reuse its
  // checker with a config carrying this machine's dwell/recover windows.
  AdmissionConfig contract;
  contract.dwell = config_.dwell;
  contract.recover_min = config_.recover_min;
  return admission_timeline_valid(transitions_, contract);
}

}  // namespace matrix
