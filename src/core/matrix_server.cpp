#include "core/matrix_server.h"

#include <algorithm>
#include <sstream>

#include "util/log.h"

namespace matrix {

std::string MatrixServer::name() const {
  std::ostringstream oss;
  oss << "matrix-" << id_.value();
  return oss.str();
}

void MatrixServer::activate_root(const Rect& range,
                                 std::vector<double> radii) {
  active_ = true;
  range_ = range;
  radii_ = radii.empty() ? std::vector<double>{config_.visibility_radius}
                         : std::move(radii);
  parent_ = ServerId{};
  ++activation_epoch_;
  topology_epoch_ = 0;
  clear_pool_denial_episode();
  admission_.reset(now());
  reset_directive();
  start_failsafe(now());
  register_with_mc();
  push_range_to_game(Rect{}, NodeId{}, ServerId{}, /*reclaim=*/false);
}

const OverlapRegionWire* MatrixServer::lookup(Vec2 point,
                                              std::uint8_t rc) const {
  if (rc >= tables_.size()) rc = 0;
  if (rc >= tables_.size()) return nullptr;
  return tables_[rc].find(point);
}

void MatrixServer::on_message(const Message& message, const Envelope& env) {
  if (std::get_if<TaggedPacket>(&message) != nullptr) {
    // Wire TaggedPackets are normally intercepted by on_frame before the
    // full decode; a frame reaching here re-parses so routing stays on the
    // single view-based implementation.
    if (const auto view = parse_tagged_packet_frame(env.payload)) {
      route_tagged_frame(*view, env);
    }
  } else if (const auto* report = std::get_if<LoadReport>(&message)) {
    handle_load_report(*report);
  } else if (const auto* grant = std::get_if<PoolGrant>(&message)) {
    handle_pool_grant(*grant);
  } else if (std::holds_alternative<PoolDeny>(message)) {
    ++stats_.split_denied_no_server;
    split_pending_ = false;
    network()->tracer().record(now(), obs::TraceKind::kPoolDenied,
                               id_.value());
    network()->tracer().close_span(now(), obs::SpanKind::kSplit, id_.value(),
                                   /*success=*/false);
    // Exponential backoff before asking the pool again (doubling per
    // consecutive denial, capped): the episode semantics live in the policy
    // layer (policy/denial_episode.h), this server just applies the wait.
    cooldown_until_ = now() + denial_episode_.on_denied();
    stats_.split_denied_streak = denial_episode_.streak();
    stats_.pool_backoff_us = denial_episode_.backoff_us();
    // A denied split is also an admission signal: the pool is exhausted
    // and this server is still hot.
    observe_admission(last_report_.client_count, last_report_.queue_length,
                      last_report_.waiting_count);
  } else if (const auto* pressure = std::get_if<PoolPressure>(&message)) {
    // While the failsafe is degraded the pool view stays FROZEN: a pressure
    // broadcast that limped in from a possibly-dead MC must not steer the
    // valve.  (Failsafe off ⇒ always applied, the historical behaviour.)
    if (control_plane_.admit(now(), {ControlKind::kPoolPressure, 0, 0}) ==
        ControlVerdict::kApply) {
      pool_idle_fraction_ =
          pressure->total > 0 ? static_cast<double>(pressure->idle) /
                                    static_cast<double>(pressure->total)
                              : -1.0;
      // A spare is idle again: the doubled wait describes a pool that no
      // longer exists, so allow a prompt retry — but keep the streak.  The
      // pool broadcasts occupancy on every change (including grants to other
      // servers that leave idle > 0); if the freed spare is snatched before
      // our retry lands, the next denial must keep doubling from where the
      // episode left off.  Only a calm report or a grant ends the episode
      // (policy/denial_episode.h; regression-pinned in policy_test.cpp).
      if (pressure->idle > 0 && denial_episode_.idle_allows_prompt_retry()) {
        cooldown_until_ =
            std::min(cooldown_until_, now() + config_.topology_cooldown);
      }
    }
    if (active_) {
      observe_admission(last_report_.client_count, last_report_.queue_length,
                        last_report_.waiting_count);
    }
  } else if (const auto* directive = std::get_if<AdmissionDirective>(&message)) {
    handle_admission_directive(*directive);
  } else if (const auto* beat = std::get_if<McHeartbeat>(&message)) {
    handle_mc_heartbeat(*beat);
  } else if (const auto* adopt = std::get_if<Adopt>(&message)) {
    handle_adopt(*adopt);
  } else if (const auto* table = std::get_if<OverlapTableMsg>(&message)) {
    handle_overlap_table(*table);
  } else if (const auto* load = std::get_if<PeerLoad>(&message)) {
    handle_peer_load(*load);
  } else if (const auto* request = std::get_if<ReclaimRequest>(&message)) {
    handle_reclaim_request(*request);
  } else if (const auto* decline = std::get_if<ReclaimDecline>(&message)) {
    handle_reclaim_decline(*decline);
  } else if (const auto* done = std::get_if<ReclaimDone>(&message)) {
    handle_reclaim_done(*done);
  } else if (const auto* shed = std::get_if<ShedDone>(&message)) {
    handle_shed_done(*shed);
  } else if (const auto* owner = std::get_if<PointOwner>(&message)) {
    handle_point_owner(*owner);
  } else if (const auto* query = std::get_if<OwnerQuery>(&message)) {
    // Game server asks who owns a point (client migration).  Resolve via
    // the MC; the reply comes back through handle_point_owner.
    ++stats_.nonproximal_lookups;
    const std::uint32_t seq = next_lookup_seq_++;
    pending_owner_queries_[seq] = *query;
    send(wiring_.mc_node, PointLookup{query->point, seq});
  } else if (const auto* st = std::get_if<StateTransfer>(&message)) {
    // Relay leg of the game→Matrix→game state path (paper §3.2.2: state is
    // forwarded "via Matrix").
    send(st->to_game, *st);
  } else if (const auto* cst = std::get_if<ClientStateTransfer>(&message)) {
    send(cst->to_game, *cst);
  } else if (const auto* handoff = std::get_if<QueueHandoff>(&message)) {
    // Relay leg of the game→Matrix→game surge-queue handoff (split/merge):
    // parked joins re-park at the server that now owns their region.
    send(handoff->to_game, *handoff);
  } else if (const auto* announce = std::get_if<McAnnounce>(&message)) {
    // Coordinator fail-over: adopt the new MC and re-register so it can
    // rebuild the partition map from our (authoritative) local range.  The
    // control plane rejects a superseded generation and — on a newer one —
    // flips the epoch atomically: every per-kind seq counter resets in the
    // same admit() call, so no directive numbered by the dead MC can ever
    // outrank its successor's.
    if (control_plane_.admit(now(),
                             {ControlKind::kAnnounce, announce->generation,
                              0}) != ControlVerdict::kApply) {
      return;  // stale announce
    }
    wiring_.mc_node = announce->mc_node;
    pending_lookups_.clear();         // in-flight lookups died with the MC
    pending_owner_queries_.clear();
    // The old MC's directive died with it: drop the floor (the standby
    // re-clamps within a digest round if pressure persists); its successor
    // numbers directives from 1 in the new epoch.
    const AdmissionState before = effective_admission_state();
    reset_directive();
    if (active_ && config_.admission.enabled &&
        effective_admission_state() != before) {
      push_admission_to_game();
    }
    if (active_) register_with_mc();
  }
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

bool MatrixServer::on_frame(const Envelope& env) {
  if (env.payload.empty()) return false;
  switch (env.payload[0]) {
    case kTaggedPacketWireType: {
      const auto view = parse_tagged_packet_frame(env.payload);
      if (!view) return false;  // malformed: the generic path counts it
      route_tagged_frame(*view, env);
      return true;
    }
    case kLoadReportWireType: {
      // Per-interval report from every game server: all fixed-width fields,
      // so skip the Message variant on the floor's steadiest control stream.
      const auto view = parse_load_report_frame(env.payload);
      if (!view) return false;
      LoadReport report;
      report.client_count = view->client_count;
      report.queue_length = view->queue_length;
      report.msgs_per_sec = view->msgs_per_sec;
      report.median_position = view->median_position;
      report.waiting_count = view->waiting_count;
      handle_load_report(report);
      return true;
    }
    case kStateTransferWireType:
    case kClientStateTransferWireType:
    case kQueueHandoffWireType: {
      // Relay legs (paper §3.2.2: state is forwarded "via Matrix"): only the
      // destination field is read; the frame — shed blobs included — is
      // forwarded verbatim, never decoded or copied through a struct.
      const auto relay = parse_relay_frame(env.payload);
      if (!relay) return false;
      send_raw(relay->to_game, env.payload);
      return true;
    }
    default:
      return false;
  }
}

std::size_t MatrixServer::send_peer_frame(NodeId peer,
                                          const std::vector<std::uint8_t>& frame,
                                          std::size_t flag_offset) {
  std::vector<std::uint8_t> buf = network()->rent_buffer();
  buf.assign(frame.begin(), frame.end());
  buf[flag_offset] = 1;  // peer_forwarded = true, flipped in place
  return network()->send(node_id(), peer, std::move(buf));
}

void MatrixServer::route_tagged_frame(const TaggedPacketView& view,
                                      const Envelope& env) {
  if (!active_) return;

  if (view.peer_forwarded) {
    // Arrived from a peer Matrix server: verify the packet's range before
    // handing it to our game server (paper §3.2.3).
    ++stats_.peer_packets_received;
    const double radius =
        view.radius_class < radii_.size() ? radii_[view.radius_class]
                                          : radii_.front();
    const bool origin_relevant =
        metric_distance(config_.metric, view.origin, range_) <= radius;
    const bool target_relevant =
        view.target.has_value() && range_.contains(*view.target);
    if (origin_relevant || target_relevant) {
      ++stats_.peer_packets_delivered;
      // Deliver the frame as received: the packet is forwarded unchanged,
      // so the arriving bytes are exactly what re-encoding would produce.
      send_raw(wiring_.game_node, env.payload);
    } else {
      ++stats_.peer_packets_rejected;
    }
    return;
  }

  // Arrived from our own game server: fan out along the consistency set.
  ++stats_.packets_from_game;

  if (!range_.contains(view.origin)) {
    // Handoff-window stray: the client's new home will route it properly.
    // Hand it to the point's owner via the MC (non-proximal machinery).
    ++stats_.origin_outside_range;
    ++stats_.nonproximal_lookups;
    const std::uint32_t seq = next_lookup_seq_++;
    TaggedPacket forwarded = view.materialize();
    forwarded.peer_forwarded = true;
    forwarded.target = view.origin;  // ensure delivery at the owner
    pending_lookups_[seq] = std::move(forwarded);
    send(wiring_.mc_node, PointLookup{view.origin, seq});
    return;
  }

  if (const OverlapRegionWire* region =
          lookup(view.origin, view.radius_class)) {
    for (NodeId peer : region->peer_matrix_nodes) {
      ++stats_.packets_fanned_out;
      send_peer_frame(peer, env.payload, view.peer_flag_offset);
    }
  }

  // Non-proximal interaction (paper §3.2.4): the target lies beyond our
  // partition; ask the MC who owns it, then forward directly.
  if (view.target.has_value() && !range_.contains(*view.target)) {
    const double radius =
        view.radius_class < radii_.size() ? radii_[view.radius_class]
                                          : radii_.front();
    // Targets within the origin's visibility radius were already covered by
    // the origin fan-out above.
    if (metric_distance(config_.metric, *view.target, view.origin) > radius) {
      ++stats_.nonproximal_lookups;
      const std::uint32_t seq = next_lookup_seq_++;
      TaggedPacket forwarded = view.materialize();
      forwarded.peer_forwarded = true;
      pending_lookups_[seq] = std::move(forwarded);
      send(wiring_.mc_node, PointLookup{*view.target, seq});
    }
  }
}

void MatrixServer::handle_point_owner(const PointOwner& owner) {
  if (auto qit = pending_owner_queries_.find(owner.lookup_seq);
      qit != pending_owner_queries_.end()) {
    const OwnerQuery query = qit->second;
    pending_owner_queries_.erase(qit);
    OwnerReply reply;
    reply.client = query.client;
    reply.seq = query.seq;
    reply.found = owner.found;
    reply.server = owner.server;
    reply.game_node = owner.game_node;
    send(wiring_.game_node, reply);
    return;
  }
  auto it = pending_lookups_.find(owner.lookup_seq);
  if (it == pending_lookups_.end()) return;
  TaggedPacket packet = std::move(it->second);
  pending_lookups_.erase(it);
  if (owner.found && owner.matrix_node != node_id()) {
    send(owner.matrix_node, packet);
  } else if (owner.found) {
    // We own the point ourselves (lookup raced a topology change).
    send(wiring_.game_node, packet);
  }
}

// ---------------------------------------------------------------------------
// Load monitoring and splits (paper §3.2.3)
// ---------------------------------------------------------------------------

void MatrixServer::handle_load_report(const LoadReport& report) {
  if (!active_) return;
  last_report_ = report;
  stats_.surge_waiting = report.waiting_count;
  stats_.surge_waiting_peak =
      std::max(stats_.surge_waiting_peak, report.waiting_count);

  // Global admission (src/control/global_admission.h): mirror the report
  // to the MC as a LoadDigest — carrying the LOCAL valve state, so the
  // coordinator's floor never feeds back into its own pressure score.
  if (config_.admission.global.enabled) {
    LoadDigest digest;
    digest.server = id_;
    digest.client_count = report.client_count;
    digest.queue_length = report.queue_length;
    digest.waiting_count = report.waiting_count;
    digest.admission_state = static_cast<std::uint8_t>(admission_.state());
    send(wiring_.mc_node, digest);
    ++stats_.digests_sent;
  }

  // Lost-message recovery: re-send a long-outstanding reclaim request.
  // Idempotent at the child (already-shedding children ignore duplicates;
  // re-granted children see a stale token and decline).
  if (reclaim_pending_ && now() >= reclaim_retry_at_ && !children_.empty()) {
    reclaim_retry_at_ = now() + config_.topology_cooldown * 2;
    send(children_.back().matrix_node,
         ReclaimRequest{children_.back().adoption_token});
  }

  // "explicit load messages from the game server or via system performance
  // measurements": combine the reported queue with what we can observe.
  const auto observed_queue = static_cast<std::uint32_t>(
      network()->queue_length(wiring_.game_node));
  const std::uint32_t queue_len = std::max(report.queue_length, observed_queue);

  const bool overloaded = config_.overloaded(report.client_count, queue_len);

  // A calm report ends the pool-denial episode: the streak and its backoff
  // describe the *current* run of denied splits, and with the overload gone
  // no further PoolAcquire (and hence no clearing PoolGrant) would ever be
  // sent — without this, one denial would latch the admission valve and
  // block reclaim forever.
  if (!overloaded) clear_pool_denial_episode();

  observe_admission(report.client_count, queue_len, report.waiting_count);

  if (overloaded) {
    ++consecutive_overload_;
  } else {
    consecutive_overload_ = 0;
  }
  // The policy layer decides: maybe_split consults it on EVERY report (a
  // DirectivePolicy may split proactively below the overload threshold;
  // ClassicPolicy only fires on sustained overload), reclaim only on calm
  // reports, exactly as before.
  maybe_split();
  if (!overloaded) maybe_reclaim();
}

// ---------------------------------------------------------------------------
// Admission control (src/control/)
// ---------------------------------------------------------------------------

void MatrixServer::observe_admission(std::uint32_t clients,
                                     std::uint32_t queue_len,
                                     std::uint32_t waiting_count) {
  if (!config_.admission.enabled) return;
  AdmissionSignals signals;
  signals.load.client_count = clients;
  // Always fold in the directly observed receive queue: callers outside
  // the LoadReport path (PoolDeny, PoolPressure) would otherwise escalate
  // on a queue figure up to one report interval stale.
  signals.load.queue_length = std::max(
      queue_len, static_cast<std::uint32_t>(
                     network()->queue_length(wiring_.game_node)));
  signals.load.waiting_count = waiting_count;
  signals.split_denied_streak = denial_episode_.streak();
  signals.pool_idle_fraction = pool_idle_fraction_;
  if (admission_.observe(now(), signals)) push_admission_to_game();
}

void MatrixServer::handle_admission_directive(
    const AdmissionDirective& directive) {
  if (!config_.admission.enabled || !config_.admission.global.enabled) return;
  // One staleness rule, one place: reordered/stale seqs (and, with the
  // failsafe degraded, anything from an untrusted MC) die here.
  if (control_plane_.admit(now(), {ControlKind::kDirective, 0,
                                   directive.seq}) != ControlVerdict::kApply) {
    return;
  }
  apply_admission_directive(directive);
  if (config_.fault.stale_directive_replay &&
      control_plane_.admit(now(), {ControlKind::kDirective, 0,
                                   directive.seq}) == ControlVerdict::kApply) {
    // Planted bug (docs/TESTING.md): the same directive acts twice.
    apply_admission_directive(directive);
  }
}

void MatrixServer::apply_admission_directive(
    const AdmissionDirective& directive) {
  const AdmissionState before = effective_admission_state();
  directive_active_ = directive.active;
  directive_floor_ = directive.active
                         ? admission_state_from_wire(directive.floor)
                         : AdmissionState::kNormal;
  directive_pressure_ = directive.active ? directive.pressure : 0.0;
  directive_waiting_total_ = directive.active ? directive.waiting_total : 0;
  ++stats_.directives_received;
  if (!active_) return;  // parked in the pool: remember seq, enforce nothing
  // The game server needs the directive itself (token-budget share,
  // active flag for queue handoff), not just the composed state.  Relayed
  // under OUR monotonic seq: the MC's numbering restarts on fail-over,
  // the pair's must not.
  AdmissionDirective relayed = directive;
  relayed.seq = ++game_directive_seq_;
  send(wiring_.game_node, relayed);
  if (effective_admission_state() != before) push_admission_to_game();
}

void MatrixServer::reset_directive() {
  const bool was_active = directive_active_;
  directive_floor_ = AdmissionState::kNormal;
  directive_active_ = false;
  directive_pressure_ = 0.0;
  directive_waiting_total_ = 0;
  // The game server of this pair latched the old directive; rescind it so
  // a fresh life (re-adoption, MC fail-over) starts unclamped.
  if (was_active && config_.admission.global.enabled) {
    AdmissionDirective rescind;
    rescind.seq = ++game_directive_seq_;
    rescind.active = false;
    send(wiring_.game_node, rescind);
  }
}

// ---------------------------------------------------------------------------
// Control-plane failsafe (src/control/control_plane.h)
// ---------------------------------------------------------------------------

void MatrixServer::handle_mc_heartbeat(const McHeartbeat& beat) {
  if (!config_.failsafe.enabled) return;
  if (control_plane_.admit(now(), {ControlKind::kHeartbeat, beat.generation,
                                   beat.seq}) != ControlVerdict::kApply) {
    return;
  }
  if (!active_) return;
  // Relay the beat to our game server: the pair shares one freshness clock,
  // so the game's own failsafe machine degrades (and recovers) in step.
  send(wiring_.game_node, beat);
  ++stats_.heartbeats_relayed;
}

void MatrixServer::on_shard_migrated() {
  control_plane_.bind(&network()->tracer_for(node_id()), node_id().value());
}

void MatrixServer::start_failsafe(SimTime at) {
  control_plane_.bind(&network()->tracer_for(node_id()), node_id().value());
  if (!config_.failsafe.enabled) return;
  control_plane_.start(at);
  schedule_failsafe_tick();
}

void MatrixServer::schedule_failsafe_tick() {
  const std::uint64_t epoch = activation_epoch_;
  network()->events_for(node_id()).schedule_after(
      config_.failsafe.check_interval, [this, epoch] {
        if (!active_ || activation_epoch_ != epoch) return;
        const bool was_fallback = control_plane_.fallback();
        if (control_plane_.tick(now()) && !was_fallback &&
            control_plane_.fallback()) {
          on_failsafe_degraded();
        }
        schedule_failsafe_tick();
      });
}

void MatrixServer::on_failsafe_degraded() {
  // FALLBACK entry: deterministic local-only behaviour.  The frozen
  // directive is dropped — reset_directive() also relays a rescind so the
  // game server restores its local token rate — and the local valve takes
  // back over.  Split/reclaim conservatism is enforced in maybe_split /
  // maybe_reclaim.
  const AdmissionState before = effective_admission_state();
  reset_directive();
  if (active_ && config_.admission.enabled &&
      effective_admission_state() != before) {
    push_admission_to_game();
  }
  MATRIX_INFO("matrix", name() << " failsafe -> FALLBACK (MC silent)");
}

void MatrixServer::clear_pool_denial_episode() {
  if (denial_episode_.end()) {
    // A doubled backoff may still be holding the topology cooldown far in
    // the future; with the episode over, shrink it to the ordinary
    // cooldown so an underloaded server can reclaim (and a re-overloaded
    // one re-ask a refilled pool) promptly.  min() preserves any cooldown
    // a split/reclaim set through the normal hysteresis path.
    cooldown_until_ =
        std::min(cooldown_until_, now() + config_.topology_cooldown);
  }
  stats_.split_denied_streak = 0;
  stats_.pool_backoff_us = 0;
}

void MatrixServer::push_admission_to_game() {
  // The game server enforces the COMPOSED state: local valve and the
  // coordinator's directive floor, strictest wins.
  const AdmissionState effective = effective_admission_state();
  AdmissionUpdate update;
  update.state = static_cast<std::uint8_t>(effective);
  update.seq = ++admission_seq_;
  send(wiring_.game_node, update);
  ++stats_.admission_updates;
  network()->tracer().record(now(), obs::TraceKind::kAdmissionTransition,
                             id_.value(), 0,
                             static_cast<std::int64_t>(effective));
  MATRIX_INFO("matrix", name() << " admission -> "
                               << admission_state_name(effective));
}

bool MatrixServer::can_change_topology() const {
  return active_ && !split_pending_ && !reclaim_pending_ &&
         !being_reclaimed_ && now() >= cooldown_until_;
}

LoadView MatrixServer::build_load_view() const {
  LoadView view;
  view.load.client_count = last_report_.client_count;
  view.load.queue_length = last_report_.queue_length;
  view.load.waiting_count = last_report_.waiting_count;
  view.median_position = last_report_.median_position;
  view.range = range_;
  view.consecutive_overload = consecutive_overload_;
  view.split_denied_streak = denial_episode_.streak();
  view.pool_idle_fraction = pool_idle_fraction_;
  view.local_valve = static_cast<std::uint8_t>(admission_.state());
  view.directive_floor = static_cast<std::uint8_t>(directive_floor_);
  view.effective_valve =
      static_cast<std::uint8_t>(effective_admission_state());
  view.directive_active = directive_active_;
  view.directive_pressure = directive_pressure_;
  view.directive_waiting_total = directive_waiting_total_;
  view.failsafe = static_cast<std::uint8_t>(control_plane_.state());
  return view;
}

void MatrixServer::maybe_split() {
  if (!can_change_topology()) return;
  // FALLBACK forbids decisions that need a pool grant: a split's child must
  // register with the MC to become routable, and the MC is presumed dead.
  if (control_plane_.fallback()) return;
  const LoadView view = build_load_view();
  const SplitDecision decision = policy_->decide_split(view);
  if (!decision.split) return;
  split_pending_ = true;
  split_started_at_ = now();
  ++stats_.splits_initiated;
  if (decision.proactive) ++stats_.proactive_splits;
  // The need hint rides the request so the pool can arbitrate a contested
  // spare toward the most starved partition (0 ⇒ classic FCFS).
  const auto need = policy_->pool_need(view);
  obs::Tracer& tracer = network()->tracer();
  tracer.record(now(), obs::TraceKind::kSplitRequested, id_.value(), 0,
                decision.proactive ? 1 : 0, need);
  tracer.open_span(now(), obs::SpanKind::kSplit, id_.value());
  send(wiring_.pool_node, PoolAcquire{id_, need});
}

void MatrixServer::handle_pool_grant(const PoolGrant& grant) {
  if (!split_pending_ || !active_ || being_reclaimed_) {
    // We no longer want the server — most importantly when our parent's
    // ReclaimRequest overtook the grant: splitting now would change our
    // range mid-reclaim and the parent would merge a stale rectangle,
    // tearing the tiling invariant.  Return the grant.
    send(wiring_.pool_node,
         PoolRelease{grant.server, grant.matrix_node, grant.game_node});
    split_pending_ = false;
    network()->tracer().close_span(now(), obs::SpanKind::kSplit, id_.value(),
                                   /*success=*/false);
    return;
  }

  // The pool came through: clear the denial streak and its backoff.
  clear_pool_denial_episode();
  network()->tracer().record(now(), obs::TraceKind::kPoolGranted, id_.value(),
                             grant.server.value());

  const auto [give_away, keep] = policy_->split_ranges(build_load_view());
  ++topology_epoch_;
  range_ = keep;

  children_.push_back({grant.server, grant.matrix_node, grant.game_node,
                       give_away, topology_epoch_});

  MATRIX_INFO("matrix", name() << " splits: keeps " << keep << ", hands "
                               << give_away << " to S" << grant.server.value());

  Adopt adopt;
  adopt.parent = id_;
  adopt.parent_matrix = node_id();
  adopt.parent_game = wiring_.game_node;
  adopt.range = give_away;
  adopt.visibility_radius = radii_.front();
  adopt.extra_radii.assign(radii_.begin() + 1, radii_.end());
  adopt.content_keys = content_keys_;
  adopt.topology_epoch = topology_epoch_;
  send(grant.matrix_node, adopt);

  register_with_mc();
  push_range_to_game(give_away, grant.game_node, grant.server,
                     /*reclaim=*/false);
}

void MatrixServer::handle_adopt(const Adopt& adopt) {
  active_ = true;
  being_reclaimed_ = false;
  split_pending_ = false;
  reclaim_pending_ = false;
  consecutive_overload_ = 0;
  children_.clear();
  tables_.clear();
  table_versions_.clear();
  range_ = adopt.range;
  parent_ = adopt.parent;
  parent_matrix_ = adopt.parent_matrix;
  parent_game_ = adopt.parent_game;
  radii_.clear();
  radii_.push_back(adopt.visibility_radius);
  radii_.insert(radii_.end(), adopt.extra_radii.begin(),
                adopt.extra_radii.end());
  content_keys_ = adopt.content_keys;
  topology_epoch_ = adopt.topology_epoch;
  // A fresh child should not immediately split/reclaim; give the handoff a
  // cooldown to settle.
  cooldown_until_ = now() + config_.topology_cooldown;
  ++activation_epoch_;
  // A re-granted pool server starts a fresh admission life (and tells its
  // game server so: the pair may have parted in SOFT/HARD last time).
  // The MC re-sends any directive in force on the registration below.
  clear_pool_denial_episode();
  reset_directive();
  if (config_.admission.enabled) {
    admission_.reset(now());
    push_admission_to_game();
  }
  network()->tracer().record(now(), obs::TraceKind::kAdopted, id_.value(),
                             parent_.value());

  MATRIX_INFO("matrix", name() << " adopted range " << range_ << " from S"
                               << parent_.value());

  start_failsafe(now());
  register_with_mc();
  push_range_to_game(Rect{}, NodeId{}, ServerId{}, /*reclaim=*/false);
  schedule_heartbeat();
}

void MatrixServer::schedule_heartbeat() {
  const std::uint64_t epoch = activation_epoch_;
  network()->events_for(node_id()).schedule_after(config_.peer_load_interval, [this, epoch] {
    if (!active_ || activation_epoch_ != epoch || !parent_.valid()) return;
    PeerLoad load;
    load.server = id_;
    load.client_count = last_report_.client_count;
    load.child_count = static_cast<std::uint32_t>(children_.size());
    send(parent_matrix_, load);
    schedule_heartbeat();
  });
}

void MatrixServer::handle_peer_load(const PeerLoad& load) {
  for (auto& child : children_) {
    if (child.server == load.server) {
      child.last_clients = load.client_count;
      child.last_children = load.child_count;
      child.load_known = true;
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Reclamation (paper §3.2.3)
// ---------------------------------------------------------------------------

void MatrixServer::maybe_reclaim() {
  if (!can_change_topology()) return;
  if (children_.empty()) return;
  // Only the most recent child can be reclaimed: its range is the complement
  // of our latest split, so the merge below is exact.  Earlier children
  // become reclaimable as later ones are absorbed (LIFO collapse).
  const ChildInfo& child = children_.back();
  ChildView child_view;
  child_view.client_count = child.last_clients;
  child_view.child_count = child.last_children;
  child_view.load_known = child.load_known;
  // FALLBACK reclaims conservatively: only a provably EMPTY child is merged
  // back.  A populated merge mid-outage would concentrate load with no MC
  // to re-split it across the deployment afterwards.
  if (control_plane_.fallback() &&
      (!child.load_known || child.last_clients != 0 ||
       child.last_children != 0)) {
    return;
  }
  if (!policy_->decide_reclaim(build_load_view(), child_view).reclaim) return;
  reclaim_pending_ = true;
  reclaim_started_at_ = now();
  reclaim_retry_at_ = now() + config_.topology_cooldown * 2;
  ++stats_.reclaims_initiated;
  obs::Tracer& tracer = network()->tracer();
  tracer.record(now(), obs::TraceKind::kReclaimRequested, id_.value(),
                child.server.value());
  tracer.open_span(now(), obs::SpanKind::kReclaim, id_.value());
  MATRIX_INFO("matrix", name() << " reclaiming child S"
                               << child.server.value());
  send(child.matrix_node, ReclaimRequest{child.adoption_token});
}

void MatrixServer::handle_reclaim_request(const ReclaimRequest& request) {
  if (!active_) return;
  if (being_reclaimed_) return;  // duplicate/retry while already shedding
  // Refuse unless fully quiescent.  A reclaim racing our own in-flight
  // split or reclaim would hand the parent a rectangle that is no longer
  // the complement of its range — merging it would gap or overlap the map.
  // A stale token means we were re-granted since that request was formed.
  if (split_pending_ || reclaim_pending_ ||
      request.topology_epoch != topology_epoch_) {
    send(parent_matrix_, ReclaimDecline{id_, request.topology_epoch});
    return;
  }
  being_reclaimed_ = true;
  // Shed everything we own to the parent's game server; ShedDone completes
  // the handback.
  push_range_to_game(range_, parent_game_, parent_, /*reclaim=*/true);
}

void MatrixServer::handle_reclaim_decline(const ReclaimDecline& decline) {
  if (!reclaim_pending_) return;
  if (children_.empty() || children_.back().server != decline.child) return;
  reclaim_pending_ = false;
  network()->tracer().record(now(), obs::TraceKind::kReclaimDeclined,
                             id_.value(), decline.child.value());
  network()->tracer().close_span(now(), obs::SpanKind::kReclaim, id_.value(),
                                 /*success=*/false);
  // Brief cooldown before considering the child again.
  cooldown_until_ = now() + config_.topology_cooldown;
}

void MatrixServer::handle_reclaim_done(const ReclaimDone& done) {
  if (!reclaim_pending_) return;
  auto it = std::find_if(children_.begin(), children_.end(),
                         [&](const ChildInfo& c) { return c.server == done.child; });
  if (it == children_.end()) return;
  range_ = Rect::bounding(range_, done.range);
  children_.erase(it);
  reclaim_pending_ = false;
  cooldown_until_ = now() + config_.topology_cooldown;
  ++stats_.reclaims_completed;
  stats_.reclaim_latency_us_sum +=
      static_cast<std::uint64_t>((now() - reclaim_started_at_).us());
  network()->tracer().record(now(), obs::TraceKind::kReclaimCompleted,
                             id_.value(), done.child.value());
  network()->tracer().close_span(now(), obs::SpanKind::kReclaim, id_.value());
  MATRIX_INFO("matrix", name() << " reclaimed range, now " << range_);
  register_with_mc();
  push_range_to_game(Rect{}, NodeId{}, ServerId{}, /*reclaim=*/false);
}

void MatrixServer::handle_shed_done(const ShedDone& done) {
  if (being_reclaimed_) {
    // Child side: everything is handed back; return ourselves to the pool.
    ReclaimDone reclaim_done;
    reclaim_done.child = id_;
    reclaim_done.range = range_;
    reclaim_done.topology_epoch = done.topology_epoch;
    send(parent_matrix_, reclaim_done);
    send(wiring_.mc_node, ServerUnregister{id_});
    send(wiring_.pool_node, PoolRelease{id_, node_id(), wiring_.game_node});
    deactivate();
    return;
  }
  if (split_pending_) {
    // Parent side: the shed that completes a split has finished.
    split_pending_ = false;
    consecutive_overload_ = 0;
    cooldown_until_ = now() + config_.topology_cooldown;
    ++stats_.splits_completed;
    stats_.split_latency_us_sum +=
        static_cast<std::uint64_t>((now() - split_started_at_).us());
    obs::Tracer& tracer = network()->tracer();
    tracer.record(now(), obs::TraceKind::kSplitCompleted, id_.value(),
                  children_.empty() ? 0 : children_.back().server.value());
    tracer.close_span(now(), obs::SpanKind::kSplit, id_.value());
  }
}

void MatrixServer::deactivate() {
  obs::Tracer& tracer = network()->tracer();
  tracer.record(now(), obs::TraceKind::kDeactivated, id_.value());
  // A deactivating server abandons any split/reclaim in flight.
  tracer.close_span(now(), obs::SpanKind::kSplit, id_.value(),
                    /*success=*/false);
  tracer.close_span(now(), obs::SpanKind::kReclaim, id_.value(),
                    /*success=*/false);
  active_ = false;
  being_reclaimed_ = false;
  split_pending_ = false;
  reclaim_pending_ = false;
  consecutive_overload_ = 0;
  range_ = Rect{};
  parent_ = ServerId{};
  children_.clear();
  tables_.clear();
  table_versions_.clear();
  pending_lookups_.clear();
  last_report_ = LoadReport{};
  clear_pool_denial_episode();
  admission_.reset(now());
  reset_directive();
  ++activation_epoch_;
}

// ---------------------------------------------------------------------------
// Control plumbing
// ---------------------------------------------------------------------------

void MatrixServer::handle_overlap_table(const OverlapTableMsg& table) {
  if (!active_ || table.server != id_) return;
  const std::size_t rc = table.radius_class;
  if (tables_.size() <= rc) {
    tables_.resize(rc + 1);
    table_versions_.resize(rc + 1, 0);
  }
  if (table.version < table_versions_[rc]) return;  // stale push
  table_versions_[rc] = table.version;
  tables_[rc] = RegionIndex(table.partition, table.regions);
  ++stats_.table_updates;
}

void MatrixServer::register_with_mc() {
  ServerRegister reg;
  reg.server = id_;
  reg.matrix_node = node_id();
  reg.game_node = wiring_.game_node;
  reg.range = range_;
  reg.radii = radii_;
  send(wiring_.mc_node, reg);
}

void MatrixServer::push_range_to_game(const Rect& shed_range,
                                      NodeId shed_to_game,
                                      ServerId shed_to_server, bool reclaim) {
  MapRange msg;
  msg.new_range = reclaim ? Rect{} : range_;
  msg.shed_range = shed_range;
  msg.shed_to_game = shed_to_game;
  msg.shed_to_server = shed_to_server;
  msg.reclaim = reclaim;
  msg.topology_epoch = topology_epoch_;
  send(wiring_.game_node, msg);
}

}  // namespace matrix
