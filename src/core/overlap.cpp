#include "core/overlap.h"

#include <algorithm>
#include <cmath>

#include "geometry/sweep.h"

namespace matrix {

namespace {

/// Clamped bucket index of coordinate `v` on a grid starting at `origin`
/// with `n` cells of width `cell`.
std::size_t bucket_coord(double v, double origin, double cell, std::size_t n) {
  const double raw = (v - origin) / cell;
  if (raw <= 0.0) return 0;
  const auto idx = static_cast<std::size_t>(raw);
  return std::min(idx, n - 1);
}

}  // namespace

std::vector<OverlapRegionWire> build_overlap_regions(
    const PartitionMap& map, ServerId owner, double radius, Metric metric) {
  std::vector<OverlapRegionWire> out;
  const PartitionEntry* self = map.find(owner);
  if (self == nullptr) return out;

  // Inflating Pj by R gives the locus of points within Chebyshev distance R
  // of Pj; for the Euclidean metric the same box is the conservative AABB of
  // the true rounded region (docs/ARCHITECTURE.md, "Reproduction substitutions").  Either way a point σ lies in
  // the inflated box iff server j belongs to C(σ) (conservatively for L2).
  (void)metric;  // both metrics use the AABB construction; see header docs
  std::vector<StampRect> stamps;
  std::vector<const PartitionEntry*> peers;
  for (const auto& entry : map.entries()) {
    if (entry.server == owner) continue;
    const Rect inflated = entry.range.inflated(radius);
    if (!inflated.intersects(self->range)) continue;
    stamps.push_back({inflated, static_cast<std::uint32_t>(peers.size())});
    peers.push_back(&entry);
  }
  if (peers.empty()) return out;

  for (const auto& cell : decompose_arrangement(self->range, stamps)) {
    if (cell.payloads.empty()) continue;  // interior: nothing to ship
    OverlapRegionWire region;
    region.rect = cell.rect;
    region.peer_servers.reserve(cell.payloads.size());
    region.peer_matrix_nodes.reserve(cell.payloads.size());
    for (std::uint32_t payload : cell.payloads) {
      region.peer_servers.push_back(peers[payload]->server);
      region.peer_matrix_nodes.push_back(peers[payload]->matrix_node);
    }
    out.push_back(std::move(region));
  }
  return out;
}

double overlap_area_fraction(const std::vector<OverlapRegionWire>& regions,
                             const Rect& partition) {
  if (partition.area() <= 0.0) return 0.0;
  double covered = 0.0;
  for (const auto& region : regions) covered += region.rect.area();
  return covered / partition.area();
}

RegionIndex::RegionIndex(const Rect& partition,
                         std::vector<OverlapRegionWire> regions)
    : partition_(partition), regions_(std::move(regions)) {
  const auto target =
      static_cast<std::size_t>(2.0 * std::sqrt(static_cast<double>(
                                         std::max<std::size_t>(regions_.size(), 1))));
  grid_w_ = std::clamp<std::size_t>(target, 1, 256);
  grid_h_ = grid_w_;
  cell_w_ = partition_.width() / static_cast<double>(grid_w_);
  cell_h_ = partition_.height() / static_cast<double>(grid_h_);
  if (cell_w_ <= 0.0) cell_w_ = 1.0;
  if (cell_h_ <= 0.0) cell_h_ = 1.0;
  buckets_.assign(grid_w_ * grid_h_, {});
  for (std::uint32_t i = 0; i < regions_.size(); ++i) {
    const Rect& r = regions_[i].rect;
    const auto bx0 = bucket_coord(r.x0(), partition_.x0(), cell_w_, grid_w_);
    const auto bx1 = bucket_coord(r.x1(), partition_.x0(), cell_w_, grid_w_);
    const auto by0 = bucket_coord(r.y0(), partition_.y0(), cell_h_, grid_h_);
    const auto by1 = bucket_coord(r.y1(), partition_.y0(), cell_h_, grid_h_);
    for (std::size_t by = by0; by <= by1; ++by) {
      for (std::size_t bx = bx0; bx <= bx1; ++bx) {
        buckets_[by * grid_w_ + bx].push_back(i);
      }
    }
  }
}

const OverlapRegionWire* RegionIndex::find(Vec2 p) const {
  if (regions_.empty() || !partition_.contains(p)) return nullptr;
  const auto bx = bucket_coord(p.x, partition_.x0(), cell_w_, grid_w_);
  const auto by = bucket_coord(p.y, partition_.y0(), cell_h_, grid_h_);
  for (std::uint32_t idx : buckets_[by * grid_w_ + bx]) {
    if (regions_[idx].rect.contains(p)) return &regions_[idx];
  }
  return nullptr;
}

}  // namespace matrix
