// Global partition map.
//
// The Matrix Coordinator's view of the world: which server owns which
// rectangle (paper §3.1: "Matrix partitions the overall space Z into N
// non-overlapping partitions {P1..PN} and assigns each partition Pi to a
// distinct server Si").  Matrix servers themselves never hold this map —
// they only know their own range, parent, and children; that asymmetry is
// what makes split decisions purely local.
#pragma once

#include <optional>
#include <vector>

#include "geometry/metric.h"
#include "geometry/rect.h"
#include "util/ids.h"

namespace matrix {

struct PartitionEntry {
  ServerId server;
  NodeId matrix_node;
  NodeId game_node;
  Rect range;
};

class PartitionMap {
 public:
  /// Inserts or replaces the entry for `entry.server`.
  void upsert(const PartitionEntry& entry);

  /// Removes the entry; no-op if absent.
  void remove(ServerId server);

  [[nodiscard]] const PartitionEntry* find(ServerId server) const;

  /// The server whose partition contains `p` (half-open containment, so a
  /// boundary point resolves to exactly one owner).
  [[nodiscard]] const PartitionEntry* owner_of(Vec2 p) const;

  [[nodiscard]] const std::vector<PartitionEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Checks the tiling invariant: partitions are pairwise disjoint (open
  /// interiors) and their areas sum to the world's area within `epsilon`.
  [[nodiscard]] bool tiles(const Rect& world, double epsilon = 1e-6) const;

 private:
  std::vector<PartitionEntry> entries_;  // ordered by insertion; N is small
};

/// Ground-truth consistency set of Eq. 1: every server (other than the
/// owner of σ) whose partition lies within metric distance `radius` of σ.
/// O(N); used by the MC for non-proximal lookups-by-area, by tests as the
/// oracle the O(1) overlap tables must agree with, and by the O(N)-scan
/// ablation.
[[nodiscard]] std::vector<const PartitionEntry*> consistency_set_scan(
    const PartitionMap& map, Vec2 point, double radius, Metric metric);

}  // namespace matrix
