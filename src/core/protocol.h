// Wire protocol.
//
// Every message exchanged between game clients, game servers, Matrix
// servers, the Matrix Coordinator (MC), and the resource pool.  Messages are
// encoded to bytes (util/codec.h) before hitting the network so that wire
// sizes — and therefore the bandwidth results — are physically meaningful.
//
// Component roles and the messages they exchange (paper §3.2):
//
//   client  → game    : ClientHello, ClientAction, ClientBye
//   game    → client  : Welcome, ServerUpdate, Redirect, JoinDeny, JoinDefer,
//                       QueueUpdate
//   game    → matrix  : TaggedPacket, LoadReport, ShedDone
//   matrix  → game    : TaggedPacket (verified), MapRange, AdmissionUpdate,
//                       AdmissionDirective (relay)
//   matrix  ↔ matrix  : TaggedPacket (peer forward), Adopt, PeerLoad,
//                       ReclaimRequest, ReclaimDone, StateTransfer (relay),
//                       ClientStateTransfer (relay), QueueHandoff (relay)
//   matrix  ↔ MC      : ServerRegister, ServerUnregister, OverlapTableMsg,
//                       PointLookup, PointOwner, LoadDigest
//   matrix  ↔ pool    : PoolAcquire, PoolGrant, PoolDeny, PoolRelease
//   pool    → MC      : PoolStatus;  MC → matrix : PoolPressure,
//                       AdmissionDirective
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/server_set.h"
#include "geometry/rect.h"
#include "geometry/vec2.h"
#include "util/codec.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace matrix {

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

/// A spatially-tagged game packet (paper §3.1).  The game server tags each
/// client packet with the world coordinates of the packet's origin (and
/// destination for non-proximal interactions); Matrix routes on the tags and
/// never parses `payload` — that is the layering the paper's API promises.
struct TaggedPacket {
  ClientId client;            ///< globally-unique originating player
  EntityId entity;            ///< acting entity
  Vec2 origin;                ///< where in the world the event happened
  std::optional<Vec2> target; ///< set only for non-proximal interactions
  std::uint8_t radius_class = 0;  ///< 0 = game default R; else exceptional R
  std::uint8_t kind = 0;          ///< game-defined opcode (opaque to Matrix)
  std::uint32_t seq = 0;          ///< client action sequence (latency pairing)
  SimTime client_sent_at{};       ///< stamped by client; for latency metrics
  bool peer_forwarded = false;    ///< set on matrix→matrix relay (no re-fwd)
  PayloadBytes payload;           ///< game-specific body (opaque)
};

// ---------------------------------------------------------------------------
// Client ↔ game server
// ---------------------------------------------------------------------------

/// First message from a client to a game server.  `resume` is set when the
/// client was redirected here mid-game (its avatar state arrives separately
/// server→server via ClientStateTransfer).
struct ClientHello {
  ClientId client;
  Vec2 position;
  bool resume = false;
  std::uint32_t redirect_seq = 0;  ///< pairs with Redirect for switch latency
  /// Priority hint for the surge queue (src/control/surge_queue.h):
  /// 0 = NORMAL, 1 = VIP.  Resumes outrank both and are flagged by `resume`,
  /// not here.  Ignored entirely while the waiting room is disabled.
  std::uint8_t priority = 0;
};

struct Welcome {
  ClientId client;
  EntityId avatar;
  Rect authority;                  ///< the server's current map range
  std::uint32_t redirect_seq = 0;
};

/// A player input: move / fire / interact, stamped for latency measurement.
struct ClientAction {
  ClientId client;
  std::uint8_t kind = 0;
  Vec2 position;                    ///< client's believed position
  std::optional<Vec2> target;       ///< e.g. shot aim point, teleport target
  std::uint32_t seq = 0;
  SimTime sent_at{};
  PayloadBytes payload;
};

/// Game server → client state delta.  `ack_seq` is nonzero when this update
/// is the direct reaction to that client's own action (self-latency); the
/// embedded origin timestamp measures observer latency at other clients.
struct ServerUpdate {
  std::uint8_t kind = 0;
  Vec2 position;
  std::uint32_t ack_seq = 0;
  SimTime origin_sent_at{};
  PayloadBytes payload;
};

/// Orders a client to reconnect to a different game server (paper §3.2.1:
/// "the client is informed of these switches by its current game server").
struct Redirect {
  NodeId new_game_node;
  ServerId new_server;
  std::uint32_t redirect_seq = 0;
};

struct ClientBye {
  ClientId client;
};

// ---------------------------------------------------------------------------
// Game server ↔ its Matrix server (same host, paper §3.2.2)
// ---------------------------------------------------------------------------

/// Periodic load report (paper §3.2.2: "the game server also periodically
/// reports its current load").  The median position feeds the load-aware
/// split-policy extension; split-to-left ignores it.
struct LoadReport {
  std::uint32_t client_count = 0;
  std::uint32_t queue_length = 0;
  double msgs_per_sec = 0.0;
  Vec2 median_position;
  /// Joins parked in the surge queue (src/control/surge_queue.h); 0 while
  /// the waiting room is disabled.  Surfaced in MatrixServer::Stats.
  std::uint32_t waiting_count = 0;
};

/// Matrix server → game server: your authoritative range changed.  When
/// `shed_range` is non-empty the game server must transfer map-object state
/// in that range and redirect the clients standing in it to `shed_to_game`.
struct MapRange {
  Rect new_range;
  Rect shed_range;                  ///< empty ⇒ nothing to shed
  NodeId shed_to_game;
  ServerId shed_to_server;
  bool reclaim = false;             ///< true ⇒ shedding everything to parent
  std::uint64_t topology_epoch = 0;
};

/// Game server → Matrix server: the shed ordered by MapRange has finished
/// (all state transferred, all clients redirected).
struct ShedDone {
  std::uint64_t topology_epoch = 0;
  std::uint32_t clients_redirected = 0;
};

/// Game server → Matrix server: "which game server owns this point?"
/// Used when a client walks out of this server's authority range — the paper
/// says "Matrix provides the identity of the appropriate game server".  The
/// Matrix server resolves it via the MC's point lookup.
struct OwnerQuery {
  Vec2 point;
  ClientId client;
  std::uint32_t seq = 0;
};

/// Matrix server → game server: answer to OwnerQuery.
struct OwnerReply {
  ClientId client;
  std::uint32_t seq = 0;
  bool found = false;
  ServerId server;
  NodeId game_node;
};

// ---------------------------------------------------------------------------
// Matrix server ↔ Matrix server
// ---------------------------------------------------------------------------

/// Parent → newly-granted Matrix server: take over `range`.  Static content
/// is *not* shipped — `content_keys` are pointers into the pre-cached store
/// (paper §3.2.3: "only pointers to the cached state" are sent).
struct Adopt {
  ServerId parent;
  NodeId parent_matrix;
  NodeId parent_game;
  Rect range;
  double visibility_radius = 0.0;
  std::vector<double> extra_radii;  ///< exceptional radius classes, in order
  std::vector<std::string> content_keys;
  std::uint64_t topology_epoch = 0;
};

/// Child → parent heartbeat enabling the parent's reclaim decision.  A
/// child that has children of its own is not reclaimable (the subtree must
/// collapse leaf-first), hence `child_count`.
struct PeerLoad {
  ServerId server;
  std::uint32_t client_count = 0;
  std::uint32_t child_count = 0;
};

/// Parent → child: begin reclamation (paper §3.2.3).  `topology_epoch` is
/// the ADOPTION TOKEN the parent issued this child in its Adopt message; a
/// child only honours requests bearing its own token, so a stale retry can
/// never reclaim a server that has since been re-granted to someone else.
struct ReclaimRequest {
  std::uint64_t topology_epoch = 0;
};

/// Child → parent: reclamation refused (the child is mid-split, already
/// reclaiming its own child, or the token was stale).  The parent clears
/// its pending state and may retry later.  Without an explicit decline, an
/// overload/underload interleaving can merge non-complementary rectangles
/// and tear the tiling invariant (see matrix_server.cpp's reclaim notes).
struct ReclaimDecline {
  ServerId child;
  std::uint64_t topology_epoch = 0;
};

/// Child → parent: reclamation finished; `range` returns to the parent.
struct ReclaimDone {
  ServerId child;
  Rect range;
  std::uint64_t topology_epoch = 0;
};

/// Bulk game state (map objects) relayed game→matrix→matrix→game during
/// splits and reclaims.
struct StateTransfer {
  ServerId from_server;
  NodeId to_game;
  Rect range;
  std::uint32_t object_count = 0;
  std::vector<std::uint8_t> blob;
};

/// One switching client's avatar state, relayed server→server ahead of the
/// client's ClientHello at the destination.
struct ClientStateTransfer {
  ClientId client;
  EntityId entity;
  NodeId to_game;
  std::vector<std::uint8_t> blob;
};

// ---------------------------------------------------------------------------
// Matrix server ↔ Matrix Coordinator
// ---------------------------------------------------------------------------

/// Registers (or re-registers after a range change) a Matrix server with the
/// MC.  Upsert semantics: the MC replaces any previous range for `server`.
struct ServerRegister {
  ServerId server;
  NodeId matrix_node;
  NodeId game_node;
  Rect range;
  std::vector<double> radii;  ///< game default first, then exceptional radii
};

struct ServerUnregister {
  ServerId server;
};

/// One overlap region as shipped to a Matrix server: every point in `rect`
/// has consistency set = `peers` (paper Fig. 1a).
struct OverlapRegionWire {
  Rect rect;
  std::vector<ServerId> peer_servers;
  std::vector<NodeId> peer_matrix_nodes;  ///< parallel to peer_servers
};

/// MC → Matrix server: your overlap table for one radius class.
struct OverlapTableMsg {
  ServerId server;
  Rect partition;
  std::uint8_t radius_class = 0;
  double radius = 0.0;
  std::uint64_t version = 0;  ///< MC recompute generation
  std::vector<OverlapRegionWire> regions;
};

/// Matrix server → MC: who owns this point?  Used only for the rare
/// non-proximal interactions (paper §3.2.4).
struct PointLookup {
  Vec2 point;
  std::uint32_t lookup_seq = 0;
};

struct PointOwner {
  std::uint32_t lookup_seq = 0;
  bool found = false;
  ServerId server;
  NodeId matrix_node;
  NodeId game_node;
};

// ---------------------------------------------------------------------------
// Matrix server ↔ resource pool ("some non-Matrix external entity", §3.2.3)
// ---------------------------------------------------------------------------

/// Matrix server → pool: "I want to split; give me a spare."  `need` is the
/// requester's starvation score from the load-policy layer (src/policy/):
/// 0 under ClassicPolicy (or while no coordinator directive is in force) —
/// the pool answers immediately, FCFS — while a positive need asks the pool
/// to hold the request for `Config::policy.grant_window` and arbitrate a
/// contested spare toward the highest need (the partition the
/// global-admission pressure score says is most starved).
struct PoolAcquire {
  ServerId requester;
  double need = 0.0;
};

struct PoolGrant {
  ServerId server;
  NodeId matrix_node;
  NodeId game_node;
};

struct PoolDeny {};

struct PoolRelease {
  ServerId server;
  NodeId matrix_node;
  NodeId game_node;
};

// ---------------------------------------------------------------------------
// Admission & overload protection (src/control/)
// ---------------------------------------------------------------------------

/// Game server → client: join refused outright (admission HARD).  The
/// session was never created; `retry_after` is the server's reconnect hint.
struct JoinDeny {
  ClientId client;
  SimTime retry_after{};
};

/// Game server → client: join not admitted right now (admission SOFT and
/// the token budget is spent).  Unlike JoinDeny this is transient — retry
/// after `retry_after` and the join will likely clear the bucket.
struct JoinDefer {
  ClientId client;
  SimTime retry_after{};
};

/// Matrix server → its game server: the admission state changed.  `state`
/// carries the numeric AdmissionState (the wire stays independent of
/// control/ headers); `seq` is monotonic so a reordered update can never
/// roll the valve back.
struct AdmissionUpdate {
  std::uint8_t state = 0;
  std::uint64_t seq = 0;
};

/// Game server → waiting client: you are parked in the surge queue
/// (src/control/surge_queue.h).  Sent once on enqueue and then on every
/// drain tick, so the client can show a live "waiting room" instead of
/// blind defer-retries.  `position` is the client's 1-based rank in the
/// current drain order (aging can move it), `depth` the whole queue, and
/// `eta` a best-effort estimate of the remaining wait at the current token
/// rate — a hint, not a promise.
struct QueueUpdate {
  ClientId client;
  std::uint32_t position = 0;
  std::uint32_t depth = 0;
  SimTime eta{};
};

/// Resource pool → MC: occupancy changed (grant/release/seed).
struct PoolStatus {
  std::uint32_t idle = 0;
  std::uint32_t total = 0;
};

/// Matrix server → MC: per-server load digest feeding coordinator-led
/// global admission (src/control/global_admission.h).  Sent alongside each
/// LoadReport while `Config::admission.global.enabled`; `admission_state`
/// is the server's LOCAL valve state (the MC composes its own floor on
/// top, so echoing the composed state back would latch the loop).
struct LoadDigest {
  ServerId server;
  std::uint32_t client_count = 0;
  std::uint32_t queue_length = 0;
  std::uint32_t waiting_count = 0;  ///< surge-queue depth
  std::uint8_t admission_state = 0; ///< local AdmissionState
};

/// MC → Matrix server (relayed matrix → game): coordinator-led global
/// admission directive.  `floor` is the minimum AdmissionState every server
/// must hold (each server composes it with its local valve — strictest
/// wins); `token_rate` is THIS server's share of the deployment-wide SOFT
/// budget, weighted by waiting-room depth so starved partitions drain
/// first (0 ⇒ use the local config rate).  `active == false` rescinds the
/// directive (global pressure relaxed to NORMAL).  `seq` is monotonic so a
/// reordered directive can never roll the floor back.
struct AdmissionDirective {
  std::uint64_t seq = 0;
  std::uint8_t floor = 0;           ///< numeric AdmissionState
  bool active = false;
  double token_rate = 0.0;          ///< joins/s granted to this server
  double pressure = 0.0;            ///< deployment pressure score (observability)
  std::uint32_t waiting_total = 0;  ///< deployment-wide parked joins
};

/// One parked join handed across servers (split/merge): enough to re-park
/// at the destination preserving priority class and accrued age.
struct QueueHandoffEntry {
  ClientId client;
  NodeId client_node;
  Vec2 position;
  std::uint8_t cls = 0;   ///< original PriorityClass
  SimTime enqueued_at{};  ///< original park time (age keeps accruing)
};

/// Game server → Matrix (relay) → game server: surge-queue entries whose
/// region moved to `to_game` in a split/reclaim.  The destination re-parks
/// them (class + age preserved) instead of the source flushing them to
/// client-side retry; entries it cannot take fall back to JoinDefer.
struct QueueHandoff {
  ServerId from_server;
  NodeId to_game;
  std::vector<QueueHandoffEntry> entries;
};

/// MC → every Matrix server: deployment-wide pool pressure, rebroadcast
/// from PoolStatus.  Feeds the pre-escalation signal: a server nearing
/// overload with an exhausted pool cannot count on a split being granted.
struct PoolPressure {
  std::uint32_t idle = 0;
  std::uint32_t total = 0;
};

// ---------------------------------------------------------------------------
// Coordinator fail-over
// ---------------------------------------------------------------------------

/// A (new) Matrix Coordinator announces itself to a Matrix server.  The
/// paper: "the MC can also be made reliable using well understood
/// replication techniques" — and, crucially, the MC holds only *soft*
/// state: every Matrix server knows its own range, so a fresh MC rebuilds
/// the partition map from the re-registrations this message solicits.
/// Routing never stalls during fail-over because overlap tables are local.
struct McAnnounce {
  NodeId mc_node;
  std::uint64_t generation = 0;  ///< monotonically increasing MC incarnation
};

/// Periodic coordinator liveness beacon (control-plane failsafe,
/// src/control/control_plane.h).  Broadcast to every registered matrix
/// server at Config::failsafe.heartbeat_interval — and relayed by each
/// matrix server to its game server — ONLY while the failsafe is enabled,
/// so default deployments put no extra bytes on the wire.  `generation`
/// carries the MC epoch (same counter as McAnnounce.generation); `seq`
/// strictly increases within a generation so a delayed beat can never
/// rewind the freshness clock.
struct McHeartbeat {
  NodeId mc_node;
  std::uint64_t generation = 0;
  std::uint64_t seq = 0;
};

// ---------------------------------------------------------------------------
// Envelope-level message
// ---------------------------------------------------------------------------

using Message =
    std::variant<TaggedPacket, ClientHello, Welcome, ClientAction,
                 ServerUpdate, Redirect, ClientBye, LoadReport, MapRange,
                 ShedDone, OwnerQuery, OwnerReply, Adopt, PeerLoad,
                 ReclaimRequest, ReclaimDecline, ReclaimDone, StateTransfer,
                 ClientStateTransfer, ServerRegister, ServerUnregister,
                 OverlapTableMsg, PointLookup, PointOwner, PoolAcquire,
                 PoolGrant, PoolDeny, PoolRelease, McAnnounce, JoinDeny,
                 JoinDefer, AdmissionUpdate, PoolStatus, PoolPressure,
                 QueueUpdate, LoadDigest, AdmissionDirective, QueueHandoff,
                 McHeartbeat>;

/// Serializes `message` (1 type byte + body).
[[nodiscard]] std::vector<std::uint8_t> encode_message(const Message& message);

/// Serializes into `writer`, reserving a per-type size hint up front.  Pair
/// the writer with a recycled buffer (Network::rent_buffer) and steady-state
/// encoding performs no allocation at all.
void encode_message_into(ByteWriter& writer, const Message& message);

/// Serializes a single message body (type byte + body, hint-reserved)
/// without ever constructing the Message variant — the typed fast path
/// behind ProtocolNode's and MatrixPort's sends, which otherwise would copy
/// the body (payload included) into a temporary variant per send.
/// Explicitly instantiated in protocol.cpp for every Message alternative.
template <typename Body>
void encode_one_into(ByteWriter& writer, const Body& body);

// ---------------------------------------------------------------------------
// Zero-copy frame fast paths (the engine hot path)
// ---------------------------------------------------------------------------
//
// The three messages that dominate steady-state traffic — TaggedPacket,
// ClientAction, ServerUpdate — can be routed/applied from a partial decode
// that never copies the opaque payload and never materializes the Message
// variant.  `ProtocolNode::on_frame` overrides use these views; parse_*
// returns nullopt for any other frame type or a malformed body, sending the
// message down the ordinary decode path.  Each view's decoded fields are
// bit-identical to what decode_message would produce.

/// Wire type bytes of the fast-path frames.  Values are pinned against the
/// private MsgType enum by static_asserts in protocol.cpp.
inline constexpr std::uint8_t kTaggedPacketWireType = 1;
inline constexpr std::uint8_t kClientActionWireType = 4;
inline constexpr std::uint8_t kServerUpdateWireType = 5;
inline constexpr std::uint8_t kLoadReportWireType = 8;
inline constexpr std::uint8_t kStateTransferWireType = 18;
inline constexpr std::uint8_t kClientStateTransferWireType = 19;
inline constexpr std::uint8_t kQueueUpdateWireType = 35;
inline constexpr std::uint8_t kQueueHandoffWireType = 38;

struct TaggedPacketView {
  ClientId client;
  EntityId entity;
  Vec2 origin;
  std::optional<Vec2> target;
  std::uint8_t radius_class = 0;
  std::uint8_t kind = 0;
  std::uint32_t seq = 0;
  SimTime client_sent_at{};
  bool peer_forwarded = false;
  /// Byte offset of the peer_forwarded flag within the frame.  A relay that
  /// forwards the packet flag-flipped copies the frame and writes one byte —
  /// byte-identical to re-encoding the mutated struct.
  std::size_t peer_flag_offset = 0;
  std::span<const std::uint8_t> payload;  ///< view into the frame

  /// Full TaggedPacket (payload copied) for the rare paths that must hold
  /// the packet across events (pending MC lookups).
  [[nodiscard]] TaggedPacket materialize() const;
};

struct ClientActionView {
  ClientId client;
  std::uint8_t kind = 0;
  Vec2 position;
  std::optional<Vec2> target;
  std::uint32_t seq = 0;
  SimTime sent_at{};
  std::span<const std::uint8_t> payload;  ///< view into the frame
};

struct ServerUpdateView {
  std::uint8_t kind = 0;
  Vec2 position;
  std::uint32_t ack_seq = 0;
  SimTime origin_sent_at{};
  std::span<const std::uint8_t> payload;  ///< view into the frame
};

/// LoadReport decoded without touching the Message variant.  Every game
/// server emits one per report interval, so at 100k-client scale the matrix
/// tier decodes thousands per sim-second — all fixed-width fields, no reason
/// to pay the 39-alternative variant construction for any of them.
struct LoadReportView {
  std::uint32_t client_count = 0;
  std::uint32_t queue_length = 0;
  double msgs_per_sec = 0.0;
  Vec2 median_position;
  std::uint32_t waiting_count = 0;
};

/// QueueUpdate decoded without the Message variant.  Surge scenarios park
/// tens of thousands of clients, each pinged on every drain tick — the
/// second-hottest client-bound frame after ServerUpdate.
struct QueueUpdateView {
  ClientId client;
  std::uint32_t position = 0;
  std::uint32_t depth = 0;
  SimTime eta{};
};

/// The matrix leg of a game→matrix→game relay (StateTransfer,
/// ClientStateTransfer, QueueHandoff) needs exactly one field: where to
/// forward.  The relay re-sends the arriving frame bytes untouched
/// (encode∘decode is the identity, so the raw forward is byte-identical to
/// decode-then-re-encode) and the blob — unbounded during big sheds — is
/// never copied through a decoded struct.
struct RelayFrameView {
  std::uint8_t wire_type = 0;
  NodeId to_game;
};

[[nodiscard]] std::optional<TaggedPacketView> parse_tagged_packet_frame(
    std::span<const std::uint8_t> frame);
[[nodiscard]] std::optional<ClientActionView> parse_client_action_frame(
    std::span<const std::uint8_t> frame);
[[nodiscard]] std::optional<ServerUpdateView> parse_server_update_frame(
    std::span<const std::uint8_t> frame);
[[nodiscard]] std::optional<LoadReportView> parse_load_report_frame(
    std::span<const std::uint8_t> frame);
[[nodiscard]] std::optional<QueueUpdateView> parse_queue_update_frame(
    std::span<const std::uint8_t> frame);
[[nodiscard]] std::optional<RelayFrameView> parse_relay_frame(
    std::span<const std::uint8_t> frame);

/// Parses bytes back into a Message; std::nullopt on malformed input.
[[nodiscard]] std::optional<Message> decode_message(
    std::span<const std::uint8_t> bytes);

/// Short human-readable name of the message alternative, for logs/metrics.
[[nodiscard]] const char* message_name(const Message& message);

}  // namespace matrix
