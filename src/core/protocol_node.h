// Base class for nodes that speak the Matrix wire protocol.
//
// Decodes each arriving envelope into a Message and dispatches it to the
// subclass; provides a typed `send` that encodes on the way out.  Malformed
// payloads are counted and dropped rather than crashing the process — a
// middleware that can be killed by one bad packet fails the paper's DoS
// design criterion (§2.1).
#pragma once

#include <cstdint>

#include "core/protocol.h"
#include "net/network.h"

namespace matrix {

class ProtocolNode : public Node {
 public:
  void handle_message(const Envelope& envelope) final {
    if (on_frame(envelope)) return;
    auto message = decode_message(envelope.payload);
    if (!message) {
      ++malformed_count_;
      return;
    }
    on_message(*message, envelope);
  }

  [[nodiscard]] std::uint64_t malformed_count() const {
    return malformed_count_;
  }

 protected:
  /// Typed dispatch point; `envelope` exposes src/timing metadata.
  virtual void on_message(const Message& message, const Envelope& envelope) = 0;

  /// Frame fast path, tried before the full decode: a subclass that can
  /// handle this frame from a zero-copy partial parse (protocol.h's
  /// parse_*_frame views) does so and returns true; returning false sends
  /// the message down the ordinary decode → on_message path.  An override
  /// MUST be behaviorally identical to its on_message handling — the
  /// golden-trace determinism tests pin exactly that.
  virtual bool on_frame(const Envelope& envelope) {
    (void)envelope;
    return false;
  }

  /// Encodes and sends; returns wire bytes charged.  Encodes into a buffer
  /// rented from the network's pool, so steady-state sends are
  /// allocation-free (the network reclaims the storage after delivery).
  std::size_t send(NodeId dst, const Message& message) {
    ByteWriter writer(network()->rent_buffer());
    encode_message_into(writer, message);
    return network()->send(node_id(), dst, writer.take());
  }

  /// Typed fast path: callers passing a concrete body (the common case)
  /// skip the Message-variant copy entirely.
  template <typename Body,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Body>, Message> &&
                std::is_constructible_v<Message, const Body&>>>
  std::size_t send(NodeId dst, const Body& body) {
    ByteWriter writer(network()->rent_buffer());
    encode_one_into(writer, body);
    return network()->send(node_id(), dst, writer.take());
  }

  /// Relay fast path: forwards already-encoded wire bytes verbatim (e.g. a
  /// verified peer packet handed to the co-located game server), skipping
  /// the decode→re-encode round-trip.  Byte-equivalent to re-encoding the
  /// decoded message — encode∘decode is the identity on valid frames (the
  /// round-trip property protocol_test pins for every message type).
  std::size_t send_raw(NodeId dst, std::span<const std::uint8_t> bytes) {
    std::vector<std::uint8_t> buf = network()->rent_buffer();
    buf.assign(bytes.begin(), bytes.end());
    return network()->send(node_id(), dst, std::move(buf));
  }

  [[nodiscard]] SimTime now() const { return network()->now(); }

 private:
  std::uint64_t malformed_count_ = 0;
};

}  // namespace matrix
