// Base class for nodes that speak the Matrix wire protocol.
//
// Decodes each arriving envelope into a Message and dispatches it to the
// subclass; provides a typed `send` that encodes on the way out.  Malformed
// payloads are counted and dropped rather than crashing the process — a
// middleware that can be killed by one bad packet fails the paper's DoS
// design criterion (§2.1).
#pragma once

#include <cstdint>

#include "core/protocol.h"
#include "net/network.h"

namespace matrix {

class ProtocolNode : public Node {
 public:
  void handle_message(const Envelope& envelope) final {
    auto message = decode_message(envelope.payload);
    if (!message) {
      ++malformed_count_;
      return;
    }
    on_message(*message, envelope);
  }

  [[nodiscard]] std::uint64_t malformed_count() const {
    return malformed_count_;
  }

 protected:
  /// Typed dispatch point; `envelope` exposes src/timing metadata.
  virtual void on_message(const Message& message, const Envelope& envelope) = 0;

  /// Encodes and sends; returns wire bytes charged.
  std::size_t send(NodeId dst, const Message& message) {
    return network()->send(node_id(), dst, encode_message(message));
  }

  [[nodiscard]] SimTime now() const { return network()->now(); }

 private:
  std::uint64_t malformed_count_ = 0;
};

}  // namespace matrix
