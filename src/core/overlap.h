// Overlap regions and the O(1) consistency-set lookup (paper §3.1, §3.2.4).
//
// Construction (MC side): for server Si with partition Pi, inflate every
// other partition Pj by the visibility radius R and decompose Pi against
// those inflated rectangles.  Each resulting cell is an overlap region: all
// its points share one consistency set.  Interior cells (empty set) are not
// shipped — only the periphery matters, which is why near-decomposability
// makes the tables small.
//
// Lookup (Matrix-server side): a uniform bucket grid over the partition maps
// a point to its candidate regions in O(1) expected time; a lookup that hits
// no region means "interior, empty consistency set, no forwarding".  This is
// the paper's answer to DHT-style O(log N) routing.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.h"
#include "core/protocol.h"
#include "geometry/metric.h"
#include "geometry/rect.h"

namespace matrix {

/// Builds the overlap regions of `owner`'s partition for event radius
/// `radius`.  Only regions with a non-empty consistency set are returned.
/// Region peers never include `owner` itself.
[[nodiscard]] std::vector<OverlapRegionWire> build_overlap_regions(
    const PartitionMap& map, ServerId owner, double radius, Metric metric);

/// Fraction of `owner`'s partition area whose consistency set is non-empty.
/// The paper's bandwidth result says inter-server traffic tracks this.
[[nodiscard]] double overlap_area_fraction(
    const std::vector<OverlapRegionWire>& regions, const Rect& partition);

/// Point → overlap-region index with O(1) expected lookups.
///
/// The grid has ~2·sqrt(#regions) buckets per axis over the partition; each
/// bucket stores the indices of regions intersecting it (normally 1–4).
/// find() scans only that bucket's candidates.
class RegionIndex {
 public:
  RegionIndex() = default;
  RegionIndex(const Rect& partition, std::vector<OverlapRegionWire> regions);

  /// The region containing `p`, or nullptr when `p` is interior (empty
  /// consistency set) or outside the partition.
  [[nodiscard]] const OverlapRegionWire* find(Vec2 p) const;

  [[nodiscard]] const std::vector<OverlapRegionWire>& regions() const {
    return regions_;
  }
  [[nodiscard]] const Rect& partition() const { return partition_; }
  [[nodiscard]] bool empty() const { return regions_.empty(); }

 private:
  Rect partition_;
  std::vector<OverlapRegionWire> regions_;
  std::vector<std::vector<std::uint32_t>> buckets_;  // row-major grid
  std::size_t grid_w_ = 0;
  std::size_t grid_h_ = 0;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
};

}  // namespace matrix
