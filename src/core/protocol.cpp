#include "core/protocol.h"

#include <type_traits>

namespace matrix {

namespace {

// Type tags on the wire.  Order is part of the protocol; append only.
enum class MsgType : std::uint8_t {
  kTaggedPacket = 1,
  kClientHello,
  kWelcome,
  kClientAction,
  kServerUpdate,
  kRedirect,
  kClientBye,
  kLoadReport,
  kMapRange,
  kShedDone,
  kOwnerQuery,
  kOwnerReply,
  kAdopt,
  kPeerLoad,
  kReclaimRequest,
  kReclaimDecline,
  kReclaimDone,
  kStateTransfer,
  kClientStateTransfer,
  kServerRegister,
  kServerUnregister,
  kOverlapTableMsg,
  kPointLookup,
  kPointOwner,
  kPoolAcquire,
  kPoolGrant,
  kPoolDeny,
  kPoolRelease,
  kMcAnnounce,
  kJoinDeny,
  kJoinDefer,
  kAdmissionUpdate,
  kPoolStatus,
  kPoolPressure,
  kQueueUpdate,
  kLoadDigest,
  kAdmissionDirective,
  kQueueHandoff,
  kMcHeartbeat,
};

void put(ByteWriter& w, Vec2 v) {
  w.f64(v.x);
  w.f64(v.y);
}
Vec2 get_vec2(ByteReader& r) {
  Vec2 v;
  v.x = r.f64();
  v.y = r.f64();
  return v;
}

void put(ByteWriter& w, const Rect& rect) {
  w.f64(rect.x0());
  w.f64(rect.y0());
  w.f64(rect.x1());
  w.f64(rect.y1());
}
Rect get_rect(ByteReader& r) {
  const double x0 = r.f64();
  const double y0 = r.f64();
  const double x1 = r.f64();
  const double y1 = r.f64();
  return Rect(x0, y0, x1, y1);
}

void put(ByteWriter& w, const std::optional<Vec2>& v) {
  w.u8(v.has_value() ? 1 : 0);
  if (v) put(w, *v);
}
std::optional<Vec2> get_opt_vec2(ByteReader& r) {
  if (r.u8() == 0) return std::nullopt;
  return get_vec2(r);
}

void put(ByteWriter& w, SimTime t) { w.i64(t.us()); }
SimTime get_time(ByteReader& r) { return SimTime::from_us(r.i64()); }

// ---- per-struct bodies ----------------------------------------------------

void encode_body(ByteWriter& w, const TaggedPacket& m) {
  w.id(m.client);
  w.id(m.entity);
  put(w, m.origin);
  put(w, m.target);
  w.u8(m.radius_class);
  w.u8(m.kind);
  w.u32(m.seq);
  put(w, m.client_sent_at);
  w.u8(m.peer_forwarded ? 1 : 0);
  w.raw(m.payload);
}
TaggedPacket decode_tagged_packet(ByteReader& r) {
  TaggedPacket m;
  m.client = r.id<ClientId>();
  m.entity = r.id<EntityId>();
  m.origin = get_vec2(r);
  m.target = get_opt_vec2(r);
  m.radius_class = r.u8();
  m.kind = r.u8();
  m.seq = r.u32();
  m.client_sent_at = get_time(r);
  m.peer_forwarded = r.u8() != 0;
  m.payload = r.raw_payload();
  return m;
}

void encode_body(ByteWriter& w, const ClientHello& m) {
  w.id(m.client);
  put(w, m.position);
  w.u8(m.resume ? 1 : 0);
  w.u32(m.redirect_seq);
  w.u8(m.priority);
}
ClientHello decode_client_hello(ByteReader& r) {
  ClientHello m;
  m.client = r.id<ClientId>();
  m.position = get_vec2(r);
  m.resume = r.u8() != 0;
  m.redirect_seq = r.u32();
  m.priority = r.u8();
  return m;
}

void encode_body(ByteWriter& w, const Welcome& m) {
  w.id(m.client);
  w.id(m.avatar);
  put(w, m.authority);
  w.u32(m.redirect_seq);
}
Welcome decode_welcome(ByteReader& r) {
  Welcome m;
  m.client = r.id<ClientId>();
  m.avatar = r.id<EntityId>();
  m.authority = get_rect(r);
  m.redirect_seq = r.u32();
  return m;
}

void encode_body(ByteWriter& w, const ClientAction& m) {
  w.id(m.client);
  w.u8(m.kind);
  put(w, m.position);
  put(w, m.target);
  w.u32(m.seq);
  put(w, m.sent_at);
  w.raw(m.payload);
}
ClientAction decode_client_action(ByteReader& r) {
  ClientAction m;
  m.client = r.id<ClientId>();
  m.kind = r.u8();
  m.position = get_vec2(r);
  m.target = get_opt_vec2(r);
  m.seq = r.u32();
  m.sent_at = get_time(r);
  m.payload = r.raw_payload();
  return m;
}

void encode_body(ByteWriter& w, const ServerUpdate& m) {
  w.u8(m.kind);
  put(w, m.position);
  w.u32(m.ack_seq);
  put(w, m.origin_sent_at);
  w.raw(m.payload);
}
ServerUpdate decode_server_update(ByteReader& r) {
  ServerUpdate m;
  m.kind = r.u8();
  m.position = get_vec2(r);
  m.ack_seq = r.u32();
  m.origin_sent_at = get_time(r);
  m.payload = r.raw_payload();
  return m;
}

void encode_body(ByteWriter& w, const Redirect& m) {
  w.id(m.new_game_node);
  w.id(m.new_server);
  w.u32(m.redirect_seq);
}
Redirect decode_redirect(ByteReader& r) {
  Redirect m;
  m.new_game_node = r.id<NodeId>();
  m.new_server = r.id<ServerId>();
  m.redirect_seq = r.u32();
  return m;
}

void encode_body(ByteWriter& w, const ClientBye& m) { w.id(m.client); }
ClientBye decode_client_bye(ByteReader& r) {
  ClientBye m;
  m.client = r.id<ClientId>();
  return m;
}

void encode_body(ByteWriter& w, const LoadReport& m) {
  w.u32(m.client_count);
  w.u32(m.queue_length);
  w.f64(m.msgs_per_sec);
  put(w, m.median_position);
  w.u32(m.waiting_count);
}
LoadReport decode_load_report(ByteReader& r) {
  LoadReport m;
  m.client_count = r.u32();
  m.queue_length = r.u32();
  m.msgs_per_sec = r.f64();
  m.median_position = get_vec2(r);
  m.waiting_count = r.u32();
  return m;
}

void encode_body(ByteWriter& w, const MapRange& m) {
  put(w, m.new_range);
  put(w, m.shed_range);
  w.id(m.shed_to_game);
  w.id(m.shed_to_server);
  w.u8(m.reclaim ? 1 : 0);
  w.u64(m.topology_epoch);
}
MapRange decode_map_range(ByteReader& r) {
  MapRange m;
  m.new_range = get_rect(r);
  m.shed_range = get_rect(r);
  m.shed_to_game = r.id<NodeId>();
  m.shed_to_server = r.id<ServerId>();
  m.reclaim = r.u8() != 0;
  m.topology_epoch = r.u64();
  return m;
}

void encode_body(ByteWriter& w, const ShedDone& m) {
  w.u64(m.topology_epoch);
  w.u32(m.clients_redirected);
}
ShedDone decode_shed_done(ByteReader& r) {
  ShedDone m;
  m.topology_epoch = r.u64();
  m.clients_redirected = r.u32();
  return m;
}

void encode_body(ByteWriter& w, const OwnerQuery& m) {
  put(w, m.point);
  w.id(m.client);
  w.u32(m.seq);
}
OwnerQuery decode_owner_query(ByteReader& r) {
  OwnerQuery m;
  m.point = get_vec2(r);
  m.client = r.id<ClientId>();
  m.seq = r.u32();
  return m;
}

void encode_body(ByteWriter& w, const OwnerReply& m) {
  w.id(m.client);
  w.u32(m.seq);
  w.u8(m.found ? 1 : 0);
  w.id(m.server);
  w.id(m.game_node);
}
OwnerReply decode_owner_reply(ByteReader& r) {
  OwnerReply m;
  m.client = r.id<ClientId>();
  m.seq = r.u32();
  m.found = r.u8() != 0;
  m.server = r.id<ServerId>();
  m.game_node = r.id<NodeId>();
  return m;
}

void encode_body(ByteWriter& w, const Adopt& m) {
  w.id(m.parent);
  w.id(m.parent_matrix);
  w.id(m.parent_game);
  put(w, m.range);
  w.f64(m.visibility_radius);
  w.varint(m.extra_radii.size());
  for (double radius : m.extra_radii) w.f64(radius);
  w.varint(m.content_keys.size());
  for (const auto& key : m.content_keys) w.str(key);
  w.u64(m.topology_epoch);
}
Adopt decode_adopt(ByteReader& r) {
  Adopt m;
  m.parent = r.id<ServerId>();
  m.parent_matrix = r.id<NodeId>();
  m.parent_game = r.id<NodeId>();
  m.range = get_rect(r);
  m.visibility_radius = r.f64();
  const std::uint64_t nr = r.varint();
  for (std::uint64_t i = 0; i < nr && r.ok(); ++i) {
    m.extra_radii.push_back(r.f64());
  }
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    m.content_keys.push_back(r.str());
  }
  m.topology_epoch = r.u64();
  return m;
}

void encode_body(ByteWriter& w, const PeerLoad& m) {
  w.id(m.server);
  w.u32(m.client_count);
  w.u32(m.child_count);
}
PeerLoad decode_peer_load(ByteReader& r) {
  PeerLoad m;
  m.server = r.id<ServerId>();
  m.client_count = r.u32();
  m.child_count = r.u32();
  return m;
}

void encode_body(ByteWriter& w, const ReclaimRequest& m) {
  w.u64(m.topology_epoch);
}
ReclaimRequest decode_reclaim_request(ByteReader& r) {
  ReclaimRequest m;
  m.topology_epoch = r.u64();
  return m;
}

void encode_body(ByteWriter& w, const ReclaimDecline& m) {
  w.id(m.child);
  w.u64(m.topology_epoch);
}
ReclaimDecline decode_reclaim_decline(ByteReader& r) {
  ReclaimDecline m;
  m.child = r.id<ServerId>();
  m.topology_epoch = r.u64();
  return m;
}

void encode_body(ByteWriter& w, const ReclaimDone& m) {
  w.id(m.child);
  put(w, m.range);
  w.u64(m.topology_epoch);
}
ReclaimDone decode_reclaim_done(ByteReader& r) {
  ReclaimDone m;
  m.child = r.id<ServerId>();
  m.range = get_rect(r);
  m.topology_epoch = r.u64();
  return m;
}

void encode_body(ByteWriter& w, const StateTransfer& m) {
  w.id(m.from_server);
  w.id(m.to_game);
  put(w, m.range);
  w.u32(m.object_count);
  w.raw(m.blob);
}
StateTransfer decode_state_transfer(ByteReader& r) {
  StateTransfer m;
  m.from_server = r.id<ServerId>();
  m.to_game = r.id<NodeId>();
  m.range = get_rect(r);
  m.object_count = r.u32();
  m.blob = r.raw();
  return m;
}

void encode_body(ByteWriter& w, const ClientStateTransfer& m) {
  w.id(m.client);
  w.id(m.entity);
  w.id(m.to_game);
  w.raw(m.blob);
}
ClientStateTransfer decode_client_state_transfer(ByteReader& r) {
  ClientStateTransfer m;
  m.client = r.id<ClientId>();
  m.entity = r.id<EntityId>();
  m.to_game = r.id<NodeId>();
  m.blob = r.raw();
  return m;
}

void encode_body(ByteWriter& w, const ServerRegister& m) {
  w.id(m.server);
  w.id(m.matrix_node);
  w.id(m.game_node);
  put(w, m.range);
  w.varint(m.radii.size());
  for (double radius : m.radii) w.f64(radius);
}
ServerRegister decode_server_register(ByteReader& r) {
  ServerRegister m;
  m.server = r.id<ServerId>();
  m.matrix_node = r.id<NodeId>();
  m.game_node = r.id<NodeId>();
  m.range = get_rect(r);
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) m.radii.push_back(r.f64());
  return m;
}

void encode_body(ByteWriter& w, const ServerUnregister& m) { w.id(m.server); }
ServerUnregister decode_server_unregister(ByteReader& r) {
  ServerUnregister m;
  m.server = r.id<ServerId>();
  return m;
}

void encode_body(ByteWriter& w, const OverlapTableMsg& m) {
  w.id(m.server);
  put(w, m.partition);
  w.u8(m.radius_class);
  w.f64(m.radius);
  w.u64(m.version);
  w.varint(m.regions.size());
  for (const auto& region : m.regions) {
    put(w, region.rect);
    w.varint(region.peer_servers.size());
    for (std::size_t i = 0; i < region.peer_servers.size(); ++i) {
      w.id(region.peer_servers[i]);
      w.id(region.peer_matrix_nodes[i]);
    }
  }
}
OverlapTableMsg decode_overlap_table(ByteReader& r) {
  OverlapTableMsg m;
  m.server = r.id<ServerId>();
  m.partition = get_rect(r);
  m.radius_class = r.u8();
  m.radius = r.f64();
  m.version = r.u64();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    OverlapRegionWire region;
    region.rect = get_rect(r);
    const std::uint64_t peers = r.varint();
    for (std::uint64_t j = 0; j < peers && r.ok(); ++j) {
      region.peer_servers.push_back(r.id<ServerId>());
      region.peer_matrix_nodes.push_back(r.id<NodeId>());
    }
    m.regions.push_back(std::move(region));
  }
  return m;
}

void encode_body(ByteWriter& w, const PointLookup& m) {
  put(w, m.point);
  w.u32(m.lookup_seq);
}
PointLookup decode_point_lookup(ByteReader& r) {
  PointLookup m;
  m.point = get_vec2(r);
  m.lookup_seq = r.u32();
  return m;
}

void encode_body(ByteWriter& w, const PointOwner& m) {
  w.u32(m.lookup_seq);
  w.u8(m.found ? 1 : 0);
  w.id(m.server);
  w.id(m.matrix_node);
  w.id(m.game_node);
}
PointOwner decode_point_owner(ByteReader& r) {
  PointOwner m;
  m.lookup_seq = r.u32();
  m.found = r.u8() != 0;
  m.server = r.id<ServerId>();
  m.matrix_node = r.id<NodeId>();
  m.game_node = r.id<NodeId>();
  return m;
}

void encode_body(ByteWriter& w, const PoolAcquire& m) {
  w.id(m.requester);
  w.f64(m.need);
}
PoolAcquire decode_pool_acquire(ByteReader& r) {
  PoolAcquire m;
  m.requester = r.id<ServerId>();
  m.need = r.f64();
  return m;
}

void encode_body(ByteWriter& w, const PoolGrant& m) {
  w.id(m.server);
  w.id(m.matrix_node);
  w.id(m.game_node);
}
PoolGrant decode_pool_grant(ByteReader& r) {
  PoolGrant m;
  m.server = r.id<ServerId>();
  m.matrix_node = r.id<NodeId>();
  m.game_node = r.id<NodeId>();
  return m;
}

void encode_body(ByteWriter&, const PoolDeny&) {}

void encode_body(ByteWriter& w, const PoolRelease& m) {
  w.id(m.server);
  w.id(m.matrix_node);
  w.id(m.game_node);
}
PoolRelease decode_pool_release(ByteReader& r) {
  PoolRelease m;
  m.server = r.id<ServerId>();
  m.matrix_node = r.id<NodeId>();
  m.game_node = r.id<NodeId>();
  return m;
}

void encode_body(ByteWriter& w, const McAnnounce& m) {
  w.id(m.mc_node);
  w.u64(m.generation);
}
McAnnounce decode_mc_announce(ByteReader& r) {
  McAnnounce m;
  m.mc_node = r.id<NodeId>();
  m.generation = r.u64();
  return m;
}

void encode_body(ByteWriter& w, const McHeartbeat& m) {
  w.id(m.mc_node);
  w.u64(m.generation);
  w.u64(m.seq);
}
McHeartbeat decode_mc_heartbeat(ByteReader& r) {
  McHeartbeat m;
  m.mc_node = r.id<NodeId>();
  m.generation = r.u64();
  m.seq = r.u64();
  return m;
}

void encode_body(ByteWriter& w, const JoinDeny& m) {
  w.id(m.client);
  put(w, m.retry_after);
}
JoinDeny decode_join_deny(ByteReader& r) {
  JoinDeny m;
  m.client = r.id<ClientId>();
  m.retry_after = get_time(r);
  return m;
}

void encode_body(ByteWriter& w, const JoinDefer& m) {
  w.id(m.client);
  put(w, m.retry_after);
}
JoinDefer decode_join_defer(ByteReader& r) {
  JoinDefer m;
  m.client = r.id<ClientId>();
  m.retry_after = get_time(r);
  return m;
}

void encode_body(ByteWriter& w, const AdmissionUpdate& m) {
  w.u8(m.state);
  w.u64(m.seq);
}
AdmissionUpdate decode_admission_update(ByteReader& r) {
  AdmissionUpdate m;
  m.state = r.u8();
  m.seq = r.u64();
  return m;
}

void encode_body(ByteWriter& w, const PoolStatus& m) {
  w.u32(m.idle);
  w.u32(m.total);
}
PoolStatus decode_pool_status(ByteReader& r) {
  PoolStatus m;
  m.idle = r.u32();
  m.total = r.u32();
  return m;
}

void encode_body(ByteWriter& w, const PoolPressure& m) {
  w.u32(m.idle);
  w.u32(m.total);
}
PoolPressure decode_pool_pressure(ByteReader& r) {
  PoolPressure m;
  m.idle = r.u32();
  m.total = r.u32();
  return m;
}

void encode_body(ByteWriter& w, const QueueUpdate& m) {
  w.id(m.client);
  w.u32(m.position);
  w.u32(m.depth);
  put(w, m.eta);
}
QueueUpdate decode_queue_update(ByteReader& r) {
  QueueUpdate m;
  m.client = r.id<ClientId>();
  m.position = r.u32();
  m.depth = r.u32();
  m.eta = get_time(r);
  return m;
}

void encode_body(ByteWriter& w, const LoadDigest& m) {
  w.id(m.server);
  w.u32(m.client_count);
  w.u32(m.queue_length);
  w.u32(m.waiting_count);
  w.u8(m.admission_state);
}
LoadDigest decode_load_digest(ByteReader& r) {
  LoadDigest m;
  m.server = r.id<ServerId>();
  m.client_count = r.u32();
  m.queue_length = r.u32();
  m.waiting_count = r.u32();
  m.admission_state = r.u8();
  return m;
}

void encode_body(ByteWriter& w, const AdmissionDirective& m) {
  w.u64(m.seq);
  w.u8(m.floor);
  w.u8(m.active ? 1 : 0);
  w.f64(m.token_rate);
  w.f64(m.pressure);
  w.u32(m.waiting_total);
}
AdmissionDirective decode_admission_directive(ByteReader& r) {
  AdmissionDirective m;
  m.seq = r.u64();
  m.floor = r.u8();
  m.active = r.u8() != 0;
  m.token_rate = r.f64();
  m.pressure = r.f64();
  m.waiting_total = r.u32();
  return m;
}

void encode_body(ByteWriter& w, const QueueHandoff& m) {
  w.id(m.from_server);
  w.id(m.to_game);
  w.varint(m.entries.size());
  for (const QueueHandoffEntry& entry : m.entries) {
    w.id(entry.client);
    w.id(entry.client_node);
    put(w, entry.position);
    w.u8(entry.cls);
    put(w, entry.enqueued_at);
  }
}
QueueHandoff decode_queue_handoff(ByteReader& r) {
  QueueHandoff m;
  m.from_server = r.id<ServerId>();
  m.to_game = r.id<NodeId>();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    QueueHandoffEntry entry;
    entry.client = r.id<ClientId>();
    entry.client_node = r.id<NodeId>();
    entry.position = get_vec2(r);
    entry.cls = r.u8();
    entry.enqueued_at = get_time(r);
    m.entries.push_back(entry);
  }
  return m;
}

template <typename T>
constexpr MsgType type_tag() {
  if constexpr (std::is_same_v<T, TaggedPacket>) return MsgType::kTaggedPacket;
  else if constexpr (std::is_same_v<T, ClientHello>) return MsgType::kClientHello;
  else if constexpr (std::is_same_v<T, Welcome>) return MsgType::kWelcome;
  else if constexpr (std::is_same_v<T, ClientAction>) return MsgType::kClientAction;
  else if constexpr (std::is_same_v<T, ServerUpdate>) return MsgType::kServerUpdate;
  else if constexpr (std::is_same_v<T, Redirect>) return MsgType::kRedirect;
  else if constexpr (std::is_same_v<T, ClientBye>) return MsgType::kClientBye;
  else if constexpr (std::is_same_v<T, LoadReport>) return MsgType::kLoadReport;
  else if constexpr (std::is_same_v<T, MapRange>) return MsgType::kMapRange;
  else if constexpr (std::is_same_v<T, ShedDone>) return MsgType::kShedDone;
  else if constexpr (std::is_same_v<T, OwnerQuery>) return MsgType::kOwnerQuery;
  else if constexpr (std::is_same_v<T, OwnerReply>) return MsgType::kOwnerReply;
  else if constexpr (std::is_same_v<T, Adopt>) return MsgType::kAdopt;
  else if constexpr (std::is_same_v<T, PeerLoad>) return MsgType::kPeerLoad;
  else if constexpr (std::is_same_v<T, ReclaimRequest>) return MsgType::kReclaimRequest;
  else if constexpr (std::is_same_v<T, ReclaimDecline>) return MsgType::kReclaimDecline;
  else if constexpr (std::is_same_v<T, ReclaimDone>) return MsgType::kReclaimDone;
  else if constexpr (std::is_same_v<T, StateTransfer>) return MsgType::kStateTransfer;
  else if constexpr (std::is_same_v<T, ClientStateTransfer>) return MsgType::kClientStateTransfer;
  else if constexpr (std::is_same_v<T, ServerRegister>) return MsgType::kServerRegister;
  else if constexpr (std::is_same_v<T, ServerUnregister>) return MsgType::kServerUnregister;
  else if constexpr (std::is_same_v<T, OverlapTableMsg>) return MsgType::kOverlapTableMsg;
  else if constexpr (std::is_same_v<T, PointLookup>) return MsgType::kPointLookup;
  else if constexpr (std::is_same_v<T, PointOwner>) return MsgType::kPointOwner;
  else if constexpr (std::is_same_v<T, PoolAcquire>) return MsgType::kPoolAcquire;
  else if constexpr (std::is_same_v<T, PoolGrant>) return MsgType::kPoolGrant;
  else if constexpr (std::is_same_v<T, PoolDeny>) return MsgType::kPoolDeny;
  else if constexpr (std::is_same_v<T, PoolRelease>) return MsgType::kPoolRelease;
  else if constexpr (std::is_same_v<T, McAnnounce>) return MsgType::kMcAnnounce;
  else if constexpr (std::is_same_v<T, JoinDeny>) return MsgType::kJoinDeny;
  else if constexpr (std::is_same_v<T, JoinDefer>) return MsgType::kJoinDefer;
  else if constexpr (std::is_same_v<T, AdmissionUpdate>) return MsgType::kAdmissionUpdate;
  else if constexpr (std::is_same_v<T, PoolStatus>) return MsgType::kPoolStatus;
  else if constexpr (std::is_same_v<T, PoolPressure>) return MsgType::kPoolPressure;
  else if constexpr (std::is_same_v<T, QueueUpdate>) return MsgType::kQueueUpdate;
  else if constexpr (std::is_same_v<T, LoadDigest>) return MsgType::kLoadDigest;
  else if constexpr (std::is_same_v<T, AdmissionDirective>) return MsgType::kAdmissionDirective;
  else if constexpr (std::is_same_v<T, QueueHandoff>) return MsgType::kQueueHandoff;
  else if constexpr (std::is_same_v<T, McHeartbeat>) return MsgType::kMcHeartbeat;
}

}  // namespace

std::vector<std::uint8_t> encode_message(const Message& message) {
  ByteWriter w;
  encode_message_into(w, message);
  return w.take();
}

void encode_message_into(ByteWriter& w, const Message& message) {
  std::visit(
      [&w](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        encode_one_into<T>(w, body);
      },
      message);
}

namespace {

// Sized from the encode_body layouts above: fixed fields at their worst
// varint width, plus the payload/blob for the carrying messages.  Being a
// few bytes generous is fine (capacity, not wire size); being short costs
// one realloc, so the high-rate messages are counted carefully.
template <typename T>
std::size_t body_size_hint(const T& body) {
  (void)body;
  if constexpr (std::is_same_v<T, TaggedPacket>) {
          return 64 + body.payload.size();
        } else if constexpr (std::is_same_v<T, ClientAction>) {
          return 56 + body.payload.size();
        } else if constexpr (std::is_same_v<T, ServerUpdate>) {
          return 40 + body.payload.size();
        } else if constexpr (std::is_same_v<T, LoadReport>) {
          return 48;
        } else if constexpr (std::is_same_v<T, QueueUpdate>) {
          return 32;
        } else if constexpr (std::is_same_v<T, ClientHello> ||
                             std::is_same_v<T, LoadDigest> ||
                             std::is_same_v<T, PeerLoad>) {
          return 32;
        } else if constexpr (std::is_same_v<T, Welcome> ||
                             std::is_same_v<T, AdmissionDirective>) {
          return 56;
        } else if constexpr (std::is_same_v<T, StateTransfer>) {
          return 64 + body.blob.size();
        } else if constexpr (std::is_same_v<T, ClientStateTransfer>) {
          return 40 + body.blob.size();
        } else if constexpr (std::is_same_v<T, QueueHandoff>) {
          return 24 + 48 * body.entries.size();
        } else if constexpr (std::is_same_v<T, OverlapTableMsg>) {
          std::size_t hint = 72;
          for (const OverlapRegionWire& region : body.regions) {
            hint += 48 + 20 * region.peer_servers.size();
          }
          return hint;
        } else if constexpr (std::is_same_v<T, Adopt>) {
          std::size_t hint = 80 + 10 * body.extra_radii.size();
          for (const std::string& key : body.content_keys) {
            hint += 10 + key.size();
          }
          return hint;
        } else {
          return 64;
        }
}

}  // namespace

template <typename Body>
void encode_one_into(ByteWriter& writer, const Body& body) {
  writer.reserve(writer.size() + body_size_hint(body));
  writer.u8(static_cast<std::uint8_t>(type_tag<Body>()));
  encode_body(writer, body);
}

// One instantiation per Message alternative, so the typed fast path is
// available to every sender without pulling the encoder bodies into the
// header.  The static_assert keeps the list in lock-step with the variant.
#define MATRIX_MESSAGE_TYPES(X)                                              \
  X(TaggedPacket) X(ClientHello) X(Welcome) X(ClientAction) X(ServerUpdate)  \
  X(Redirect) X(ClientBye) X(LoadReport) X(MapRange) X(ShedDone)             \
  X(OwnerQuery) X(OwnerReply) X(Adopt) X(PeerLoad) X(ReclaimRequest)         \
  X(ReclaimDecline) X(ReclaimDone) X(StateTransfer) X(ClientStateTransfer)   \
  X(ServerRegister) X(ServerUnregister) X(OverlapTableMsg) X(PointLookup)    \
  X(PointOwner) X(PoolAcquire) X(PoolGrant) X(PoolDeny) X(PoolRelease)       \
  X(McAnnounce) X(JoinDeny) X(JoinDefer) X(AdmissionUpdate) X(PoolStatus)    \
  X(PoolPressure) X(QueueUpdate) X(LoadDigest) X(AdmissionDirective)         \
  X(QueueHandoff) X(McHeartbeat)

#define MATRIX_INSTANTIATE_ENCODE(T) \
  template void encode_one_into<T>(ByteWriter&, const T&);
MATRIX_MESSAGE_TYPES(MATRIX_INSTANTIATE_ENCODE)
#undef MATRIX_INSTANTIATE_ENCODE

namespace {
#define MATRIX_COUNT_ONE(T) +1
static_assert(std::variant_size_v<Message> ==
                  MATRIX_MESSAGE_TYPES(MATRIX_COUNT_ONE),
              "encode_one_into instantiations out of sync with Message");
#undef MATRIX_COUNT_ONE
}  // namespace
#undef MATRIX_MESSAGE_TYPES

// ---- zero-copy frame fast paths -------------------------------------------

static_assert(kTaggedPacketWireType ==
              static_cast<std::uint8_t>(MsgType::kTaggedPacket));
static_assert(kClientActionWireType ==
              static_cast<std::uint8_t>(MsgType::kClientAction));
static_assert(kServerUpdateWireType ==
              static_cast<std::uint8_t>(MsgType::kServerUpdate));
static_assert(kLoadReportWireType ==
              static_cast<std::uint8_t>(MsgType::kLoadReport));
static_assert(kStateTransferWireType ==
              static_cast<std::uint8_t>(MsgType::kStateTransfer));
static_assert(kClientStateTransferWireType ==
              static_cast<std::uint8_t>(MsgType::kClientStateTransfer));
static_assert(kQueueUpdateWireType ==
              static_cast<std::uint8_t>(MsgType::kQueueUpdate));
static_assert(kQueueHandoffWireType ==
              static_cast<std::uint8_t>(MsgType::kQueueHandoff));

TaggedPacket TaggedPacketView::materialize() const {
  TaggedPacket packet;
  packet.client = client;
  packet.entity = entity;
  packet.origin = origin;
  packet.target = target;
  packet.radius_class = radius_class;
  packet.kind = kind;
  packet.seq = seq;
  packet.client_sent_at = client_sent_at;
  packet.peer_forwarded = peer_forwarded;
  packet.payload.assign(payload.data(), payload.size());
  return packet;
}

std::optional<TaggedPacketView> parse_tagged_packet_frame(
    std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  if (r.u8() != kTaggedPacketWireType || !r.ok()) return std::nullopt;
  TaggedPacketView view;
  view.client = r.id<ClientId>();
  view.entity = r.id<EntityId>();
  view.origin = get_vec2(r);
  view.target = get_opt_vec2(r);
  view.radius_class = r.u8();
  view.kind = r.u8();
  view.seq = r.u32();
  view.client_sent_at = get_time(r);
  view.peer_flag_offset = r.pos();
  view.peer_forwarded = r.u8() != 0;
  view.payload = r.raw_span();
  if (!r.ok()) return std::nullopt;
  return view;
}

std::optional<ClientActionView> parse_client_action_frame(
    std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  if (r.u8() != kClientActionWireType || !r.ok()) return std::nullopt;
  ClientActionView view;
  view.client = r.id<ClientId>();
  view.kind = r.u8();
  view.position = get_vec2(r);
  view.target = get_opt_vec2(r);
  view.seq = r.u32();
  view.sent_at = get_time(r);
  view.payload = r.raw_span();
  if (!r.ok()) return std::nullopt;
  return view;
}

std::optional<ServerUpdateView> parse_server_update_frame(
    std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  if (r.u8() != kServerUpdateWireType || !r.ok()) return std::nullopt;
  ServerUpdateView view;
  view.kind = r.u8();
  view.position = get_vec2(r);
  view.ack_seq = r.u32();
  view.origin_sent_at = get_time(r);
  view.payload = r.raw_span();
  if (!r.ok()) return std::nullopt;
  return view;
}

std::optional<LoadReportView> parse_load_report_frame(
    std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  if (r.u8() != kLoadReportWireType || !r.ok()) return std::nullopt;
  LoadReportView view;
  view.client_count = r.u32();
  view.queue_length = r.u32();
  view.msgs_per_sec = r.f64();
  view.median_position = get_vec2(r);
  view.waiting_count = r.u32();
  if (!r.ok()) return std::nullopt;
  return view;
}

std::optional<QueueUpdateView> parse_queue_update_frame(
    std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  if (r.u8() != kQueueUpdateWireType || !r.ok()) return std::nullopt;
  QueueUpdateView view;
  view.client = r.id<ClientId>();
  view.position = r.u32();
  view.depth = r.u32();
  view.eta = get_time(r);
  if (!r.ok()) return std::nullopt;
  return view;
}

std::optional<RelayFrameView> parse_relay_frame(
    std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  RelayFrameView view;
  view.wire_type = r.u8();
  if (!r.ok()) return std::nullopt;
  // `to_game` sits behind 1-2 leading ids; nothing after it is read, so the
  // relay never walks the (possibly huge) blob/entry tail.
  switch (view.wire_type) {
    case kStateTransferWireType:
      r.id<ServerId>();  // from_server
      view.to_game = r.id<NodeId>();
      break;
    case kClientStateTransferWireType:
      r.id<ClientId>();  // client
      r.id<EntityId>();  // entity
      view.to_game = r.id<NodeId>();
      break;
    case kQueueHandoffWireType:
      r.id<ServerId>();  // from_server
      view.to_game = r.id<NodeId>();
      break;
    default:
      return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return view;
}

std::optional<Message> decode_message(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const auto type = static_cast<MsgType>(r.u8());
  if (!r.ok()) return std::nullopt;
  Message m;
  switch (type) {
    case MsgType::kTaggedPacket: m = decode_tagged_packet(r); break;
    case MsgType::kClientHello: m = decode_client_hello(r); break;
    case MsgType::kWelcome: m = decode_welcome(r); break;
    case MsgType::kClientAction: m = decode_client_action(r); break;
    case MsgType::kServerUpdate: m = decode_server_update(r); break;
    case MsgType::kRedirect: m = decode_redirect(r); break;
    case MsgType::kClientBye: m = decode_client_bye(r); break;
    case MsgType::kLoadReport: m = decode_load_report(r); break;
    case MsgType::kMapRange: m = decode_map_range(r); break;
    case MsgType::kShedDone: m = decode_shed_done(r); break;
    case MsgType::kOwnerQuery: m = decode_owner_query(r); break;
    case MsgType::kOwnerReply: m = decode_owner_reply(r); break;
    case MsgType::kAdopt: m = decode_adopt(r); break;
    case MsgType::kPeerLoad: m = decode_peer_load(r); break;
    case MsgType::kReclaimRequest: m = decode_reclaim_request(r); break;
    case MsgType::kReclaimDecline: m = decode_reclaim_decline(r); break;
    case MsgType::kReclaimDone: m = decode_reclaim_done(r); break;
    case MsgType::kStateTransfer: m = decode_state_transfer(r); break;
    case MsgType::kClientStateTransfer: m = decode_client_state_transfer(r); break;
    case MsgType::kServerRegister: m = decode_server_register(r); break;
    case MsgType::kServerUnregister: m = decode_server_unregister(r); break;
    case MsgType::kOverlapTableMsg: m = decode_overlap_table(r); break;
    case MsgType::kPointLookup: m = decode_point_lookup(r); break;
    case MsgType::kPointOwner: m = decode_point_owner(r); break;
    case MsgType::kPoolAcquire: m = decode_pool_acquire(r); break;
    case MsgType::kPoolGrant: m = decode_pool_grant(r); break;
    case MsgType::kPoolDeny: m = PoolDeny{}; break;
    case MsgType::kPoolRelease: m = decode_pool_release(r); break;
    case MsgType::kMcAnnounce: m = decode_mc_announce(r); break;
    case MsgType::kJoinDeny: m = decode_join_deny(r); break;
    case MsgType::kJoinDefer: m = decode_join_defer(r); break;
    case MsgType::kAdmissionUpdate: m = decode_admission_update(r); break;
    case MsgType::kPoolStatus: m = decode_pool_status(r); break;
    case MsgType::kPoolPressure: m = decode_pool_pressure(r); break;
    case MsgType::kQueueUpdate: m = decode_queue_update(r); break;
    case MsgType::kLoadDigest: m = decode_load_digest(r); break;
    case MsgType::kAdmissionDirective: m = decode_admission_directive(r); break;
    case MsgType::kQueueHandoff: m = decode_queue_handoff(r); break;
    case MsgType::kMcHeartbeat: m = decode_mc_heartbeat(r); break;
    default: return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

const char* message_name(const Message& message) {
  return std::visit(
      [](const auto& body) -> const char* {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, TaggedPacket>) return "TaggedPacket";
        else if constexpr (std::is_same_v<T, ClientHello>) return "ClientHello";
        else if constexpr (std::is_same_v<T, Welcome>) return "Welcome";
        else if constexpr (std::is_same_v<T, ClientAction>) return "ClientAction";
        else if constexpr (std::is_same_v<T, ServerUpdate>) return "ServerUpdate";
        else if constexpr (std::is_same_v<T, Redirect>) return "Redirect";
        else if constexpr (std::is_same_v<T, ClientBye>) return "ClientBye";
        else if constexpr (std::is_same_v<T, LoadReport>) return "LoadReport";
        else if constexpr (std::is_same_v<T, MapRange>) return "MapRange";
        else if constexpr (std::is_same_v<T, ShedDone>) return "ShedDone";
        else if constexpr (std::is_same_v<T, OwnerQuery>) return "OwnerQuery";
        else if constexpr (std::is_same_v<T, OwnerReply>) return "OwnerReply";
        else if constexpr (std::is_same_v<T, Adopt>) return "Adopt";
        else if constexpr (std::is_same_v<T, PeerLoad>) return "PeerLoad";
        else if constexpr (std::is_same_v<T, ReclaimRequest>) return "ReclaimRequest";
        else if constexpr (std::is_same_v<T, ReclaimDecline>) return "ReclaimDecline";
        else if constexpr (std::is_same_v<T, ReclaimDone>) return "ReclaimDone";
        else if constexpr (std::is_same_v<T, StateTransfer>) return "StateTransfer";
        else if constexpr (std::is_same_v<T, ClientStateTransfer>) return "ClientStateTransfer";
        else if constexpr (std::is_same_v<T, ServerRegister>) return "ServerRegister";
        else if constexpr (std::is_same_v<T, ServerUnregister>) return "ServerUnregister";
        else if constexpr (std::is_same_v<T, OverlapTableMsg>) return "OverlapTableMsg";
        else if constexpr (std::is_same_v<T, PointLookup>) return "PointLookup";
        else if constexpr (std::is_same_v<T, PointOwner>) return "PointOwner";
        else if constexpr (std::is_same_v<T, PoolAcquire>) return "PoolAcquire";
        else if constexpr (std::is_same_v<T, PoolGrant>) return "PoolGrant";
        else if constexpr (std::is_same_v<T, PoolDeny>) return "PoolDeny";
        else if constexpr (std::is_same_v<T, PoolRelease>) return "PoolRelease";
        else if constexpr (std::is_same_v<T, McAnnounce>) return "McAnnounce";
        else if constexpr (std::is_same_v<T, JoinDeny>) return "JoinDeny";
        else if constexpr (std::is_same_v<T, JoinDefer>) return "JoinDefer";
        else if constexpr (std::is_same_v<T, AdmissionUpdate>) return "AdmissionUpdate";
        else if constexpr (std::is_same_v<T, PoolStatus>) return "PoolStatus";
        else if constexpr (std::is_same_v<T, PoolPressure>) return "PoolPressure";
        else if constexpr (std::is_same_v<T, QueueUpdate>) return "QueueUpdate";
        else if constexpr (std::is_same_v<T, LoadDigest>) return "LoadDigest";
        else if constexpr (std::is_same_v<T, AdmissionDirective>) return "AdmissionDirective";
        else if constexpr (std::is_same_v<T, QueueHandoff>) return "QueueHandoff";
        else if constexpr (std::is_same_v<T, McHeartbeat>) return "McHeartbeat";
        else return "Unknown";
      },
      message);
}

}  // namespace matrix
