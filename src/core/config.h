// Matrix middleware configuration.
//
// Defaults follow the paper's evaluation where it gives numbers: overload at
// 300 clients, underload below 150 clients (Fig. 2 caption).  The hysteresis
// knobs implement the paper's "simple heuristics (not described) to prevent
// oscillations" — our concrete choices are documented in docs/ARCHITECTURE.md.
// Every knob is tabulated with its default and effect in docs/CONFIG.md.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geometry/metric.h"
#include "geometry/rect.h"
#include "util/sim_time.h"

namespace matrix {

/// How a Matrix server decides where to cut its partition when overloaded.
enum class SplitPolicy {
  /// Paper §3.2.3: halve the partition, hand the left piece to the new
  /// server.  (Across the longer dimension, so repeated splits don't
  /// produce degenerate slivers.)
  kSplitToLeft,
  /// Extension (paper future work via refs [14,15]): cut at the reported
  /// median client coordinate so each side inherits ~half the load.
  kLoadAware,
};

/// Knobs for the surge-queue "waiting room" (src/control/surge_queue.h):
/// when the admission valve is SOFT/HARD, new joins are parked in a bounded
/// priority queue (RESUME > VIP > NORMAL) instead of bounced back to the
/// client, and drained as the token budget refills or the valve relaxes.
/// Disabled by default: with `queue_enabled == false` the PR-1 behaviour
/// (JoinDefer/JoinDeny with client-side retry) is bit-identical.
struct SurgePriorityConfig {
  bool queue_enabled = false;

  /// Maximum parked joins per game server; an enqueue beyond this falls
  /// back to JoinDeny (the waiting room itself must stay bounded).
  std::uint32_t queue_capacity = 256;

  /// Anti-starvation aging: after each `age_step` of waiting, an entry is
  /// promoted one priority class (NORMAL → VIP → RESUME), so a NORMAL join
  /// cannot be overtaken forever by a stream of fresh VIPs.  0 disables
  /// aging (strict class order).
  SimTime age_step = SimTime::from_sec(10.0);

  /// Cadence of the drain/notify tick while the queue is non-empty: each
  /// tick admits what the token budget allows and pushes a QueueUpdate
  /// (position, depth, ETA) to every still-waiting client.
  SimTime update_interval = SimTime::from_ms(500);

  /// Paid-priority fairness cap: while the room stays occupied, at most
  /// this fraction of drained entries may go out at VIP effective class
  /// (tallies reset when the room empties).  The cap acts on the EFFECTIVE
  /// class: RESUME — including anything aged up to RESUME — is never
  /// capped, while a NORMAL aged to VIP is capped like a paid VIP until
  /// its next promotion.  When the cap binds and a NORMAL entry is
  /// waiting, the NORMAL entry is admitted instead — so a paid lane can
  /// never monopolise the door.  1.0 disables the cap (PR-2 behaviour).
  double vip_drain_cap = 1.0;
};

/// Knobs for coordinator-led global admission (src/control/
/// global_admission.h): the Matrix Coordinator aggregates per-server load
/// digests and pool occupancy into a deployment-wide pressure score and
/// broadcasts AdmissionDirective messages — a floor state every server must
/// hold plus per-server token-budget shares weighted by waiting-room depth.
/// Disabled by default: no digests, no directives, PR-2 per-server
/// behaviour bit-for-bit.
struct GlobalAdmissionConfig {
  bool enabled = false;

  // ---- pressure thresholds --------------------------------------------------
  /// Directive floor goes SOFT at this pressure score (see
  /// GlobalAdmission::pressure() for the score's composition)...
  double soft_pressure = 0.65;
  /// ...and HARD at this one.
  double hard_pressure = 0.85;

  // ---- deployment-wide token budget ----------------------------------------
  /// Total SOFT-mode admits per second across the whole deployment while a
  /// directive is in force, divided among servers in proportion to their
  /// waiting-room depth (starved partitions drain first).
  double token_rate_total = 32.0;
  /// Minimum per-server share, so a server with an empty waiting room is
  /// never starved of its trickle of fresh joins.
  double token_rate_floor = 1.0;

  // ---- hysteresis (same contract as the local valve) ------------------------
  /// Floor escalation is immediate; relaxation steps down one level at a
  /// time after `recover_min` of continuous calm and `dwell` since the last
  /// floor change — machine-checked by admission_timeline_valid.
  SimTime dwell = SimTime::from_sec(2.0);
  SimTime recover_min = SimTime::from_sec(5.0);

  /// Minimum gap between share-refresh broadcasts while the floor is
  /// unchanged (floor changes broadcast immediately).  Bounds directive
  /// traffic to ~N_servers messages per interval.
  SimTime directive_interval = SimTime::from_sec(1.0);

  /// Cross-server queue handoff: while a directive is active, parked joins
  /// displaced by a split/reclaim re-park on the server that now owns their
  /// region (class and accrued age preserved) instead of being flushed back
  /// to client-side retry.
  bool queue_handoff = true;
};

/// Which LoadPolicy implementation (src/policy/) a deployment runs.
enum class LoadPolicyKind : std::uint8_t {
  /// Bit-for-bit port of the historical inline decision logic: threshold +
  /// hysteresis splits, headroom-gated reclaims, FCFS pool grants.
  kClassic = 0,
  /// ClassicPolicy plus the coordinator-directive extensions: need-weighted
  /// pool-grant arbitration and directive-driven proactive load-aware
  /// splits.  Identical to kClassic while no directive is in force.
  kDirective = 1,
};

/// Process-level default for PolicyConfig::kind.  Reads the
/// MATRIX_LOAD_POLICY environment variable once ("classic" / "directive";
/// unset or unrecognized ⇒ kClassic), so CI's policy-matrix leg can run the
/// whole test suite under DirectivePolicy without touching any test code.
[[nodiscard]] LoadPolicyKind default_load_policy_kind();

[[nodiscard]] const char* load_policy_kind_name(LoadPolicyKind kind);

/// Knobs for the pluggable load-policy layer (src/policy/): the one place
/// deciding when/where a partition splits, when a child is reclaimed, and
/// which requester wins a contested pool server.  The default ClassicPolicy
/// reproduces the pre-policy-layer behavior bit-for-bit; every knob below
/// it only takes effect under DirectivePolicy.
struct PolicyConfig {
  LoadPolicyKind kind = default_load_policy_kind();

  // ---- need-weighted pool grants (DirectivePolicy) -------------------------
  /// How long the resource pool holds a need-tagged PoolAcquire before
  /// arbitrating, so simultaneous requesters contend on need instead of
  /// message arrival order.  Requests with need 0 (ClassicPolicy, or no
  /// directive in force) are never held — grant/deny stays immediate.
  SimTime grant_window = SimTime::from_ms(250);
  /// Weight of the waiting-room depth in the need score, relative to the
  /// load fraction (the MC's pressure score weights starvation the same
  /// way: the deepest line is the most starved partition).
  double need_waiting_weight = 2.0;

  // ---- directive-driven proactive splits (DirectivePolicy) -----------------
  /// While a coordinator directive is active, split as soon as reported
  /// clients reach this fraction of overload_clients — before the valve
  /// ever reaches HARD — instead of waiting out the full overload +
  /// sustain hysteresis.  The cut is load-aware (median) regardless of
  /// split_policy: a proactive split exists to shed the hotspot.
  double proactive_load_fraction = 0.80;
  /// A proactive split also requires this many parked joins: an empty
  /// waiting room means the valve is coping and the split can wait for the
  /// ordinary thresholds.
  std::uint32_t proactive_min_waiting = 8;
};

/// Knobs for the admission & overload-protection subsystem (src/control/).
/// Disabled by default: the paper's evaluation never models the
/// beyond-capacity regime, so the faithful benches run with the valve off.
struct AdmissionConfig {
  bool enabled = false;

  // ---- escalation thresholds ----------------------------------------------
  /// SOFT when reported clients reach this fraction of overload_clients.
  double soft_load_fraction = 0.85;
  /// HARD when reported clients reach this fraction of overload_clients.
  double hard_load_fraction = 1.15;
  /// Receive-queue depths (messages) triggering SOFT / HARD.
  std::uint32_t soft_queue_length = 1500;
  std::uint32_t hard_queue_length = 4000;
  /// Consecutive PoolDeny answers (split wanted, no spare server) that
  /// trigger SOFT / HARD — the "pool is exhausted and I am still hot" case.
  std::uint32_t soft_denied_streak = 1;
  std::uint32_t hard_denied_streak = 3;
  /// Surge-queue depths (parked joins) triggering SOFT / HARD: a waiting
  /// room that keeps deepening means the token budget is losing the race
  /// and the valve should say so.  0 disables (default — PR-2 behaviour).
  std::uint32_t soft_waiting_count = 0;
  std::uint32_t hard_waiting_count = 0;
  /// Pool-pressure pre-escalation: when the deployment-wide idle fraction
  /// is at or below soft_pool_idle_fraction AND this server already carries
  /// pool_pressure_load_fraction × overload_clients, go SOFT before the
  /// local thresholds fire (a split is unlikely to be granted).
  double soft_pool_idle_fraction = 0.0;
  double pool_pressure_load_fraction = 0.70;

  // ---- SOFT-mode token budget ---------------------------------------------
  /// Joins admitted per second while SOFT, and the burst allowance.
  double token_rate_per_sec = 20.0;
  double token_burst = 40.0;

  // ---- hysteresis (mandatory) ---------------------------------------------
  /// No transition may follow another within the dwell time...
  SimTime dwell = SimTime::from_sec(2.0);
  /// ...and relaxation additionally requires the signals to sit below the
  /// current state's severity continuously for this long.  Escalation is
  /// exempt from both: a saturated server closes the valve immediately.
  SimTime recover_min = SimTime::from_sec(5.0);

  /// TEST-ONLY fault injection (docs/TESTING.md): relax the valve as soon
  /// as the dwell passes, ignoring recover_min — the hysteresis bug the
  /// timeline invariant (admission_timeline_valid) exists to catch.  The
  /// validator keeps judging against the REAL recover_min, so enabling
  /// this makes lifetime_timeline_valid() report false.  Never set outside
  /// tests/fuzz_test.cpp.
  bool fault_skip_recover_min = false;

  // ---- client guidance ------------------------------------------------------
  /// Retry hint carried by JoinDefer (SOFT) and JoinDeny (HARD).
  SimTime defer_retry = SimTime::from_sec(2.0);
  SimTime deny_retry = SimTime::from_sec(10.0);

  // ---- surge queue ("waiting room") -----------------------------------------
  SurgePriorityConfig priority;

  // ---- coordinator-led global admission -------------------------------------
  GlobalAdmissionConfig global;
};

/// Knobs for the control-plane failsafe (src/control/control_plane.h):
/// every matrix/game server runs a heartbeat-driven state machine that
/// degrades NORMAL → HOLD → FALLBACK as coordinator heartbeats go stale,
/// so a dead or partitioned MC can never keep steering valves and pool
/// grants through a directive it broadcast before it died.  Disabled by
/// default: no heartbeats are sent, no ticks are scheduled, and behaviour
/// (including every golden-trace hash) is bit-identical to a pre-failsafe
/// deployment.
struct FailsafeConfig {
  bool enabled = false;

  /// Coordinator → matrix-server McHeartbeat cadence (matrix servers relay
  /// each beat to their game server, so both ends share one freshness
  /// clock).
  SimTime heartbeat_interval = SimTime::from_sec(1.0);

  /// Heartbeat silence at which a server enters HOLD: the current
  /// directive/pool view is frozen — still in force, but no longer a basis
  /// for new pool-grant-seeking decisions (DirectivePolicy need drops to
  /// zero, proactive splits stop).
  SimTime tau1 = SimTime::from_sec(3.0);

  /// Heartbeat silence at which a server enters FALLBACK: deterministic
  /// local-only behaviour.  The frozen directive is dropped (local valve
  /// and local token rate take back over), splits that would need a pool
  /// grant are suppressed, and reclaim turns conservative (only an empty
  /// child is merged back).  Must be > tau1.
  SimTime tau2 = SimTime::from_sec(8.0);

  /// Cadence of the local staleness check while enabled.  Bounds how late
  /// after tau1/tau2 a transition can fire.
  SimTime check_interval = SimTime::from_ms(500);
};

namespace obs {
/// Process-level default for ObsConfig::trace_enabled: reads the
/// MATRIX_TRACE environment variable once (defined in src/obs/trace.cpp).
[[nodiscard]] bool default_trace_enabled();
}  // namespace obs

/// Knobs for the sharded parallel simulation engine (src/net/network.h,
/// docs/ARCHITECTURE.md "Parallel engine").  Default: one shard — the serial
/// engine, byte-identical to every pre-sharding golden trace.
struct EngineConfig {
  /// Number of event-queue shards the deployment's nodes are partitioned
  /// into.  Each shard owns its own EventQueue, BufferPool, RNG stream, and
  /// trace buffer; shards synchronize with conservative lookahead windows
  /// derived from the minimum cross-shard link latency.  1 = serial.
  std::size_t shards = 1;
  /// Run shard windows on persistent worker threads.  Results are identical
  /// either way — that is the determinism contract — so this only buys
  /// wall-clock on multi-core hosts.  MATRIX_SHARD_THREADS overrides
  /// ("0"/"off" forces sequential, "1"/"on" forces threads).
  bool threads = true;
  /// Event-queue priority structure: the two-tier ladder/calendar scheduler
  /// (O(1) amortized schedule/pop) vs the reference 4-ary heap.  Pop order
  /// is provably identical, so every golden trace hash is byte-identical
  /// either way (tests/scheduler_test.cpp); the knob exists for A/B
  /// benchmarking and as a fallback.  MATRIX_EVENT_SCHEDULER overrides
  /// ("heap"/"0" forces the heap, "ladder"/"1" forces the ladder).
  bool ladder_scheduler = true;
  /// Shard load rebalancing: when busiest/mean per-shard executed-event
  /// ratio for an epoch exceeds this, one colocated matrix+game node group
  /// migrates from the busiest shard to the idlest at a window barrier.
  /// <= 0 (the default) disables rebalancing entirely — seed behavior,
  /// including every pinned K>1 hash, is then byte-identical.  Sensible
  /// values start around 1.15–1.5.  The trigger derives from event counts
  /// only (never wall time), so fixed-K runs stay run-to-run reproducible.
  double rebalance_threshold = 0.0;
  /// Executed events (summed over shards) between imbalance evaluations.
  std::uint64_t rebalance_interval_events = 250'000;
};

/// Knobs for the observability layer (src/obs/): structured tracing, the
/// flight-recorder ring, and span pairing.  Mirrors obs::TraceOptions so
/// configuring a deployment does not pull in the obs headers.  Disabled by
/// default — every hook then costs one predictable branch and the golden
/// determinism hashes are unchanged (the passivity contract,
/// docs/OBSERVABILITY.md).
struct ObsConfig {
  /// Master switch: Deployment enables its network's Tracer when set.
  bool trace_enabled = obs::default_trace_enabled();
  /// Flight-recorder depth (most recent events kept).
  std::size_t ring_capacity = 8192;
  /// Concurrently-open span capacity (opens beyond it are dropped and
  /// counted, never allocated).
  std::size_t span_capacity = 1 << 15;
  /// Record a trace event for every Network::send (the firehose).
  bool record_sends = true;
};

/// TEST-ONLY fault injection (docs/TESTING.md).  Each knob makes one layer
/// misbehave in a way that violates exactly one class of trace invariant,
/// so tests/fuzz_test.cpp can prove the invariants harness
/// (src/fuzz/invariants.h) actually catches that class of bug — a fuzzer
/// that has never been shown to fail proves nothing.  All knobs default
/// off, in which case behaviour is bit-identical to a Config without this
/// struct.  Never enable outside tests.
struct FaultConfig {
  /// Swallow every Nth gated fresh join at the valve: no JoinDefer/JoinDeny
  /// reply, no waiting-room park — the hello simply black-holes.  Violates
  /// the blackhole invariant (and leaks the client's admit span).
  /// 0 disables.
  std::uint32_t swallow_gated_join_every = 0;
  /// Drop the QueueHandoff message on split/reclaim instead of sending it:
  /// the extracted waiting-room entries vanish in transit.  Violates queue
  /// conservation (handoff sent, never adopted/deferred/dropped).
  bool drop_queue_handoff = false;
  /// Reset enqueued_at to the adoption instant when adopting a handed-off
  /// queue entry: the accrued age is lost in transit.  Violates age
  /// conservation across handoff.
  bool reset_handoff_age = false;
  /// Erase the first session in each shed range without sending a
  /// Redirect: the trace says the client is playing here, the server no
  /// longer has the session.  Violates client-count conservation.
  bool leak_session_on_shed = false;
  /// Re-apply every coordinator directive a second time through the
  /// control plane, bypassing its staleness rejection — the classic
  /// stale-directive bug the epoch/seq monotonicity invariant
  /// (kInvControlMonotonic) exists to catch: the same (epoch, seq) acts
  /// twice, so the per-server control-applied stream stops strictly
  /// increasing.
  bool stale_directive_replay = false;

  [[nodiscard]] bool any() const {
    return swallow_gated_join_every != 0 || drop_queue_handoff ||
           reset_handoff_age || leak_session_on_shed ||
           stale_directive_replay;
  }
};

struct Config {
  // ---- world ---------------------------------------------------------------
  Rect world{0.0, 0.0, 1000.0, 1000.0};
  /// Default radius of visibility R.  Games override this at registration
  /// (paper §3.2.2: "the game server ... sends Matrix the visibility radius").
  double visibility_radius = 60.0;
  Metric metric = Metric::kChebyshev;

  // ---- load thresholds (paper Fig. 2 caption) -------------------------------
  /// A game server is overloaded at or above this many clients.
  std::uint32_t overload_clients = 300;
  /// A game server is underloaded strictly below this many clients.
  std::uint32_t underload_clients = 150;
  /// Overload can also be declared on receive-queue depth ("via system
  /// performance measurements", §3.2.3).  0 disables the queue trigger.
  std::uint32_t overload_queue_length = 0;

  // ---- split / reclaim behaviour -------------------------------------------
  /// Disabling both turns a Matrix deployment into the static-partitioning
  /// baseline: identical routing, no adaptation.  That is exactly the
  /// comparison the paper's §4 makes.
  bool allow_split = true;
  bool allow_reclaim = true;
  SplitPolicy split_policy = SplitPolicy::kSplitToLeft;
  /// Minimum partition width/height; a server at this size refuses to split
  /// further (prevents unbounded recursion on a point hotspot).
  double min_partition_extent = 4.0;
  /// Number of consecutive overloaded load reports required before a split
  /// is initiated (hysteresis).
  std::uint32_t sustain_reports_to_split = 2;
  /// Quiet period after any topology change during which this server will
  /// not initiate another split or reclaim (hysteresis).
  SimTime topology_cooldown = SimTime::from_sec(5.0);
  /// Reclaim requires parent + child combined load to fit within this
  /// fraction of the overload threshold (prevents reclaim→overload→split
  /// oscillation).
  double reclaim_headroom_fraction = 0.8;

  // ---- pool-exhaustion retry backoff ---------------------------------------
  /// Quiet period before re-asking the pool after a PoolDeny; doubles with
  /// every consecutive denial (capped) so an exhausted pool is not hammered
  /// at the load-report rate.  0 ⇒ start from topology_cooldown, which
  /// keeps the first retry identical to the original flat-cooldown
  /// behaviour.
  SimTime pool_backoff_initial{};
  SimTime pool_backoff_max = SimTime::from_sec(60.0);

  // ---- admission & overload protection (src/control/) ----------------------
  AdmissionConfig admission;

  // ---- control-plane failsafe (src/control/control_plane.h) -----------------
  FailsafeConfig failsafe;

  // ---- pluggable load-policy layer (src/policy/) ----------------------------
  PolicyConfig policy;

  // ---- observability (src/obs/) ---------------------------------------------
  ObsConfig obs;

  // ---- parallel engine (src/net/network.h) ----------------------------------
  EngineConfig engine;

  // ---- test-only fault injection (tests/fuzz_test.cpp) ----------------------
  FaultConfig fault;

  // ---- reporting cadence ----------------------------------------------------
  /// Game server → Matrix server load report interval.
  SimTime load_report_interval = SimTime::from_ms(500);
  /// Child → parent Matrix server load heartbeat interval.
  SimTime peer_load_interval = SimTime::from_ms(1000);

  [[nodiscard]] bool overloaded(std::uint32_t clients,
                                std::uint32_t queue_len) const {
    if (clients >= overload_clients) return true;
    return overload_queue_length > 0 && queue_len >= overload_queue_length;
  }
  [[nodiscard]] bool underloaded(std::uint32_t clients) const {
    return clients < underload_clients;
  }
};

}  // namespace matrix
