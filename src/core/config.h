// Matrix middleware configuration.
//
// Defaults follow the paper's evaluation where it gives numbers: overload at
// 300 clients, underload below 150 clients (Fig. 2 caption).  The hysteresis
// knobs implement the paper's "simple heuristics (not described) to prevent
// oscillations" — our concrete choices are documented in DESIGN.md §5.
#pragma once

#include <cstdint>

#include "geometry/metric.h"
#include "geometry/rect.h"
#include "util/sim_time.h"

namespace matrix {

/// How a Matrix server decides where to cut its partition when overloaded.
enum class SplitPolicy {
  /// Paper §3.2.3: halve the partition, hand the left piece to the new
  /// server.  (Across the longer dimension, so repeated splits don't
  /// produce degenerate slivers.)
  kSplitToLeft,
  /// Extension (paper future work via refs [14,15]): cut at the reported
  /// median client coordinate so each side inherits ~half the load.
  kLoadAware,
};

struct Config {
  // ---- world ---------------------------------------------------------------
  Rect world{0.0, 0.0, 1000.0, 1000.0};
  /// Default radius of visibility R.  Games override this at registration
  /// (paper §3.2.2: "the game server ... sends Matrix the visibility radius").
  double visibility_radius = 60.0;
  Metric metric = Metric::kChebyshev;

  // ---- load thresholds (paper Fig. 2 caption) -------------------------------
  /// A game server is overloaded at or above this many clients.
  std::uint32_t overload_clients = 300;
  /// A game server is underloaded strictly below this many clients.
  std::uint32_t underload_clients = 150;
  /// Overload can also be declared on receive-queue depth ("via system
  /// performance measurements", §3.2.3).  0 disables the queue trigger.
  std::uint32_t overload_queue_length = 0;

  // ---- split / reclaim behaviour -------------------------------------------
  /// Disabling both turns a Matrix deployment into the static-partitioning
  /// baseline: identical routing, no adaptation.  That is exactly the
  /// comparison the paper's §4 makes.
  bool allow_split = true;
  bool allow_reclaim = true;
  SplitPolicy split_policy = SplitPolicy::kSplitToLeft;
  /// Minimum partition width/height; a server at this size refuses to split
  /// further (prevents unbounded recursion on a point hotspot).
  double min_partition_extent = 4.0;
  /// Number of consecutive overloaded load reports required before a split
  /// is initiated (hysteresis).
  std::uint32_t sustain_reports_to_split = 2;
  /// Quiet period after any topology change during which this server will
  /// not initiate another split or reclaim (hysteresis).
  SimTime topology_cooldown = SimTime::from_sec(5.0);
  /// Reclaim requires parent + child combined load to fit within this
  /// fraction of the overload threshold (prevents reclaim→overload→split
  /// oscillation).
  double reclaim_headroom_fraction = 0.8;

  // ---- reporting cadence ----------------------------------------------------
  /// Game server → Matrix server load report interval.
  SimTime load_report_interval = SimTime::from_ms(500);
  /// Child → parent Matrix server load heartbeat interval.
  SimTime peer_load_interval = SimTime::from_ms(1000);

  [[nodiscard]] bool overloaded(std::uint32_t clients,
                                std::uint32_t queue_len) const {
    if (clients >= overload_clients) return true;
    return overload_queue_length > 0 && queue_len >= overload_queue_length;
  }
  [[nodiscard]] bool underloaded(std::uint32_t clients) const {
    return clients < underload_clients;
  }
};

}  // namespace matrix
