// Matrix Coordinator (MC), paper §3.2.4.
//
// Keeps the global partition map, recomputes every server's overlap table
// whenever the topology changes (a server registers, re-registers with a new
// range, or unregisters), and pushes the tables to the affected Matrix
// servers.  It also answers point-ownership lookups for the rare
// non-proximal interactions.  The MC is deliberately OFF the per-packet
// routing path — the paper's argument for why a central coordinator scales.
//
// For the admission subsystem (src/control/) the MC additionally relays the
// resource pool's occupancy: each PoolStatus from the pool is rebroadcast
// as PoolPressure to every registered Matrix server (and pushed to servers
// as they register), giving the per-server admission controllers the
// deployment-wide "can a split still be granted?" signal.
//
// With Config::admission.global.enabled the MC also runs coordinator-led
// global admission (src/control/global_admission.h): every LoadDigest and
// PoolStatus feeds a deployment-wide pressure score, and the resulting
// floor state + per-server token-budget shares are broadcast to every
// registered Matrix server as personalized AdmissionDirective messages —
// immediately on a floor change, on the directive_interval cadence for
// share drift, and to each server as it (re-)registers.
#pragma once

#include <cstdint>
#include <vector>

#include "control/global_admission.h"
#include "core/config.h"
#include "core/overlap.h"
#include "core/partition.h"
#include "core/protocol_node.h"

namespace matrix {

class Coordinator : public ProtocolNode {
 public:
  explicit Coordinator(Config config)
      : config_(std::move(config)),
        global_admission_(config_.admission.global,
                          config_.overload_clients) {}

  [[nodiscard]] std::string name() const override { return "mc"; }

  [[nodiscard]] const PartitionMap& partition_map() const { return map_; }
  [[nodiscard]] const std::vector<double>& radii() const { return radii_; }

  // ---- instrumentation (T-micro-coord) ------------------------------------
  [[nodiscard]] std::uint64_t recompute_count() const { return recomputes_; }
  [[nodiscard]] std::uint64_t tables_pushed() const { return tables_pushed_; }
  [[nodiscard]] std::uint64_t table_bytes_pushed() const {
    return table_bytes_pushed_;
  }
  [[nodiscard]] std::uint64_t lookups_served() const { return lookups_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::uint64_t pool_pressure_broadcasts() const {
    return pool_pressure_broadcasts_;
  }
  /// The global admission aggregate (src/control/global_admission.h);
  /// inert unless Config::admission.global.enabled.
  [[nodiscard]] const GlobalAdmission& global_admission() const {
    return global_admission_;
  }
  [[nodiscard]] std::uint64_t directives_broadcast() const {
    return directives_broadcast_;
  }
  [[nodiscard]] std::uint64_t heartbeats_broadcast() const {
    return heartbeats_broadcast_;
  }

  // ---- control-plane failsafe (src/control/control_plane.h) ----------------
  /// MC incarnation this coordinator announces and heartbeats under.  Set
  /// by the Deployment before attach; same counter as McAnnounce.generation.
  void set_generation(std::uint64_t generation) { generation_ = generation; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Starts the periodic McHeartbeat broadcast (only called when
  /// Config::failsafe.enabled).  The loop stops itself once this
  /// coordinator is detached from the network (killed or failed over) —
  /// a dead MC must fall silent, that silence IS the failure signal.
  void start_heartbeats();

  /// Builds (but does not send) all tables — exposed for the coordinator
  /// microbenchmark, which measures pure recompute cost vs. server count.
  [[nodiscard]] std::vector<OverlapTableMsg> compute_all_tables() const;

 protected:
  void on_message(const Message& message, const Envelope& envelope) override;

 private:
  void register_server(const ServerRegister& reg);
  void unregister_server(ServerId server);
  void recompute_and_push();
  void broadcast_pool_pressure();
  /// Broadcasts a personalized AdmissionDirective to every registered
  /// server when one is due (`force` after a floor change / rescind).
  void maybe_broadcast_directives(bool force);
  void send_directive(ServerId server, NodeId matrix_node);
  void broadcast_heartbeat();
  void schedule_heartbeat();

  Config config_;
  PartitionMap map_;
  std::vector<double> radii_;  ///< radius classes; index = radius_class
  std::uint64_t version_ = 0;
  std::uint64_t recomputes_ = 0;
  std::uint64_t tables_pushed_ = 0;
  std::uint64_t table_bytes_pushed_ = 0;
  std::uint64_t lookups_ = 0;
  /// Latest pool occupancy heard from the resource pool; total 0 ⇒ unknown.
  PoolStatus pool_status_;
  std::uint64_t pool_pressure_broadcasts_ = 0;

  // Coordinator-led global admission (src/control/global_admission.h).
  GlobalAdmission global_admission_;
  std::uint64_t directive_seq_ = 0;
  std::uint64_t directives_broadcast_ = 0;
  /// True while the last broadcast round carried an active directive —
  /// lets a relax-to-NORMAL send one final rescinding round.
  bool directive_in_force_ = false;

  // Control-plane failsafe (src/control/control_plane.h).
  std::uint64_t generation_ = 0;
  std::uint64_t heartbeat_seq_ = 0;
  std::uint64_t heartbeats_broadcast_ = 0;
};

}  // namespace matrix
