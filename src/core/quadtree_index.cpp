#include "core/quadtree_index.h"

namespace matrix {

QuadtreeIndex::QuadtreeIndex(const Rect& partition,
                             std::vector<OverlapRegionWire> regions,
                             std::size_t max_leaf_regions,
                             std::size_t max_depth)
    : partition_(partition), regions_(std::move(regions)) {
  if (regions_.empty()) return;
  nodes_.push_back({partition_, {}, {0, 0, 0, 0}, true});
  std::vector<std::uint32_t> all(regions_.size());
  for (std::uint32_t i = 0; i < regions_.size(); ++i) all[i] = i;
  build(0, all, 0, max_leaf_regions, max_depth);
}

void QuadtreeIndex::build(std::uint32_t node,
                          const std::vector<std::uint32_t>& candidates,
                          std::size_t depth, std::size_t max_leaf,
                          std::size_t max_depth) {
  if (candidates.size() <= max_leaf || depth >= max_depth) {
    nodes_[node].candidates = candidates;
    nodes_[node].leaf = true;
    return;
  }
  nodes_[node].leaf = false;
  const Rect bounds = nodes_[node].bounds;
  const Vec2 c = bounds.center();
  const Rect quads[4] = {
      Rect(bounds.x0(), bounds.y0(), c.x, c.y),
      Rect(c.x, bounds.y0(), bounds.x1(), c.y),
      Rect(bounds.x0(), c.y, c.x, bounds.y1()),
      Rect(c.x, c.y, bounds.x1(), bounds.y1()),
  };
  for (int q = 0; q < 4; ++q) {
    std::vector<std::uint32_t> sub;
    for (std::uint32_t idx : candidates) {
      if (regions_[idx].rect.intersects(quads[q])) sub.push_back(idx);
    }
    if (sub.empty()) continue;
    const auto child = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back({quads[q], {}, {0, 0, 0, 0}, true});
    nodes_[node].children[q] = child;
    build(child, sub, depth + 1, max_leaf, max_depth);
  }
}

const OverlapRegionWire* QuadtreeIndex::find(Vec2 p) const {
  if (regions_.empty() || !partition_.contains(p)) return nullptr;
  std::uint32_t node = 0;
  while (!nodes_[node].leaf) {
    const Vec2 c = nodes_[node].bounds.center();
    const int q = (p.x < c.x ? 0 : 1) + (p.y < c.y ? 0 : 2);
    const std::uint32_t child = nodes_[node].children[q];
    if (child == 0) return nullptr;  // empty quadrant: no region here
    node = child;
  }
  for (std::uint32_t idx : nodes_[node].candidates) {
    if (regions_[idx].rect.contains(p)) return &regions_[idx];
  }
  return nullptr;
}

}  // namespace matrix
