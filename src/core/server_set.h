// Consistency sets (paper Eq. 1).
//
// C(σ) is the set of servers that must hear about an update at point σ.
// Near-decomposability means these sets are small (a point near a partition
// corner touches at most a handful of neighbours), so a sorted small vector
// beats a bitset: cheap to build during the sweep, cheap to compare when
// coalescing overlap regions, and cheap to iterate when routing.
#pragma once

#include <algorithm>
#include <initializer_list>
#include <ostream>
#include <vector>

#include "util/ids.h"

namespace matrix {

class ServerSet {
 public:
  ServerSet() = default;
  ServerSet(std::initializer_list<ServerId> ids) {
    for (ServerId id : ids) insert(id);
  }

  /// Inserts keeping sorted order; duplicates ignored.
  void insert(ServerId id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) ids_.insert(it, id);
  }

  void erase(ServerId id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it != ids_.end() && *it == id) ids_.erase(it);
  }

  [[nodiscard]] bool contains(ServerId id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  void clear() { ids_.clear(); }

  [[nodiscard]] auto begin() const { return ids_.begin(); }
  [[nodiscard]] auto end() const { return ids_.end(); }
  [[nodiscard]] const std::vector<ServerId>& ids() const { return ids_; }

  friend bool operator==(const ServerSet&, const ServerSet&) = default;

  /// Set union.
  void merge(const ServerSet& other) {
    std::vector<ServerId> out;
    out.reserve(ids_.size() + other.ids_.size());
    std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                   other.ids_.end(), std::back_inserter(out));
    ids_ = std::move(out);
  }

  [[nodiscard]] ServerSet intersect(const ServerSet& other) const {
    ServerSet out;
    std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                          other.ids_.end(), std::back_inserter(out.ids_));
    return out;
  }

 private:
  std::vector<ServerId> ids_;
};

inline std::ostream& operator<<(std::ostream& os, const ServerSet& set) {
  os << "{";
  bool first = true;
  for (ServerId id : set) {
    if (!first) os << ",";
    os << id;
    first = false;
  }
  return os << "}";
}

}  // namespace matrix
