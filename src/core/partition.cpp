#include "core/partition.h"

#include <algorithm>
#include <cmath>

#include "geometry/metric.h"

namespace matrix {

void PartitionMap::upsert(const PartitionEntry& entry) {
  for (auto& existing : entries_) {
    if (existing.server == entry.server) {
      existing = entry;
      return;
    }
  }
  entries_.push_back(entry);
}

void PartitionMap::remove(ServerId server) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [server](const PartitionEntry& e) {
                                  return e.server == server;
                                }),
                 entries_.end());
}

const PartitionEntry* PartitionMap::find(ServerId server) const {
  for (const auto& entry : entries_) {
    if (entry.server == server) return &entry;
  }
  return nullptr;
}

const PartitionEntry* PartitionMap::owner_of(Vec2 p) const {
  for (const auto& entry : entries_) {
    if (entry.range.contains(p)) return &entry;
  }
  return nullptr;
}

bool PartitionMap::tiles(const Rect& world, double epsilon) const {
  double area = 0.0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Rect& a = entries_[i].range;
    if (!world.contains_rect(a)) return false;
    area += a.area();
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      if (a.intersects(entries_[j].range)) return false;
    }
  }
  return std::abs(area - world.area()) <= epsilon * std::max(1.0, world.area());
}

std::vector<const PartitionEntry*> consistency_set_scan(
    const PartitionMap& map, Vec2 point, double radius, Metric metric) {
  std::vector<const PartitionEntry*> out;
  const PartitionEntry* home = map.owner_of(point);
  for (const auto& entry : map.entries()) {
    if (home != nullptr && entry.server == home->server) continue;
    if (ball_intersects_rect(metric, point, radius, entry.range)) {
      out.push_back(&entry);
    }
  }
  return out;
}

}  // namespace matrix
