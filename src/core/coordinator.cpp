#include "core/coordinator.h"

#include <algorithm>

#include "util/log.h"

namespace matrix {

void Coordinator::on_message(const Message& message, const Envelope& envelope) {
  if (const auto* reg = std::get_if<ServerRegister>(&message)) {
    register_server(*reg);
  } else if (const auto* unreg = std::get_if<ServerUnregister>(&message)) {
    unregister_server(unreg->server);
  } else if (const auto* lookup = std::get_if<PointLookup>(&message)) {
    ++lookups_;
    PointOwner reply;
    reply.lookup_seq = lookup->lookup_seq;
    if (const PartitionEntry* owner = map_.owner_of(lookup->point)) {
      reply.found = true;
      reply.server = owner->server;
      reply.matrix_node = owner->matrix_node;
      reply.game_node = owner->game_node;
    }
    send(envelope.src, reply);
  } else if (const auto* status = std::get_if<PoolStatus>(&message)) {
    const bool changed = status->idle != pool_status_.idle ||
                         status->total != pool_status_.total;
    pool_status_ = *status;
    if (changed) broadcast_pool_pressure();
    const bool floor_changed =
        global_admission_.observe_pool(now(), status->idle, status->total);
    maybe_broadcast_directives(floor_changed);
  } else if (const auto* digest = std::get_if<LoadDigest>(&message)) {
    GlobalAdmission::ServerDigest d;
    d.load.client_count = digest->client_count;
    d.load.queue_length = digest->queue_length;
    d.load.waiting_count = digest->waiting_count;
    d.state = admission_state_from_wire(digest->admission_state);
    const bool floor_changed =
        global_admission_.observe_server(now(), digest->server, d);
    maybe_broadcast_directives(floor_changed);
  }
}

void Coordinator::send_directive(ServerId server, NodeId matrix_node) {
  AdmissionDirective directive;
  directive.seq = ++directive_seq_;
  directive.floor =
      static_cast<std::uint8_t>(global_admission_.floor());
  directive.active = global_admission_.active();
  directive.token_rate =
      directive.active ? global_admission_.share_for(server) : 0.0;
  directive.pressure = global_admission_.pressure();
  directive.waiting_total = global_admission_.waiting_total();
  send(matrix_node, directive);
  ++directives_broadcast_;
  network()->tracer().record(now(), obs::TraceKind::kDirectiveBroadcast,
                             server.value(), 0,
                             directive.active
                                 ? static_cast<std::int64_t>(directive.floor)
                                 : 0);
}

void Coordinator::maybe_broadcast_directives(bool force) {
  if (!config_.admission.global.enabled) return;
  const bool active = global_admission_.active();
  // A relax to NORMAL still needs one rescinding round so servers drop the
  // stale floor and restore their local token rates.
  const bool rescind = !active && directive_in_force_;
  if (!force && !rescind && !global_admission_.broadcast_due(now())) return;
  for (const auto& entry : map_.entries()) {
    send_directive(entry.server, entry.matrix_node);
  }
  global_admission_.mark_broadcast(now());
  directive_in_force_ = active;
}

void Coordinator::start_heartbeats() {
  broadcast_heartbeat();
  schedule_heartbeat();
}

void Coordinator::broadcast_heartbeat() {
  for (const auto& entry : map_.entries()) {
    send(entry.matrix_node, McHeartbeat{node_id(), generation_,
                                        ++heartbeat_seq_});
    ++heartbeats_broadcast_;
  }
}

void Coordinator::schedule_heartbeat() {
  network()->events_for(node_id()).schedule_after(
      config_.failsafe.heartbeat_interval, [this] {
        // A killed/failed-over MC is detached; its silence is the signal.
        if (!network()->attached(node_id())) return;
        broadcast_heartbeat();
        schedule_heartbeat();
      });
}

void Coordinator::broadcast_pool_pressure() {
  if (pool_status_.total == 0) return;  // nothing heard from the pool yet
  for (const auto& entry : map_.entries()) {
    send(entry.matrix_node, PoolPressure{pool_status_.idle, pool_status_.total});
    ++pool_pressure_broadcasts_;
  }
}

void Coordinator::register_server(const ServerRegister& reg) {
  map_.upsert({reg.server, reg.matrix_node, reg.game_node, reg.range});
  // Radius classes are game-wide: merge every radius the game declares, in
  // declaration order, so radius_class indices stay stable for the game's
  // lifetime (exceptional radii append; they never reorder).
  for (double radius : reg.radii) {
    if (std::find(radii_.begin(), radii_.end(), radius) == radii_.end()) {
      radii_.push_back(radius);
    }
  }
  if (radii_.empty()) radii_.push_back(config_.visibility_radius);
  MATRIX_DEBUG("mc", "register " << reg.server << " range=" << reg.range);
  recompute_and_push();
  // A (re-)registered server also learns the current pool pressure, so a
  // freshly adopted child starts with the deployment-wide signal.
  if (pool_status_.total != 0) {
    send(reg.matrix_node, PoolPressure{pool_status_.idle, pool_status_.total});
    ++pool_pressure_broadcasts_;
  }
  // ...and the directive in force, so a mid-surge child is clamped from
  // its first join rather than after the next broadcast round.
  if (config_.admission.global.enabled && global_admission_.active()) {
    send_directive(reg.server, reg.matrix_node);
  }
  // ...and one immediate heartbeat, so a freshly (re-)registered server's
  // failsafe plane starts from "MC fresh" instead of waiting out the next
  // broadcast tick (control-plane failsafe).
  if (config_.failsafe.enabled) {
    send(reg.matrix_node, McHeartbeat{node_id(), generation_,
                                      ++heartbeat_seq_});
    ++heartbeats_broadcast_;
  }
}

void Coordinator::unregister_server(ServerId server) {
  map_.remove(server);
  MATRIX_DEBUG("mc", "unregister " << server);
  recompute_and_push();
  const bool floor_changed = global_admission_.forget_server(now(), server);
  maybe_broadcast_directives(floor_changed);
}

std::vector<OverlapTableMsg> Coordinator::compute_all_tables() const {
  std::vector<OverlapTableMsg> tables;
  for (const auto& entry : map_.entries()) {
    for (std::size_t rc = 0; rc < radii_.size(); ++rc) {
      OverlapTableMsg table;
      table.server = entry.server;
      table.partition = entry.range;
      table.radius_class = static_cast<std::uint8_t>(rc);
      table.radius = radii_[rc];
      table.version = version_;
      table.regions =
          build_overlap_regions(map_, entry.server, radii_[rc], config_.metric);
      tables.push_back(std::move(table));
    }
  }
  return tables;
}

void Coordinator::recompute_and_push() {
  ++version_;
  ++recomputes_;
  for (auto& table : compute_all_tables()) {
    const PartitionEntry* entry = map_.find(table.server);
    if (entry == nullptr) continue;
    table.version = version_;
    const NodeId dst = entry->matrix_node;
    ++tables_pushed_;
    table_bytes_pushed_ += send(dst, std::move(table));
  }
}

}  // namespace matrix
