// Matrix server (paper §3.2.3) — "the heart of our distributed middleware".
//
// One Matrix server is co-located with each game server.  It:
//
//   * routes spatially-tagged game packets to the peer Matrix servers in the
//     packet's consistency set via an O(1) overlap-table lookup;
//   * verifies the range of packets arriving from peers before handing them
//     to its game server;
//   * watches its game server's load (explicit LoadReports plus direct
//     observation of the receive queue) and, using *purely local* decisions,
//     splits its partition when overloaded — acquiring a spare server from
//     the resource pool, adopting it as a child, and orchestrating state
//     transfer and client handoff;
//   * reclaims its most recent child when both are underloaded, returning
//     the child to the pool;
//   * delegates WHEN/WHERE those split/reclaim decisions fire — and the
//     need hint that biases contested pool grants — to the pluggable
//     LoadPolicy layer (src/policy/): every LoadReport is condensed into
//     one LoadView snapshot and the policy answers with typed decisions.
//     The default ClassicPolicy reproduces the historical inline logic
//     bit-for-bit (bar the deliberate denial-episode fix noted below);
//     DirectivePolicy adds coordinator-directive-driven proactive splits
//     and need-weighted grants;
//   * applies hysteresis (sustained overload, topology cooldown, reclaim
//     headroom, pool-denial backoff episodes) to prevent split/reclaim
//     oscillation — the paper's "simple heuristics ... to ensure
//     stability".  The mechanism (cooldowns, pending flags, the denial
//     episode's doubling backoff) stays here; the thresholds live in the
//     policy;
//   * runs the admission controller (src/control/): every load observation
//     (LoadReport, queue depth, pool denials, the MC's pool-pressure
//     broadcasts) feeds the NORMAL/SOFT/HARD valve, state changes are
//     pushed to the game server as AdmissionUpdate, and an elevated state
//     blocks reclaim — a parent under admission pressure must not accept
//     the handoff of its child's whole population;
//   * under coordinator-led global admission (src/control/
//     global_admission.h) it additionally reports a LoadDigest to the MC
//     with each LoadReport, composes the MC's AdmissionDirective floor
//     with its local valve (strictest wins), and relays the directive to
//     its game server so the deployment-wide token-budget share takes
//     effect at the join gate.
//
// Lifecycle: a server is either *active* (owns a partition) or *idle*
// (parked in the resource pool awaiting an Adopt).  Roots are activated
// directly at deployment; children are activated by Adopt messages.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/admission.h"
#include "control/control_plane.h"
#include "core/config.h"
#include "core/overlap.h"
#include "core/protocol_node.h"
#include "policy/denial_episode.h"
#include "policy/load_policy.h"

namespace matrix {

class MatrixServer : public ProtocolNode {
 public:
  /// Addresses of the fixed infrastructure this server talks to.  The game
  /// node is co-located (paper: "usually located on the same physical
  /// machine"); the deployment gives their link near-zero latency.
  struct Wiring {
    NodeId game_node;
    NodeId mc_node;
    NodeId pool_node;
  };

  MatrixServer(ServerId id, Config config)
      : id_(id), config_(std::move(config)) {
    control_plane_.set_fault_accept_stale(config_.fault.stale_directive_replay);
  }

  void wire(const Wiring& wiring) { wiring_ = wiring; }

  /// Activates this server as a root owning `range` (initial deployment).
  /// `radii` is the game's visibility-radius list, default radius first
  /// (paper §3.2.2: the game server sends Matrix the visibility radius when
  /// it starts).  Registers with the MC and pushes the range to the game
  /// server.
  void activate_root(const Rect& range, std::vector<double> radii);

  /// Static content keys advertised to children at adoption (pointers into
  /// the pre-cached store; the bulk data never crosses the wire, §3.2.3).
  void set_content_keys(std::vector<std::string> keys) {
    content_keys_ = std::move(keys);
  }

  /// Shard rebalancing moved this server: re-bind the control plane's
  /// tracer pointer to the new owner shard's deferred tracer.
  void on_shard_migrated() override;

  // ---- observability --------------------------------------------------------

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ServerId server_id() const { return id_; }
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const Rect& range() const { return range_; }
  [[nodiscard]] ServerId parent() const { return parent_; }
  [[nodiscard]] std::size_t child_count() const { return children_.size(); }
  [[nodiscard]] std::uint32_t last_reported_clients() const {
    return last_report_.client_count;
  }
  [[nodiscard]] const Config& config() const { return config_; }

  struct Stats {
    std::uint64_t packets_from_game = 0;
    std::uint64_t packets_fanned_out = 0;   ///< copies sent to peer servers
    std::uint64_t peer_packets_received = 0;
    std::uint64_t peer_packets_delivered = 0;
    std::uint64_t peer_packets_rejected = 0;  ///< failed range verification
    std::uint64_t origin_outside_range = 0;   ///< handoff-window strays
    std::uint64_t nonproximal_lookups = 0;
    std::uint64_t splits_initiated = 0;
    std::uint64_t splits_completed = 0;
    /// Splits initiated below the overload threshold on the strength of an
    /// active coordinator directive (DirectivePolicy only).
    std::uint64_t proactive_splits = 0;
    std::uint64_t split_denied_no_server = 0;
    /// Consecutive PoolDeny answers since the last successful grant.
    std::uint32_t split_denied_streak = 0;
    /// Current pool-retry backoff (µs); 0 when not backing off.  Doubles
    /// per consecutive denial up to Config::pool_backoff_max.
    std::uint64_t pool_backoff_us = 0;
    /// Admission state changes pushed to the game server.
    std::uint64_t admission_updates = 0;
    /// Coordinator directives accepted (stale seqs excluded).
    std::uint64_t directives_received = 0;
    /// McHeartbeats accepted and relayed to the game server (failsafe on).
    std::uint64_t heartbeats_relayed = 0;
    /// Load digests sent to the MC (global admission enabled only).
    std::uint64_t digests_sent = 0;
    /// Surge-queue depth ("waiting room", src/control/surge_queue.h) from
    /// the game server's latest LoadReport, and the peak ever reported.
    std::uint32_t surge_waiting = 0;
    std::uint32_t surge_waiting_peak = 0;
    std::uint64_t reclaims_initiated = 0;
    std::uint64_t reclaims_completed = 0;
    std::uint64_t table_updates = 0;
    /// Sum of split durations (PoolAcquire sent → ShedDone received), µs;
    /// divide by splits_completed for the mean (T-micro-switch).
    std::uint64_t split_latency_us_sum = 0;
    /// Sum of reclaim durations (ReclaimRequest sent → ReclaimDone), µs.
    std::uint64_t reclaim_latency_us_sum = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// The admission valve (src/control/); NORMAL forever unless
  /// Config::admission.enabled.
  [[nodiscard]] const AdmissionController& admission() const {
    return admission_;
  }
  [[nodiscard]] AdmissionState admission_state() const {
    return admission_.state();
  }
  /// Local valve composed with the coordinator's directive floor —
  /// strictest wins.  This is the state enforced at the game server and
  /// the one that gates reclaim.
  [[nodiscard]] AdmissionState effective_admission_state() const {
    return compose_admission(admission_.state(), directive_floor_);
  }
  /// The coordinator's directive, as last accepted (global admission).
  [[nodiscard]] AdmissionState directive_floor() const {
    return directive_floor_;
  }
  [[nodiscard]] bool directive_active() const { return directive_active_; }

  /// The unified control-update ingestion path + failsafe machine
  /// (src/control/control_plane.h).  Every coordinator-originated state
  /// flip — announce, heartbeat, directive, pool pressure — passes through
  /// its admit() before this server acts on it.
  [[nodiscard]] const ControlPlane& control_plane() const {
    return control_plane_;
  }
  [[nodiscard]] FailsafeState failsafe_state() const {
    return control_plane_.state();
  }

  /// The load policy steering split/reclaim/grant decisions (src/policy/).
  [[nodiscard]] const LoadPolicy& policy() const { return *policy_; }
  /// The consolidated decision input the policy sees right now — exposed so
  /// tests can assert on exactly what the policy is being asked.
  [[nodiscard]] LoadView build_load_view() const;

  /// Consistency-set lookup for `point` in radius class `rc` — exposed for
  /// tests and the lookup ablation.  nullptr ⇒ empty set (interior point).
  [[nodiscard]] const OverlapRegionWire* lookup(Vec2 point,
                                                std::uint8_t rc = 0) const;

 protected:
  void on_message(const Message& message, const Envelope& envelope) override;
  /// Frame fast path: TaggedPackets — the routing hot path — are handled
  /// from a zero-copy partial parse; peer forwards resend the raw frame
  /// with the peer flag flipped in place instead of decode → re-encode.
  bool on_frame(const Envelope& envelope) override;

 private:
  struct ChildInfo {
    ServerId server;
    NodeId matrix_node;
    NodeId game_node;
    Rect range;
    /// Token issued in the Adopt message (our topology epoch at adoption);
    /// reclaim requests carry it so stale retries are provably harmless.
    std::uint64_t adoption_token = 0;
    std::uint32_t last_clients = 0;
    std::uint32_t last_children = 0;
    bool load_known = false;
  };

  // message handlers
  void route_tagged_frame(const TaggedPacketView& view, const Envelope& env);
  /// Forwards the received frame to `peer` with the peer_forwarded flag set —
  /// byte-identical to re-encoding the packet with the flag mutated.
  std::size_t send_peer_frame(NodeId peer,
                              const std::vector<std::uint8_t>& frame,
                              std::size_t flag_offset);
  void handle_load_report(const LoadReport& report);
  void handle_pool_grant(const PoolGrant& grant);
  void handle_adopt(const Adopt& adopt);
  void handle_overlap_table(const OverlapTableMsg& table);
  void handle_peer_load(const PeerLoad& load);
  void handle_reclaim_request(const ReclaimRequest& request);
  void handle_reclaim_decline(const ReclaimDecline& decline);
  void handle_reclaim_done(const ReclaimDone& done);
  void handle_shed_done(const ShedDone& done);
  void handle_point_owner(const PointOwner& owner);

  // admission control (src/control/)
  void observe_admission(std::uint32_t clients, std::uint32_t queue_len,
                         std::uint32_t waiting_count);
  void push_admission_to_game();
  void clear_pool_denial_episode();
  void handle_admission_directive(const AdmissionDirective& directive);
  void apply_admission_directive(const AdmissionDirective& directive);
  void reset_directive();

  // control-plane failsafe (src/control/control_plane.h)
  void handle_mc_heartbeat(const McHeartbeat& beat);
  void start_failsafe(SimTime at);
  void schedule_failsafe_tick();
  void on_failsafe_degraded();

  // split / reclaim machinery (decisions delegated to policy_)
  void maybe_split();
  void maybe_reclaim();
  [[nodiscard]] bool can_change_topology() const;

  void register_with_mc();
  void push_range_to_game(const Rect& shed_range, NodeId shed_to_game,
                          ServerId shed_to_server, bool reclaim);
  void schedule_heartbeat();
  void deactivate();

  ServerId id_;
  Config config_;
  Wiring wiring_;

  bool active_ = false;
  Rect range_;
  std::vector<double> radii_;
  std::vector<std::string> content_keys_;

  ServerId parent_;
  NodeId parent_matrix_;
  NodeId parent_game_;
  std::vector<ChildInfo> children_;  ///< LIFO: only the back is reclaimable

  // Per-radius-class routing tables, installed by the MC.
  std::vector<RegionIndex> tables_;
  std::vector<std::uint64_t> table_versions_;

  LoadReport last_report_;
  std::uint32_t consecutive_overload_ = 0;
  SimTime cooldown_until_{};
  /// Idle fraction of the deployment pool, per the MC's latest
  /// PoolPressure; negative ⇒ never heard.
  double pool_idle_fraction_ = -1.0;
  std::uint64_t admission_seq_ = 0;
  // Coordinator-led global admission (src/control/global_admission.h):
  // the directive floor composes with the local valve, strictest wins.
  AdmissionState directive_floor_ = AdmissionState::kNormal;
  bool directive_active_ = false;
  /// Pressure score / deployment-wide waiting total carried by the latest
  /// accepted directive (LoadView inputs for the policy).
  double directive_pressure_ = 0.0;
  std::uint32_t directive_waiting_total_ = 0;
  /// Seq space of directives relayed to OUR game server (survives MC
  /// fail-over, unlike the MC's own numbering).
  std::uint64_t game_directive_seq_ = 0;
  SimTime split_started_at_{};
  SimTime reclaim_started_at_{};
  /// While reclaim_pending_: when to re-send the request (lost-message
  /// recovery; safe because requests carry the adoption token).
  SimTime reclaim_retry_at_{};
  bool split_pending_ = false;
  bool reclaim_pending_ = false;   ///< parent side: waiting for ReclaimDone
  bool being_reclaimed_ = false;   ///< child side: shedding everything
  std::uint64_t topology_epoch_ = 0;
  std::uint64_t activation_epoch_ = 0;  ///< guards stale heartbeat timers

  // Pending non-proximal packets awaiting MC point lookups.
  std::uint32_t next_lookup_seq_ = 1;
  std::map<std::uint32_t, TaggedPacket> pending_lookups_;
  // Pending game-server owner queries awaiting MC point lookups, keyed by
  // the MC lookup seq; value = the game's original query.
  std::map<std::uint32_t, OwnerQuery> pending_owner_queries_;

  AdmissionController admission_{config_.admission, config_.overload_clients};

  /// Unified control-update ingestion + failsafe machine.  Replaces the
  /// old scattered directive_seq_seen_ / mc_generation_ counters; the MC
  /// epoch and every per-kind seq live in exactly one place.
  ControlPlane control_plane_{config_.failsafe};

  /// Pluggable decision layer (src/policy/); ClassicPolicy by default.
  std::unique_ptr<LoadPolicy> policy_ = make_load_policy(config_);
  /// Pool-retry backoff episode (policy/denial_episode.h); mirrored into
  /// Stats::split_denied_streak / pool_backoff_us.
  PoolDenialEpisode denial_episode_{config_};

  Stats stats_;
};

}  // namespace matrix
