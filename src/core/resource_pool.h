// Resource pool — the paper's "non-Matrix external entity" (§3.2.3) that a
// Matrix server consults for an available spare server when it decides to
// split.  Grants are (Matrix-server node, game-server node) pairs; reclaimed
// servers are released back and can be granted again.
//
// For the admission subsystem (src/control/) the pool additionally reports
// its occupancy to the Matrix Coordinator whenever it changes; the MC
// rebroadcasts the resulting pool-pressure signal to every Matrix server so
// servers nearing overload can pre-emptively throttle joins when no spare
// capacity remains.
#pragma once

#include <deque>
#include <vector>

#include "core/protocol_node.h"

namespace matrix {

class ResourcePool : public ProtocolNode {
 public:
  struct Entry {
    ServerId server;
    NodeId matrix_node;
    NodeId game_node;
  };

  [[nodiscard]] std::string name() const override { return "pool"; }

  /// Points occupancy reports at the MC.  Optional: an unwired pool (unit
  /// harnesses, the static baseline) simply never reports.
  void wire(NodeId mc_node) {
    mc_node_ = mc_node;
    push_status();
  }

  /// Seeds the pool with a spare server pair (deployment-time).
  void add_entry(const Entry& entry) {
    idle_.push_back(entry);
    ++total_;
    push_status();
  }

  [[nodiscard]] std::size_t idle_count() const { return idle_.size(); }
  [[nodiscard]] std::size_t total_count() const { return total_; }
  [[nodiscard]] std::uint64_t grants() const { return grants_; }
  [[nodiscard]] std::uint64_t denies() const { return denies_; }
  [[nodiscard]] std::uint64_t releases() const { return releases_; }

 protected:
  void on_message(const Message& message, const Envelope& envelope) override {
    if (std::holds_alternative<PoolAcquire>(message)) {
      if (idle_.empty()) {
        ++denies_;
        send(envelope.src, PoolDeny{});
        return;
      }
      const Entry entry = idle_.front();
      idle_.pop_front();
      ++grants_;
      send(envelope.src,
           PoolGrant{entry.server, entry.matrix_node, entry.game_node});
      push_status();
    } else if (const auto* release = std::get_if<PoolRelease>(&message)) {
      ++releases_;
      idle_.push_back(
          {release->server, release->matrix_node, release->game_node});
      push_status();
    }
  }

 private:
  void push_status() {
    if (!mc_node_.valid() || network() == nullptr) return;
    send(mc_node_, PoolStatus{static_cast<std::uint32_t>(idle_.size()),
                              static_cast<std::uint32_t>(total_)});
  }

  std::deque<Entry> idle_;
  std::size_t total_ = 0;
  NodeId mc_node_;
  std::uint64_t grants_ = 0;
  std::uint64_t denies_ = 0;
  std::uint64_t releases_ = 0;
};

}  // namespace matrix
