// Resource pool — the paper's "non-Matrix external entity" (§3.2.3) that a
// Matrix server consults for an available spare server when it decides to
// split.  Grants are (Matrix-server node, game-server node) pairs; reclaimed
// servers are released back and can be granted again.
//
// For the admission subsystem (src/control/) the pool additionally reports
// its occupancy to the Matrix Coordinator whenever it changes; the MC
// rebroadcasts the resulting pool-pressure signal to every Matrix server so
// servers nearing overload can pre-emptively throttle joins when no spare
// capacity remains.
//
// Grant arbitration is delegated to the load-policy layer (src/policy/):
// a PoolAcquire with need == 0 (ClassicPolicy, or no coordinator directive
// in force) is answered the instant it arrives — strict FCFS, the
// historical behavior.  A positive need asks the pool to HOLD the request
// for the policy's grant window, collect competing requesters, and hand
// the contested spares to the highest need first (the partition the
// global-admission pressure score says is most starved), denying the rest.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/protocol_node.h"
#include "policy/load_policy.h"

namespace matrix {

class ResourcePool : public ProtocolNode {
 public:
  struct Entry {
    ServerId server;
    NodeId matrix_node;
    NodeId game_node;
  };

  [[nodiscard]] std::string name() const override { return "pool"; }

  /// Installs the deployment's config (and with it the grant-arbitration
  /// policy).  Optional: an unconfigured pool runs ClassicPolicy semantics
  /// for need-0 requests either way, and only ever holds need-tagged ones.
  void configure(const Config& config) { policy_ = make_load_policy(config); }

  /// Points occupancy reports at the MC.  Optional: an unwired pool (unit
  /// harnesses, the static baseline) simply never reports.
  void wire(NodeId mc_node) {
    mc_node_ = mc_node;
    push_status();
  }

  /// Seeds the pool with a spare server pair (deployment-time).
  void add_entry(const Entry& entry) {
    idle_.push_back(entry);
    ++total_;
    push_status();
  }

  [[nodiscard]] std::size_t idle_count() const { return idle_.size(); }
  [[nodiscard]] std::size_t total_count() const { return total_; }
  [[nodiscard]] std::uint64_t grants() const { return grants_; }
  [[nodiscard]] std::uint64_t denies() const { return denies_; }
  [[nodiscard]] std::uint64_t releases() const { return releases_; }
  /// Requests that went through a held-window arbitration round.
  [[nodiscard]] std::uint64_t arbitrated_requests() const {
    return arbitrated_requests_;
  }
  /// Arbitration rounds where demand exceeded the idle supply (somebody
  /// need-weighted actually displaced somebody else).
  [[nodiscard]] std::uint64_t contested_rounds() const {
    return contested_rounds_;
  }

 protected:
  void on_message(const Message& message, const Envelope& envelope) override {
    if (const auto* acquire = std::get_if<PoolAcquire>(&message)) {
      PoolRequest request;
      request.requester = acquire->requester;
      request.reply_to = envelope.src;
      request.need = acquire->need;
      request.arrival = ++arrival_counter_;
      const SimTime hold = policy().grant_hold(request);
      if (hold.us() <= 0) {
        answer_now(request);
        return;
      }
      pending_.push_back(request);
      if (!arbitration_scheduled_) {
        arbitration_scheduled_ = true;
        network()->events_for(node_id()).schedule_after(hold, [this] { arbitrate(); });
      }
    } else if (const auto* release = std::get_if<PoolRelease>(&message)) {
      ++releases_;
      idle_.push_back(
          {release->server, release->matrix_node, release->game_node});
      push_status();
    }
  }

 private:
  /// The immediate (classic / need-0) path: grant the oldest idle spare or
  /// deny on the spot.
  void answer_now(const PoolRequest& request) {
    if (idle_.empty()) {
      ++denies_;
      send(request.reply_to, PoolDeny{});
      return;
    }
    const Entry entry = idle_.front();
    idle_.pop_front();
    ++grants_;
    send(request.reply_to,
         PoolGrant{entry.server, entry.matrix_node, entry.game_node});
    push_status();
  }

  /// Window close: the policy orders the held requests; grants walk that
  /// order until the idle list runs dry, everyone else is denied.
  void arbitrate() {
    arbitration_scheduled_ = false;
    std::vector<PoolRequest> requests;
    requests.swap(pending_);
    if (requests.empty()) return;
    arbitrated_requests_ += requests.size();
    // Contested = actual competitors for too few spares; a solo request
    // against a dry pool is just a deny, not an arbitration outcome.
    if (requests.size() > 1 && requests.size() > idle_.size()) {
      ++contested_rounds_;
    }
    const PoolGrantDecision decision = policy().arbitrate(requests);
    if (!decision.order.empty()) {
      const PoolRequest& winner = requests[decision.order.front()];
      network()->tracer().record(
          now(), obs::TraceKind::kPoolArbitrated, winner.requester.value(), 0,
          static_cast<std::int64_t>(requests.size()), winner.need);
    }
    for (std::size_t index : decision.order) {
      answer_now(requests[index]);
    }
  }

  [[nodiscard]] const LoadPolicy& policy() {
    if (policy_ == nullptr) policy_ = make_load_policy(Config{});
    return *policy_;
  }

  void push_status() {
    if (!mc_node_.valid() || network() == nullptr) return;
    send(mc_node_, PoolStatus{static_cast<std::uint32_t>(idle_.size()),
                              static_cast<std::uint32_t>(total_)});
  }

  std::deque<Entry> idle_;
  std::size_t total_ = 0;
  NodeId mc_node_;
  std::unique_ptr<LoadPolicy> policy_;
  std::vector<PoolRequest> pending_;
  bool arbitration_scheduled_ = false;
  std::uint64_t arrival_counter_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t denies_ = 0;
  std::uint64_t releases_ = 0;
  std::uint64_t arbitrated_requests_ = 0;
  std::uint64_t contested_rounds_ = 0;
};

}  // namespace matrix
