// QuadtreeIndex — an alternative point → overlap-region index.
//
// The shipped RegionIndex uses a uniform bucket grid (O(1) expected).  A
// quadtree is the textbook alternative: it adapts to skewed region
// geometry (deep subdivision only where regions crowd together) at the
// cost of O(depth) pointer chasing per lookup.  The A-lookup ablation
// bench compares the two; tests assert they always agree.  Matrix keeps
// the grid as default — game-world overlap regions are close to uniform
// strips, the grid's best case.
#pragma once

#include <memory>
#include <vector>

#include "core/protocol.h"
#include "geometry/rect.h"

namespace matrix {

class QuadtreeIndex {
 public:
  QuadtreeIndex() = default;

  /// Builds over `regions` clipped to `partition`.  `max_leaf_regions` and
  /// `max_depth` bound subdivision.
  QuadtreeIndex(const Rect& partition, std::vector<OverlapRegionWire> regions,
                std::size_t max_leaf_regions = 4, std::size_t max_depth = 10);

  /// The region containing `p`, or nullptr (interior / outside).
  [[nodiscard]] const OverlapRegionWire* find(Vec2 p) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return regions_.empty(); }

 private:
  struct TreeNode {
    Rect bounds;
    // Leaf: candidate region indices.  Internal: children[] indices into
    // nodes_ (0 = none; node 0 is the root so 0 is never a child).
    std::vector<std::uint32_t> candidates;
    std::uint32_t children[4] = {0, 0, 0, 0};
    bool leaf = true;
  };

  void build(std::uint32_t node, const std::vector<std::uint32_t>& candidates,
             std::size_t depth, std::size_t max_leaf, std::size_t max_depth);

  Rect partition_;
  std::vector<OverlapRegionWire> regions_;
  std::vector<TreeNode> nodes_;
};

}  // namespace matrix
