// Registry collection — one call that walks a finished Deployment and
// snapshots every scattered stats struct into a named obs::Registry (see
// registry.h for the naming scheme).  This is the single source the benches'
// --json reports, quickstart's artifacts, and CI's registry dump all share,
// so every exporter agrees on names and derivations.
#pragma once

#include "obs/registry.h"

namespace matrix {
class Deployment;
}  // namespace matrix

namespace matrix::obs {

/// Snapshots `deployment` into a Registry.  Non-const because the traffic
/// breakdown walks mutable link records (sim/metrics.h collect_traffic).
/// Includes trace.spans.* histograms when the deployment's tracer is
/// enabled.
[[nodiscard]] Registry collect_registry(Deployment& deployment);

}  // namespace matrix::obs
