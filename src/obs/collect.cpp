#include "obs/collect.h"

#include "obs/trace.h"
#include "sim/deployment.h"
#include "sim/metrics.h"

namespace matrix::obs {

Registry collect_registry(Deployment& deployment) {
  Registry registry;
  Network& net = deployment.network();

  // ---- engine ---------------------------------------------------------------
  const Network::EngineStats engine = net.engine_stats();
  registry.counter("engine.events_processed", engine.events_processed);
  registry.gauge("engine.event_peak_pending",
                 static_cast<double>(engine.event_peak_pending));
  registry.counter("engine.buffers_acquired", engine.buffers_acquired);
  registry.counter("engine.buffers_reused", engine.buffers_reused);
  registry.gauge("engine.buffers_idle",
                 static_cast<double>(engine.buffers_idle));
  registry.counter("engine.rebalance_count", engine.rebalances);
  registry.counter("engine.window_stall_us", engine.window_stall_us, "us");
  for (std::size_t i = 0; i < engine.shard_events.size(); ++i) {
    registry.counter("engine.shard." + std::to_string(i) + ".events",
                     engine.shard_events[i]);
  }

  // ---- network --------------------------------------------------------------
  registry.counter("net.messages", net.total_messages(), "msgs");
  registry.counter("net.bytes", net.total_bytes(), "bytes");
  registry.counter("net.dropped", net.total_dropped(), "msgs");
  const TrafficBreakdown traffic = collect_traffic(deployment);
  registry.counter("net.bytes.client_server", traffic.client_to_server,
                   "bytes");
  registry.counter("net.bytes.game_matrix", traffic.game_to_matrix, "bytes");
  registry.counter("net.bytes.matrix_matrix", traffic.matrix_to_matrix,
                   "bytes");
  registry.counter("net.bytes.matrix_mc", traffic.matrix_to_mc, "bytes");

  // ---- topology (Matrix control plane) --------------------------------------
  std::uint64_t splits_initiated = 0, splits_completed = 0;
  std::uint64_t proactive_splits = 0, split_denied = 0;
  std::uint64_t reclaims_initiated = 0, reclaims_completed = 0;
  std::uint64_t split_latency_us = 0, reclaim_latency_us = 0;
  std::uint64_t fanout = 0, nonproximal = 0, table_updates = 0;
  for (const MatrixServer* server : deployment.matrix_servers()) {
    const MatrixServer::Stats& s = server->stats();
    splits_initiated += s.splits_initiated;
    splits_completed += s.splits_completed;
    proactive_splits += s.proactive_splits;
    split_denied += s.split_denied_no_server;
    reclaims_initiated += s.reclaims_initiated;
    reclaims_completed += s.reclaims_completed;
    split_latency_us += s.split_latency_us_sum;
    reclaim_latency_us += s.reclaim_latency_us_sum;
    fanout += s.packets_fanned_out;
    nonproximal += s.nonproximal_lookups;
    table_updates += s.table_updates;
  }
  registry.counter("topology.splits_initiated", splits_initiated);
  registry.counter("topology.splits_completed", splits_completed);
  registry.counter("topology.proactive_splits", proactive_splits);
  registry.counter("topology.splits_denied", split_denied);
  registry.counter("topology.reclaims_initiated", reclaims_initiated);
  registry.counter("topology.reclaims_completed", reclaims_completed);
  registry.gauge("topology.split_latency_mean_ms",
                 splits_completed == 0
                     ? 0.0
                     : static_cast<double>(split_latency_us) / 1000.0 /
                           static_cast<double>(splits_completed),
                 "ms");
  registry.gauge("topology.reclaim_latency_mean_ms",
                 reclaims_completed == 0
                     ? 0.0
                     : static_cast<double>(reclaim_latency_us) / 1000.0 /
                           static_cast<double>(reclaims_completed),
                 "ms");
  registry.counter("topology.packets_fanned_out", fanout, "msgs");
  registry.counter("topology.nonproximal_lookups", nonproximal);
  registry.counter("topology.table_updates", table_updates);
  registry.gauge("topology.active_servers",
                 static_cast<double>(deployment.active_server_count()));

  // ---- resource pool --------------------------------------------------------
  const ResourcePool& pool = deployment.pool();
  registry.counter("pool.grants", pool.grants());
  registry.counter("pool.denies", pool.denies());
  registry.counter("pool.releases", pool.releases());
  registry.counter("pool.arbitrated_requests", pool.arbitrated_requests());
  registry.counter("pool.contested_rounds", pool.contested_rounds());
  registry.gauge("pool.idle", static_cast<double>(pool.idle_count()));
  registry.gauge("pool.total", static_cast<double>(pool.total_count()));

  // ---- admission ------------------------------------------------------------
  const AdmissionSummary admission = collect_admission(deployment);
  registry.counter("admission.joins_denied", admission.joins_denied);
  registry.counter("admission.joins_deferred", admission.joins_deferred);
  registry.counter("admission.resumes_admitted", admission.resumes_admitted);
  registry.counter("admission.transitions", admission.transitions);
  registry.counter("admission.escalations", admission.escalations);
  registry.counter("admission.relaxations", admission.relaxations);
  registry.gauge("admission.timelines_valid",
                 admission.timelines_valid ? 1.0 : 0.0);
  registry.counter("admission.queue.parked", admission.joins_queued);
  registry.counter("admission.queue.admitted", admission.queue_admitted);
  registry.counter("admission.queue.overflow", admission.queue_overflow);
  registry.counter("admission.queue.flushed", admission.queue_flushed);
  registry.counter("admission.queue.handed_off", admission.queue_handed_off);
  registry.counter("admission.queue.adopted", admission.queue_adopted);
  registry.gauge("admission.queue.max_depth",
                 static_cast<double>(admission.max_queue_depth));
  registry.counter("admission.directives_broadcast",
                   admission.directives_broadcast);
  registry.counter("admission.directives_applied",
                   admission.directives_applied);

  // ---- clients --------------------------------------------------------------
  std::uint64_t hellos = 0, actions = 0, redirected = 0, migrated = 0;
  for (const GameServer* server : deployment.game_servers()) {
    const GameServer::Stats& s = server->stats();
    hellos += s.hellos;
    actions += s.actions;
    redirected += s.clients_redirected;
    migrated += s.clients_migrated;
  }
  registry.gauge("clients.connected",
                 static_cast<double>(deployment.total_clients()));
  registry.counter("clients.hellos", hellos);
  registry.counter("clients.actions", actions);
  registry.counter("clients.redirected", redirected);
  registry.counter("clients.migrated", migrated);

  // ---- bot-side latency -----------------------------------------------------
  const LatencySummary latency = collect_latency(deployment);
  registry.counter("latency.self.count", latency.self_ms.count());
  registry.gauge("latency.self.mean_ms", latency.self_ms.mean(), "ms");
  registry.gauge("latency.self.p99_ms", latency.self_ms.percentile(99.0),
                 "ms");
  registry.counter("latency.switch.count", latency.switch_ms.count());
  registry.gauge("latency.switch.mean_ms", latency.switch_ms.mean(), "ms");
  registry.gauge("latency.switch.p99_ms", latency.switch_ms.percentile(99.0),
                 "ms");

  // ---- trace spans (when the tracer ran) ------------------------------------
  const Tracer& tracer = net.tracer();
  if (tracer.enabled()) {
    registry.counter("trace.events_recorded", tracer.events_recorded());
    registry.counter("trace.span_drops", tracer.span_drops());
    for (std::size_t k = 0; k < static_cast<std::size_t>(SpanKind::kCount);
         ++k) {
      const auto kind = static_cast<SpanKind>(k);
      registry.histogram(std::string("trace.spans.") + span_kind_name(kind),
                         tracer.histogram(kind));
      registry.gauge(std::string("trace.spans.") + span_kind_name(kind) +
                         ".open",
                     static_cast<double>(tracer.open_span_count(kind)));
    }
  }

  return registry;
}

}  // namespace matrix::obs
