// Unified metrics registry (docs/OBSERVABILITY.md, "Registry").
//
// One named home for every number the deployment can report: the scattered
// stats structs (MatrixServer::Stats, Network::EngineStats, pool counters,
// bot tallies, admission summaries) register here under a dotted-lowercase
// naming scheme — engine.*, net.*, topology.*, admission.*, pool.*,
// clients.*, latency.*, trace.spans.* — and export uniformly: JSONL, CSV,
// or straight into a bench's --json report (bench/bench_common.h).
//
// The registry is a POST-RUN artifact: collect_registry (obs/collect.h)
// walks a finished Deployment and snapshots everything.  Nothing here is on
// the hot path, so plain std::string/vector are fine.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace matrix::obs {

class LogHistogram;

enum class MetricType : std::uint8_t { kCounter, kGauge };

/// One named value.  Counters are monotonic event tallies; gauges are
/// instantaneous or derived values (depths, rates, percentiles).
struct Metric {
  std::string name;
  MetricType type = MetricType::kCounter;
  double value = 0.0;
  std::string unit;  ///< "", "ms", "bytes", "msgs", ...
};

class Registry {
 public:
  void counter(std::string name, std::uint64_t value, std::string unit = "");
  void gauge(std::string name, double value, std::string unit = "");
  /// Expands a span histogram into <name>.count/.mean_ms/.p50_ms/.p99_ms/
  /// .max_ms gauges — the uniform shape every latency metric exports as.
  void histogram(const std::string& name, const LogHistogram& h);

  [[nodiscard]] const std::vector<Metric>& metrics() const { return metrics_; }
  [[nodiscard]] bool has(const std::string& name) const;
  /// Value of `name`, or 0.0 if absent.
  [[nodiscard]] double value(const std::string& name) const;

  /// One {"name":...,"type":...,"value":...,"unit":...} object per line.
  void write_jsonl(std::ostream& out) const;
  bool write_jsonl(const std::string& path) const;
  /// Header "name,type,value,unit" then one row per metric.
  void write_csv(std::ostream& out) const;
  bool write_csv(const std::string& path) const;

 private:
  std::vector<Metric> metrics_;
};

}  // namespace matrix::obs
