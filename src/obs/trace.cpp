#include "obs/trace.h"

#include <cstdlib>
#include <fstream>
#include <ostream>

namespace matrix::obs {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend: return "send";
    case TraceKind::kClientHello: return "client_hello";
    case TraceKind::kClientAdmitted: return "client_admitted";
    case TraceKind::kClientDenied: return "client_denied";
    case TraceKind::kClientDeferred: return "client_deferred";
    case TraceKind::kClientQueued: return "client_queued";
    case TraceKind::kClientRedirected: return "client_redirected";
    case TraceKind::kClientBye: return "client_bye";
    case TraceKind::kSplitRequested: return "split_requested";
    case TraceKind::kPoolGranted: return "pool_granted";
    case TraceKind::kPoolDenied: return "pool_denied";
    case TraceKind::kPoolArbitrated: return "pool_arbitrated";
    case TraceKind::kSplitCompleted: return "split_completed";
    case TraceKind::kReclaimRequested: return "reclaim_requested";
    case TraceKind::kReclaimDeclined: return "reclaim_declined";
    case TraceKind::kReclaimCompleted: return "reclaim_completed";
    case TraceKind::kAdopted: return "adopted";
    case TraceKind::kDeactivated: return "deactivated";
    case TraceKind::kAdmissionTransition: return "admission_transition";
    case TraceKind::kDirectiveBroadcast: return "directive_broadcast";
    case TraceKind::kDirectiveApplied: return "directive_applied";
    case TraceKind::kQueueHandoff: return "queue_handoff";
    case TraceKind::kQueueHandoffSent: return "queue_handoff_sent";
    case TraceKind::kQueueHandoffDrop: return "queue_handoff_drop";
    case TraceKind::kFailsafeTransition: return "failsafe_transition";
    case TraceKind::kControlEpochFlip: return "control_epoch_flip";
    case TraceKind::kControlStaleDrop: return "control_stale_drop";
    case TraceKind::kControlApplied: return "control_applied";
    case TraceKind::kShardRebalance: return "shard_rebalance";
    case TraceKind::kCount: break;
  }
  return "?";
}

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAdmit: return "admit";
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kSplit: return "split";
    case SpanKind::kReclaim: return "reclaim";
    case SpanKind::kHandoff: return "handoff";
    case SpanKind::kCount: break;
  }
  return "?";
}

double LogHistogram::percentile_ms(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the target sample (1-based), then walk buckets to find it.
  const auto rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Upper bound of bucket i is 2^i - 1 µs (bucket 0 holds exactly 0).
      const std::uint64_t upper = i == 0 ? 0 : (1ULL << i) - 1;
      const double bounded =
          static_cast<double>(upper < max_us_ ? upper : max_us_);
      return bounded / 1000.0;
    }
  }
  return max_ms();
}

namespace {

/// Smallest power of two ≥ n (and ≥ 16).
std::size_t pow2_at_least(std::size_t n) {
  std::size_t cap = 16;
  while (cap < n) cap *= 2;
  return cap;
}

}  // namespace

void Tracer::enable(TraceOptions options) {
  if (options.ring_capacity == 0) options.ring_capacity = 1;
  if (options.span_capacity == 0) options.span_capacity = 1;
  if (enabled_ && options_.ring_capacity == options.ring_capacity &&
      options_.span_capacity == options.span_capacity) {
    options_.record_sends = options.record_sends;
    return;  // re-enable with the same shape keeps existing data
  }
  options_ = options;
  ring_.assign(options_.ring_capacity, TraceEvent{});
  // ≤50% load factor: table twice the advertised capacity, power of two so
  // probing can mask instead of mod.
  spans_.assign(pow2_at_least(options_.span_capacity * 2), OpenSpan{});
  spans_open_ = 0;
  total_events_ = 0;
  span_drops_ = 0;
  enabled_ = true;
}

void Tracer::push(SimTime at, TraceKind kind, std::uint64_t subject,
                  std::uint64_t actor, std::int64_t a, std::int64_t b) {
  TraceEvent& slot = ring_[total_events_ % ring_.size()];
  slot.at = at;
  slot.kind = kind;
  slot.subject = subject;
  slot.actor = actor;
  slot.a = a;
  slot.b = b;
  ++total_events_;
}

std::uint64_t Tracer::span_hash(SpanKind kind, std::uint64_t key) {
  // splitmix64 finalizer over (kind, key) — cheap and well-mixed for the
  // dense sequential ids the deployment hands out.
  std::uint64_t x = key ^ (static_cast<std::uint64_t>(kind) << 56);
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::size_t Tracer::span_slot(SpanKind kind, std::uint64_t key) const {
  const std::size_t mask = spans_.size() - 1;
  std::size_t i = static_cast<std::size_t>(span_hash(kind, key)) & mask;
  while (spans_[i].used && (spans_[i].kind != kind || spans_[i].key != key)) {
    i = (i + 1) & mask;
  }
  return i;  // either the matching slot or the first empty one
}

void Tracer::span_insert(SimTime at, SpanKind kind, std::uint64_t key) {
  const std::size_t i = span_slot(kind, key);
  if (spans_[i].used) return;  // already open: first event wins
  if (spans_open_ >= options_.span_capacity) {
    ++span_drops_;
    return;
  }
  spans_[i].used = true;
  spans_[i].kind = kind;
  spans_[i].key = key;
  spans_[i].opened_at = at;
  ++spans_open_;
}

bool Tracer::span_erase(SimTime at, SpanKind kind, std::uint64_t key,
                        bool success) {
  std::size_t i = span_slot(kind, key);
  if (!spans_[i].used) return false;
  if (success) {
    histograms_[static_cast<std::size_t>(kind)].record_us(
        at.us() - spans_[i].opened_at.us());
  }
  --spans_open_;
  // Backward-shift deletion keeps probe chains intact without tombstones,
  // so the table never degrades however many spans open and close.
  const std::size_t mask = spans_.size() - 1;
  std::size_t hole = i;
  std::size_t j = (i + 1) & mask;
  while (spans_[j].used) {
    const std::size_t home =
        static_cast<std::size_t>(span_hash(spans_[j].kind, spans_[j].key)) &
        mask;
    // Move j into the hole if its home position does not sit strictly
    // between the hole (exclusive) and j (inclusive) — the standard
    // Robin-Hood shift condition handling wraparound.
    const bool reachable = ((j - home) & mask) >= ((j - hole) & mask);
    if (reachable) {
      spans_[hole] = spans_[j];
      hole = j;
    }
    j = (j + 1) & mask;
  }
  spans_[hole].used = false;
  return true;
}

bool Tracer::span_open(SpanKind kind, std::uint64_t key) const {
  if (!enabled_) return false;
  return spans_[span_slot(kind, key)].used;
}

std::size_t Tracer::open_span_count(SpanKind kind) const {
  if (!enabled_) return 0;
  std::size_t n = 0;
  for (const OpenSpan& span : spans_) {
    if (span.used && span.kind == kind) ++n;
  }
  return n;
}

std::vector<std::uint64_t> Tracer::open_span_keys(SpanKind kind) const {
  std::vector<std::uint64_t> keys;
  if (!enabled_) return keys;
  for (const OpenSpan& span : spans_) {
    if (span.used && span.kind == kind) keys.push_back(span.key);
  }
  return keys;
}

std::vector<TraceEvent> Tracer::ring_snapshot() const {
  std::vector<TraceEvent> events;
  if (!enabled_ || total_events_ == 0) return events;
  const std::size_t cap = ring_.size();
  const std::size_t held =
      total_events_ < cap ? static_cast<std::size_t>(total_events_) : cap;
  events.reserve(held);
  const std::uint64_t first = total_events_ - held;
  for (std::size_t k = 0; k < held; ++k) {
    events.push_back(ring_[(first + k) % cap]);
  }
  return events;
}

void Tracer::dump_jsonl(std::ostream& out) const {
  for (const TraceEvent& e : ring_snapshot()) {
    out << "{\"t_us\":" << e.at.us() << ",\"kind\":\""
        << trace_kind_name(e.kind) << "\",\"subject\":" << e.subject
        << ",\"actor\":" << e.actor << ",\"a\":" << e.a << ",\"b\":" << e.b
        << "}\n";
  }
}

bool Tracer::dump_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  dump_jsonl(out);
  return static_cast<bool>(out);
}

bool default_trace_enabled() {
  static const bool enabled = [] {
    const char* value = std::getenv("MATRIX_TRACE");
    if (value == nullptr) return false;
    const std::string v(value);
    return v == "1" || v == "on" || v == "true";
  }();
  return enabled;
}

}  // namespace matrix::obs
