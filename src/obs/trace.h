// Structured tracing + flight recorder (docs/OBSERVABILITY.md).
//
// The observability substrate the ROADMAP's invariants harness needs: typed,
// sim-time-stamped trace events emitted from hooks in the core/control/game
// layers, a fixed-capacity ring buffer of the most recent events (the
// "flight recorder"), and span pairing so lifecycle latencies — time to
// admit, queue wait, split latency, handoff latency — fall out as
// histograms instead of ad-hoc bot bookkeeping.
//
// The contract that shapes every line here is PASSIVITY:
//
//   * Disabled (the default), every hook is a single predictable branch on
//     `enabled_`.  No allocation, no RNG draw, no message, no event — the
//     pinned golden-trace hashes in tests/determinism_test.cpp are the proof.
//   * Enabled, recording writes only into storage preallocated by enable():
//     the event ring, the open-span table, and fixed-bucket histograms.  The
//     hot path never allocates (same discipline as BufferPool) and never
//     sends, so traces describe the run without perturbing it — the
//     enabled-passivity determinism test pins that too.
//
// The Tracer lives on the Network (one per deployment, reachable from every
// Node via network()->tracer()), which also lets Network::send feed the ring
// on the same walk the FNV-1a golden-trace hasher already does.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace matrix::obs {

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

/// Every structured event the deployment can emit.  Grouped by lifecycle;
/// docs/OBSERVABILITY.md tabulates subject/actor/a/b semantics per kind.
enum class TraceKind : std::uint8_t {
  // ---- engine -------------------------------------------------------------
  kSend = 0,            ///< Network::send — subject=src, actor=dst, a=wire, b=dropped

  // ---- client lifecycle ---------------------------------------------------
  kClientHello,         ///< subject=client, actor=game node, a=resume flag
  kClientAdmitted,      ///< subject=client, actor=game node, a=redirect_seq
  kClientDenied,        ///< subject=client, actor=game node, a=deny reason
  kClientDeferred,      ///< subject=client, actor=game node, a=defer reason
  kClientQueued,        ///< subject=client, actor=game node, a=priority class
  kClientRedirected,    ///< subject=client, actor=old game node, a=new game node
  kClientBye,           ///< subject=client, actor=game node,
                        ///< a=1 a live session was found (0: none held)

  // ---- partition lifecycle ------------------------------------------------
  kSplitRequested,      ///< subject=server, a=proactive flag, b=need score
  kPoolGranted,         ///< subject=requesting server, actor=granted server
  kPoolDenied,          ///< subject=requesting server
  kPoolArbitrated,      ///< subject=winning server, a=contenders, b=winning need
  kSplitCompleted,      ///< subject=parent server, actor=child server
  kReclaimRequested,    ///< subject=parent server, actor=child server
  kReclaimDeclined,     ///< subject=parent server, actor=child server
  kReclaimCompleted,    ///< subject=parent server, actor=child server
  kAdopted,             ///< subject=child server, actor=new parent server
  kDeactivated,         ///< subject=server

  // ---- admission / directives ---------------------------------------------
  kAdmissionTransition, ///< subject=server, a=new state, b=old state
  kDirectiveBroadcast,  ///< subject=server targeted, a=floor state
  kDirectiveApplied,    ///< subject=server, a=floor state
  kQueueHandoff,        ///< adopted: subject=client, actor=source server,
                        ///< a=adopting game node, b=original enqueued_at µs
  kQueueHandoffSent,    ///< subject=client, actor=source game node,
                        ///< a=dst game node, b=enqueued_at µs
  kQueueHandoffDrop,    ///< duplicate-race skip at the destination:
                        ///< subject=client, actor=game node,
                        ///< a=1 already has session / 2 already queued

  // ---- control-plane failsafe ----------------------------------------------
  kFailsafeTransition,  ///< subject=node, a=new failsafe state, b=old state
  kControlEpochFlip,    ///< subject=node, a=new MC epoch, b=old epoch
  kControlStaleDrop,    ///< stale control update rejected: subject=node,
                        ///< actor=ControlKind, a=epoch, b=seq
  kControlApplied,      ///< sequenced control update applied: subject=node,
                        ///< actor=ControlKind, a=epoch, b=seq

  // ---- parallel engine ------------------------------------------------------
  kShardRebalance,      ///< colocated group migrated between shards:
                        ///< subject=first node of the group, actor=source
                        ///< shard, a=destination shard, b=imbalance ratio
                        ///< (busiest/mean, permille)

  kCount,
};

[[nodiscard]] const char* trace_kind_name(TraceKind kind);

/// One recorded event.  POD, fixed size, so the flight-recorder ring is a
/// flat preallocated array and recording is a handful of stores.
struct TraceEvent {
  SimTime at{};
  TraceKind kind = TraceKind::kSend;
  std::uint64_t subject = 0;  ///< primary id (client, server, src node...)
  std::uint64_t actor = 0;    ///< secondary id (peer node, child server...)
  std::int64_t a = 0;         ///< kind-specific detail
  std::int64_t b = 0;         ///< kind-specific detail
};

// ---------------------------------------------------------------------------
// Allocation-free latency histogram
// ---------------------------------------------------------------------------

/// Fixed-bucket log2 histogram of microsecond durations.  util/stats.h's
/// Histogram stores every sample (it allocates on add — fine post-run, fatal
/// on the hot path); this one is 64 counters, so span closing stays
/// allocation-free.  Bucket i holds durations whose bit width is i, i.e.
/// [2^(i-1), 2^i); percentiles are bucket-upper-bound estimates while count,
/// sum, mean, and max are exact.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record_us(std::int64_t us) {
    if (us < 0) us = 0;
    const auto v = static_cast<std::uint64_t>(us);
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_us_ += v;
    if (v > max_us_) max_us_ = v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum_us() const { return sum_us_; }
  [[nodiscard]] std::uint64_t max_us() const { return max_us_; }
  [[nodiscard]] double mean_ms() const {
    if (count_ == 0) return 0.0;
    return static_cast<double>(sum_us_) / static_cast<double>(count_) / 1000.0;
  }
  [[nodiscard]] double max_ms() const {
    return static_cast<double>(max_us_) / 1000.0;
  }
  /// Upper bound of the bucket containing percentile `p` (0..100), in ms.
  /// 0 when empty (matching util/stats.h Histogram::percentile).
  [[nodiscard]] double percentile_ms(double p) const;
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return i < kBuckets ? buckets_[i] : 0;
  }

 private:
  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t bits = 0;
    while (v != 0) {
      ++bits;
      v >>= 1;
    }
    return bits < kBuckets ? bits : kBuckets - 1;
  }

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_us_ = 0;
  std::uint64_t max_us_ = 0;
};

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Paired open/close intervals whose durations feed per-kind histograms.
enum class SpanKind : std::uint8_t {
  kAdmit = 0,  ///< hello → Welcome (fresh admits; key = client id)
  kQueueWait,  ///< parked in the waiting room → drained (key = client id)
  kSplit,      ///< split initiated → shed acked (key = parent server id)
  kReclaim,    ///< reclaim requested → merge done (key = parent server id)
  kHandoff,    ///< Redirect sent → resumed on new server (key = client id)
  kCount,
};

[[nodiscard]] const char* span_kind_name(SpanKind kind);

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// Sizing knobs; mirrored by Config::obs (core/config.h) so deployments can
/// set them without including this header everywhere.
struct TraceOptions {
  /// Flight-recorder depth: the ring keeps the most recent this-many events.
  std::size_t ring_capacity = 8192;
  /// Concurrently-open span capacity.  The table is open-addressed at ≤50%
  /// load; opens beyond that are counted in span_drops() and dropped.
  std::size_t span_capacity = 1 << 15;
  /// Record a kSend event for every Network::send.  The firehose: great for
  /// flight-recorder forensics, noisy for lifecycle timelines.
  bool record_sends = true;
};

/// The deployment-wide trace sink: flight-recorder ring + open-span table +
/// per-span-kind latency histograms.  Disabled by default; enable()
/// preallocates everything so recording never allocates.
///
/// Sharded engine (net/network.h): each worker shard gets a Tracer in
/// DEFERRED mode (defer_like()).  A deferred tracer buffers every
/// record/open/close as a DeferredOp instead of touching ring/span state;
/// the engine replays the per-shard buffers into the one master tracer at
/// every window barrier, k-way merged in (time, shard) order, so the master
/// stays coherent — and deterministic for a fixed shard count — without any
/// cross-thread writes.  Cross-shard spans (e.g. a kHandoff opened on one
/// server's shard and closed on another's) pair correctly because both ops
/// land in the same master table in time order.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Turns recording on, preallocating the ring and span table.  Idempotent
  /// re-enable with the same options keeps existing data.
  void enable(TraceOptions options = {});
  [[nodiscard]] bool enabled() const { return enabled_; }
  /// Fast gate for Network::send's per-message hook.
  [[nodiscard]] bool records_sends() const {
    return enabled_ && options_.record_sends;
  }

  /// One buffered trace operation of a deferred (shard-local) tracer.
  struct DeferredOp {
    SimTime at{};
    std::uint8_t op = 0;  ///< 0 = record, 1 = open_span, 2 = close_span
    TraceKind kind = TraceKind::kSend;
    SpanKind span = SpanKind::kAdmit;
    bool success = true;
    std::uint64_t subject = 0;
    std::uint64_t actor = 0;
    std::int64_t a = 0;
    std::int64_t b = 0;
  };

  /// Puts this tracer in deferred mode, mirroring `master`'s enablement so
  /// the hot-path gates (enabled(), records_sends()) answer identically.
  void defer_like(const Tracer& master) {
    deferred_ = true;
    enabled_ = master.enabled_;
    options_ = master.options_;
    ops_.clear();
  }
  [[nodiscard]] bool deferred() const { return deferred_; }
  /// Buffered ops since the last barrier (time-sorted: sim time within one
  /// shard window is monotone).  The engine drains and clear()s this.
  [[nodiscard]] std::vector<DeferredOp>& deferred_ops() { return ops_; }
  /// Replays one drained op into this (master) tracer.
  void apply(const DeferredOp& op) {
    switch (op.op) {
      case 0: record(op.at, op.kind, op.subject, op.actor, op.a, op.b); break;
      case 1: open_span(op.at, op.span, op.subject); break;
      default: close_span(op.at, op.span, op.subject, op.success); break;
    }
  }

  /// Records one event into the ring.  A no-op branch when disabled.
  void record(SimTime at, TraceKind kind, std::uint64_t subject,
              std::uint64_t actor = 0, std::int64_t a = 0,
              std::int64_t b = 0) {
    if (!enabled_) return;
    if (deferred_) {
      ops_.push_back({at, 0, kind, SpanKind::kAdmit, true, subject, actor, a, b});
      return;
    }
    push(at, kind, subject, actor, a, b);
  }

  /// Opens a span of `kind` keyed by `key` (client or server id).  Opening
  /// an already-open span keeps the earlier start (first event wins — a
  /// retry does not erase the wait already served).
  void open_span(SimTime at, SpanKind kind, std::uint64_t key) {
    if (!enabled_) return;
    if (deferred_) {
      ops_.push_back({at, 1, TraceKind::kSend, kind, true, key, 0, 0, 0});
      return;
    }
    span_insert(at, kind, key);
  }

  /// Closes the span if open.  `success` feeds the duration into the kind's
  /// histogram; a failed close (deny/defer/bye) just retires the span.
  /// Returns whether a span was actually open (deferred mode cannot know
  /// yet and reports true; no caller branches on it mid-run).
  bool close_span(SimTime at, SpanKind kind, std::uint64_t key,
                  bool success = true) {
    if (!enabled_) return false;
    if (deferred_) {
      ops_.push_back({at, 2, TraceKind::kSend, kind, success, key, 0, 0, 0});
      return true;
    }
    return span_erase(at, kind, key, success);
  }

  [[nodiscard]] bool span_open(SpanKind kind, std::uint64_t key) const;
  /// Number of spans of `kind` currently open — the blackhole-invariant
  /// check is `open_span_count(kAdmit) == 0` at run end.
  [[nodiscard]] std::size_t open_span_count(SpanKind kind) const;
  /// Keys of the still-open spans of `kind` (diagnostics; allocates — post-
  /// run use only).
  [[nodiscard]] std::vector<std::uint64_t> open_span_keys(SpanKind kind) const;

  [[nodiscard]] const LogHistogram& histogram(SpanKind kind) const {
    return histograms_[static_cast<std::size_t>(kind)];
  }

  // ---- counters -----------------------------------------------------------
  [[nodiscard]] std::uint64_t events_recorded() const { return total_events_; }
  [[nodiscard]] std::uint64_t span_drops() const { return span_drops_; }

  // ---- flight-recorder dump ------------------------------------------------
  /// Events currently held, oldest first (≤ ring_capacity; allocates).
  [[nodiscard]] std::vector<TraceEvent> ring_snapshot() const;
  /// Dumps the ring as JSONL, one event per line, oldest first.
  void dump_jsonl(std::ostream& out) const;
  /// File variant; returns false if the path cannot be opened.
  bool dump_jsonl(const std::string& path) const;

 private:
  struct OpenSpan {
    std::uint64_t key = 0;
    SimTime opened_at{};
    SpanKind kind = SpanKind::kAdmit;
    bool used = false;
  };

  void push(SimTime at, TraceKind kind, std::uint64_t subject,
            std::uint64_t actor, std::int64_t a, std::int64_t b);
  void span_insert(SimTime at, SpanKind kind, std::uint64_t key);
  bool span_erase(SimTime at, SpanKind kind, std::uint64_t key, bool success);
  [[nodiscard]] std::size_t span_slot(SpanKind kind, std::uint64_t key) const;
  static std::uint64_t span_hash(SpanKind kind, std::uint64_t key);

  bool enabled_ = false;
  bool deferred_ = false;
  TraceOptions options_{};
  std::vector<DeferredOp> ops_;
  std::vector<TraceEvent> ring_;      // capacity fixed at enable()
  std::uint64_t total_events_ = 0;    // ring index = total % capacity
  std::vector<OpenSpan> spans_;       // open-addressed, linear probe
  std::size_t spans_open_ = 0;
  std::uint64_t span_drops_ = 0;
  LogHistogram histograms_[static_cast<std::size_t>(SpanKind::kCount)];
};

/// Process-level default for ObsConfig::trace_enabled.  Reads the
/// MATRIX_TRACE environment variable once ("1"/"on"/"true" ⇒ enabled), so
/// CI's obs-gate leg can run the whole suite traced without touching test
/// code — the same pattern as MATRIX_LOAD_POLICY.
[[nodiscard]] bool default_trace_enabled();

}  // namespace matrix::obs
