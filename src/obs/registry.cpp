#include "obs/registry.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/trace.h"

namespace matrix::obs {

namespace {

/// JSON-safe number formatting: integers stay integral, doubles keep enough
/// precision to round-trip, and non-finite values (which JSON cannot carry)
/// degrade to 0.
std::string format_value(double value) {
  if (!(value == value) || value > 1e308 || value < -1e308) return "0";
  if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
    std::ostringstream out;
    out << static_cast<std::int64_t>(value);
    return out.str();
  }
  std::ostringstream out;
  out.precision(12);
  out << value;
  return out.str();
}

const char* type_name(MetricType type) {
  return type == MetricType::kCounter ? "counter" : "gauge";
}

}  // namespace

void Registry::counter(std::string name, std::uint64_t value,
                       std::string unit) {
  metrics_.push_back({std::move(name), MetricType::kCounter,
                      static_cast<double>(value), std::move(unit)});
}

void Registry::gauge(std::string name, double value, std::string unit) {
  metrics_.push_back(
      {std::move(name), MetricType::kGauge, value, std::move(unit)});
}

void Registry::histogram(const std::string& name, const LogHistogram& h) {
  counter(name + ".count", h.count());
  gauge(name + ".mean_ms", h.mean_ms(), "ms");
  gauge(name + ".p50_ms", h.percentile_ms(50.0), "ms");
  gauge(name + ".p99_ms", h.percentile_ms(99.0), "ms");
  gauge(name + ".max_ms", h.max_ms(), "ms");
}

bool Registry::has(const std::string& name) const {
  for (const Metric& m : metrics_) {
    if (m.name == name) return true;
  }
  return false;
}

double Registry::value(const std::string& name) const {
  for (const Metric& m : metrics_) {
    if (m.name == name) return m.value;
  }
  return 0.0;
}

void Registry::write_jsonl(std::ostream& out) const {
  for (const Metric& m : metrics_) {
    out << "{\"name\":\"" << m.name << "\",\"type\":\"" << type_name(m.type)
        << "\",\"value\":" << format_value(m.value) << ",\"unit\":\"" << m.unit
        << "\"}\n";
  }
}

bool Registry::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_jsonl(out);
  return static_cast<bool>(out);
}

void Registry::write_csv(std::ostream& out) const {
  out << "name,type,value,unit\n";
  for (const Metric& m : metrics_) {
    out << m.name << ',' << type_name(m.type) << ',' << format_value(m.value)
        << ',' << m.unit << '\n';
  }
}

bool Registry::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return static_cast<bool>(out);
}

}  // namespace matrix::obs
