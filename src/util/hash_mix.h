// SplitMix64 finalizer — the repo's standard cheap integer mixer.
//
// Used wherever a deterministic, toolchain-independent scatter of an id or
// key is needed (open-address probe hashes, stable per-client assignment).
// Deliberately NOT tied to util/rng.h: Rng's seeding is part of the
// reproducibility spec and must not change if this helper ever does.
#pragma once

#include <cstdint>

namespace matrix {

[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace matrix
