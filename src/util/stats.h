// Statistics collection for the evaluation harness.
//
// Three shapes of data appear in the paper's evaluation:
//   * scalar summaries (mean/stddev of switching latency)     -> OnlineStats
//   * distributions with percentiles (response-latency CDF)   -> Histogram
//   * time series (clients per server, queue length, Fig. 2)  -> TimeSeries
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace matrix {

/// Welford's online mean/variance accumulator.  O(1) memory, numerically
/// stable, order-independent up to floating-point rounding.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : 0.0;
  }

  void merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(n_) *
               static_cast<double>(other.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) +
             other.mean_ * static_cast<double>(other.n_)) /
            total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-percentile histogram: stores samples, sorts lazily on query.
/// Fine for evaluation runs (≤ millions of samples); not a streaming sketch.
class Histogram {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// Linear-interpolated percentile, p in [0,100].  Empty histogram -> 0.
  [[nodiscard]] double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    sort_if_needed();
    const double rank =
        (p / 100.0) * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
  }

  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }
  [[nodiscard]] double min() const {
    sort_if_needed();
    return samples_.empty() ? 0.0 : samples_.front();
  }
  [[nodiscard]] double max() const {
    sort_if_needed();
    return samples_.empty() ? 0.0 : samples_.back();
  }

  /// Fraction of samples strictly above `threshold` (used for the
  /// "how many actions broke the 150 ms interactivity budget" metric).
  [[nodiscard]] double fraction_above(double threshold) const {
    if (samples_.empty()) return 0.0;
    std::size_t over = 0;
    for (double x : samples_) {
      if (x > threshold) ++over;
    }
    return static_cast<double>(over) / static_cast<double>(samples_.size());
  }

  /// Raw samples (unsorted order not guaranteed); for merging histograms.
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  void merge(const Histogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  void clear() {
    samples_.clear();
    sorted_ = true;
  }

 private:
  void sort_if_needed() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// A named (time, value) series, e.g. "server 1 client count".
/// Used to regenerate the paper's Figure 2 as printed rows.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name = {}) : name_(std::move(name)) {}

  void record(double t_sec, double value) { points_.push_back({t_sec, value}); }

  struct Point {
    double t_sec;
    double value;
  };

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Value at or before `t_sec` (step interpolation); 0 before first point.
  [[nodiscard]] double value_at(double t_sec) const {
    double v = 0.0;
    for (const auto& p : points_) {
      if (p.t_sec > t_sec) break;
      v = p.value;
    }
    return v;
  }

  [[nodiscard]] double max_value() const {
    double v = 0.0;
    for (const auto& p : points_) v = std::max(v, p.value);
    return v;
  }

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace matrix
