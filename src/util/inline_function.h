// Small-buffer-optimized, move-only callable.
//
// The event scheduler (net/event_queue.h) runs one of these per simulated
// event — message delivery, service completion, game tick.  std::function
// heap-allocates for any capture beyond ~2 pointers and must stay copyable;
// this type instead stores captures up to kInlineBytes inline (covering
// every hot-path lambda in the engine: an Envelope delivery capture is
// ~72 bytes) and is move-only, so scheduling an event in steady state costs
// zero allocations.  Oversized captures (rare scenario-scripting closures
// holding whole option structs) transparently fall back to the heap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace matrix {

/// Type-erased `void()` callable with inline storage.  Construction from any
/// invocable; move-only; empty after being moved from.
class InlineAction {
 public:
  /// Inline capture budget.  Sized for the engine's fattest hot-path lambda
  /// (network delivery: this + dst + a moved-in Envelope) with headroom;
  /// anything bigger goes to the heap, which only scenario scripting hits.
  static constexpr std::size_t kInlineBytes = 104;

  InlineAction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  InlineAction(F&& f) {
    construct(std::forward<F>(f));
  }

  /// Replaces the target, constructing the callable directly in this
  /// object's storage — the scheduler's emplace path, which avoids the
  /// construct-then-relocate round a pass-by-value Action parameter costs.
  template <typename F>
  void assign(F&& f) {
    if constexpr (std::is_same_v<std::decay_t<F>, InlineAction>) {
      *this = std::forward<F>(f);
    } else {
      reset();
      construct(std::forward<F>(f));
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(std::move(other)); }
  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(storage_); }

  /// Invokes, then destroys the target, leaving this empty — one vtable
  /// round for the scheduler's run-once pattern instead of invoke + reset.
  void invoke_and_reset() {
    const VTable* vt = vtable_;
    vtable_ = nullptr;
    vt->run_once(storage_);
  }

  /// True when a callable of type `Fn` is stored without heap fallback.
  template <typename Fn>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
    /// Invoke followed by destroy, fused (the scheduler's per-event path).
    void (*run_once)(void*);
  };

  template <typename Fn>
  static const VTable* inline_vtable() {
    static const VTable vt{
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* src, void* dst) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); },
        [](void* p) {
          (*static_cast<Fn*>(p))();
          static_cast<Fn*>(p)->~Fn();
        }};
    return &vt;
  }

  template <typename Fn>
  static const VTable* heap_vtable() {
    static const VTable vt{
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* src, void* dst) {
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        },
        [](void* p) { delete *static_cast<Fn**>(p); },
        [](void* p) {
          Fn* fn = *static_cast<Fn**>(p);
          (*fn)();
          delete fn;
        }};
    return &vt;
  }

  template <typename F>
  void construct(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = inline_vtable<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = heap_vtable<Fn>();
    }
  }

  void move_from(InlineAction&& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
  }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace matrix
