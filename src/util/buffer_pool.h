// Reusable byte-buffer freelist.
//
// Every wire message in the simulation is one std::vector<uint8_t> payload:
// encoded by the sender, carried by an Envelope, decoded at the receiver,
// then destroyed.  At 10k-client scale that is hundreds of thousands of
// short-lived heap allocations per simulated second.  The pool breaks the
// cycle: the network returns each payload's storage here after the handler
// runs, and senders rent recycled buffers (capacity intact, contents
// cleared) for the next encode — steady-state message traffic touches the
// allocator only while the pool is still warming up.
#pragma once

#include <cstdint>
#include <vector>

namespace matrix {

class BufferPool {
 public:
  struct Counters {
    std::uint64_t acquired = 0;  ///< total acquire() calls
    std::uint64_t reused = 0;    ///< acquires served from the freelist
    std::uint64_t retained = 0;  ///< buffers returned and kept for reuse
  };

  /// Returned buffers above this capacity are dropped rather than retained,
  /// so one giant StateTransfer cannot pin memory for the rest of the run.
  static constexpr std::size_t kMaxRetainedCapacity = 32 * 1024;
  /// Freelist depth bound; beyond it, returned buffers are simply freed.
  static constexpr std::size_t kMaxFree = 4096;

  /// Rents a buffer: recycled (cleared, capacity preserved) when available,
  /// otherwise empty and fresh.
  [[nodiscard]] std::vector<std::uint8_t> acquire() {
    ++counters_.acquired;
    if (free_.empty()) return {};
    ++counters_.reused;
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    return buf;
  }

  /// Returns a buffer's storage to the freelist (bounded; oversized or
  /// capacity-less buffers are dropped).
  void release(std::vector<std::uint8_t>&& buf) {
    if (buf.capacity() == 0 || buf.capacity() > kMaxRetainedCapacity ||
        free_.size() >= kMaxFree) {
      return;
    }
    ++counters_.retained;
    free_.push_back(std::move(buf));
  }

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] std::size_t idle() const { return free_.size(); }

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  Counters counters_;
};

}  // namespace matrix
