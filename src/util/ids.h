// Strongly-typed integer identifiers used across the Matrix middleware.
//
// The paper requires game servers to identify players with *globally unique*
// ids (Section 3.2.2) so that clients can be switched between servers.  We
// enforce that discipline at the type level: a ClientId can never be confused
// with a ServerId or an EntityId, and ids are allocated from monotonic
// generators so uniqueness is global by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace matrix {

/// A strongly-typed wrapper around a 64-bit id.  `Tag` makes each
/// instantiation a distinct type; no implicit conversions exist between
/// different id kinds or to/from raw integers.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t value) : value_(value) {}

  /// Raw numeric value, for serialization and logging only.
  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }

  /// True when this id was produced by a generator (ids start at 1).
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  std::uint64_t value_ = 0;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  return os << Tag::prefix() << id.value();
}

/// Monotonic id generator.  Not thread-safe; the simulator is single-threaded
/// by design (determinism), and real deployments would use one generator per
/// coordinator.
template <typename IdType>
class IdGenerator {
 public:
  /// Returns the next id.  Ids start at 1; 0 is reserved for "invalid".
  IdType next() { return IdType(++last_); }

  /// Makes the generator skip ids up to and including `floor`.  Used when
  /// merging id spaces during state transfer.
  void reserve_through(std::uint64_t floor) {
    if (floor > last_) last_ = floor;
  }

 private:
  std::uint64_t last_ = 0;
};

struct ServerIdTag {
  static constexpr const char* prefix() { return "S"; }
};
struct ClientIdTag {
  static constexpr const char* prefix() { return "C"; }
};
struct EntityIdTag {
  static constexpr const char* prefix() { return "E"; }
};
struct NodeIdTag {
  static constexpr const char* prefix() { return "N"; }
};
struct RegionIdTag {
  static constexpr const char* prefix() { return "G"; }
};

/// Identifies one Matrix server / game server pair (they are co-located,
/// paper Section 3.2.2).
using ServerId = Id<ServerIdTag>;
/// Globally unique player identity (the paper's "callsign").
using ClientId = Id<ClientIdTag>;
/// Identifies a game object (player avatar, projectile, map object).
using EntityId = Id<EntityIdTag>;
/// Address of a process on the simulated network.
using NodeId = Id<NodeIdTag>;
/// Identifies one overlap region within a server's overlap table.
using RegionId = Id<RegionIdTag>;

}  // namespace matrix

namespace std {
template <typename Tag>
struct hash<matrix::Id<Tag>> {
  size_t operator()(matrix::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
