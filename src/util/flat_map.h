// Sorted-vector map — the session-table structure of the per-tick hot loop.
//
// GameServer iterates its full client table several times per update tick
// (median position, update fan-out, visible-entity estimate) and mutates it
// rarely by comparison (joins, byes, redirects).  A red-black tree pays
// pointer-chasing on every one of those scans; a sorted vector of pairs is
// one contiguous sweep.  Lookups are binary searches; inserts/erases shift
// the tail (O(n)), which at games' join/leave rates is noise next to the
// per-tick scans they amortize against.
//
// Iteration order is ascending by key — IDENTICAL to std::map — because the
// fan-out loops' send order is trace-visible: swapping this structure in
// must not perturb the pinned golden hashes (tests/determinism_test.cpp
// proves it did not).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace matrix {

template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] iterator begin() { return data_.begin(); }
  [[nodiscard]] iterator end() { return data_.end(); }
  [[nodiscard]] const_iterator begin() const { return data_.begin(); }
  [[nodiscard]] const_iterator end() const { return data_.end(); }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

  [[nodiscard]] iterator find(const Key& key) {
    auto it = lower(key);
    return it != data_.end() && it->first == key ? it : data_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    auto it = lower(key);
    return it != data_.end() && it->first == key ? it : data_.end();
  }
  [[nodiscard]] std::size_t count(const Key& key) const {
    return find(key) != data_.end() ? 1 : 0;
  }
  [[nodiscard]] bool contains(const Key& key) const { return count(key) != 0; }

  /// std::map semantics: default-constructs on first access.
  Value& operator[](const Key& key) {
    auto it = lower(key);
    if (it == data_.end() || it->first != key) {
      it = data_.emplace(it, key, Value{});
    }
    return it->second;
  }

  /// Erase by iterator; returns the iterator past the removed element (the
  /// erase-during-iteration idiom of the shed loop).
  iterator erase(iterator it) { return data_.erase(it); }
  std::size_t erase(const Key& key) {
    auto it = find(key);
    if (it == data_.end()) return 0;
    data_.erase(it);
    return 1;
  }

 private:
  [[nodiscard]] iterator lower(const Key& key) {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const value_type& entry, const Key& k) { return entry.first < k; });
  }
  [[nodiscard]] const_iterator lower(const Key& key) const {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const value_type& entry, const Key& k) { return entry.first < k; });
  }

  std::vector<value_type> data_;
};

}  // namespace matrix
