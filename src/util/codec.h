// Byte-level serialization for wire messages.
//
// All messages crossing the simulated network are encoded to bytes so that
// (a) message *size* is physically meaningful — the bandwidth model and the
// "traffic between Matrix servers corresponds to overlap-region size" result
// depend on it — and (b) encode/decode round-trips are testable invariants.
//
// Encoding: little-endian fixed-width integers, IEEE-754 doubles, LEB128
// varints for counts, length-prefixed strings.  No alignment padding.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"
#include "util/payload_bytes.h"

namespace matrix {

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopts `recycled` as the backing buffer (cleared, capacity preserved).
  /// Pairs with BufferPool / Network::rent_buffer so steady-state encoding
  /// reuses payload storage instead of allocating.
  explicit ByteWriter(std::vector<std::uint8_t> recycled)
      : buf_(std::move(recycled)) {
    buf_.clear();
  }

  /// Pre-sizes the buffer (the size-hinted encode paths in core/protocol
  /// use this so common messages encode without reallocation even on a
  /// fresh buffer).
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_le(bits);
  }

  /// LEB128 unsigned varint — compact for small counts.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void str(std::string_view s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void raw(std::span<const std::uint8_t> bytes) {
    varint(bytes.size());
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  template <typename Tag>
  void id(Id<Tag> v) {
    varint(v.value());
  }

 private:
  template <typename T>
  void append_le(T v) {
    // Bulk write (one resize + one wide store after optimization) instead of
    // per-byte push_back — encoding is f64/u64-heavy on the hot path.
    const std::size_t n = buf_.size();
    buf_.resize(n + sizeof(T));
    std::uint8_t* out = buf_.data() + n;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Reads primitives back out of a byte buffer.  All reads are bounds-checked;
/// a malformed buffer flips `ok()` to false and subsequent reads return
/// zero values instead of touching out-of-range memory.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  /// Current read offset — lets frame parsers record field positions
  /// (e.g. the peer-forwarded flag a raw relay flips in place).
  [[nodiscard]] std::size_t pos() const { return pos_; }

  /// Like raw(), but returns a view into the underlying buffer instead of
  /// copying — for the zero-copy frame fast paths.
  std::span<const std::uint8_t> raw_span() {
    const std::uint64_t n = varint();
    if (!check(n)) return {};
    std::span<const std::uint8_t> out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::uint8_t u8() {
    if (!check(1)) return 0;
    return bytes_[pos_++];
  }

  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(read_le<std::uint64_t>()); }

  double f64() {
    const std::uint64_t bits = read_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (!check(1) || shift > 63) {
        ok_ = false;
        return 0;
      }
      const std::uint8_t byte = bytes_[pos_++];
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  std::string str() {
    const std::uint64_t n = varint();
    if (!check(n)) return {};
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> raw() {
    const std::uint64_t n = varint();
    if (!check(n)) return {};
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Like raw(), but into the inline PayloadBytes container — no heap
  /// allocation for typical game payload sizes.
  PayloadBytes raw_payload() {
    const std::uint64_t n = varint();
    if (!check(n)) return {};
    PayloadBytes out(bytes_.data() + pos_, n);
    pos_ += n;
    return out;
  }

  template <typename IdType>
  IdType id() {
    return IdType(varint());
  }

 private:
  bool check(std::uint64_t n) {
    if (!ok_ || n > bytes_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  template <typename T>
  T read_le() {
    if (!check(sizeof(T))) return T{};
    // Accumulate in u64 with the canonical little-endian idiom, which
    // optimizers collapse into a single wide load.
    const std::uint8_t* in = bytes_.data() + pos_;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return static_cast<T>(v);
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace matrix
