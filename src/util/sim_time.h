// Simulated time.
//
// The discrete-event network (src/net) advances a virtual clock measured in
// integer microseconds.  Integer time keeps event ordering exact and makes
// runs bit-reproducible; microsecond resolution is finer than any latency the
// paper's evaluation cares about (their interactivity budget is 150 ms).
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace matrix {

/// A point in simulated time, in microseconds since the start of the run.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime from_us(std::int64_t us) {
    return SimTime(us);
  }
  [[nodiscard]] static constexpr SimTime from_ms(double ms) {
    return SimTime(static_cast<std::int64_t>(ms * 1000.0));
  }
  [[nodiscard]] static constexpr SimTime from_sec(double sec) {
    return SimTime(static_cast<std::int64_t>(sec * 1'000'000.0));
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(us_) / 1000.0; }
  [[nodiscard]] constexpr double sec() const {
    return static_cast<double>(us_) / 1'000'000.0;
  }

  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime& operator+=(SimTime d) {
    us_ += d.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime d) {
    us_ -= d.us_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.us_ + b.us_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.us_ - b.us_);
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.us_ * k);
  }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.ms() << "ms";
}

namespace time_literals {
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::from_us(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::from_us(static_cast<std::int64_t>(v) * 1000);
}
constexpr SimTime operator""_sec(unsigned long long v) {
  return SimTime::from_us(static_cast<std::int64_t>(v) * 1'000'000);
}
}  // namespace time_literals

}  // namespace matrix
