// Inline byte container for per-message game payloads.
//
// TaggedPacket / ClientAction / ServerUpdate each carry an opaque payload of
// a few dozen to a few hundred bytes, created and destroyed once per
// simulated message.  As std::vector those payloads were the engine's last
// steady-state allocation: one heap round-trip per decode and per copy, at
// hundreds of thousands of messages per simulated second.  PayloadBytes
// stores up to kInlineBytes inline (sized for the largest engine-generated
// payload, the 268-byte digest ServerUpdate) and copies only the bytes in
// use; larger payloads — possible through the public API, never produced by
// the engine — transparently spill to a heap vector.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace matrix {

class PayloadBytes {
 public:
  static constexpr std::size_t kInlineBytes = 272;

  PayloadBytes() = default;

  PayloadBytes(const std::uint8_t* data, std::size_t n) { assign(data, n); }

  // NOLINTNEXTLINE(google-explicit-constructor): vector payloads predate
  // this type; generators and API users still hand over vectors.
  PayloadBytes(const std::vector<std::uint8_t>& bytes) {
    assign(bytes.data(), bytes.size());
  }

  PayloadBytes(const PayloadBytes& other) { assign(other.data(), other.size()); }
  PayloadBytes& operator=(const PayloadBytes& other) {
    if (this != &other) assign(other.data(), other.size());
    return *this;
  }
  PayloadBytes(PayloadBytes&& other) noexcept
      : size_(other.size_), overflow_(std::move(other.overflow_)) {
    if (size_ <= kInlineBytes) {
      std::memcpy(inline_.data(), other.inline_.data(), size_);
    }
    other.size_ = 0;
    other.overflow_.clear();
  }
  PayloadBytes& operator=(PayloadBytes&& other) noexcept {
    if (this != &other) {
      size_ = other.size_;
      overflow_ = std::move(other.overflow_);
      if (size_ <= kInlineBytes) {
        std::memcpy(inline_.data(), other.inline_.data(), size_);
      }
      other.size_ = 0;
      other.overflow_.clear();
    }
    return *this;
  }
  ~PayloadBytes() = default;

  PayloadBytes& operator=(const std::vector<std::uint8_t>& bytes) {
    assign(bytes.data(), bytes.size());
    return *this;
  }

  void assign(std::size_t n, std::uint8_t value) {
    size_ = n;
    if (n <= kInlineBytes) {
      overflow_.clear();
      std::memset(inline_.data(), value, n);
    } else {
      overflow_.assign(n, value);
    }
  }

  void assign(const std::uint8_t* data, std::size_t n) {
    size_ = n;
    if (n <= kInlineBytes) {
      overflow_.clear();
      // n == 0 may come with data == nullptr (an empty vector's data());
      // memcpy's pointer arguments must be non-null even for zero sizes.
      if (n != 0) std::memcpy(inline_.data(), data, n);
    } else {
      overflow_.assign(data, data + n);
    }
  }

  void clear() {
    size_ = 0;
    overflow_.clear();
  }

  void push_back(std::uint8_t value) {
    if (size_ < kInlineBytes) {
      inline_[size_++] = value;
    } else {
      if (size_ == kInlineBytes && overflow_.empty()) {
        overflow_.assign(inline_.begin(), inline_.end());
      }
      overflow_.push_back(value);
      ++size_;
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] const std::uint8_t* data() const {
    return size_ <= kInlineBytes ? inline_.data() : overflow_.data();
  }
  [[nodiscard]] std::uint8_t* data() {
    return size_ <= kInlineBytes ? inline_.data() : overflow_.data();
  }

  [[nodiscard]] const std::uint8_t* begin() const { return data(); }
  [[nodiscard]] const std::uint8_t* end() const { return data() + size_; }

  [[nodiscard]] std::uint8_t operator[](std::size_t i) const {
    return data()[i];
  }

  // NOLINTNEXTLINE(google-explicit-constructor): so encode paths taking
  // std::span accept a PayloadBytes unchanged.
  [[nodiscard]] operator std::span<const std::uint8_t>() const {
    return {data(), size_};
  }

  friend bool operator==(const PayloadBytes& a, const PayloadBytes& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::size_t size_ = 0;
  std::array<std::uint8_t, kInlineBytes> inline_;
  std::vector<std::uint8_t> overflow_;  // engaged only when size_ > kInlineBytes
};

}  // namespace matrix
