// Minimal leveled logger.
//
// The simulator is single-threaded, so the logger is deliberately simple: a
// global level, a stream sink, and printf-free formatting via ostream.  Tests
// set the level to kOff; the hotspot example sets kInfo to narrate splits.
//
// Sim-time stamping: a Network registers itself as the logger's clock while
// it lives, so every line carries the simulated instant it was written at
// ("[12.500000] ...") and log output interleaves meaningfully with trace
// dumps (src/obs/).  The stamp is integer microseconds formatted as fixed
// seconds — no floating point, so output is bit-identical across platforms.
#pragma once

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string_view>

#include "util/sim_time.h"

namespace matrix {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void set_sink(std::ostream* sink) { sink_ = sink; }

  /// Sim-time source for the stamp prefix.  `owner` disambiguates nested or
  /// interleaved Network lifetimes: clear_clock only unregisters if `owner`
  /// still holds the clock, so a short-lived inner Network cannot strip an
  /// outer one's registration on destruction.
  using ClockFn = SimTime (*)(const void* owner);
  void set_clock(const void* owner, ClockFn fn) {
    clock_owner_ = owner;
    clock_ = fn;
  }
  void clear_clock(const void* owner) {
    if (clock_owner_ != owner) return;
    clock_owner_ = nullptr;
    clock_ = nullptr;
  }

  void write(LogLevel level, std::string_view component,
             const std::string& message) {
    if (!enabled(level) || sink_ == nullptr) return;
    if (clock_ != nullptr) {
      const std::int64_t us = clock_(clock_owner_).us();
      char stamp[32];
      std::snprintf(stamp, sizeof(stamp), "[%lld.%06lld] ",
                    static_cast<long long>(us / 1'000'000),
                    static_cast<long long>(us % 1'000'000));
      *sink_ << stamp;
    }
    *sink_ << "[" << level_name(level) << "] " << component << ": " << message
           << '\n';
  }

 private:
  static std::string_view level_name(LogLevel level) {
    switch (level) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF  ";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_ = &std::cerr;
  const void* clock_owner_ = nullptr;
  ClockFn clock_ = nullptr;
};

/// Streams `expr` into the global logger if `level` is enabled.
#define MATRIX_LOG(level, component, expr)                            \
  do {                                                                \
    if (::matrix::Logger::instance().enabled(level)) {                \
      std::ostringstream matrix_log_oss;                              \
      matrix_log_oss << expr;                                         \
      ::matrix::Logger::instance().write(level, component,            \
                                         matrix_log_oss.str());       \
    }                                                                 \
  } while (0)

#define MATRIX_INFO(component, expr) \
  MATRIX_LOG(::matrix::LogLevel::kInfo, component, expr)
#define MATRIX_DEBUG(component, expr) \
  MATRIX_LOG(::matrix::LogLevel::kDebug, component, expr)
#define MATRIX_WARN(component, expr) \
  MATRIX_LOG(::matrix::LogLevel::kWarn, component, expr)

}  // namespace matrix
