// Minimal leveled logger.
//
// The simulator is single-threaded, so the logger is deliberately simple: a
// global level, a stream sink, and printf-free formatting via ostream.  Tests
// set the level to kOff; the hotspot example sets kInfo to narrate splits.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace matrix {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void set_sink(std::ostream* sink) { sink_ = sink; }

  void write(LogLevel level, std::string_view component,
             const std::string& message) {
    if (!enabled(level) || sink_ == nullptr) return;
    *sink_ << "[" << level_name(level) << "] " << component << ": " << message
           << '\n';
  }

 private:
  static std::string_view level_name(LogLevel level) {
    switch (level) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF  ";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_ = &std::cerr;
};

/// Streams `expr` into the global logger if `level` is enabled.
#define MATRIX_LOG(level, component, expr)                            \
  do {                                                                \
    if (::matrix::Logger::instance().enabled(level)) {                \
      std::ostringstream matrix_log_oss;                              \
      matrix_log_oss << expr;                                         \
      ::matrix::Logger::instance().write(level, component,            \
                                         matrix_log_oss.str());       \
    }                                                                 \
  } while (0)

#define MATRIX_INFO(component, expr) \
  MATRIX_LOG(::matrix::LogLevel::kInfo, component, expr)
#define MATRIX_DEBUG(component, expr) \
  MATRIX_LOG(::matrix::LogLevel::kDebug, component, expr)
#define MATRIX_WARN(component, expr) \
  MATRIX_LOG(::matrix::LogLevel::kWarn, component, expr)

}  // namespace matrix
