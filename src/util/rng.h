// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the reproduction (bot movement, hotspot
// placement, jitter) flows through Rng so that a scenario seed fully
// determines a run.  This is what makes the figures regenerable.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace matrix {

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64.  Chosen over
/// std::mt19937_64 because its output sequence is specified independent of
/// the standard library implementation, so runs are reproducible across
/// toolchains.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).  bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method: unbiased.
    while (true) {
      const std::uint64_t x = next_u64();
      const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial.
  bool next_bool(double p_true) { return next_double() < p_true; }

  /// Standard-normal variate (Marsaglia polar method, deterministic).
  double next_normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = next_double_in(-1.0, 1.0);
      v = next_double_in(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  /// Exponential variate with the given mean.
  double next_exponential(double mean) {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Derives an independent child generator (for giving each bot its own
  /// stream without coupling their sequences).
  Rng fork() { return Rng(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace matrix
