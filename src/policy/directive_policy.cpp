#include "policy/directive_policy.h"

#include <algorithm>
#include <cmath>

namespace matrix {

SplitDecision DirectivePolicy::decide_split(const LoadView& view) const {
  const SplitDecision classic = ClassicPolicy::decide_split(view);
  if (classic.split) return classic;

  // Proactive trigger: only under an active directive, only with real
  // starvation evidence (a populated waiting room), and never below the
  // minimum extent.  The ordinary cooldown and pending-topology gates stay
  // with the caller, so a directive cannot stampede a server into
  // back-to-back splits.
  if (!config_.allow_split || !view.directive_active) return classic;
  // Under a degraded control plane the directive is a frozen snapshot of a
  // coordinator we may never hear from again — don't volunteer for splits
  // on its say-so (classic reactive splits above remain available).
  if (view.failsafe != kFailsafeNormal) return classic;
  // A proactive ask against a dry (or unknown) pool cannot be granted, but
  // the PoolDeny it provokes still feeds the denial-streak admission signal
  // and can slam the valve to HARD — freezing the very waiting room the
  // split was meant to drain.  Only volunteer when spares are known idle;
  // a genuinely overloaded server still asks through the classic path.
  if (view.pool_idle_fraction <= 0.0) return classic;
  const auto threshold = static_cast<std::uint32_t>(
      std::llround(config_.policy.proactive_load_fraction *
                   static_cast<double>(config_.overload_clients)));
  if (view.load.client_count < threshold) return classic;
  if (view.load.waiting_count < config_.policy.proactive_min_waiting) {
    return classic;
  }
  if (below_min_extent(view.range)) return classic;
  return {.split = true, .proactive = true};
}

std::pair<Rect, Rect> DirectivePolicy::split_ranges(const LoadView& view) const {
  // Under a directive every split is about shedding a hotspot: cut at the
  // median so the child inherits half the load, whatever split_policy says.
  if (view.directive_active && view.load.client_count > 0) {
    return load_aware_cut(view);
  }
  return ClassicPolicy::split_ranges(view);
}

double DirectivePolicy::pool_need(const LoadView& view) const {
  if (!view.directive_active) return 0.0;  // no bias without a directive
  // Degraded failsafe: the directive (and the pool view) are stale — bid
  // like the classic pool instead of leaning on a dead coordinator's score.
  if (view.failsafe != kFailsafeNormal) return 0.0;
  const auto overload =
      static_cast<double>(std::max(1u, config_.overload_clients));
  // The per-partition slice of the MC's pressure score: load fraction plus
  // depth-weighted starvation.  The +1 keeps every directive-era request
  // strictly positive so it enters arbitration even at zero load.
  return 1.0 +
         static_cast<double>(view.load.client_count) / overload +
         config_.policy.need_waiting_weight *
             static_cast<double>(view.load.waiting_count) / overload;
}

SimTime DirectivePolicy::grant_hold(const PoolRequest& request) const {
  // Need 0 means the requester ran ClassicPolicy or saw no directive:
  // answer immediately, exactly like the classic pool.
  return request.need > 0.0 ? config_.policy.grant_window : SimTime{};
}

PoolGrantDecision DirectivePolicy::arbitrate(
    const std::vector<PoolRequest>& requests) const {
  PoolGrantDecision decision;
  decision.order.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) decision.order[i] = i;
  std::sort(decision.order.begin(), decision.order.end(),
            [&](std::size_t a, std::size_t b) {
              if (requests[a].need != requests[b].need) {
                return requests[a].need > requests[b].need;
              }
              return requests[a].arrival < requests[b].arrival;  // FCFS tie
            });
  return decision;
}

}  // namespace matrix
