#include "policy/classic_policy.h"

#include <algorithm>

namespace matrix {

bool ClassicPolicy::below_min_extent(const Rect& range) const {
  return std::max(range.width(), range.height()) / 2.0 <
         config_.min_partition_extent;
}

SplitDecision ClassicPolicy::decide_split(const LoadView& view) const {
  if (!config_.allow_split) return {};
  // Sustained overload only: consecutive_overload resets to 0 on every calm
  // report, so requiring at least one report keeps a sustain knob of 0
  // equivalent to 1 (the historical "split on the first overloaded report").
  if (view.consecutive_overload == 0 ||
      view.consecutive_overload < config_.sustain_reports_to_split) {
    return {};
  }
  if (below_min_extent(view.range)) return {};
  return {.split = true, .proactive = false};
}

std::pair<Rect, Rect> ClassicPolicy::load_aware_cut(const LoadView& view) const {
  // Cut at the reported median client coordinate along the longer axis so
  // each side inherits roughly half the load.
  const Rect& range = view.range;
  const bool wide = range.width() >= range.height();
  const double lo = wide ? range.x0() : range.y0();
  const double extent = wide ? range.width() : range.height();
  const double median =
      wide ? view.median_position.x : view.median_position.y;
  return range.split_at((median - lo) / extent);
}

std::pair<Rect, Rect> ClassicPolicy::split_ranges(const LoadView& view) const {
  if (config_.split_policy == SplitPolicy::kLoadAware &&
      view.load.client_count > 0) {
    return load_aware_cut(view);
  }
  // Paper default: halve the partition, hand off the left piece.
  return view.range.split_half();
}

ReclaimDecision ClassicPolicy::decide_reclaim(const LoadView& view,
                                              const ChildView& child) const {
  if (!config_.allow_reclaim) return {};
  if (!config_.underloaded(view.load.client_count)) return {};
  // Admission gate: reclaiming hands this server the child's entire
  // population.  Under SOFT/HARD — local valve or the coordinator's
  // directive floor — the valve is closed to *new* load; do not voluntarily
  // accept a bulk handoff either.
  if (config_.admission.enabled && view.effective_valve != kValveNormal) {
    return {};
  }
  if (!child.load_known) return {};
  if (child.child_count != 0) return {};  // its subtree must collapse first
  if (!config_.underloaded(child.client_count)) return {};
  const double combined = static_cast<double>(view.load.client_count) +
                          static_cast<double>(child.client_count);
  if (combined > config_.reclaim_headroom_fraction *
                     static_cast<double>(config_.overload_clients)) {
    return {};
  }
  return {.reclaim = true};
}

double ClassicPolicy::pool_need(const LoadView&) const {
  return 0.0;  // FCFS: no bias, the pool answers in arrival order
}

SimTime ClassicPolicy::grant_hold(const PoolRequest&) const {
  return SimTime{};  // immediate grant/deny, the historical pool behavior
}

PoolGrantDecision ClassicPolicy::arbitrate(
    const std::vector<PoolRequest>& requests) const {
  PoolGrantDecision decision;
  decision.order.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) decision.order[i] = i;
  std::sort(decision.order.begin(), decision.order.end(),
            [&](std::size_t a, std::size_t b) {
              return requests[a].arrival < requests[b].arrival;
            });
  return decision;
}

}  // namespace matrix
