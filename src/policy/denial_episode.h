// PoolDenialEpisode — the pool-retry backoff state machine, extracted from
// MatrixServer so its semantics live in the policy layer and can be pinned
// by unit tests.
//
// An EPISODE is one run of consecutive PoolDeny answers while a server
// stays hot.  Within an episode the retry backoff doubles per denial
// (capped at pool_backoff_max) so an exhausted pool is not hammered at the
// load-report rate.  The contract, as documented in ROADMAP:
//
//   * a CALM report (overload gone) or a successful GRANT ends the episode:
//     the streak and backoff zero, and any pending backoff shrinks to the
//     ordinary topology cooldown — with the overload gone, no further
//     PoolAcquire (and hence no clearing PoolGrant) would ever be sent, so
//     without this a single denial would latch forever;
//
//   * a POOL-IDLE signal (PoolPressure with idle > 0) permits a PROMPT
//     RETRY — the doubled wait described a pool that no longer exists — but
//     does NOT forget the streak.  The pool broadcasts occupancy on every
//     change, including grants to *other* servers that leave idle > 0; if
//     the freed spare is snatched before our retry lands, the next denial
//     must keep doubling from where the episode left off, or a thrashing
//     pool is hammered at the flat-cooldown rate forever.  (The historical
//     inline code reset the whole episode here; tests/policy_test.cpp pins
//     the corrected semantics.)
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/config.h"
#include "util/sim_time.h"

namespace matrix {

class PoolDenialEpisode {
 public:
  explicit PoolDenialEpisode(const Config& config)
      : initial_(config.pool_backoff_initial.us() > 0
                     ? config.pool_backoff_initial
                     : config.topology_cooldown),
        max_(config.pool_backoff_max) {}

  /// Records the next consecutive denial and returns the backoff to sit out
  /// before re-asking: initial on the first denial, doubling per repeat,
  /// capped at pool_backoff_max.
  SimTime on_denied() {
    ++streak_;
    SimTime backoff = initial_;
    for (std::uint32_t i = 1; i < streak_ && backoff < max_; ++i) {
      backoff = backoff * 2;
    }
    backoff = std::min(backoff, max_);
    backoff_us_ = static_cast<std::uint64_t>(backoff.us());
    return backoff;
  }

  /// Ends the episode (grant arrived, or a calm report showed the overload
  /// gone).  Returns true when a backoff was pending — the caller should
  /// shrink any cooldown it derived from it back to the ordinary
  /// topology cooldown.
  bool end() {
    const bool pending = backoff_us_ > 0;
    streak_ = 0;
    backoff_us_ = 0;
    return pending;
  }

  /// Idle spares reappeared mid-episode: returns true when a backoff is
  /// pending and a prompt retry should be allowed.  The streak is
  /// deliberately preserved — only end() forgets it.
  [[nodiscard]] bool idle_allows_prompt_retry() const {
    return backoff_us_ > 0;
  }

  [[nodiscard]] std::uint32_t streak() const { return streak_; }
  [[nodiscard]] std::uint64_t backoff_us() const { return backoff_us_; }

 private:
  SimTime initial_;
  SimTime max_;
  std::uint32_t streak_ = 0;
  std::uint64_t backoff_us_ = 0;
};

}  // namespace matrix
