// Consolidated load signals — the single input surface of the load-policy
// layer (src/policy/).
//
// Before this layer existed, the same few signals (client count, receive
// queue, waiting-room depth, pool occupancy, valve/directive state) were
// re-derived independently in matrix_server.cpp, global_admission.cpp, and
// game_server.cpp, and every adaptive decision consumed a private ad-hoc
// slice of them.  These structs are the one shared vocabulary:
//
//   * LoadSignals      — one server's instantaneous load triple, as observed
//                        by the game server and carried by LoadReport and
//                        LoadDigest;
//   * LoadView         — the full decision input a Matrix server assembles
//                        for its LoadPolicy: its own LoadSignals plus range,
//                        split hysteresis, pool occupancy, and the local
//                        valve / coordinator-directive state;
//   * ChildView        — the parent-visible slice of one child (reclaim
//                        decisions);
//   * PressureBreakdown — the global-admission pressure score split into its
//                        weighted terms, so policies (and tests) can see WHY
//                        the deployment is pressured, not just how much.
//
// This header is deliberately dependency-light (geometry only): it is
// included by control/, core/, game/, and policy/ alike.
#pragma once

#include <cstdint>

#include "geometry/rect.h"
#include "geometry/vec2.h"

namespace matrix {

/// One server's instantaneous load, as its game server observes it.  The
/// triple every control-plane consumer reads: the admission valve, the
/// load-policy layer, and the coordinator's global-admission aggregate.
struct LoadSignals {
  std::uint32_t client_count = 0;
  /// Receive-queue depth (messages) — the paper's "system performance
  /// measurements" overload signal.
  std::uint32_t queue_length = 0;
  /// Surge-queue ("waiting room") depth; 0 while the room is disabled.
  std::uint32_t waiting_count = 0;
};

/// The deployment-wide pressure score of coordinator-led global admission
/// (control/global_admission.h), split into its weighted terms.  Weights
/// are fixed by the scoring contract documented in ROADMAP/ARCHITECTURE:
/// 0.4·pool + 0.3·load + 0.2·elevated + 0.1·waiting.
struct PressureBreakdown {
  double pool_term = 0.0;      ///< 1 − idle fraction of the spare pool
  double load_term = 0.0;      ///< mean load fraction vs overload, sat. at 1
  double elevated_term = 0.0;  ///< share of servers SOFT (0.5) / HARD (1.0)
  double waiting_term = 0.0;   ///< aggregate waiting-room depth, saturated

  [[nodiscard]] constexpr double total() const {
    return 0.40 * pool_term + 0.30 * load_term + 0.20 * elevated_term +
           0.10 * waiting_term;
  }
};

/// Everything a LoadPolicy may consult when deciding splits, reclaims, and
/// pool-grant need.  Assembled by MatrixServer::build_load_view() from the
/// latest LoadReport, the MC's broadcasts, and local hysteresis state —
/// one snapshot, one place, instead of each decision re-reading members.
struct LoadView {
  LoadSignals load;
  /// Median client coordinate from the latest LoadReport (load-aware cuts).
  Vec2 median_position;
  /// This server's current partition.
  Rect range;
  /// Consecutive overloaded LoadReports (split hysteresis counter).
  std::uint32_t consecutive_overload = 0;
  /// Consecutive PoolDeny answers since the last grant / calm report.
  std::uint32_t split_denied_streak = 0;
  /// Idle fraction of the deployment's spare pool; negative ⇒ never heard.
  double pool_idle_fraction = -1.0;

  // ---- valve / directive state (control/) ----------------------------------
  /// Local admission valve (0 NORMAL, 1 SOFT, 2 HARD — numeric to keep this
  /// header free of control/ includes; compare via the constants below).
  std::uint8_t local_valve = 0;
  /// Coordinator directive floor, same encoding.
  std::uint8_t directive_floor = 0;
  /// Composed state (strictest of the two) — what the join gate enforces.
  std::uint8_t effective_valve = 0;
  /// True while a coordinator AdmissionDirective is in force.
  bool directive_active = false;
  /// Deployment pressure score carried by the latest directive.
  double directive_pressure = 0.0;
  /// Deployment-wide parked joins carried by the latest directive.
  std::uint32_t directive_waiting_total = 0;
  /// Control-plane failsafe state (0 NORMAL, 1 HOLD, 2 FALLBACK — numeric
  /// to keep this header free of control/ includes; see the constants
  /// below).  Non-NORMAL means coordinator-derived state above is FROZEN:
  /// policies must not derive new pool-grant-seeking decisions from it.
  std::uint8_t failsafe = 0;
};

/// Numeric valve states as carried in LoadView (mirrors AdmissionState
/// without pulling control/admission.h into this header).
inline constexpr std::uint8_t kValveNormal = 0;
inline constexpr std::uint8_t kValveSoft = 1;
inline constexpr std::uint8_t kValveHard = 2;

/// Numeric failsafe states as carried in LoadView (mirrors FailsafeState
/// without pulling control/control_plane.h into this header).
inline constexpr std::uint8_t kFailsafeNormal = 0;
inline constexpr std::uint8_t kFailsafeHold = 1;
inline constexpr std::uint8_t kFailsafeFallback = 2;

/// The parent-visible slice of one child server, for reclaim decisions
/// (fed by the child's PeerLoad heartbeats).
struct ChildView {
  std::uint32_t client_count = 0;
  std::uint32_t child_count = 0;
  /// False until the first heartbeat arrives — an unknown child is never
  /// reclaimed on a default-zero load figure.
  bool load_known = false;
};

}  // namespace matrix
