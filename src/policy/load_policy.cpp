#include "policy/load_policy.h"

#include <cstdlib>
#include <string_view>

#include "policy/directive_policy.h"

namespace matrix {

LoadPolicyKind default_load_policy_kind() {
  static const LoadPolicyKind kind = [] {
    const char* env = std::getenv("MATRIX_LOAD_POLICY");
    if (env != nullptr && std::string_view(env) == "directive") {
      return LoadPolicyKind::kDirective;
    }
    return LoadPolicyKind::kClassic;
  }();
  return kind;
}

const char* load_policy_kind_name(LoadPolicyKind kind) {
  switch (kind) {
    case LoadPolicyKind::kClassic: return "classic";
    case LoadPolicyKind::kDirective: return "directive";
  }
  return "?";
}

std::unique_ptr<LoadPolicy> make_load_policy(const Config& config) {
  switch (config.policy.kind) {
    case LoadPolicyKind::kDirective:
      return std::make_unique<DirectivePolicy>(config);
    case LoadPolicyKind::kClassic:
      break;
  }
  return std::make_unique<ClassicPolicy>(config);
}

}  // namespace matrix
