// LoadPolicy — the pluggable decision layer for adaptive load distribution.
//
// The paper's core contribution (§3.2.3) is the set of decisions that move
// load around a Matrix deployment: WHEN a partition splits, WHERE the cut
// lands, WHEN a child is reclaimed, and WHO wins a spare server when the
// pool is contested.  Historically those decisions were smeared across
// MatrixServer::maybe_split/maybe_reclaim/choose_split, the resource pool's
// FCFS grant loop, and threshold helpers baked into Config.  This layer
// gathers them behind one interface consuming one consolidated input
// (LoadView, policy/load_view.h) and emitting typed decisions, so the
// decision logic is swappable without touching the mechanism code
// (message handshakes, state transfer, hysteresis bookkeeping stay in
// core/).
//
// Implementations:
//
//   * ClassicPolicy (classic_policy.h)    — bit-for-bit port of the
//     historical behavior: threshold + sustain splits, split-to-left or
//     median cuts per Config::split_policy, headroom-gated reclaims, FCFS
//     pool grants.  The default; the seed traces are reproduced exactly.
//
//   * DirectivePolicy (directive_policy.h) — ClassicPolicy plus the two
//     coordinator-directive extensions named in ROADMAP: need-weighted
//     pool-grant arbitration (the PoolAcquire need hint biases a contested
//     grant toward the partition the global-admission pressure score says
//     is most starved) and directive-driven proactive load-aware splits
//     (an active AdmissionDirective splits the hottest partition before
//     the valve ever reaches HARD).
//
// Selection: Config::policy.kind, overridable process-wide via the
// MATRIX_LOAD_POLICY environment variable (CI's policy-matrix leg).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/config.h"
#include "policy/load_view.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace matrix {

/// Split now, or defer?  Emitted by LoadPolicy::decide_split on every load
/// report; the Matrix server turns a positive decision into a PoolAcquire.
struct SplitDecision {
  bool split = false;
  /// True when the split fired below the ordinary overload threshold on the
  /// strength of an active coordinator directive (DirectivePolicy).
  bool proactive = false;
};

/// Reclaim the most recent child, or leave the topology alone?
struct ReclaimDecision {
  bool reclaim = false;
};

/// One pool request awaiting arbitration (resource-pool side).
struct PoolRequest {
  ServerId requester;
  NodeId reply_to;
  /// The requester's need hint as carried by PoolAcquire; 0 means "no bias"
  /// (ClassicPolicy, or no directive in force) and is never held.
  double need = 0.0;
  /// Arrival order within the window (FCFS tie-break).
  std::uint64_t arrival = 0;
};

/// Which requester wins a contested pool server: indices into the request
/// vector, best first.  The pool grants down this order until the idle
/// list runs dry and denies the rest.
struct PoolGrantDecision {
  std::vector<std::size_t> order;
};

class LoadPolicy {
 public:
  explicit LoadPolicy(const Config& config) : config_(config) {}
  virtual ~LoadPolicy() = default;

  LoadPolicy(const LoadPolicy&) = delete;
  LoadPolicy& operator=(const LoadPolicy&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;

  // ---- Matrix-server-side decisions -----------------------------------------

  /// Should this server split now?  Consulted on every LoadReport once the
  /// mechanical gates (active, nothing pending, cooldown elapsed) pass.
  [[nodiscard]] virtual SplitDecision decide_split(
      const LoadView& view) const = 0;

  /// Where the cut lands: {give_away, keep}, the first piece handed to the
  /// newly granted child (the paper's split-to-left contract).
  [[nodiscard]] virtual std::pair<Rect, Rect> split_ranges(
      const LoadView& view) const = 0;

  /// Should this server reclaim its most recent child?
  [[nodiscard]] virtual ReclaimDecision decide_reclaim(
      const LoadView& view, const ChildView& child) const = 0;

  /// The need hint stamped onto PoolAcquire.  0 ⇒ classic FCFS handling at
  /// the pool; > 0 ⇒ the request may be held and arbitrated against
  /// competing requesters.
  [[nodiscard]] virtual double pool_need(const LoadView& view) const = 0;

  // ---- resource-pool-side arbitration ---------------------------------------

  /// How long the pool should hold `request` before arbitrating; 0 ⇒
  /// grant/deny immediately (the classic path).
  [[nodiscard]] virtual SimTime grant_hold(const PoolRequest& request) const = 0;

  /// Orders the held requests by grant preference.
  [[nodiscard]] virtual PoolGrantDecision arbitrate(
      const std::vector<PoolRequest>& requests) const = 0;

  // ---- shared helpers -------------------------------------------------------

  [[nodiscard]] const Config& config() const { return config_; }

 protected:
  Config config_;
};

/// Constructs the implementation selected by `config.policy.kind`.
[[nodiscard]] std::unique_ptr<LoadPolicy> make_load_policy(
    const Config& config);

}  // namespace matrix
