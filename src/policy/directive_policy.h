// DirectivePolicy — ClassicPolicy plus the coordinator-directive extensions.
//
// While no AdmissionDirective is in force this policy is ClassicPolicy to
// the bit: the extensions key on the directive precisely because the
// directive is the deployment-wide "we are past capacity" signal the MC
// derives from its pressure score (control/global_admission.h).  Under an
// active directive it adds:
//
//   * NEED-WEIGHTED POOL GRANTS.  PoolAcquire carries a need hint scored
//     from the same signals the MC's pressure score weights (load fraction
//     plus waiting-room depth — the deepest line is the most starved
//     partition).  The pool holds need-tagged requests for
//     Config::policy.grant_window and grants the contested spare to the
//     highest need instead of whoever's retry happened to arrive first, so
//     the spare lands where the global-admission score says it relieves the
//     most starvation.
//
//   * PROACTIVE LOAD-AWARE SPLITS.  An active directive means the valve
//     system is already shedding joins deployment-wide; waiting for a
//     partition to cross the full overload + sustain hysteresis before
//     splitting wastes the spare pool's head start.  Once reported clients
//     reach proactive_load_fraction × overload_clients AND the waiting room
//     holds proactive_min_waiting parked joins, the partition splits
//     immediately — before its valve ever reaches HARD — and the cut is
//     load-aware (median) regardless of split_policy, because a proactive
//     split exists to shed the hotspot, not to halve real estate.
#pragma once

#include "policy/classic_policy.h"

namespace matrix {

class DirectivePolicy : public ClassicPolicy {
 public:
  using ClassicPolicy::ClassicPolicy;

  [[nodiscard]] const char* name() const override { return "directive"; }

  [[nodiscard]] SplitDecision decide_split(const LoadView& view) const override;
  [[nodiscard]] std::pair<Rect, Rect> split_ranges(
      const LoadView& view) const override;
  [[nodiscard]] double pool_need(const LoadView& view) const override;

  [[nodiscard]] SimTime grant_hold(const PoolRequest& request) const override;
  [[nodiscard]] PoolGrantDecision arbitrate(
      const std::vector<PoolRequest>& requests) const override;
};

}  // namespace matrix
