// ClassicPolicy — the historical decision logic, ported bit-for-bit.
//
// Split: sustained overload (Config::sustain_reports_to_split consecutive
// overloaded reports) above the min-partition-extent floor; the cut follows
// Config::split_policy (halve across the longer dimension, or cut at the
// reported median client coordinate).  Reclaim: parent underloaded, child
// underloaded and leaf, combined load within the reclaim headroom, valve
// composed-NORMAL.  Pool grants: strict FCFS — a request is answered the
// instant it arrives, whoever asks first wins.
//
// This is the default policy; the existing split/reclaim/grant traces (the
// topology property tests, the matrix-server suite, every admission bench)
// reproduce exactly under it — with one deliberate exception that applies
// to every policy: the pool-denial episode's pool-idle semantics were
// FIXED in the same change (idle spares now permit a prompt retry without
// forgetting the streak; see policy/denial_episode.h and the regression
// test in tests/policy_test.cpp).
#pragma once

#include "policy/load_policy.h"

namespace matrix {

class ClassicPolicy : public LoadPolicy {
 public:
  using LoadPolicy::LoadPolicy;

  [[nodiscard]] const char* name() const override { return "classic"; }

  [[nodiscard]] SplitDecision decide_split(const LoadView& view) const override;
  [[nodiscard]] std::pair<Rect, Rect> split_ranges(
      const LoadView& view) const override;
  [[nodiscard]] ReclaimDecision decide_reclaim(
      const LoadView& view, const ChildView& child) const override;
  [[nodiscard]] double pool_need(const LoadView& view) const override;

  [[nodiscard]] SimTime grant_hold(const PoolRequest& request) const override;
  [[nodiscard]] PoolGrantDecision arbitrate(
      const std::vector<PoolRequest>& requests) const override;

 protected:
  /// True when halving the range would drop below min_partition_extent (a
  /// point hotspot would recurse forever otherwise).
  [[nodiscard]] bool below_min_extent(const Rect& range) const;

  /// The load-aware cut: median client coordinate along the longer axis,
  /// clamped by Rect::split_at so a degenerate median (all clients at one
  /// point, or a stale median outside the range) still yields two
  /// non-degenerate complementary pieces.
  [[nodiscard]] std::pair<Rect, Rect> load_aware_cut(
      const LoadView& view) const;
};

}  // namespace matrix
