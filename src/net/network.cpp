#include "net/network.h"

#include "util/log.h"

namespace matrix {

namespace {

/// Reserves geometric capacity before growing a dense id-indexed table to
/// cover `index`.  Ids arrive in increasing order (attach order, client
/// fan-out), so relying on the library's resize growth policy would make
/// table growth quadratic at 10k-node scale on implementations that size
/// exactly.
template <typename T>
void reserve_for_index(std::vector<T>& table, std::size_t index) {
  if (index < table.capacity()) return;
  std::size_t cap = table.capacity() < 16 ? 16 : table.capacity() * 2;
  while (cap <= index) cap *= 2;
  table.reserve(cap);
}

}  // namespace

Network::Network(std::uint64_t seed) : rng_(seed ^ 0xA5A5A5A5DEADBEEFULL) {
  // Sim-time-stamp all log output while this network lives (last network
  // constructed wins; owner matching in clear_clock keeps interleaved
  // lifetimes safe).
  Logger::instance().set_clock(this, [](const void* owner) {
    return static_cast<const Network*>(owner)->now();
  });
}

Network::~Network() { Logger::instance().clear_clock(this); }

Network::NodeState& Network::ensure_state(NodeId id) {
  const std::size_t index = id.value();
  if (index >= nodes_.size()) {
    reserve_for_index(nodes_, index);
    nodes_.resize(index + 1);
  }
  return nodes_[index];
}

Network::LinkRecord& Network::link_record(NodeId src, NodeId dst) {
  NodeState& state = ensure_state(src);
  const std::size_t d = dst.value();
  if (state.out.size() <= d) {
    reserve_for_index(state.out, d);
    state.out.resize(d + 1, -1);
  }
  std::int32_t slot = state.out[d];
  if (slot < 0) {
    slot = static_cast<std::int32_t>(link_records_.size());
    state.out[d] = slot;
    LinkRecord record;
    record.src = src;
    record.dst = dst;
    link_records_.push_back(std::move(record));
  }
  return link_records_[static_cast<std::size_t>(slot)];
}

const Network::LinkRecord* Network::find_link_record(NodeId src,
                                                     NodeId dst) const {
  const NodeState* state = find_state(src);
  if (state == nullptr) return nullptr;
  const std::size_t d = dst.value();
  if (d >= state->out.size() || state->out[d] < 0) return nullptr;
  return &link_records_[static_cast<std::size_t>(state->out[d])];
}

NodeId Network::attach(Node* node, NodeConfig config) {
  const NodeId id = node_ids_.next();
  node->node_id_ = id;
  node->network_ = this;
  NodeState& state = ensure_state(id);
  state.node = node;
  state.config = config;
  return id;
}

void Network::detach(NodeId id) {
  NodeState* state = find_state(id);
  if (state == nullptr) return;
  total_dropped_ += state->queue.size();
  for (Envelope& env : state->queue) pool_.release(std::move(env.payload));
  state->queue.clear();
  state->node = nullptr;
  state->serving = false;
  ++state->epoch;  // cancels any in-flight service completion
}

void Network::set_link(NodeId src, NodeId dst, LinkConfig config) {
  LinkRecord& record = link_record(src, dst);
  record.has_override = true;
  record.config = config;
}

void Network::set_node_config(NodeId id, NodeConfig config) {
  NodeState* state = find_state(id);
  if (state != nullptr) state->config = config;
}

std::size_t Network::send(NodeId src, NodeId dst,
                          std::vector<std::uint8_t> payload) {
  Envelope envelope;
  envelope.src = src;
  envelope.dst = dst;
  envelope.payload = std::move(payload);
  envelope.sent_at = now();
  const std::size_t wire = envelope.wire_size();

  LinkRecord& record = link_record(src, dst);
  const LinkConfig& cfg = record.has_override ? record.config : default_link_;

  const bool dropped =
      !attached(dst) ||
      (cfg.drop_probability > 0.0 && rng_.next_bool(cfg.drop_probability));
  if (trace_hash_on_) trace_record(src, dst, envelope.payload, dropped);
  if (tracer_.records_sends()) {
    tracer_.record(now(), obs::TraceKind::kSend, src.value(), dst.value(),
                   static_cast<std::int64_t>(wire), dropped ? 1 : 0);
  }
  if (dropped) {
    ++record.stats.dropped_messages;
    ++total_dropped_;
    pool_.release(std::move(envelope.payload));
    return wire;
  }

  record.stats.messages += 1;
  record.stats.bytes += wire;
  total_bytes_ += wire;
  total_messages_ += 1;

  const SimTime delay = cfg.latency + cfg.transfer_delay(wire);
  events_.schedule_after(delay, [this, dst, env = std::move(envelope)]() mutable {
    env.delivered_at = now();
    deliver(dst, std::move(env));
  });
  return wire;
}

void Network::deliver(NodeId dst, Envelope envelope) {
  NodeState* state = find_state(dst);
  if (state == nullptr || state->node == nullptr) {
    ++total_dropped_;
    pool_.release(std::move(envelope.payload));
    return;  // node detached while the message was in flight
  }
  if (state->config.queue_capacity &&
      state->queue.size() >= *state->config.queue_capacity) {
    ++total_dropped_;
    ++link_record(envelope.src, dst).stats.dropped_messages;
    pool_.release(std::move(envelope.payload));
    return;  // tail drop: the overloaded-static-server failure mode
  }
  state->queue.push_back(std::move(envelope));
  if (!state->serving) start_service(dst);
}

void Network::start_service(NodeId dst) {
  NodeState* state = find_state(dst);
  if (state == nullptr || state->node == nullptr || state->queue.empty()) {
    if (state != nullptr) state->serving = false;
    return;
  }
  state->serving = true;
  const std::uint64_t epoch = state->epoch;
  const SimTime service =
      state->config.service_time(state->queue.front().wire_size());
  events_.schedule_after(service, [this, dst, epoch] {
    NodeState* s = find_state(dst);
    if (s == nullptr || s->epoch != epoch || s->node == nullptr ||
        s->queue.empty()) {
      return;
    }
    Envelope env = std::move(s->queue.front());
    s->queue.pop_front();
    // Handle *before* scheduling the next service so handlers observe a
    // queue that no longer contains the message being processed.
    s->node->handle_message(env);
    pool_.release(std::move(env.payload));
    // The handler may have detached this node (e.g. reclamation) or attached
    // new ones (the node table may have grown) — re-resolve.
    s = find_state(dst);
    if (s != nullptr && s->epoch == epoch) {
      start_service(dst);
    }
  });
}

void Network::trace_record(NodeId src, NodeId dst,
                           const std::vector<std::uint8_t>& payload,
                           bool dropped) {
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  auto mix = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      trace_hash_ ^= (v >> (8 * i)) & 0xFF;
      trace_hash_ *= kPrime;
    }
  };
  mix(static_cast<std::uint64_t>(now().us()));
  mix(src.value());
  mix(dst.value());
  mix(dropped ? 1u : 0u);
  mix(payload.size());
  for (const std::uint8_t b : payload) {
    trace_hash_ ^= b;
    trace_hash_ *= kPrime;
  }
}

std::size_t Network::queue_length(NodeId id) const {
  const NodeState* state = find_state(id);
  return state != nullptr ? state->queue.size() : 0;
}

const LinkStats& Network::stats(NodeId src, NodeId dst) const {
  static const LinkStats kEmpty;
  const LinkRecord* record = find_link_record(src, dst);
  return record != nullptr ? record->stats : kEmpty;
}

std::uint64_t Network::bytes_matching(
    const std::function<bool(NodeId, NodeId)>& pred) const {
  std::uint64_t sum = 0;
  for (const LinkRecord& record : link_records_) {
    if (pred(record.src, record.dst)) sum += record.stats.bytes;
  }
  return sum;
}

}  // namespace matrix
