#include "net/network.h"

#include "util/log.h"

namespace matrix {

NodeId Network::attach(Node* node, NodeConfig config) {
  const NodeId id = node_ids_.next();
  node->node_id_ = id;
  node->network_ = this;
  NodeState& state = nodes_[id];
  state.node = node;
  state.config = config;
  return id;
}

void Network::detach(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  NodeState& state = it->second;
  total_dropped_ += state.queue.size();
  state.queue.clear();
  state.node = nullptr;
  state.serving = false;
  ++state.epoch;  // cancels any in-flight service completion
}

void Network::set_node_config(NodeId id, NodeConfig config) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.config = config;
}

std::size_t Network::send(NodeId src, NodeId dst,
                          std::vector<std::uint8_t> payload) {
  Envelope envelope;
  envelope.src = src;
  envelope.dst = dst;
  envelope.payload = std::move(payload);
  envelope.sent_at = now();
  const std::size_t wire = envelope.wire_size();

  LinkStats& stats = link_stats_[{src, dst}];
  const LinkConfig& cfg = link(src, dst);

  if (!attached(dst) ||
      (cfg.drop_probability > 0.0 && rng_.next_bool(cfg.drop_probability))) {
    ++stats.dropped_messages;
    ++total_dropped_;
    return wire;
  }

  stats.messages += 1;
  stats.bytes += wire;
  total_bytes_ += wire;
  total_messages_ += 1;

  const SimTime delay = cfg.latency + cfg.transfer_delay(wire);
  events_.schedule_after(delay, [this, dst, env = std::move(envelope)]() mutable {
    env.delivered_at = now();
    deliver(dst, std::move(env));
  });
  return wire;
}

void Network::deliver(NodeId dst, Envelope envelope) {
  auto it = nodes_.find(dst);
  if (it == nodes_.end() || it->second.node == nullptr) {
    ++total_dropped_;
    return;  // node detached while the message was in flight
  }
  NodeState& state = it->second;
  if (state.config.queue_capacity &&
      state.queue.size() >= *state.config.queue_capacity) {
    ++total_dropped_;
    ++link_stats_[{envelope.src, dst}].dropped_messages;
    return;  // tail drop: the overloaded-static-server failure mode
  }
  state.queue.push_back(std::move(envelope));
  if (!state.serving) start_service(dst);
}

void Network::start_service(NodeId dst) {
  auto it = nodes_.find(dst);
  if (it == nodes_.end() || it->second.node == nullptr ||
      it->second.queue.empty()) {
    if (it != nodes_.end()) it->second.serving = false;
    return;
  }
  NodeState& state = it->second;
  state.serving = true;
  const std::uint64_t epoch = state.epoch;
  const SimTime service = state.config.service_time(state.queue.front().wire_size());
  events_.schedule_after(service, [this, dst, epoch] {
    auto it2 = nodes_.find(dst);
    if (it2 == nodes_.end() || it2->second.epoch != epoch ||
        it2->second.node == nullptr || it2->second.queue.empty()) {
      return;
    }
    NodeState& s = it2->second;
    Envelope env = std::move(s.queue.front());
    s.queue.pop_front();
    // Handle *before* scheduling the next service so handlers observe a
    // queue that no longer contains the message being processed.
    s.node->handle_message(env);
    // The handler may have detached this node (e.g. reclamation).
    auto it3 = nodes_.find(dst);
    if (it3 != nodes_.end() && it3->second.epoch == epoch) {
      start_service(dst);
    }
  });
}

std::size_t Network::queue_length(NodeId id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() ? it->second.queue.size() : 0;
}

const LinkStats& Network::stats(NodeId src, NodeId dst) const {
  static const LinkStats kEmpty;
  auto it = link_stats_.find({src, dst});
  return it != link_stats_.end() ? it->second : kEmpty;
}

std::uint64_t Network::bytes_matching(
    const std::function<bool(NodeId, NodeId)>& pred) const {
  std::uint64_t sum = 0;
  for (const auto& [key, stats] : link_stats_) {
    if (pred(key.first, key.second)) sum += stats.bytes;
  }
  return sum;
}

}  // namespace matrix
