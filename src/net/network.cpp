#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>

#include "util/log.h"

namespace matrix {

namespace {

/// Reserves geometric capacity before growing a dense id-indexed table to
/// cover `index`.  Ids arrive in increasing order (attach order, client
/// fan-out), so relying on the library's resize growth policy would make
/// table growth quadratic at 10k-node scale on implementations that size
/// exactly.
template <typename T>
void reserve_for_index(std::vector<T>& table, std::size_t index) {
  if (index < table.capacity()) return;
  std::size_t cap = table.capacity() < 16 ? 16 : table.capacity() * 2;
  while (cap <= index) cap *= 2;
  table.reserve(cap);
}

constexpr std::uint64_t kRngSalt = 0xA5A5A5A5DEADBEEFULL;
constexpr std::uint64_t kShardSeedStride = 0x9E3779B97F4A7C15ULL;
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

}  // namespace

thread_local Network::Shard* Network::tls_shard_ = nullptr;

bool resolve_shard_threads(bool config_default) {
  const char* env = std::getenv("MATRIX_SHARD_THREADS");
  if (env == nullptr || *env == '\0') return config_default;
  const std::string value(env);
  if (value == "0" || value == "off" || value == "false" || value == "no") {
    return false;
  }
  return true;
}

bool resolve_ladder_scheduler(bool config_default) {
  const char* env = std::getenv("MATRIX_EVENT_SCHEDULER");
  if (env == nullptr || *env == '\0') return config_default;
  const std::string value(env);
  if (value == "heap" || value == "0" || value == "off" || value == "false") {
    return false;
  }
  return true;
}

Network::Network(std::uint64_t seed) : seed_(seed) {
  // Shard 0 seeds exactly like the historical serial engine, so one-shard
  // runs draw the identical RNG stream.
  shards_.push_back(std::make_unique<Shard>(0, seed ^ kRngSalt));
  shards_.front()->outbox.resize(1);
  scheduler_ = resolve_ladder_scheduler(true) ? EventQueue::Scheduler::kLadder
                                              : EventQueue::Scheduler::kHeap;
  shards_.front()->events.set_scheduler(scheduler_);
  control_queue_.set_scheduler(scheduler_);
  // Sim-time-stamp all log output while this network lives (last network
  // constructed wins; owner matching in clear_clock keeps interleaved
  // lifetimes safe).
  Logger::instance().set_clock(this, [](const void* owner) {
    return static_cast<const Network*>(owner)->now();
  });
}

Network::~Network() {
  stop_workers();
  Logger::instance().clear_clock(this);
}

void Network::configure_shards(std::size_t count, bool use_threads) {
  if (count == 0) count = 1;
  // Sharding must be decided before any topology exists: shard assignment
  // happens at attach, and the one-shard fast paths assume it never changes
  // mid-run.
  assert(nodes_.empty() && "configure_shards must precede attach");
  assert(shards_.front()->events.empty() && control_queue_.empty());
  stop_workers();
  shards_.clear();
  const std::uint64_t base = seed_ ^ kRngSalt;
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        static_cast<std::uint32_t>(i),
        i == 0 ? base : base + kShardSeedStride * static_cast<std::uint64_t>(i)));
  }
  for (auto& shard : shards_) {
    shard->outbox.resize(count);
    shard->events.set_scheduler(scheduler_);
  }
  use_threads_ = count > 1 && resolve_shard_threads(use_threads);
  if (tracer_.enabled() && sharded()) {
    for (auto& shard : shards_) shard->tracer.defer_like(tracer_);
  }
}

void Network::set_scheduler(EventQueue::Scheduler scheduler) {
  scheduler_ = scheduler;
  for (auto& shard : shards_) shard->events.set_scheduler(scheduler);
  control_queue_.set_scheduler(scheduler);
}

void Network::set_rebalance(double threshold, std::uint64_t interval_events) {
  rebalance_threshold_ = threshold;
  rebalance_interval_events_ = interval_events;
}

void Network::define_colocated_group(std::vector<NodeId> nodes) {
  ColocatedGroup group;
  group.nodes = std::move(nodes);
  groups_.push_back(std::move(group));
}

bool Network::force_rebalance() { return evaluate_rebalance(true); }

void Network::enable_tracing(obs::TraceOptions options) {
  tracer_.enable(options);
  if (sharded()) {
    for (auto& shard : shards_) shard->tracer.defer_like(tracer_);
  }
}

Network::NodeState& Network::ensure_state(NodeId id) {
  const std::size_t index = id.value();
  if (index >= nodes_.size()) {
    reserve_for_index(nodes_, index);
    nodes_.resize(index + 1);
  }
  return nodes_[index];
}

Network::LinkRecord& Network::link_record(NodeId src, NodeId dst) {
  NodeState& state = ensure_state(src);
  // The record lives in the SOURCE owner's shard store: only that shard
  // (or the main thread while workers idle) ever touches it.
  std::vector<LinkRecord>& store = shards_[state.shard]->link_records;
  const std::size_t d = dst.value();
  if (state.out.size() <= d) {
    reserve_for_index(state.out, d);
    state.out.resize(d + 1, -1);
  }
  std::int32_t slot = state.out[d];
  if (slot < 0) {
    slot = static_cast<std::int32_t>(store.size());
    state.out[d] = slot;
    LinkRecord record;
    record.src = src;
    record.dst = dst;
    store.push_back(std::move(record));
  }
  return store[static_cast<std::size_t>(slot)];
}

const Network::LinkRecord* Network::find_link_record(NodeId src,
                                                     NodeId dst) const {
  const NodeState* state = find_state(src);
  if (state == nullptr) return nullptr;
  const std::size_t d = dst.value();
  if (d >= state->out.size() || state->out[d] < 0) return nullptr;
  return &shards_[state->shard]
              ->link_records[static_cast<std::size_t>(state->out[d])];
}

NodeId Network::attach(Node* node, NodeConfig config, std::size_t shard) {
  const NodeId id = node_ids_.next();
  node->node_id_ = id;
  node->network_ = this;
  NodeState& state = ensure_state(id);
  state.node = node;
  state.config = config;
  state.shard = static_cast<std::uint32_t>(
      shard < shards_.size() ? shard : shards_.size() - 1);
  return id;
}

void Network::detach(NodeId id) {
  NodeState* state = find_state(id);
  if (state == nullptr) return;
  Shard& owner = *shards_[state->shard];
  owner.total_dropped += state->queue.size();
  for (Envelope& env : state->queue) owner.pool.release(std::move(env.payload));
  state->queue.clear();
  state->node = nullptr;
  state->serving = false;
  ++state->epoch;  // cancels any in-flight service completion
}

void Network::fold_lookahead(SimTime latency) {
  SimTime floor = SimTime::from_us(1);
  if (latency < floor) latency = floor;
  if (!lookahead_seeded_ || latency < lookahead_) lookahead_ = latency;
  lookahead_seeded_ = true;
}

void Network::set_default_link(LinkConfig config) {
  default_link_ = config;
  // Any pair without an override — including node pairs created later —
  // may ride the default link across shards, so it always bounds lookahead.
  fold_lookahead(config.latency);
}

void Network::set_link(NodeId src, NodeId dst, LinkConfig config) {
  LinkRecord& record = link_record(src, dst);
  record.has_override = true;
  record.config = config;
  if (sharded() && shard_of(src) != shard_of(dst)) {
    fold_lookahead(config.latency);
  }
}

void Network::set_node_config(NodeId id, NodeConfig config) {
  NodeState* state = find_state(id);
  if (state != nullptr) state->config = config;
}

std::size_t Network::send(NodeId src, NodeId dst,
                          std::vector<std::uint8_t> payload) {
  Envelope envelope;
  envelope.src = src;
  envelope.dst = dst;
  envelope.payload = std::move(payload);
  envelope.sent_at = now();
  const std::size_t wire = envelope.wire_size();

  LinkRecord& record = link_record(src, dst);
  const LinkConfig& cfg = record.has_override ? record.config : default_link_;
  // Sender-side state (RNG stream, golden hash, totals, payload pool) lives
  // on the shard that owns `src`; inside a window that IS the running shard.
  Shard& sh = *shards_[find_state(src)->shard];

  const bool dropped =
      !attached(dst) ||
      (cfg.drop_probability > 0.0 && sh.rng.next_bool(cfg.drop_probability));
  if (trace_hash_on_) trace_record(sh, src, dst, envelope.payload, dropped);
  obs::Tracer& tr = tracer();
  if (tr.records_sends()) {
    tr.record(envelope.sent_at, obs::TraceKind::kSend, src.value(),
              dst.value(), static_cast<std::int64_t>(wire), dropped ? 1 : 0);
  }
  if (dropped) {
    ++record.stats.dropped_messages;
    ++sh.total_dropped;
    sh.pool.release(std::move(envelope.payload));
    return wire;
  }

  record.stats.messages += 1;
  record.stats.bytes += wire;
  sh.total_bytes += wire;
  sh.total_messages += 1;

  const SimTime deliver_at =
      envelope.sent_at + cfg.latency + cfg.transfer_delay(wire);
  if (sharded() && tls_shard_ != nullptr &&
      shard_of(dst) != tls_shard_->index) {
    // Cross-shard: park in the mailbox; the barrier merges all mailboxes
    // for a destination in deterministic (time, src shard, order) order.
    // Conservative lookahead guarantees deliver_at is at or past the window
    // horizon, so the destination has not run past it.
    Shard& here = *tls_shard_;
    ++here.cross_sends;
    Mail mail;
    mail.deliver_at = deliver_at;
    mail.dst = dst;
    mail.env = std::move(envelope);
    here.outbox[shard_of(dst)].push_back(std::move(mail));
    return wire;
  }
  // Same-shard inside a window, the serial engine, or the main-thread
  // control context (scenario drivers, revive paths — workers idle, so
  // scheduling straight onto the destination shard's queue is race-free).
  EventQueue& queue = !sharded() ? shards_.front()->events
                     : tls_shard_ != nullptr
                         ? tls_shard_->events
                         : shards_[shard_of(dst)]->events;
  queue.schedule_at(deliver_at, dst.value(),
                    [this, dst, env = std::move(envelope)]() mutable {
                      env.delivered_at = now();
                      deliver(dst, std::move(env));
                    });
  return wire;
}

void Network::deliver(NodeId dst, Envelope envelope) {
  Shard& here = current_shard();
  NodeState* state = find_state(dst);
  if (state == nullptr || state->node == nullptr) {
    ++here.total_dropped;
    here.pool.release(std::move(envelope.payload));
    return;  // node detached while the message was in flight
  }
  if (state->config.queue_capacity &&
      state->queue.size() >= *state->config.queue_capacity) {
    ++here.total_dropped;
    // Per-pair stats live on the SENDING shard's store; only touch them when
    // that is us, else aggregate (engine_stats().cross_tail_drops).
    if (!sharded() || shard_of(envelope.src) == here.index) {
      ++link_record(envelope.src, dst).stats.dropped_messages;
    } else {
      ++here.cross_tail_drops;
    }
    here.pool.release(std::move(envelope.payload));
    return;  // tail drop: the overloaded-static-server failure mode
  }
  state->queue.push_back(std::move(envelope));
  if (!state->serving) start_service(dst);
}

void Network::start_service(NodeId dst) {
  NodeState* state = find_state(dst);
  if (state == nullptr || state->node == nullptr || state->queue.empty()) {
    if (state != nullptr) state->serving = false;
    return;
  }
  state->serving = true;
  const std::uint64_t epoch = state->epoch;
  const SimTime service =
      state->config.service_time(state->queue.front().wire_size());
  current_shard().events.schedule_after(service, dst.value(), [this, dst,
                                                               epoch] {
    NodeState* s = find_state(dst);
    if (s == nullptr || s->epoch != epoch || s->node == nullptr ||
        s->queue.empty()) {
      return;
    }
    Envelope env = std::move(s->queue.front());
    s->queue.pop_front();
    // Handle *before* scheduling the next service so handlers observe a
    // queue that no longer contains the message being processed.
    s->node->handle_message(env);
    ++s->served;  // the rebalancer's per-node load proxy
    current_shard().pool.release(std::move(env.payload));
    // The handler may have detached this node (e.g. reclamation) or attached
    // new ones (the node table may have grown) — re-resolve.
    s = find_state(dst);
    if (s != nullptr && s->epoch == epoch) {
      start_service(dst);
    }
  });
}

void Network::trace_record(Shard& shard, NodeId src, NodeId dst,
                           const std::vector<std::uint8_t>& payload,
                           bool dropped) {
  std::uint64_t h = shard.trace_hash;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= kFnvPrime;
    }
  };
  mix(static_cast<std::uint64_t>(now().us()));
  mix(src.value());
  mix(dst.value());
  mix(dropped ? 1u : 0u);
  mix(payload.size());
  for (const std::uint8_t b : payload) {
    h ^= b;
    h *= kFnvPrime;
  }
  shard.trace_hash = h;
}

// ---------------------------------------------------------------------------
// Sharded barrier loop
// ---------------------------------------------------------------------------

void Network::run_until(SimTime t) {
  if (!sharded()) {
    shards_.front()->events.run_until(t);
    return;
  }
  run_sharded(t);
}

void Network::run_sharded(SimTime t) {
  // Catch up control events scheduled at or before the current barrier time
  // (e.g. a scenario wave registered for "now" between run_until calls).
  control_queue_.run_until(global_now_);
  while (global_now_ < t) {
    // Earliest pending shard work; the horizon may jump straight to it when
    // every shard idles (quiesce tails would otherwise spin empty windows).
    SimTime earliest = t;
    bool any = false;
    for (const auto& shard : shards_) {
      if (shard->events.empty()) continue;
      const SimTime next = shard->events.next_time();
      if (!any || next < earliest) earliest = next;
      any = true;
    }
    SimTime window = t;
    if (any) {
      const SimTime base = earliest > global_now_ ? earliest : global_now_;
      const SimTime horizon = base + lookahead_;
      if (horizon < window) window = horizon;
    }
    if (!control_queue_.empty() &&
        control_queue_.next_time() < window) {
      window = control_queue_.next_time();
    }
    // Final step runs INCLUSIVE so events landing exactly at `t` execute,
    // matching the serial engine's run_until contract.  Interior windows are
    // EXCLUSIVE: boundary events wait for the mailbox merge, so their order
    // against merged cross-shard mail is decided deterministically.
    const bool inclusive = window == t;
    run_windows(window, inclusive);
    merge_mailboxes();
    if (tracer_.enabled()) merge_trace_ops();
    global_now_ = window;
    ++windows_;
    // Barrier: workers parked, mailboxes merged — the one safe point to
    // migrate node groups between shards.
    maybe_rebalance();
    control_queue_.run_until(window);
  }
}

void Network::run_one_window(Shard& shard, SimTime end, bool inclusive) {
  tls_shard_ = &shard;
  if (inclusive) {
    shard.events.run_until(end);
  } else {
    shard.events.run_window(end);
  }
  tls_shard_ = nullptr;
}

void Network::run_windows(SimTime end, bool inclusive) {
  if (!use_threads_) {
    for (auto& shard : shards_) run_one_window(*shard, end, inclusive);
    return;
  }
  start_workers();
  const auto wall_start = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(work_mutex_);
    window_end_ = end;
    window_inclusive_ = inclusive;
    work_pending_ = shards_.size();
    ++work_generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this] { return work_pending_ == 0; });
  }
  windows_wall_us_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
}

void Network::merge_mailboxes() {
  const std::size_t count = shards_.size();
  for (std::size_t d = 0; d < count; ++d) {
    merge_scratch_.clear();
    for (auto& src : shards_) {
      std::vector<Mail>& box = src->outbox[d];
      for (Mail& mail : box) merge_scratch_.push_back(std::move(mail));
      box.clear();
    }
    if (merge_scratch_.empty()) continue;
    // Stable sort on time alone: equal times keep concatenation order, i.e.
    // (deliver time, src shard, send order) — the determinism contract.
    std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                     [](const Mail& a, const Mail& b) {
                       return a.deliver_at < b.deliver_at;
                     });
    EventQueue& queue = shards_[d]->events;
    for (Mail& mail : merge_scratch_) {
      // Conservative lookahead means nothing lands behind the horizon the
      // destination already reached.
      assert(mail.deliver_at >= queue.now());
      queue.schedule_at(mail.deliver_at, mail.dst.value(),
                        [this, dst = mail.dst,
                         env = std::move(mail.env)]() mutable {
                          env.delivered_at = now();
                          deliver(dst, std::move(env));
                        });
    }
  }
  merge_scratch_.clear();
}

void Network::merge_trace_ops() {
  // K-way merge of the per-shard deferred-op buffers by (time, shard index);
  // each buffer is already time-sorted (sim time is monotone in a window).
  const std::size_t count = shards_.size();
  std::size_t pos[64] = {};
  assert(count <= 64);
  while (true) {
    std::size_t best = count;
    SimTime best_at{};
    for (std::size_t i = 0; i < count; ++i) {
      const auto& ops = shards_[i]->tracer.deferred_ops();
      if (pos[i] >= ops.size()) continue;
      const SimTime at = ops[pos[i]].at;
      if (best == count || at < best_at) {
        best = i;
        best_at = at;
      }
    }
    if (best == count) break;
    tracer_.apply(shards_[best]->tracer.deferred_ops()[pos[best]]);
    ++pos[best];
  }
  for (auto& shard : shards_) shard->tracer.deferred_ops().clear();
}

// ---------------------------------------------------------------------------
// Shard load rebalancing
// ---------------------------------------------------------------------------

void Network::maybe_rebalance() {
  if (rebalance_threshold_ <= 0.0 || !sharded()) return;
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->events.events_processed();
  if (total - rebalance_last_total_ < rebalance_interval_events_) return;
  rebalance_last_total_ = total;
  evaluate_rebalance(false);
}

bool Network::evaluate_rebalance(bool force) {
  if (!sharded()) return false;
  const std::size_t count = shards_.size();
  if (shard_event_base_.size() != count) shard_event_base_.assign(count, 0);

  // Executed-event deltas for the elapsed epoch; baselines reset at every
  // evaluation so one early hot phase cannot dominate forever.
  std::size_t busiest = 0;
  std::size_t idlest = 0;
  std::uint64_t delta_total = 0;
  std::vector<std::uint64_t> delta(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t events = shards_[i]->events.events_processed();
    delta[i] = events - shard_event_base_[i];
    shard_event_base_[i] = events;
    delta_total += delta[i];
    if (delta[i] > delta[busiest]) busiest = i;
    if (delta[i] < delta[idlest]) idlest = i;
  }
  auto group_served = [this](const ColocatedGroup& group) {
    std::uint64_t sum = 0;
    for (const NodeId id : group.nodes) {
      const NodeState* state = find_state(id);
      if (state != nullptr) sum += state->served;
    }
    return sum;
  };
  auto snapshot_groups = [&] {
    for (ColocatedGroup& group : groups_) group.served_base = group_served(group);
  };

  const double mean =
      static_cast<double>(delta_total) / static_cast<double>(count);
  const double ratio =
      mean > 0.0 ? static_cast<double>(delta[busiest]) / mean : 1.0;
  if (busiest == idlest || (!force && ratio < rebalance_threshold_)) {
    snapshot_groups();
    return false;
  }

  // Pick the colocated group on the busiest shard whose epoch load best
  // matches the ideal transfer (half the busiest-idlest gap): moving the
  // hottest group outright would often just swap the imbalance.
  const double ideal =
      static_cast<double>(delta[busiest] - delta[idlest]) / 2.0;
  std::size_t best = groups_.size();
  double best_miss = 0.0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const ColocatedGroup& group = groups_[g];
    bool eligible = !group.nodes.empty();
    for (const NodeId id : group.nodes) {
      const NodeState* state = find_state(id);
      if (state == nullptr || state->node == nullptr ||
          state->shard != busiest) {
        eligible = false;
        break;
      }
    }
    if (!eligible) continue;
    const std::uint64_t served = group_served(group);
    const double load =
        static_cast<double>(served - std::min(served, group.served_base));
    const double miss = std::abs(load - ideal);
    if (best == groups_.size() || miss < best_miss) {
      best = g;
      best_miss = miss;
    }
  }
  snapshot_groups();
  if (best == groups_.size()) return false;

  for (const NodeId id : groups_[best].nodes) migrate_node(id, idlest);
  refold_cross_shard_lookahead();
  ++rebalance_count_;
  if (tracer_.enabled()) {
    tracer_.record(global_now_, obs::TraceKind::kShardRebalance,
                   groups_[best].nodes.front().value(), busiest,
                   static_cast<std::int64_t>(idlest),
                   static_cast<std::int64_t>(ratio * 1000.0));
  }
  return true;
}

void Network::migrate_node(NodeId id, std::size_t to) {
  NodeState* state = find_state(id);
  if (state == nullptr || state->shard == to) return;
  Shard& from = *shards_[state->shard];
  Shard& dest = *shards_[to];

  // 1. Re-home this node's source link records.  Record indices are shared
  // with no one (each source's out[] table points only at its own records),
  // but sibling records in the old store ARE index-addressed by other
  // sources on that shard — so vacated slots are deadened in place, never
  // erased.
  for (std::size_t d = 0; d < state->out.size(); ++d) {
    const std::int32_t slot = state->out[d];
    if (slot < 0) continue;
    LinkRecord& old_record = from.link_records[static_cast<std::size_t>(slot)];
    state->out[d] = static_cast<std::int32_t>(dest.link_records.size());
    dest.link_records.push_back(old_record);
    old_record = LinkRecord{};  // dead slot: zero stats, no override
  }

  // 2. Re-home pending events (deliveries, the in-flight service
  // completion, periodic self-ticks — everything stamped with this node's
  // tag).  Both queues sit at the barrier time, and extraction preserves
  // (when, seq) order, so the events replay on the new shard in the exact
  // order they would have run — after any same-instant events the new
  // shard already holds, which is a deterministic order either way.
  state->shard = static_cast<std::uint32_t>(to);
  migrate_scratch_.clear();
  from.events.extract_tagged(id.value(), migrate_scratch_);
  for (EventQueue::MigratedEvent& event : migrate_scratch_) {
    dest.events.schedule_at(event.when, id.value(), std::move(event.action));
  }
  migrate_scratch_.clear();

  // 3. Let the node re-acquire shard-affine bindings (deferred tracer).
  if (state->node != nullptr) state->node->on_shard_migrated();
}

void Network::refold_cross_shard_lookahead() {
  for (const auto& shard : shards_) {
    for (const LinkRecord& record : shard->link_records) {
      if (!record.has_override) continue;
      if (shard_of(record.src) != shard_of(record.dst)) {
        fold_lookahead(record.config.latency);
      }
    }
  }
}

void Network::start_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void Network::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  workers_stop_ = false;
}

void Network::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    SimTime end{};
    bool inclusive = false;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait(lock, [this, seen] {
        return workers_stop_ || work_generation_ != seen;
      });
      if (workers_stop_) return;
      seen = work_generation_;
      end = window_end_;
      inclusive = window_inclusive_;
    }
    const auto active_start = std::chrono::steady_clock::now();
    run_one_window(*shards_[index], end, inclusive);
    const auto active_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - active_start)
            .count());
    {
      std::lock_guard<std::mutex> lock(work_mutex_);
      shards_[index]->active_wall_us += active_us;
      if (--work_pending_ == 0) done_cv_.notify_one();
    }
  }
}

// ---------------------------------------------------------------------------
// Instrumentation
// ---------------------------------------------------------------------------

std::size_t Network::queue_length(NodeId id) const {
  const NodeState* state = find_state(id);
  return state != nullptr ? state->queue.size() : 0;
}

const LinkStats& Network::stats(NodeId src, NodeId dst) const {
  static const LinkStats kEmpty;
  const LinkRecord* record = find_link_record(src, dst);
  return record != nullptr ? record->stats : kEmpty;
}

std::uint64_t Network::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->total_bytes;
  return sum;
}

std::uint64_t Network::total_messages() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->total_messages;
  return sum;
}

std::uint64_t Network::total_dropped() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->total_dropped;
  return sum;
}

std::uint64_t Network::bytes_matching(
    const std::function<bool(NodeId, NodeId)>& pred) const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) {
    for (const LinkRecord& record : shard->link_records) {
      if (pred(record.src, record.dst)) sum += record.stats.bytes;
    }
  }
  return sum;
}

Network::EngineStats Network::engine_stats() const {
  EngineStats stats;
  std::uint64_t active_us = 0;
  stats.shard_events.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.events_processed += shard->events.events_processed();
    stats.shard_events.push_back(shard->events.events_processed());
    if (shard->events.peak_pending() > stats.event_peak_pending) {
      stats.event_peak_pending = shard->events.peak_pending();
    }
    stats.buffers_acquired += shard->pool.counters().acquired;
    stats.buffers_reused += shard->pool.counters().reused;
    stats.buffers_idle += shard->pool.idle();
    stats.cross_shard_messages += shard->cross_sends;
    active_us += shard->active_wall_us;
  }
  stats.events_processed += control_queue_.events_processed();
  stats.windows = windows_;
  stats.rebalances = rebalance_count_;
  // Stall = dispatch wall time summed over shards minus the time shards
  // actually ran: what every core spent waiting on the slowest sibling.
  const std::uint64_t dispatched = windows_wall_us_ * shards_.size();
  stats.window_stall_us = dispatched > active_us ? dispatched - active_us : 0;
  return stats;
}

std::uint64_t Network::trace_hash() const {
  if (!sharded()) return shards_.front()->trace_hash;
  std::uint64_t h = kFnvOffset;
  for (const auto& shard : shards_) {
    const std::uint64_t v = shard->trace_hash;
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= kFnvPrime;
    }
  }
  return h;
}

std::vector<std::uint64_t> Network::shard_trace_hashes() const {
  std::vector<std::uint64_t> hashes;
  hashes.reserve(shards_.size());
  for (const auto& shard : shards_) hashes.push_back(shard->trace_hash);
  return hashes;
}

}  // namespace matrix
