// Simulated network.
//
// Stands in for the paper's LAN/WAN testbed (docs/ARCHITECTURE.md, "Reproduction
// substitutions").  Model:
//
//   * Links are contention-free pipes: delivery time = propagation latency +
//     wire_size / bandwidth.  Per-pair overrides allow "WAN" client links and
//     "LAN" server-to-server links in the same run.
//   * Each node has a FIFO receive queue and finite service capacity
//     (per-message + per-byte service time).  Overload therefore shows up as
//     receive-queue growth — exactly the observable in the paper's Fig. 2b.
//   * Optional per-link drop probability supports fault-injection tests.
//
// Everything is driven by the shared EventQueue; the network never uses wall
// time, threads, or unordered containers on the hot path, so runs are
// bit-deterministic for a given seed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/event_queue.h"
#include "net/message.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace matrix {

class Network;

/// A process attached to the network.  Subclasses (Matrix server, game
/// server, coordinator, bot client) implement handle_message; it is invoked
/// when the node's service capacity reaches the message, not at raw arrival.
class Node {
 public:
  virtual ~Node() = default;

  [[nodiscard]] NodeId node_id() const { return node_id_; }
  [[nodiscard]] Network* network() const { return network_; }

  /// Human-readable name for logs and metrics ("matrix-3", "client-217").
  [[nodiscard]] virtual std::string name() const = 0;

  virtual void handle_message(const Envelope& envelope) = 0;

 private:
  friend class Network;
  NodeId node_id_;
  Network* network_ = nullptr;
};

/// Propagation/bandwidth/drop parameters for one directed link.
struct LinkConfig {
  SimTime latency = SimTime::from_us(500);      // one-way propagation
  double bandwidth_bytes_per_sec = 125e6;       // 1 Gbps default
  double drop_probability = 0.0;

  [[nodiscard]] SimTime transfer_delay(std::size_t wire_bytes) const {
    if (bandwidth_bytes_per_sec <= 0.0) return SimTime{};
    const double sec = static_cast<double>(wire_bytes) / bandwidth_bytes_per_sec;
    return SimTime::from_sec(sec);
  }
};

/// Service capacity of one node; overload manifests as queue growth.
struct NodeConfig {
  SimTime service_per_message = SimTime::from_us(15);
  SimTime service_per_kb = SimTime::from_us(2);
  /// Receive queue capacity; std::nullopt = unbounded.  Bounded queues drop
  /// the newest message (tail drop) — used by the static-partitioning
  /// baseline to show what "the server just fails" looks like.
  std::optional<std::size_t> queue_capacity;

  [[nodiscard]] SimTime service_time(std::size_t wire_bytes) const {
    const auto kb = static_cast<std::int64_t>(wire_bytes) ;
    return service_per_message +
           SimTime::from_us(service_per_kb.us() * kb / 1024);
  }
};

/// Traffic counters for one directed node pair.
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped_messages = 0;
};

class Network {
 public:
  explicit Network(std::uint64_t seed = 1)
      : rng_(seed ^ 0xA5A5A5A5DEADBEEFULL) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // ---- topology -----------------------------------------------------------

  /// Attaches `node` (not owned) and assigns it a NodeId.
  NodeId attach(Node* node, NodeConfig config = {});

  /// Detaches a node: undelivered messages to it are dropped.  Used when a
  /// reclaimed server is returned to the resource pool.
  void detach(NodeId id);

  [[nodiscard]] bool attached(NodeId id) const {
    return nodes_.count(id) != 0 && nodes_.at(id).node != nullptr;
  }

  void set_default_link(LinkConfig config) { default_link_ = config; }
  void set_link(NodeId src, NodeId dst, LinkConfig config) {
    link_overrides_[{src, dst}] = config;
  }
  /// Convenience: sets both directions.
  void set_link_bidirectional(NodeId a, NodeId b, LinkConfig config) {
    set_link(a, b, config);
    set_link(b, a, config);
  }

  [[nodiscard]] const LinkConfig& link(NodeId src, NodeId dst) const {
    auto it = link_overrides_.find({src, dst});
    return it != link_overrides_.end() ? it->second : default_link_;
  }

  void set_node_config(NodeId id, NodeConfig config);

  // ---- data plane ---------------------------------------------------------

  /// Sends `payload` from `src` to `dst`.  Returns the wire size charged.
  /// Messages to detached nodes are counted as drops.
  std::size_t send(NodeId src, NodeId dst, std::vector<std::uint8_t> payload);

  // ---- time ---------------------------------------------------------------

  [[nodiscard]] EventQueue& events() { return events_; }
  [[nodiscard]] SimTime now() const { return events_.now(); }
  void run_until(SimTime t) { events_.run_until(t); }

  // ---- instrumentation ----------------------------------------------------

  [[nodiscard]] std::size_t queue_length(NodeId id) const;
  [[nodiscard]] const LinkStats& stats(NodeId src, NodeId dst) const;
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_messages() const { return total_messages_; }
  [[nodiscard]] std::uint64_t total_dropped() const { return total_dropped_; }

  /// Sum of bytes on links whose (src,dst) both satisfy `pred`.  Lets the
  /// bandwidth bench split traffic into client↔server vs server↔server etc.
  [[nodiscard]] std::uint64_t bytes_matching(
      const std::function<bool(NodeId, NodeId)>& pred) const;

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  struct NodeState {
    Node* node = nullptr;
    NodeConfig config;
    std::deque<Envelope> queue;
    bool serving = false;
    std::uint64_t epoch = 0;  // bumped on detach to cancel stale service events
  };

  void deliver(NodeId dst, Envelope envelope);
  void start_service(NodeId dst);

  EventQueue events_;
  std::map<NodeId, NodeState> nodes_;
  std::map<std::pair<NodeId, NodeId>, LinkConfig> link_overrides_;
  std::map<std::pair<NodeId, NodeId>, LinkStats> link_stats_;
  LinkConfig default_link_;
  IdGenerator<NodeId> node_ids_;
  Rng rng_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_dropped_ = 0;
};

}  // namespace matrix
