// Simulated network.
//
// Stands in for the paper's LAN/WAN testbed (docs/ARCHITECTURE.md, "Reproduction
// substitutions").  Model:
//
//   * Links are contention-free pipes: delivery time = propagation latency +
//     wire_size / bandwidth.  Per-pair overrides allow "WAN" client links and
//     "LAN" server-to-server links in the same run.
//   * Each node has a FIFO receive queue and finite service capacity
//     (per-message + per-byte service time).  Overload therefore shows up as
//     receive-queue growth — exactly the observable in the paper's Fig. 2b.
//   * Optional per-link drop probability supports fault-injection tests.
//
// Everything is driven by per-shard EventQueues; the network never uses wall
// time inside a run, so runs are bit-deterministic for a given seed and shard
// count.
//
// Hot-path layout (docs/ARCHITECTURE.md, "Engine internals"): NodeIds are
// dense (monotonic from 1), so the node table is a flat vector indexed by id
// and every per-send lookup is O(1) array arithmetic.  Per-pair link state
// (config override + traffic counters) lives in append-ordered record stores
// reached through per-source dense jump tables.  Message payload storage is
// recycled through per-shard BufferPools once the receiving handler returns.
//
// Parallel engine (docs/ARCHITECTURE.md, "Parallel engine"): nodes are
// partitioned into K shards, each owning an EventQueue + BufferPool + RNG
// stream + trace buffer + link-record store.  Shards synchronize with
// conservative lookahead windows: every shard runs freely up to the window
// horizon W (derived from the minimum cross-shard link latency), cross-shard
// sends land in per-(src,dst)-shard mailboxes, and mailboxes are merged at
// the barrier in deterministic (deliver time, src shard, send order) order.
// K=1 is the serial engine, byte-identical to the pre-sharding golden
// traces; any fixed K is run-to-run deterministic, threaded or not.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/event_queue.h"
#include "net/message.h"
#include "obs/trace.h"
#include "util/buffer_pool.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace matrix {

class Network;

/// A process attached to the network.  Subclasses (Matrix server, game
/// server, coordinator, bot client) implement handle_message; it is invoked
/// when the node's service capacity reaches the message, not at raw arrival.
class Node {
 public:
  virtual ~Node() = default;

  [[nodiscard]] NodeId node_id() const { return node_id_; }
  [[nodiscard]] Network* network() const { return network_; }

  /// Human-readable name for logs and metrics ("matrix-3", "client-217").
  [[nodiscard]] virtual std::string name() const = 0;

  virtual void handle_message(const Envelope& envelope) = 0;

  /// Called (control context, workers parked) after shard rebalancing moved
  /// this node to a new shard.  Nodes that BIND shard-affine resources — a
  /// tracer_for pointer, say — must re-acquire them here; everything routed
  /// through the context-sensitive accessors needs nothing.
  virtual void on_shard_migrated() {}

 private:
  friend class Network;
  NodeId node_id_;
  Network* network_ = nullptr;
};

/// Propagation/bandwidth/drop parameters for one directed link.
struct LinkConfig {
  SimTime latency = SimTime::from_us(500);      // one-way propagation
  double bandwidth_bytes_per_sec = 125e6;       // 1 Gbps default
  double drop_probability = 0.0;

  [[nodiscard]] SimTime transfer_delay(std::size_t wire_bytes) const {
    if (bandwidth_bytes_per_sec <= 0.0) return SimTime{};
    const double sec = static_cast<double>(wire_bytes) / bandwidth_bytes_per_sec;
    return SimTime::from_sec(sec);
  }
};

/// Service capacity of one node; overload manifests as queue growth.
struct NodeConfig {
  SimTime service_per_message = SimTime::from_us(15);
  SimTime service_per_kb = SimTime::from_us(2);
  /// Receive queue capacity; std::nullopt = unbounded.  Bounded queues drop
  /// the newest message (tail drop) — used by the static-partitioning
  /// baseline to show what "the server just fails" looks like.
  std::optional<std::size_t> queue_capacity;

  [[nodiscard]] SimTime service_time(std::size_t wire_bytes) const {
    const auto kb = static_cast<std::int64_t>(wire_bytes) ;
    return service_per_message +
           SimTime::from_us(service_per_kb.us() * kb / 1024);
  }
};

/// Traffic counters for one directed node pair.
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped_messages = 0;
};

/// Process-level default for EngineConfig::threads: reads the
/// MATRIX_SHARD_THREADS environment variable once ("0"/"off"/"false" forces
/// sequential shard windows, "1"/"on"/"true" forces worker threads, unset
/// keeps `config_default`).  Same pattern as MATRIX_LOAD_POLICY.
[[nodiscard]] bool resolve_shard_threads(bool config_default);

/// Process-level default for EngineConfig::ladder_scheduler: reads the
/// MATRIX_EVENT_SCHEDULER environment variable once ("heap"/"0"/"off"
/// forces the reference 4-ary heap, "ladder"/"1"/"on" forces the calendar
/// queue, unset keeps `config_default`).  Pop order is identical either way
/// — the knob exists for A/B benchmarking and as a fallback.
[[nodiscard]] bool resolve_ladder_scheduler(bool config_default);

/// Tag-stamping façade over a node's owner-shard EventQueue (see
/// Network::events_for): every event scheduled through it carries the
/// node's id, so shard rebalancing can extract and re-home the node's
/// pending timers along with the node.
class NodeEventQueue {
 public:
  NodeEventQueue(EventQueue& queue, NodeId id)
      : queue_(queue), tag_(id.value()) {}

  template <typename F>
  void schedule_at(SimTime when, F&& action) {
    queue_.schedule_at(when, tag_, std::forward<F>(action));
  }
  template <typename F>
  void schedule_after(SimTime delay, F&& action) {
    queue_.schedule_after(delay, tag_, std::forward<F>(action));
  }
  [[nodiscard]] SimTime now() const { return queue_.now(); }

 private:
  EventQueue& queue_;
  EventQueue::Tag tag_;
};

class Network {
 public:
  /// Defined in network.cpp: construction also registers this network as
  /// the Logger's sim-time clock (util/log.h) so log lines carry sim time.
  explicit Network(std::uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // ---- sharding -----------------------------------------------------------

  /// Partitions the engine into `count` shards (clamped to ≥1).  Must be
  /// called before any node is attached or event scheduled; Deployment does
  /// so from Config::engine.  With one shard (the default) the engine is
  /// serial and byte-identical to the historical behavior.  `use_threads`
  /// runs shard windows on persistent workers; results are identical either
  /// way (the determinism contract), threads only buy wall-clock.
  void configure_shards(std::size_t count, bool use_threads = true);
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] bool sharded() const { return shards_.size() > 1; }
  /// Owning shard of `id` (0 for unknown ids).
  [[nodiscard]] std::size_t shard_of(NodeId id) const {
    const NodeState* state = find_state(id);
    return state != nullptr ? state->shard : 0;
  }
  /// Conservative lookahead: min latency over the default link and every
  /// cross-shard override, floored at 1µs.
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }

  /// Selects the event-queue priority structure (ladder calendar queue vs
  /// the reference 4-ary heap) for every shard queue and the control queue.
  /// Pop order — and every golden hash — is identical for both.  Only
  /// callable while no event is pending; Deployment calls it right after
  /// configure_shards from Config::engine.ladder_scheduler.
  void set_scheduler(EventQueue::Scheduler scheduler);

  // ---- shard load rebalancing ---------------------------------------------

  /// Arms locality-preserving shard rebalancing: every `interval_events`
  /// executed events (summed over shards, evaluated at window barriers) the
  /// engine compares per-shard executed-event counts for the elapsed epoch,
  /// and when busiest/mean exceeds `threshold` migrates one colocated node
  /// group (see define_colocated_group) from the busiest shard to the
  /// idlest.  `threshold <= 0` disables (the default; behavior is then
  /// byte-identical to the pre-rebalancing engine).  The trigger is derived
  /// from event counts only — never wall time — so any fixed K stays
  /// run-to-run reproducible, threaded or not.
  void set_rebalance(double threshold, std::uint64_t interval_events);

  /// Registers a group of nodes that must always share a shard (a matrix
  /// server and its co-located game server): rebalancing only ever migrates
  /// whole groups, so the 30µs colocated links never cross shards and the
  /// LAN lookahead survives every migration.  Deployment registers each
  /// server pair at bring-up.
  void define_colocated_group(std::vector<NodeId> nodes);

  /// Runs one rebalance evaluation immediately (control context only,
  /// between run_until calls), ignoring the interval and threshold gates.
  /// Returns true when a group actually migrated.  Test hook.
  bool force_rebalance();

  [[nodiscard]] std::uint64_t rebalance_count() const {
    return rebalance_count_;
  }

  // ---- topology -----------------------------------------------------------

  /// Attaches `node` (not owned) to `shard` and assigns it a NodeId.  The
  /// shard index is clamped; with one shard the argument is irrelevant.
  NodeId attach(Node* node, NodeConfig config = {}, std::size_t shard = 0);

  /// Detaches a node: undelivered messages to it are dropped.  Used when a
  /// reclaimed server is returned to the resource pool.  Control-context
  /// only (never from inside a sharded window on a foreign shard).
  void detach(NodeId id);

  [[nodiscard]] bool attached(NodeId id) const {
    const NodeState* state = find_state(id);
    return state != nullptr && state->node != nullptr;
  }

  void set_default_link(LinkConfig config);
  void set_link(NodeId src, NodeId dst, LinkConfig config);
  /// Convenience: sets both directions.
  void set_link_bidirectional(NodeId a, NodeId b, LinkConfig config) {
    set_link(a, b, config);
    set_link(b, a, config);
  }

  [[nodiscard]] const LinkConfig& link(NodeId src, NodeId dst) const {
    const LinkRecord* record = find_link_record(src, dst);
    return record != nullptr && record->has_override ? record->config
                                                     : default_link_;
  }

  void set_node_config(NodeId id, NodeConfig config);

  // ---- data plane ---------------------------------------------------------

  /// Sends `payload` from `src` to `dst`.  Returns the wire size charged.
  /// Messages to detached nodes are counted as drops.
  std::size_t send(NodeId src, NodeId dst, std::vector<std::uint8_t> payload);

  /// Rents a recycled payload buffer (capacity intact, contents cleared) for
  /// encoding the next outgoing message; the network reclaims the storage
  /// after the receiving handler runs.  See util/buffer_pool.h.
  [[nodiscard]] std::vector<std::uint8_t> rent_buffer() {
    return current_shard().pool.acquire();
  }

  // ---- time ---------------------------------------------------------------

  /// The event queue of the CURRENT execution context: the running shard's
  /// queue inside a window (thread-local routing — a node's self-scheduled
  /// ticks land on its own shard), the main-thread control queue between
  /// windows when sharded, and the one serial queue otherwise.  Scenario
  /// drivers and metrics samplers scheduling from outside a window therefore
  /// run on the main thread at window barriers, where topology mutation
  /// (attach/detach) is safe.
  [[nodiscard]] EventQueue& events() {
    if (tls_shard_ != nullptr) return tls_shard_->events;
    return sharded() ? control_queue_ : shards_.front()->events;
  }

  /// The event queue OWNED by a node — where that node's periodic self-ticks
  /// belong regardless of which context first arms them.  A timer armed via
  /// events() from control context (Deployment bring-up, a scenario action
  /// calling join()) would land on the control queue and stay there through
  /// every re-arm, capping each conservative window at the next timer and
  /// serializing per-node work onto the main thread.  Only safe for a node
  /// scheduling for ITSELF (handlers run on the owning shard's thread) or
  /// from control context at a barrier (workers parked).  The returned
  /// façade stamps every event with the node's id so shard rebalancing can
  /// re-home pending timers when the node migrates.
  [[nodiscard]] NodeEventQueue events_for(NodeId id) {
    return NodeEventQueue(shards_[shard_of(id)]->events, id);
  }

  [[nodiscard]] SimTime now() const {
    if (tls_shard_ != nullptr) return tls_shard_->events.now();
    return sharded() ? global_now_ : shards_.front()->events.now();
  }

  /// Advances the simulation to `t`.  Serial (one shard): runs the queue
  /// directly.  Sharded: the conservative barrier loop — pick the horizon
  /// W = min(t, next control event, earliest pending work + lookahead), run
  /// every shard's window to W (exclusive; inclusive on the final step so
  /// events AT `t` run, matching the serial engine), merge the cross-shard
  /// mailboxes deterministically, replay deferred trace ops, then run
  /// main-thread control events due at W.
  void run_until(SimTime t);

  // ---- instrumentation ----------------------------------------------------

  [[nodiscard]] std::size_t queue_length(NodeId id) const;
  /// Counters for one directed pair.  The reference is invalidated by the
  /// next send between a previously-unseen pair (the record store may grow).
  /// Sharded runs: cross-shard tail drops are aggregated per shard (see
  /// EngineStats::cross_tail_drops), not attributed to the pair.
  [[nodiscard]] const LinkStats& stats(NodeId src, NodeId dst) const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] std::uint64_t total_messages() const;
  [[nodiscard]] std::uint64_t total_dropped() const;

  /// Sum of bytes on links whose (src,dst) both satisfy `pred`.  Lets the
  /// bandwidth bench split traffic into client↔server vs server↔server etc.
  [[nodiscard]] std::uint64_t bytes_matching(
      const std::function<bool(NodeId, NodeId)>& pred) const;

  /// Engine hot-path counters (surfaced by the --json bench reports).
  struct EngineStats {
    std::uint64_t events_processed = 0;   ///< EventQueue events executed
    std::size_t event_peak_pending = 0;   ///< peak event-heap depth (max shard)
    std::uint64_t buffers_acquired = 0;   ///< payload buffers rented
    std::uint64_t buffers_reused = 0;     ///< rentals served from the freelist
    std::size_t buffers_idle = 0;         ///< freelist depth right now
    std::uint64_t cross_shard_messages = 0;  ///< sends merged through mailboxes
    std::uint64_t windows = 0;            ///< barrier windows executed
    std::uint64_t rebalances = 0;         ///< shard group migrations executed
    /// Wall-clock µs shards spent parked at window barriers waiting for the
    /// slowest sibling (threaded runs only; 0 sequential).  The direct
    /// measure of shard imbalance that rebalancing exists to shrink.
    std::uint64_t window_stall_us = 0;
    std::vector<std::uint64_t> shard_events;  ///< per-shard events executed
  };
  [[nodiscard]] EngineStats engine_stats() const;

  /// Golden-trace hashing (tests/determinism_test.cpp): chains an FNV-1a
  /// hash over every send (time, src, dst, drop flag, payload bytes), one
  /// chain per SENDING shard so a fixed K>1 pins K stable hashes.
  void enable_trace_hash() { trace_hash_on_ = true; }
  /// Serial / K=1: the historical golden hash.  K>1: an FNV-1a fold of the
  /// per-shard hashes (order-stable; see shard_trace_hashes()).
  [[nodiscard]] std::uint64_t trace_hash() const;
  [[nodiscard]] std::vector<std::uint64_t> shard_trace_hashes() const;

  /// Structured tracing + flight recorder (src/obs/trace.h).  Disabled by
  /// default; Deployment enables it from Config::obs via enable_tracing().
  /// Inside a sharded window this returns the running shard's DEFERRED
  /// tracer (ops replayed into the master at each barrier); everywhere else
  /// — serial runs, control context, post-run inspection — the master.  The
  /// master reference is stable for the network's lifetime.
  [[nodiscard]] obs::Tracer& tracer() {
    return tls_shard_ != nullptr ? tls_shard_->tracer : tracer_;
  }
  [[nodiscard]] const obs::Tracer& tracer() const {
    return tls_shard_ != nullptr ? tls_shard_->tracer : tracer_;
  }
  /// The tracer a node should BIND (keep a pointer to) for records it emits
  /// later from inside its own handlers: the owning shard's deferred tracer
  /// when sharded, the master otherwise.  tracer() is context-sensitive —
  /// capturing it from control context (e.g. during Deployment bring-up)
  /// would capture the master and then race it from a worker thread.
  [[nodiscard]] obs::Tracer& tracer_for(NodeId id) {
    return sharded() ? shards_[shard_of(id)]->tracer : tracer_;
  }
  /// Enables tracing on the master and mirrors the enablement into every
  /// shard's deferred tracer.  Use instead of tracer().enable() so sharded
  /// deployments trace coherently.
  void enable_tracing(obs::TraceOptions options = {});

  [[nodiscard]] Rng& rng() { return current_shard().rng; }

 private:
  /// Per-directed-pair link state: traffic counters plus the optional config
  /// override, stored once in the SOURCE-owner shard's record store.
  struct LinkRecord {
    LinkStats stats;  // first: the only fields every send touches
    NodeId src;
    NodeId dst;
    bool has_override = false;
    LinkConfig config{};
  };

  struct NodeState {
    Node* node = nullptr;
    NodeConfig config;
    std::deque<Envelope> queue;
    bool serving = false;
    std::uint32_t shard = 0;  // owning shard index
    std::uint64_t epoch = 0;  // bumped on detach to cancel stale service events
    std::uint64_t served = 0;  // messages handled — the rebalancer's per-node
                               // load proxy (written only by the owner shard)
    /// Dense NodeId-indexed jump table: out[dst.value()] is this source's
    /// record index in its owner shard's link store, or -1 before first use.
    std::vector<std::int32_t> out;
  };

  /// One cross-shard message parked until the window barrier.
  struct Mail {
    SimTime deliver_at{};
    NodeId dst;
    Envelope env;
  };

  /// Everything one shard owns.  All mutation of a node's state (receive
  /// queue as destination, jump table and link records as source) happens on
  /// its owner shard's thread — or on the main thread while workers idle —
  /// so shards share no mutable state inside a window.
  struct Shard {
    explicit Shard(std::uint32_t idx, std::uint64_t rng_seed)
        : index(idx), rng(rng_seed) {}

    std::uint32_t index = 0;
    EventQueue events;
    BufferPool pool;
    Rng rng;
    obs::Tracer tracer;  // deferred to the master when sharded
    std::uint64_t trace_hash = 0xcbf29ce484222325ULL;
    std::vector<LinkRecord> link_records;
    std::uint64_t total_bytes = 0;
    std::uint64_t total_messages = 0;
    std::uint64_t total_dropped = 0;
    /// Tail drops of foreign-shard traffic (per-pair stats live on the
    /// sending shard and must not be written from here).
    std::uint64_t cross_tail_drops = 0;
    std::uint64_t cross_sends = 0;
    /// Wall-clock µs this shard spent actively running windows (threaded
    /// runs; written under work_mutex_, read at barriers).
    std::uint64_t active_wall_us = 0;
    /// outbox[k]: mail for shard k, in send order.
    std::vector<std::vector<Mail>> outbox;
  };

  [[nodiscard]] NodeState* find_state(NodeId id) {
    const std::size_t index = id.value();
    return index < nodes_.size() ? &nodes_[index] : nullptr;
  }
  [[nodiscard]] const NodeState* find_state(NodeId id) const {
    const std::size_t index = id.value();
    return index < nodes_.size() ? &nodes_[index] : nullptr;
  }
  /// The shard of the current execution context: the running window's shard
  /// on a worker, shard 0 otherwise (serial engine, or main-thread control
  /// context while workers idle).
  [[nodiscard]] Shard& current_shard() {
    return tls_shard_ != nullptr ? *tls_shard_ : *shards_.front();
  }
  NodeState& ensure_state(NodeId id);
  LinkRecord& link_record(NodeId src, NodeId dst);
  [[nodiscard]] const LinkRecord* find_link_record(NodeId src,
                                                   NodeId dst) const;
  void fold_lookahead(SimTime latency);

  void deliver(NodeId dst, Envelope envelope);
  void start_service(NodeId dst);
  void trace_record(Shard& shard, NodeId src, NodeId dst,
                    const std::vector<std::uint8_t>& payload, bool dropped);

  // ---- shard rebalancing (network.cpp) ------------------------------------
  void maybe_rebalance();
  bool evaluate_rebalance(bool force);
  void migrate_node(NodeId id, std::size_t to);
  /// Folds every cross-shard link override into the lookahead again after a
  /// migration changed which links cross shards.  Folding only ever shrinks
  /// the lookahead, so it is always conservative-safe.
  void refold_cross_shard_lookahead();

  // ---- sharded barrier loop (network.cpp) ---------------------------------
  void run_sharded(SimTime t);
  void run_windows(SimTime end, bool inclusive);
  void run_one_window(Shard& shard, SimTime end, bool inclusive);
  void merge_mailboxes();
  void merge_trace_ops();
  void start_workers();
  void stop_workers();
  void worker_loop(std::size_t index);

  static thread_local Shard* tls_shard_;

  std::vector<std::unique_ptr<Shard>> shards_;  // ≥1 always
  EventQueue control_queue_;   // main-thread events when sharded
  SimTime global_now_{};       // barrier time when sharded
  SimTime lookahead_ = SimTime::from_us(1);
  bool lookahead_seeded_ = false;
  bool use_threads_ = true;
  EventQueue::Scheduler scheduler_ = EventQueue::Scheduler::kLadder;
  std::uint64_t seed_ = 0;
  std::uint64_t windows_ = 0;
  /// Total wall-clock µs spent inside threaded window dispatches (control
  /// thread measurement; engine_stats derives barrier stall from it).
  std::uint64_t windows_wall_us_ = 0;

  std::vector<NodeState> nodes_;       // dense, index = NodeId::value()
  LinkConfig default_link_;
  IdGenerator<NodeId> node_ids_;
  bool trace_hash_on_ = false;
  obs::Tracer tracer_;
  std::vector<Mail> merge_scratch_;

  // ---- shard rebalancing state --------------------------------------------
  struct ColocatedGroup {
    std::vector<NodeId> nodes;
    std::uint64_t served_base = 0;  // served sum at the last epoch boundary
  };
  std::vector<ColocatedGroup> groups_;
  double rebalance_threshold_ = 0.0;            // <= 0: rebalancing off
  std::uint64_t rebalance_interval_events_ = 0;
  std::uint64_t rebalance_last_total_ = 0;      // events at the last check
  std::vector<std::uint64_t> shard_event_base_;  // per-shard epoch baselines
  std::uint64_t rebalance_count_ = 0;
  std::vector<EventQueue::MigratedEvent> migrate_scratch_;

  // ---- worker pool (sharded + threads) ------------------------------------
  std::vector<std::thread> workers_;
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t work_generation_ = 0;
  std::size_t work_pending_ = 0;
  SimTime window_end_{};
  bool window_inclusive_ = false;
  bool workers_stop_ = false;
};

}  // namespace matrix
