// Simulated network.
//
// Stands in for the paper's LAN/WAN testbed (docs/ARCHITECTURE.md, "Reproduction
// substitutions").  Model:
//
//   * Links are contention-free pipes: delivery time = propagation latency +
//     wire_size / bandwidth.  Per-pair overrides allow "WAN" client links and
//     "LAN" server-to-server links in the same run.
//   * Each node has a FIFO receive queue and finite service capacity
//     (per-message + per-byte service time).  Overload therefore shows up as
//     receive-queue growth — exactly the observable in the paper's Fig. 2b.
//   * Optional per-link drop probability supports fault-injection tests.
//
// Everything is driven by the shared EventQueue; the network never uses wall
// time, threads, or unordered containers on the hot path, so runs are
// bit-deterministic for a given seed.
//
// Hot-path layout (docs/ARCHITECTURE.md, "Engine internals"): NodeIds are
// dense (monotonic from 1), so the node table is a flat vector indexed by id
// and every per-send lookup is O(1) array arithmetic.  Per-pair link state
// (config override + traffic counters) lives in one append-ordered record
// store reached through per-source dense jump tables, replacing the former
// pair-keyed std::map lookups.  Message payload storage is recycled through
// a BufferPool once the receiving handler returns.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/event_queue.h"
#include "net/message.h"
#include "obs/trace.h"
#include "util/buffer_pool.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace matrix {

class Network;

/// A process attached to the network.  Subclasses (Matrix server, game
/// server, coordinator, bot client) implement handle_message; it is invoked
/// when the node's service capacity reaches the message, not at raw arrival.
class Node {
 public:
  virtual ~Node() = default;

  [[nodiscard]] NodeId node_id() const { return node_id_; }
  [[nodiscard]] Network* network() const { return network_; }

  /// Human-readable name for logs and metrics ("matrix-3", "client-217").
  [[nodiscard]] virtual std::string name() const = 0;

  virtual void handle_message(const Envelope& envelope) = 0;

 private:
  friend class Network;
  NodeId node_id_;
  Network* network_ = nullptr;
};

/// Propagation/bandwidth/drop parameters for one directed link.
struct LinkConfig {
  SimTime latency = SimTime::from_us(500);      // one-way propagation
  double bandwidth_bytes_per_sec = 125e6;       // 1 Gbps default
  double drop_probability = 0.0;

  [[nodiscard]] SimTime transfer_delay(std::size_t wire_bytes) const {
    if (bandwidth_bytes_per_sec <= 0.0) return SimTime{};
    const double sec = static_cast<double>(wire_bytes) / bandwidth_bytes_per_sec;
    return SimTime::from_sec(sec);
  }
};

/// Service capacity of one node; overload manifests as queue growth.
struct NodeConfig {
  SimTime service_per_message = SimTime::from_us(15);
  SimTime service_per_kb = SimTime::from_us(2);
  /// Receive queue capacity; std::nullopt = unbounded.  Bounded queues drop
  /// the newest message (tail drop) — used by the static-partitioning
  /// baseline to show what "the server just fails" looks like.
  std::optional<std::size_t> queue_capacity;

  [[nodiscard]] SimTime service_time(std::size_t wire_bytes) const {
    const auto kb = static_cast<std::int64_t>(wire_bytes) ;
    return service_per_message +
           SimTime::from_us(service_per_kb.us() * kb / 1024);
  }
};

/// Traffic counters for one directed node pair.
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped_messages = 0;
};

class Network {
 public:
  /// Defined in network.cpp: construction also registers this network as
  /// the Logger's sim-time clock (util/log.h) so log lines carry sim time.
  explicit Network(std::uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // ---- topology -----------------------------------------------------------

  /// Attaches `node` (not owned) and assigns it a NodeId.
  NodeId attach(Node* node, NodeConfig config = {});

  /// Detaches a node: undelivered messages to it are dropped.  Used when a
  /// reclaimed server is returned to the resource pool.
  void detach(NodeId id);

  [[nodiscard]] bool attached(NodeId id) const {
    const NodeState* state = find_state(id);
    return state != nullptr && state->node != nullptr;
  }

  void set_default_link(LinkConfig config) { default_link_ = config; }
  void set_link(NodeId src, NodeId dst, LinkConfig config);
  /// Convenience: sets both directions.
  void set_link_bidirectional(NodeId a, NodeId b, LinkConfig config) {
    set_link(a, b, config);
    set_link(b, a, config);
  }

  [[nodiscard]] const LinkConfig& link(NodeId src, NodeId dst) const {
    const LinkRecord* record = find_link_record(src, dst);
    return record != nullptr && record->has_override ? record->config
                                                     : default_link_;
  }

  void set_node_config(NodeId id, NodeConfig config);

  // ---- data plane ---------------------------------------------------------

  /// Sends `payload` from `src` to `dst`.  Returns the wire size charged.
  /// Messages to detached nodes are counted as drops.
  std::size_t send(NodeId src, NodeId dst, std::vector<std::uint8_t> payload);

  /// Rents a recycled payload buffer (capacity intact, contents cleared) for
  /// encoding the next outgoing message; the network reclaims the storage
  /// after the receiving handler runs.  See util/buffer_pool.h.
  [[nodiscard]] std::vector<std::uint8_t> rent_buffer() {
    return pool_.acquire();
  }

  // ---- time ---------------------------------------------------------------

  [[nodiscard]] EventQueue& events() { return events_; }
  [[nodiscard]] const EventQueue& events() const { return events_; }
  [[nodiscard]] SimTime now() const { return events_.now(); }
  void run_until(SimTime t) { events_.run_until(t); }

  // ---- instrumentation ----------------------------------------------------

  [[nodiscard]] std::size_t queue_length(NodeId id) const;
  /// Counters for one directed pair.  The reference is invalidated by the
  /// next send between a previously-unseen pair (the record store may grow).
  [[nodiscard]] const LinkStats& stats(NodeId src, NodeId dst) const;
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_messages() const { return total_messages_; }
  [[nodiscard]] std::uint64_t total_dropped() const { return total_dropped_; }

  /// Sum of bytes on links whose (src,dst) both satisfy `pred`.  Lets the
  /// bandwidth bench split traffic into client↔server vs server↔server etc.
  [[nodiscard]] std::uint64_t bytes_matching(
      const std::function<bool(NodeId, NodeId)>& pred) const;

  /// Engine hot-path counters (surfaced by the --json bench reports).
  struct EngineStats {
    std::uint64_t events_processed = 0;   ///< EventQueue events executed
    std::size_t event_peak_pending = 0;   ///< peak event-heap depth
    std::uint64_t buffers_acquired = 0;   ///< payload buffers rented
    std::uint64_t buffers_reused = 0;     ///< rentals served from the freelist
    std::size_t buffers_idle = 0;         ///< freelist depth right now
  };
  [[nodiscard]] EngineStats engine_stats() const {
    return EngineStats{events_.events_processed(), events_.peak_pending(),
                       pool_.counters().acquired, pool_.counters().reused,
                       pool_.idle()};
  }

  /// Golden-trace hashing (tests/determinism_test.cpp): chains an FNV-1a
  /// hash over every send (time, src, dst, drop flag, payload bytes).
  void enable_trace_hash() { trace_hash_on_ = true; }
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }

  /// Structured tracing + flight recorder (src/obs/trace.h).  Disabled by
  /// default; Deployment enables it from Config::obs.  send() feeds the
  /// ring on the same walk the golden-trace hasher rides.
  [[nodiscard]] obs::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return tracer_; }

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  /// Per-directed-pair link state: traffic counters plus the optional config
  /// override, stored once in an append-ordered record store.
  struct LinkRecord {
    LinkStats stats;  // first: the only fields every send touches
    NodeId src;
    NodeId dst;
    bool has_override = false;
    LinkConfig config{};
  };

  struct NodeState {
    Node* node = nullptr;
    NodeConfig config;
    std::deque<Envelope> queue;
    bool serving = false;
    std::uint64_t epoch = 0;  // bumped on detach to cancel stale service events
    /// Dense NodeId-indexed jump table: out[dst.value()] is this source's
    /// record index in link_records_, or -1 before first use.  Grows lazily
    /// to the highest destination this source has actually addressed.
    std::vector<std::int32_t> out;
  };

  [[nodiscard]] NodeState* find_state(NodeId id) {
    const std::size_t index = id.value();
    return index < nodes_.size() ? &nodes_[index] : nullptr;
  }
  [[nodiscard]] const NodeState* find_state(NodeId id) const {
    const std::size_t index = id.value();
    return index < nodes_.size() ? &nodes_[index] : nullptr;
  }
  NodeState& ensure_state(NodeId id);
  LinkRecord& link_record(NodeId src, NodeId dst);
  [[nodiscard]] const LinkRecord* find_link_record(NodeId src,
                                                   NodeId dst) const;

  void deliver(NodeId dst, Envelope envelope);
  void start_service(NodeId dst);
  void trace_record(NodeId src, NodeId dst,
                    const std::vector<std::uint8_t>& payload, bool dropped);

  EventQueue events_;
  std::vector<NodeState> nodes_;       // dense, index = NodeId::value()
  std::vector<LinkRecord> link_records_;
  LinkConfig default_link_;
  IdGenerator<NodeId> node_ids_;
  BufferPool pool_;
  Rng rng_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_dropped_ = 0;
  bool trace_hash_on_ = false;
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ULL;
  obs::Tracer tracer_;
};

}  // namespace matrix
