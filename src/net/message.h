// Wire envelope.
//
// The network layer is payload-agnostic: it moves byte blobs between nodes
// and charges them against link latency/bandwidth and node service capacity.
// Protocol structure lives one layer up (core/protocol.h).
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"
#include "util/sim_time.h"

namespace matrix {

/// Fixed per-message framing overhead charged on the wire, approximating
/// UDP/IP headers.  Keeps tiny game packets from looking free.
inline constexpr std::size_t kWireHeaderBytes = 28;

struct Envelope {
  NodeId src;
  NodeId dst;
  std::vector<std::uint8_t> payload;
  SimTime sent_at{};
  SimTime delivered_at{};  // arrival at the destination's receive queue

  /// Bytes charged on the wire (payload + framing).
  [[nodiscard]] std::size_t wire_size() const {
    return payload.size() + kWireHeaderBytes;
  }
};

}  // namespace matrix
