// Discrete-event scheduler.
//
// A single priority structure of (time, sequence) ordered events drives the
// whole simulation: message deliveries, node service completions, game ticks,
// and scenario actions (hotspot arrival at t=10s, ...).  The sequence number
// breaks time ties in insertion order, which makes runs fully deterministic.
//
// Two interchangeable priority structures sit behind one surface:
//
//   * kHeap — the historical 4-ary array heap over 16-byte POD entries.
//     O(log n) per schedule/pop on the full pending set.
//   * kLadder (default) — a two-tier calendar/ladder queue.  A NEAR tier
//     (the same small 4-ary heap, restricted to events inside the currently
//     loaded bucket's time range) backed by a ring of time buckets, spilling
//     to an OVERFLOW tier for events past the ring.  Scheduling into a
//     bucket or the overflow is an O(1) push_back; the log factor only ever
//     applies to one bucket's occupancy, not the whole pending set.  Bucket
//     width is derived from the observed inter-event spacing of the overflow
//     population and re-tuned only at ring reseed epochs — there is no
//     per-operation rehash.  A bucket that comes up for folding overfull
//     (dense workloads cluster events in time) is first split across a
//     finer-grained sub-rung — one O(n) re-file, the ladder-queue "spawn a
//     rung" move — so the near heap stays small even when one bucket's
//     range holds thousands of events.
//
// Pop order is IDENTICAL across both structures: every event with
// when < near_end_ lives in the near heap (inserts are routed by time, and a
// bucket's whole range is folded into the near heap before any of it can
// pop), so the near-heap minimum is always the global (when, seq) minimum.
// The golden trace hashes therefore cannot tell the schedulers apart —
// tests/scheduler_test.cpp pins this with a randomized differential test.
//
// Hot-path layout: tier entries are 16-byte PODs (when + a packed seq/slot
// word) — sift and bucket moves are trivial copies.  The callbacks live in a
// separate slab of small-buffer-optimized InlineAction slots (a deque, so
// slots never move) recycled through a freelist: steady-state scheduling
// performs no allocation, and popping invokes the callback in place.  Each
// slot also carries an optional owner tag (NodeId) so the sharded engine can
// extract and re-home a migrating node's pending events (extract_tagged).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/inline_function.h"
#include "util/sim_time.h"

namespace matrix {

class EventQueue {
 public:
  using Action = InlineAction;
  /// Slot owner tag (NodeId::value of the node an event belongs to, or
  /// kNoTag).  Only consulted by extract_tagged — never by pop order.
  using Tag = std::uint64_t;
  static constexpr Tag kNoTag = 0;

  /// Which priority structure orders the pending set.  Pop order — and thus
  /// every golden trace — is identical for both; kHeap exists as the A/B
  /// reference and fallback (MATRIX_EVENT_SCHEDULER, Config::engine).
  enum class Scheduler : std::uint8_t { kLadder = 0, kHeap = 1 };

  /// One extracted pending event (see extract_tagged): its absolute time,
  /// its (seq) order word for deterministic re-insertion order, and the
  /// callback moved out of the slab.
  struct MigratedEvent {
    SimTime when{};
    std::uint64_t order = 0;
    Action action;
  };

  /// Selects the priority structure.  Only callable while the queue is
  /// empty: entries are not re-filed across structures.
  void set_scheduler(Scheduler scheduler) {
    assert(pending() == 0 && "set_scheduler requires an empty queue");
    scheduler_ = scheduler;
  }
  [[nodiscard]] Scheduler scheduler() const { return scheduler_; }

  /// Schedules `action` to run at absolute time `when`.  Scheduling in the
  /// past is clamped to "now" (runs next, still after already-queued events
  /// at the current instant).  The callable is constructed directly in its
  /// slab slot — no intermediate Action object, no relocation.
  template <typename F>
  void schedule_at(SimTime when, F&& action) {
    schedule_at(when, kNoTag, std::forward<F>(action));
  }

  /// As schedule_at, additionally stamping the slab slot with `tag` so the
  /// event can later be re-homed by extract_tagged (shard rebalancing).
  template <typename F>
  void schedule_at(SimTime when, Tag tag, F&& action) {
    if (when < now_) when = now_;
    const std::uint32_t slot = acquire_slot();
    slots_[slot].assign(std::forward<F>(action));
    slot_tags_[slot] = tag;
    file_entry(HeapEntry{when, (next_seq_++ << kSlotBits) | slot});
    const std::size_t depth = pending();
    if (depth > peak_pending_) peak_pending_ = depth;
  }

  /// Schedules `action` to run `delay` after the current time.
  template <typename F>
  void schedule_after(SimTime delay, F&& action) {
    schedule_at(now_ + delay, kNoTag, std::forward<F>(action));
  }

  template <typename F>
  void schedule_after(SimTime delay, Tag tag, F&& action) {
    schedule_at(now_ + delay, tag, std::forward<F>(action));
  }

  [[nodiscard]] SimTime now() const { return now_; }
  /// Invariant (settle): the near heap is non-empty whenever ANY tier holds
  /// an event, so emptiness and next_time() are O(1) reads of the near heap.
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const {
    return heap_.size() + sub_pending_ + ring_pending_ + overflow_.size();
  }
  /// Timestamp of the earliest pending event.  Precondition: !empty().
  /// The sharded engine (net/network.h) uses this to pick the next
  /// conservative window horizon without popping anything.
  [[nodiscard]] SimTime next_time() const { return heap_[0].when; }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }
  /// High-water mark of simultaneously pending events (all tiers).
  [[nodiscard]] std::size_t peak_pending() const { return peak_pending_; }

  /// Runs the next event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_[0];
    heap_pop();
    if (heap_.empty()) settle();
    now_ = top.when;
    ++events_processed_;
    // Invoke in place — the slab is a deque, so slots stay put while the
    // action schedules new events.  The slot is recycled only afterwards,
    // so re-entrant scheduling can never alias the running callback.
    const std::uint32_t slot = top.slot();
    slots_[slot].invoke_and_reset();
    free_slots_.push_back(slot);
    return true;
  }

  /// Runs all events with time <= `until`, then advances the clock to
  /// `until` even if no event lands exactly there.
  void run_until(SimTime until) {
    while (!heap_.empty() && heap_[0].when <= until) {
      step();
    }
    if (now_ < until) now_ = until;
  }

  /// Runs all events with time strictly < `end`, then advances the clock to
  /// `end`.  The EXCLUSIVE window the sharded engine's barrier loop needs:
  /// events landing exactly on a window boundary (e.g. merged cross-shard
  /// mail at the horizon) run in the next window, after the merge, so their
  /// ordering is decided by the deterministic mailbox merge — never by
  /// which side of the barrier happened to process them.
  void run_window(SimTime end) {
    while (!heap_.empty() && heap_[0].when < end) {
      step();
    }
    if (now_ < end) now_ = end;
  }

  /// Drains the queue completely (use with care: periodic events must have
  /// a termination condition or this never returns).
  void run_all() {
    while (step()) {
    }
  }

  /// Removes every pending event whose slot carries `tag` and appends them
  /// to `out` in (when, seq) order, releasing their slab slots.  Used by
  /// Network shard rebalancing to re-home a migrating node's events — only
  /// from control context at a barrier.  O(pending) tier rebuild.
  void extract_tagged(Tag tag, std::vector<MigratedEvent>& out) {
    const std::size_t first = out.size();
    auto take = [&](std::vector<HeapEntry>& tier) {
      std::size_t kept = 0;
      for (HeapEntry& entry : tier) {
        const std::uint32_t slot = entry.slot();
        if (slot_tags_[slot] == tag) {
          out.push_back(MigratedEvent{entry.when, entry.seq_slot,
                                      std::move(slots_[slot])});
          free_slots_.push_back(slot);
        } else {
          tier[kept++] = entry;
        }
      }
      tier.resize(kept);
    };
    take(heap_);
    heapify();
    for (std::size_t b = sub_cur_; b < sub_buckets_.size(); ++b) {
      const std::size_t before = sub_buckets_[b].size();
      take(sub_buckets_[b]);
      sub_pending_ -= before - sub_buckets_[b].size();
    }
    for (std::size_t b = cur_bucket_; b < buckets_.size(); ++b) {
      const std::size_t before = buckets_[b].size();
      take(buckets_[b]);
      ring_pending_ -= before - buckets_[b].size();
    }
    take(overflow_);
    if (heap_.empty()) settle();
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [](const MigratedEvent& a, const MigratedEvent& b) {
                if (a.when != b.when) return a.when < b.when;
                return a.order < b.order;
              });
  }

 private:
  /// Slot index width inside the packed (seq, slot) word.  2^24 concurrent
  /// events would mean a multi-gigabyte slab, far past any workload here;
  /// sequence numbers keep 40 bits — a trillion events per run.
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

  /// 16-byte tier entry: time plus (seq << 24 | slot).  Comparing the packed
  /// word on time ties orders by sequence — the slot bits can never decide,
  /// because sequence numbers are unique.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq_slot;

    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & kSlotMask);
    }

    /// Min-heap order: earliest time, then lowest sequence.
    [[nodiscard]] bool before(const HeapEntry& other) const {
      if (when != other.when) return when < other.when;
      return seq_slot < other.seq_slot;
    }
  };
  static_assert(sizeof(HeapEntry) == 16);

  static constexpr std::size_t kArity = 4;
  /// Bucket-ring size.  Fixed (a power of two, ~48KB of vector headers,
  /// allocated lazily on first ring use); only the bucket WIDTH adapts.
  static constexpr std::size_t kBuckets = 2048;
  /// Sub-rung size (1 << kSubShift) and the fold-occupancy bar above which a
  /// ring bucket is split across it instead of folded wholesale.  64 keeps
  /// near-heap pops at ~3 levels of a 4-ary heap.
  static constexpr int kSubShift = 8;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubShift;
  static constexpr std::size_t kSplitThreshold = 64;
  /// Width ceiling: keeps ring_end arithmetic far from SimTime overflow
  /// even for degenerate month-out timer sets.
  static constexpr std::int64_t kMaxWidthUs = 3'600'000'000;  // 1 hour

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    slot_tags_.push_back(kNoTag);
    // The slot index must fit the packed heap word; 2^24 concurrent events
    // would need a multi-gigabyte slab, so this is a loud tripwire for an
    // impossible state, not a reachable limit.
    assert(slots_.size() <= kSlotMask + 1);
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  /// Routes a new entry to its tier.  Near events (when < near_end_, the
  /// exclusive top of the range already folded into the near heap) take the
  /// heap; events in the active sub-rung's remaining range or the ring take
  /// an O(1) bucket push; the far future takes the overflow.  kHeap mode
  /// degenerates to "everything is near".
  void file_entry(HeapEntry entry) {
    if (scheduler_ == Scheduler::kHeap || entry.when < near_end_) {
      heap_push(entry);
      return;
    }
    if (sub_active_ && entry.when < sub_end_) {
      const std::size_t index = static_cast<std::size_t>(
          (entry.when - sub_start_).us() >> sub_shift_);
      assert(index >= sub_cur_ && index < kSubBuckets);
      sub_buckets_[index].push_back(entry);
      ++sub_pending_;
    } else if (entry.when < ring_end_) {
      if (buckets_.empty()) buckets_.resize(kBuckets);
      // Bucket widths are powers of two, so indexing is a shift — no
      // division on the per-insert hot path.
      const std::size_t index = static_cast<std::size_t>(
          (entry.when - ring_start_).us() >> width_shift_);
      assert(index >= cur_bucket_ && index < kBuckets);
      buckets_[index].push_back(entry);
      ++ring_pending_;
    } else {
      overflow_.push_back(entry);
    }
    // Keep the settle invariant: the near heap fronts a non-empty queue.
    if (heap_.empty()) settle();
  }

  /// Restores the invariant that the near heap holds the global minimum:
  /// folds the next non-empty (sub-)bucket into the (empty) near heap,
  /// splitting an overfull ring bucket across the sub-rung first and
  /// reseeding the ring from the overflow when the ring itself is drained.
  /// Called whenever the near heap goes empty; amortized O(1) per event.
  void settle() {
    assert(heap_.empty());
    while (true) {
      if (sub_pending_ > 0) {
        while (sub_buckets_[sub_cur_].empty()) ++sub_cur_;
        std::vector<HeapEntry>& bucket = sub_buckets_[sub_cur_];
        heap_.assign(bucket.begin(), bucket.end());
        sub_pending_ -= bucket.size();
        bucket.clear();
        ++sub_cur_;
        near_end_ = sub_start_ + sub_width_ * static_cast<std::int64_t>(sub_cur_);
        heapify();
        return;
      }
      if (sub_active_) {
        // Sub-rung drained: everything still pending sits at or past its
        // range, so the whole split-bucket range is "near" now.
        near_end_ = sub_end_;
        sub_active_ = false;
      }
      if (ring_pending_ > 0) {
        while (buckets_[cur_bucket_].empty()) ++cur_bucket_;
        std::vector<HeapEntry>& bucket = buckets_[cur_bucket_];
        if (bucket.size() > kSplitThreshold && width_shift_ > 0) {
          split_bucket(bucket);
          continue;  // fold the first non-empty sub bucket
        }
        heap_.assign(bucket.begin(), bucket.end());
        ring_pending_ -= bucket.size();
        bucket.clear();
        ++cur_bucket_;
        near_end_ = ring_start_ + width_ * static_cast<std::int64_t>(cur_bucket_);
        heapify();
        return;
      }
      if (overflow_.empty()) return;  // truly empty
      reseed_ring();
    }
  }

  /// The ladder-queue "spawn a rung" move: re-files one overfull ring
  /// bucket across kSubBuckets finer buckets covering exactly its range, so
  /// folds hand the near heap dozens of events instead of thousands.  One
  /// O(n) pass; the sub-rung drains before the ring advances, preserving
  /// fold order.  Sub widths are powers of two like the ring's, so inserts
  /// landing in the active sub range stay a shift away from their bucket.
  void split_bucket(std::vector<HeapEntry>& bucket) {
    sub_shift_ = width_shift_ > kSubShift ? width_shift_ - kSubShift : 0;
    sub_start_ = ring_start_ + width_ * static_cast<std::int64_t>(cur_bucket_);
    sub_end_ = sub_start_ + width_;
    sub_width_ = SimTime::from_us(std::int64_t{1} << sub_shift_);
    sub_cur_ = 0;
    if (sub_buckets_.empty()) sub_buckets_.resize(kSubBuckets);
    for (const HeapEntry& entry : bucket) {
      const std::size_t index = static_cast<std::size_t>(
          (entry.when - sub_start_).us() >> sub_shift_);
      assert(index < kSubBuckets);
      sub_buckets_[index].push_back(entry);
    }
    sub_pending_ = bucket.size();
    ring_pending_ -= bucket.size();
    bucket.clear();
    ++cur_bucket_;
    sub_active_ = true;
  }

  /// Ring reseed = one epoch: re-anchor the ring at the earliest overflow
  /// event, re-derive the bucket width from the observed population, and
  /// re-file every overflow event that now fits the ring.  Events past the
  /// new ring stay in the overflow for a later epoch.
  void reseed_ring() {
    assert(!overflow_.empty());
    SimTime lo = overflow_.front().when;
    SimTime hi = lo;
    for (const HeapEntry& entry : overflow_) {
      if (entry.when < lo) lo = entry.when;
      if (entry.when > hi) hi = entry.when;
    }
    // Width tuning, once per epoch: cover the whole observed span when it
    // fits (span/kBuckets), but never drop below ~4x the observed mean
    // inter-event spacing — sparse far-future populations then get wide
    // buckets instead of a ring of singletons.  The result is rounded up to
    // a power of two so the per-insert bucket index is a shift.
    const std::int64_t span = (hi - lo).us();
    const auto count = static_cast<std::int64_t>(overflow_.size());
    std::int64_t width = span / static_cast<std::int64_t>(kBuckets) + 1;
    const std::int64_t spacing_floor = 4 * (span / count + 1);
    if (width < spacing_floor) width = spacing_floor;
    if (width > kMaxWidthUs) width = kMaxWidthUs;
    width_shift_ = 0;
    while ((std::int64_t{1} << width_shift_) < width) ++width_shift_;
    assert(lo >= ring_end_ && "overflow events precede the drained ring");
    ring_start_ = lo;
    width_ = SimTime::from_us(std::int64_t{1} << width_shift_);
    ring_end_ = ring_start_ + width_ * static_cast<std::int64_t>(kBuckets);
    cur_bucket_ = 0;
    near_end_ = ring_start_;
    if (buckets_.empty()) buckets_.resize(kBuckets);
    const SimTime end = ring_end_;
    std::size_t kept = 0;
    for (const HeapEntry& entry : overflow_) {
      if (entry.when < end) {
        const std::size_t index = static_cast<std::size_t>(
            (entry.when - ring_start_).us() >> width_shift_);
        buckets_[index].push_back(entry);
        ++ring_pending_;
      } else {
        overflow_[kept++] = entry;
      }
    }
    overflow_.resize(kept);
  }

  void heap_push(HeapEntry entry) {
    std::size_t i = heap_.size();
    heap_.push_back(entry);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!entry.before(heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = entry;
  }

  /// Sifts `entry` down from position `i` to its resting place.
  void sift_down(std::size_t i, HeapEntry entry) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      const std::size_t end =
          first_child + kArity < n ? first_child + kArity : n;
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (heap_[c].before(heap_[best])) best = c;
      }
      if (!heap_[best].before(entry)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = entry;
  }

  void heap_pop() {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) return;
    sift_down(0, last);
  }

  /// Floyd build over an arbitrarily ordered heap_ (bucket load, extract).
  void heapify() {
    if (heap_.size() < 2) return;
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) {
      sift_down(i, heap_[i]);
    }
  }

  // Near tier: 4-ary min-heap.  kLadder restricts it to events with
  // when < near_end_; kHeap keeps everything here (near_end_ stays 0 and
  // every `when` routes to it via the scheduler_ check).
  std::vector<HeapEntry> heap_;
  // Ring tier: kBuckets buckets of width width_ starting at ring_start_;
  // buckets below cur_bucket_ are forever empty (their range is < near_end_).
  std::vector<std::vector<HeapEntry>> buckets_;
  SimTime ring_start_{};
  SimTime width_ = SimTime::from_us(64);  // always 1 << width_shift_
  int width_shift_ = 6;
  SimTime ring_end_ =
      SimTime::from_us(64 * static_cast<std::int64_t>(kBuckets));
  SimTime near_end_{};
  std::size_t cur_bucket_ = 0;
  std::size_t ring_pending_ = 0;
  // Sub-rung: kSubBuckets finer buckets covering exactly one split ring
  // bucket's range [sub_start_, sub_end_); drained before the ring advances.
  std::vector<std::vector<HeapEntry>> sub_buckets_;
  SimTime sub_start_{};
  SimTime sub_end_{};
  SimTime sub_width_{};
  int sub_shift_ = 0;
  std::size_t sub_cur_ = 0;
  std::size_t sub_pending_ = 0;
  bool sub_active_ = false;
  // Overflow tier: unsorted events at or past ring_end, re-filed at reseed.
  std::vector<HeapEntry> overflow_;

  // Callback slab, indexed by HeapEntry::slot.  A deque so references stay
  // stable while a running action schedules (and thus grows the slab).
  // slot_tags_ parallels it with the owner tag extract_tagged filters on.
  std::deque<Action> slots_;
  std::deque<Tag> slot_tags_;
  std::vector<std::uint32_t> free_slots_;
  Scheduler scheduler_ = Scheduler::kLadder;
  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t peak_pending_ = 0;
};

}  // namespace matrix
