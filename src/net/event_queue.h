// Discrete-event scheduler.
//
// A single priority queue of (time, sequence) ordered events drives the whole
// simulation: message deliveries, node service completions, game ticks, and
// scenario actions (hotspot arrival at t=10s, ...).  The sequence number
// breaks time ties in insertion order, which makes runs fully deterministic.
//
// Hot-path layout: the heap itself holds only 16-byte POD entries
// (when + a packed seq/slot word) in a 4-ary array heap — sift moves are
// trivial copies and one level's four children share a cache line.  The callbacks live in
// a separate slab of small-buffer-optimized InlineAction slots (a deque, so
// slots never move) recycled through a freelist: steady-state scheduling
// performs no allocation, and popping invokes the callback in place — no
// copy-on-pop, no move-on-pop.  Pop order depends only on the (when, seq)
// total order, so the heap arity is invisible to traces.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/inline_function.h"
#include "util/sim_time.h"

namespace matrix {

class EventQueue {
 public:
  using Action = InlineAction;

  /// Schedules `action` to run at absolute time `when`.  Scheduling in the
  /// past is clamped to "now" (runs next, still after already-queued events
  /// at the current instant).  The callable is constructed directly in its
  /// slab slot — no intermediate Action object, no relocation.
  template <typename F>
  void schedule_at(SimTime when, F&& action) {
    if (when < now_) when = now_;
    const std::uint32_t slot = acquire_slot();
    slots_[slot].assign(std::forward<F>(action));
    heap_push(HeapEntry{when, (next_seq_++ << kSlotBits) | slot});
    if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
  }

  /// Schedules `action` to run `delay` after the current time.
  template <typename F>
  void schedule_after(SimTime delay, F&& action) {
    schedule_at(now_ + delay, std::forward<F>(action));
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  /// Timestamp of the earliest pending event.  Precondition: !empty().
  /// The sharded engine (net/network.h) uses this to pick the next
  /// conservative window horizon without popping anything.
  [[nodiscard]] SimTime next_time() const { return heap_[0].when; }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }
  /// High-water mark of simultaneously pending events (peak heap depth).
  [[nodiscard]] std::size_t peak_pending() const { return peak_pending_; }

  /// Runs the next event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_[0];
    heap_pop();
    now_ = top.when;
    ++events_processed_;
    // Invoke in place — the slab is a deque, so slots stay put while the
    // action schedules new events.  The slot is recycled only afterwards,
    // so re-entrant scheduling can never alias the running callback.
    const std::uint32_t slot = top.slot();
    slots_[slot].invoke_and_reset();
    free_slots_.push_back(slot);
    return true;
  }

  /// Runs all events with time <= `until`, then advances the clock to
  /// `until` even if no event lands exactly there.
  void run_until(SimTime until) {
    while (!heap_.empty() && heap_[0].when <= until) {
      step();
    }
    if (now_ < until) now_ = until;
  }

  /// Runs all events with time strictly < `end`, then advances the clock to
  /// `end`.  The EXCLUSIVE window the sharded engine's barrier loop needs:
  /// events landing exactly on a window boundary (e.g. merged cross-shard
  /// mail at the horizon) run in the next window, after the merge, so their
  /// ordering is decided by the deterministic mailbox merge — never by
  /// which side of the barrier happened to process them.
  void run_window(SimTime end) {
    while (!heap_.empty() && heap_[0].when < end) {
      step();
    }
    if (now_ < end) now_ = end;
  }

  /// Drains the queue completely (use with care: periodic events must have
  /// a termination condition or this never returns).
  void run_all() {
    while (step()) {
    }
  }

 private:
  /// Slot index width inside the packed (seq, slot) word.  2^24 concurrent
  /// events would mean a multi-gigabyte slab, far past any workload here;
  /// sequence numbers keep 40 bits — a trillion events per run.
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

  /// 16-byte heap entry: time plus (seq << 24 | slot).  Comparing the packed
  /// word on time ties orders by sequence — the slot bits can never decide,
  /// because sequence numbers are unique.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq_slot;

    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & kSlotMask);
    }

    /// Min-heap order: earliest time, then lowest sequence.
    [[nodiscard]] bool before(const HeapEntry& other) const {
      if (when != other.when) return when < other.when;
      return seq_slot < other.seq_slot;
    }
  };
  static_assert(sizeof(HeapEntry) == 16);

  static constexpr std::size_t kArity = 4;

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    // The slot index must fit the packed heap word; 2^24 concurrent events
    // would need a multi-gigabyte slab, so this is a loud tripwire for an
    // impossible state, not a reachable limit.
    assert(slots_.size() <= kSlotMask + 1);
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void heap_push(HeapEntry entry) {
    std::size_t i = heap_.size();
    heap_.push_back(entry);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!entry.before(heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = entry;
  }

  void heap_pop() {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    while (true) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      const std::size_t end =
          first_child + kArity < n ? first_child + kArity : n;
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (heap_[c].before(heap_[best])) best = c;
      }
      if (!heap_[best].before(last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  std::vector<HeapEntry> heap_;
  // Callback slab, indexed by HeapEntry::slot.  A deque so references stay
  // stable while a running action schedules (and thus grows the slab).
  std::deque<Action> slots_;
  std::vector<std::uint32_t> free_slots_;
  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t peak_pending_ = 0;
};

}  // namespace matrix
