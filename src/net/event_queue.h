// Discrete-event scheduler.
//
// A single priority queue of (time, sequence) ordered events drives the whole
// simulation: message deliveries, node service completions, game ticks, and
// scenario actions (hotspot arrival at t=10s, ...).  The sequence number
// breaks time ties in insertion order, which makes runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sim_time.h"

namespace matrix {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` to run at absolute time `when`.  Scheduling in the
  /// past is clamped to "now" (runs next, still after already-queued events
  /// at the current instant).
  void schedule_at(SimTime when, Action action) {
    if (when < now_) when = now_;
    heap_.push(Event{when, next_seq_++, std::move(action)});
  }

  /// Schedules `action` to run `delay` after the current time.
  void schedule_after(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Runs the next event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // Copy out before pop: the action may schedule new events.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.when;
    ev.action();
    return true;
  }

  /// Runs all events with time <= `until`, then advances the clock to
  /// `until` even if no event lands exactly there.
  void run_until(SimTime until) {
    while (!heap_.empty() && heap_.top().when <= until) {
      step();
    }
    if (now_ < until) now_ = until;
  }

  /// Drains the queue completely (use with care: periodic events must have
  /// a termination condition or this never returns).
  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;

    // std::priority_queue is a max-heap; invert so earliest (then lowest
    // sequence) pops first.
    bool operator<(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event> heap_;
  SimTime now_{};
  std::uint64_t next_seq_ = 0;
};

}  // namespace matrix
