// Parameterized sweeps: the full hotspot-absorption behaviour must hold
// for every game model × split policy × metric combination — the paper's
// portability claim ("support multiple gaming platforms") expressed as a
// test matrix.  Also statistical tests of bot behaviour against the game
// models' declared action mixes.
#include <gtest/gtest.h>

#include "sim/deployment.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

namespace matrix {
namespace {

using namespace time_literals;

struct Combo {
  const char* game;
  SplitPolicy policy;
  Metric metric;
};

std::ostream& operator<<(std::ostream& os, const Combo& combo) {
  return os << combo.game << "/"
            << (combo.policy == SplitPolicy::kSplitToLeft ? "left" : "aware")
            << "/"
            << (combo.metric == Metric::kChebyshev ? "linf" : "l2");
}

GameModelSpec spec_by_name(const std::string& name) {
  if (name == "quake") return quake_like();
  if (name == "daimonin") return daimonin_like();
  return bzflag_like();
}

class CrossGameTest : public ::testing::TestWithParam<Combo> {};

TEST_P(CrossGameTest, HotspotAbsorbedAndInvariantsHold) {
  const Combo combo = GetParam();
  DeploymentOptions options;
  options.config.world = Rect(0, 0, 1000, 1000);
  options.config.overload_clients = 40;
  options.config.underload_clients = 20;
  options.config.sustain_reports_to_split = 2;
  options.config.topology_cooldown = 2_sec;
  options.config.split_policy = combo.policy;
  options.config.metric = combo.metric;
  options.spec = spec_by_name(combo.game);
  options.config.visibility_radius = options.spec.visibility_radius;
  options.initial_servers = 1;
  options.pool_size = 7;
  options.map_objects = 50;
  options.seed = 4242;

  Deployment deployment(options);
  Scenario scenario(deployment);
  scenario.add_hotspot_bots(1_sec, 90, {480, 480}, 80.0);
  deployment.run_until(20_sec);

  // Splits happened and relieved the hotspot server.
  EXPECT_GE(deployment.active_server_count(), 2u) << combo;
  std::size_t max_on_one = 0, total = 0;
  for (const GameServer* game : deployment.game_servers()) {
    max_on_one = std::max(max_on_one, game->client_count());
    total += game->client_count();
  }
  EXPECT_LT(max_on_one, 90u) << combo;
  EXPECT_GE(total, 86u) << combo;  // a few may be mid-handoff

  // Structural invariants hold regardless of game/policy/metric.
  EXPECT_TRUE(deployment.coordinator().partition_map().tiles(
      options.config.world))
      << combo;
  std::size_t objects = 0;
  for (const GameServer* game : deployment.game_servers()) {
    objects += game->map_object_count();
  }
  EXPECT_EQ(objects, options.map_objects) << combo;

  // Players kept playing: the median stayed at one WAN RTT.
  const LatencySummary latency = collect_latency(deployment);
  EXPECT_GT(latency.actions, 1000u) << combo;
  EXPECT_LT(latency.self_ms.median(), 80.0) << combo;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CrossGameTest,
    ::testing::Values(
        Combo{"bzflag", SplitPolicy::kSplitToLeft, Metric::kChebyshev},
        Combo{"bzflag", SplitPolicy::kLoadAware, Metric::kChebyshev},
        Combo{"bzflag", SplitPolicy::kSplitToLeft, Metric::kEuclidean},
        Combo{"quake", SplitPolicy::kSplitToLeft, Metric::kChebyshev},
        Combo{"quake", SplitPolicy::kLoadAware, Metric::kEuclidean},
        Combo{"daimonin", SplitPolicy::kSplitToLeft, Metric::kChebyshev},
        Combo{"daimonin", SplitPolicy::kLoadAware, Metric::kChebyshev}));

// ---------------------------------------------------------------------------
// Bot behaviour vs the declared game model
// ---------------------------------------------------------------------------

TEST(BotBehaviourTest, ActionRateMatchesModel) {
  // One lone bot for 60 simulated seconds: its action count must match the
  // model's mean interval (clamped-exponential jitter preserves the mean
  // only approximately; allow 25%).
  for (const GameModelSpec& spec : {bzflag_like(), daimonin_like()}) {
    DeploymentOptions options;
    options.spec = spec;
    options.config.visibility_radius = spec.visibility_radius;
    options.seed = 9;
    Deployment deployment(options);
    deployment.add_bot({500, 500});
    deployment.run_until(60_sec);
    const double expected = 60.0 / spec.action_interval.sec();
    const auto actions = deployment.bots()[0]->metrics().actions_sent;
    EXPECT_NEAR(static_cast<double>(actions), expected, expected * 0.25)
        << spec.name;
  }
}

TEST(BotBehaviourTest, ActionMixMatchesModel) {
  // Count action kinds arriving at the server for a daimonin bot: the
  // chat/interact fractions are the model's distinguishing features.
  DeploymentOptions options;
  options.spec = daimonin_like();
  options.spec.move_speed = 0.0;
  options.config.visibility_radius = options.spec.visibility_radius;
  options.seed = 10;
  // Two static partitions so teleports can actually leave the caster's
  // server (a single world-spanning server swallows every target locally).
  options.config.allow_split = false;
  options.config.allow_reclaim = false;
  options.initial_servers = 2;
  options.pool_size = 0;
  Deployment deployment(options);
  for (int i = 0; i < 20; ++i) deployment.add_bot({500.0 + i, 500.0});
  deployment.run_until(120_sec);
  // ~20 bots × 4 Hz × 120 s ≈ 9600 actions; enough for ±4% bounds.
  const LatencySummary latency = collect_latency(deployment);
  ASSERT_GT(latency.actions, 5000u);
  // Verify through matrix-server fan-out payload sizes is indirect; use
  // the bots' own sent counters by kind via the game servers' stats:
  // the generic server does not tally kinds, so approximate via expected
  // fractions against total actions using the chat payload share of bytes.
  // Simpler and direct: fraction of actions that were teleports shows up
  // as non-proximal lookups at the matrix layer.
  std::uint64_t lookups = 0;
  for (const MatrixServer* server : deployment.matrix_servers()) {
    lookups += server->stats().nonproximal_lookups;
  }
  const double teleport_rate = static_cast<double>(lookups) /
                               static_cast<double>(latency.actions);
  // daimonin_like declares 1% non-proximal actions; owner-query migrations
  // are zero here (bots are stationary), so lookups ≈ teleports whose
  // target fell outside the single partition-with-R reach.  Allow a loose
  // band around 1%.
  EXPECT_GT(teleport_rate, 0.002);
  EXPECT_LT(teleport_rate, 0.02);
}

TEST(BotBehaviourTest, StationaryBotsStayPut) {
  DeploymentOptions options;
  options.spec = bzflag_like();
  options.spec.move_speed = 0.0;
  options.seed = 11;
  Deployment deployment(options);
  BotClient* bot = deployment.add_bot({123, 456});
  deployment.run_until(10_sec);
  EXPECT_EQ(bot->position(), (Vec2{123, 456}));
}

TEST(BotBehaviourTest, AttractedBotsConvergeToHotspot) {
  DeploymentOptions options;
  options.spec = bzflag_like();
  options.seed = 12;
  Deployment deployment(options);
  BotClient* bot = deployment.add_bot({100, 100}, Vec2{800, 800}, 10.0);
  deployment.run_until(120_sec);
  // 120 s at 25 u/s is ample to cross ~990 units of diagonal.
  EXPECT_LT(Vec2::distance(bot->position(), {800, 800}), 60.0);
}

TEST(BotBehaviourTest, LeaveStopsActivity) {
  DeploymentOptions options;
  options.spec = bzflag_like();
  options.seed = 13;
  Deployment deployment(options);
  BotClient* bot = deployment.add_bot({500, 500});
  deployment.run_until(5_sec);
  bot->leave();
  deployment.run_until(6_sec);
  const auto actions = bot->metrics().actions_sent;
  deployment.run_until(20_sec);
  EXPECT_EQ(bot->metrics().actions_sent, actions);
  EXPECT_EQ(deployment.total_clients(), 0u);
}

}  // namespace
}  // namespace matrix
