// Scenario-fuzzer and trace-invariants harness tests (docs/TESTING.md).
//
// Three layers:
//
//   1. Clean sweeps — a fixed seed set under both load policies must hold
//      every invariant, and a seed must replay byte-identically (the
//      property that makes any red CI run reproducible locally).
//   2. Synthetic traces — hand-built event streams prove each check_trace
//      rule fires on exactly the malformed stream it exists for, including
//      shapes a healthy deployment can never produce.
//   3. Mutation smoke — each Config::fault knob (config.h) injects one real
//      bug into a live deployment, and the matching invariant must catch
//      it.  A fuzzer that has never been shown to fail proves nothing; the
//      final test asserts every invariant fired somewhere in this binary.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fuzz/fuzz_scenario.h"
#include "fuzz/invariants.h"

namespace matrix::fuzz {
namespace {

/// Which invariants have fired across this binary's tests; the capstone
/// test asserts full coverage.
std::set<std::string>& fired_registry() {
  static std::set<std::string> fired;
  return fired;
}

void note_fired(const InvariantReport& report) {
  for (const auto& [name, count] : report.fired_counts) {
    fired_registry().insert(name);
  }
}

/// The forced configuration the mutation tests run under: every subsystem
/// the faults target is on, and the deployment is small enough to overload.
void force_full_stack(DeploymentOptions& options) {
  AdmissionConfig& admission = options.config.admission;
  admission.enabled = true;
  admission.priority.queue_enabled = true;
  admission.global.enabled = true;
  admission.global.queue_handoff = true;
  options.config.overload_clients = 80;
  options.config.underload_clients = 40;
  if (options.pool_size < 2) options.pool_size = 2;
}

/// The seed every mutation test runs: probed to exercise splits, queue
/// handoffs (87 sent/adopted), denials, and redirects under
/// force_full_stack.  If a future change re-shapes seed 2's scenario, the
/// baseline assertions below will say so explicitly.
constexpr std::uint64_t kMutationSeed = 2;

const FuzzResult& mutation_baseline() {
  static const FuzzResult result = [] {
    FuzzRunOptions options;
    options.mutate = force_full_stack;
    return run_fuzz_case(kMutationSeed, LoadPolicyKind::kDirective, options);
  }();
  return result;
}

FuzzResult run_mutated(void (*arm)(DeploymentOptions&)) {
  FuzzRunOptions options;
  options.mutate = [arm](DeploymentOptions& deployment) {
    force_full_stack(deployment);
    arm(deployment);
  };
  return run_fuzz_case(kMutationSeed, LoadPolicyKind::kDirective, options);
}

obs::TraceEvent event(std::int64_t t_us, obs::TraceKind kind,
                      std::uint64_t subject, std::uint64_t actor = 0,
                      std::int64_t a = 0, std::int64_t b = 0) {
  obs::TraceEvent e;
  e.at = SimTime::from_us(t_us);
  e.kind = kind;
  e.subject = subject;
  e.actor = actor;
  e.a = a;
  e.b = b;
  return e;
}

// ---------------------------------------------------------------------------
// Clean sweeps
// ---------------------------------------------------------------------------

TEST(FuzzSweepTest, FixedSeedsHoldEveryInvariantUnderBothPolicies) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const LoadPolicyKind policy :
         {LoadPolicyKind::kClassic, LoadPolicyKind::kDirective}) {
      const FuzzResult result = run_fuzz_case(seed, policy);
      EXPECT_TRUE(result.report.ok())
          << result.plan.describe() << "\n" << result.report.summary();
      EXPECT_TRUE(result.quiesced) << result.plan.describe();
      EXPECT_GT(result.report.events_checked, 0u);
      EXPECT_GT(result.report.clients_tracked, 0u);
    }
  }
}

TEST(FuzzSweepTest, SameSeedReplaysByteIdentically) {
  FuzzRunOptions options;
  options.capture_trace = true;
  const FuzzResult first =
      run_fuzz_case(7, LoadPolicyKind::kClassic, options);
  const FuzzResult second =
      run_fuzz_case(7, LoadPolicyKind::kClassic, options);
  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl)
      << "a seed must fully determine the run — replay is the contract "
         "that makes a red fuzz case debuggable";
  EXPECT_EQ(first.plan.describe(), second.plan.describe());
}

TEST(FuzzSweepTest, PlanExpansionIsPureAndPolicyAware) {
  const FuzzPlan classic = make_fuzz_plan(11, LoadPolicyKind::kClassic);
  const FuzzPlan again = make_fuzz_plan(11, LoadPolicyKind::kClassic);
  EXPECT_EQ(classic.describe(), again.describe());
  const FuzzPlan directive = make_fuzz_plan(11, LoadPolicyKind::kDirective);
  EXPECT_EQ(directive.deployment.config.policy.kind,
            LoadPolicyKind::kDirective);
  EXPECT_GT(classic.offered_clients, 0u);
  EXPECT_FALSE(classic.waves.empty());
  // The flight recorder must be able to hold the whole lifecycle story.
  EXPECT_GE(classic.deployment.config.obs.ring_capacity,
            classic.offered_clients * 160);
}

// ---------------------------------------------------------------------------
// Synthetic traces: each rule fires on the stream it exists for
// ---------------------------------------------------------------------------

TEST(InvariantCheckerTest, CleanLifecycleHolds) {
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),
      event(100, obs::TraceKind::kClientAdmitted, 1, 10),
      event(200, obs::TraceKind::kClientHello, 2, 10),
      event(200, obs::TraceKind::kClientQueued, 2, 10),
      event(300, obs::TraceKind::kClientAdmitted, 2, 10),
      event(900, obs::TraceKind::kClientBye, 1, 10, /*a=*/1),
      event(950, obs::TraceKind::kClientBye, 2, 10, /*a=*/1),
  };
  InvariantOptions options;
  options.expect_quiesced = true;
  const InvariantReport report = check_trace(events, options);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.clients_tracked, 2u);
}

TEST(InvariantCheckerTest, UnresolvedHelloIsBlackhole) {
  // The gate is synchronous, so a hello with no same-instant verdict was
  // swallowed — whether the stream ends (client 1) or the client's next
  // event is a teardown bye (client 2).
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),
      event(100, obs::TraceKind::kClientHello, 2, 10),
      event(900, obs::TraceKind::kClientBye, 2, 10),
  };
  const InvariantReport report = check_trace(events, {});
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvBlackhole)) << report.summary();
  EXPECT_EQ(report.fired_counts.at(kInvBlackhole), 2u);
}

TEST(InvariantCheckerTest, LateVerdictIsBlackhole) {
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),
      event(5000, obs::TraceKind::kClientDeferred, 1, 10),
  };
  const InvariantReport report = check_trace(events, {});
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvBlackhole)) << report.summary();
}

TEST(InvariantCheckerTest, StuckClientsAfterQuiesceAreBlackholes) {
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),
      event(100, obs::TraceKind::kClientQueued, 1, 10),  // parked forever
      event(200, obs::TraceKind::kClientHello, 2, 10),
      event(200, obs::TraceKind::kClientAdmitted, 2, 10),
      event(300, obs::TraceKind::kClientRedirected, 2, 10, /*a=*/11),
      // client 2 never resumes at node 11 and never says bye
  };
  InvariantOptions options;
  options.expect_quiesced = true;
  const InvariantReport report = check_trace(events, options);
  note_fired(report);
  EXPECT_GE(report.fired_counts.at(kInvBlackhole), 2u) << report.summary();
}

TEST(InvariantCheckerTest, DoubleSessionIsClientConservationViolation) {
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),
      event(100, obs::TraceKind::kClientAdmitted, 1, 10),
      // admitted again at another node with no redirect in between
      event(200, obs::TraceKind::kClientAdmitted, 1, 11),
  };
  const InvariantReport report = check_trace(events, {});
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvClientConservation)) << report.summary();
}

TEST(InvariantCheckerTest, ByeFindingNoSessionIsClientConservationViolation) {
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),
      event(100, obs::TraceKind::kClientAdmitted, 1, 10),
      // the server forgot the session: the bye reports a=0 (none found)
      event(900, obs::TraceKind::kClientBye, 1, 10, /*a=*/0),
  };
  const InvariantReport report = check_trace(events, {});
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvClientConservation)) << report.summary();
}

TEST(InvariantCheckerTest, VanishedHandoffIsQueueConservationViolation) {
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),
      event(100, obs::TraceKind::kClientQueued, 1, 10),
      event(200, obs::TraceKind::kQueueHandoffSent, 1, 10, /*a=*/11,
            /*b=*/100),
      // never adopted, deferred, or duplicate-dropped
  };
  InvariantOptions options;
  options.expect_quiesced = true;
  const InvariantReport report = check_trace(events, options);
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvQueueConservation)) << report.summary();
}

TEST(InvariantCheckerTest, AdoptionWithoutHandoffIsQueueConservationViolation) {
  const std::vector<obs::TraceEvent> events = {
      event(200, obs::TraceKind::kQueueHandoff, 1, 5, /*a=*/11, /*b=*/100),
  };
  const InvariantReport report = check_trace(events, {});
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvQueueConservation)) << report.summary();
}

TEST(InvariantCheckerTest, AgeLossAcrossHandoffIsAgeConservationViolation) {
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),
      event(100, obs::TraceKind::kClientQueued, 1, 10),
      event(200, obs::TraceKind::kQueueHandoffSent, 1, 10, /*a=*/11,
            /*b=*/100),
      // adopted with a reset enqueued_at: the accrued age vanished
      event(300, obs::TraceKind::kQueueHandoff, 1, 5, /*a=*/11, /*b=*/300),
  };
  const InvariantReport report = check_trace(events, {});
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvAgeConservation)) << report.summary();
}

TEST(InvariantCheckerTest, HandoffBurstBeyondCapacityIsChurnViolation) {
  std::vector<obs::TraceEvent> events;
  for (std::uint64_t client = 1; client <= 5; ++client) {
    events.push_back(
        event(100, obs::TraceKind::kClientHello, client, 10));
    events.push_back(
        event(100, obs::TraceKind::kClientQueued, client, 10));
  }
  // One shed extracts five entries in a single same-instant burst...
  for (std::uint64_t client = 1; client <= 5; ++client) {
    events.push_back(event(500, obs::TraceKind::kQueueHandoffSent, client, 10,
                           /*a=*/11, /*b=*/100));
  }
  InvariantOptions options;
  options.max_handoff_burst = 3;  // ...against a waiting room bounded at 3
  const InvariantReport report = check_trace(events, options);
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvHandoffChurn)) << report.summary();
}

TEST(InvariantCheckerTest, AdoptionPingPongIsChurnViolation) {
  // The same client bounces between two waiting rooms four times while the
  // topology never changed once — handoff volume must be bounded by sheds.
  std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),
      event(100, obs::TraceKind::kClientQueued, 1, 10),
  };
  std::uint64_t src = 10;
  std::uint64_t dst = 11;
  for (int hop = 0; hop < 4; ++hop) {
    events.push_back(event(200 + hop * 100,
                           obs::TraceKind::kQueueHandoffSent, 1, src,
                           static_cast<std::int64_t>(dst), /*b=*/100));
    events.push_back(event(250 + hop * 100, obs::TraceKind::kQueueHandoff, 1,
                           5, static_cast<std::int64_t>(dst), /*b=*/100));
    std::swap(src, dst);
  }
  const InvariantReport report = check_trace(events, {});
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvHandoffChurn)) << report.summary();
}

TEST(InvariantCheckerTest, EndStateMismatchIsConservationViolation) {
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),
      event(100, obs::TraceKind::kClientAdmitted, 1, 10),
  };
  EndState expected;  // the live deployment holds nobody
  const InvariantReport report = check_trace(events, {}, &expected);
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvClientConservation)) << report.summary();
}

TEST(InvariantCheckerTest, ToleratedZombieRaceIsAnomalyNotViolation) {
  // A bye overtakes the client's own redirect: the resume admit lands
  // after the bye.  Legal (the zombie session is reaped by the next bye),
  // counted, not a violation.
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),
      event(100, obs::TraceKind::kClientAdmitted, 1, 10),
      event(200, obs::TraceKind::kClientRedirected, 1, 10, /*a=*/11),
      event(250, obs::TraceKind::kClientBye, 1, 10),
      event(300, obs::TraceKind::kClientAdmitted, 1, 11, /*a=*/7),
      event(400, obs::TraceKind::kClientBye, 1, 11, /*a=*/1),
  };
  const InvariantReport report = check_trace(events, {});
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GE(report.anomalies, 1u);
}

TEST(InvariantCheckerTest, CleanControlStreamHolds) {
  // Strictly increasing (epoch, seq) per (node, kind) — including an epoch
  // flip that legally resets the seq — plus a full legal failsafe cycle.
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kControlApplied, 10, 2, /*a=*/1, /*b=*/1),
      event(200, obs::TraceKind::kControlApplied, 10, 2, /*a=*/1, /*b=*/2),
      event(300, obs::TraceKind::kControlApplied, 10, 2, /*a=*/2, /*b=*/1),
      event(400, obs::TraceKind::kFailsafeTransition, 10, 0, /*a=*/1,
            /*b=*/0),
      event(500, obs::TraceKind::kFailsafeTransition, 10, 0, /*a=*/2,
            /*b=*/1),
      event(600, obs::TraceKind::kFailsafeTransition, 10, 0, /*a=*/0,
            /*b=*/2),
  };
  const InvariantReport report = check_trace(events, {});
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(InvariantCheckerTest, StaleControlReplayIsMonotonicViolation) {
  // A duplicate (epoch, seq) and an epoch regression both mean a stale
  // coordinator message changed state.
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kControlApplied, 10, 2, /*a=*/2, /*b=*/5),
      event(200, obs::TraceKind::kControlApplied, 10, 2, /*a=*/2, /*b=*/5),
      event(300, obs::TraceKind::kControlApplied, 10, 2, /*a=*/1, /*b=*/9),
  };
  const InvariantReport report = check_trace(events, {});
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvControlMonotonic)) << report.summary();
  EXPECT_EQ(report.fired_counts.at(kInvControlMonotonic), 2u);
}

TEST(InvariantCheckerTest, MalformedFailsafeEdgesAreTimelineViolations) {
  const std::vector<obs::TraceEvent> events = {
      // NORMAL→FALLBACK skips HOLD: illegal edge.
      event(100, obs::TraceKind::kFailsafeTransition, 10, 0, /*a=*/2,
            /*b=*/0),
      // FALLBACK→FALLBACK: self-transition.
      event(200, obs::TraceKind::kFailsafeTransition, 10, 0, /*a=*/2,
            /*b=*/2),
      // Claims to leave HOLD while the tracked state is FALLBACK.
      event(300, obs::TraceKind::kFailsafeTransition, 10, 0, /*a=*/0,
            /*b=*/1),
  };
  const InvariantReport report = check_trace(events, {});
  note_fired(report);
  EXPECT_TRUE(report.fired(kInvFailsafeTimeline)) << report.summary();
  EXPECT_EQ(report.fired_counts.at(kInvFailsafeTimeline), 3u);
}

TEST(InvariantCheckerTest, LossyControlLinksKeepStateMachineInvariants) {
  // Under a lossy control link a stranded lifecycle is forgiven (the lost
  // message explains it) but a corrupted state machine never is.
  const std::vector<obs::TraceEvent> events = {
      event(100, obs::TraceKind::kClientHello, 1, 10),  // never resolves
      event(200, obs::TraceKind::kControlApplied, 10, 2, /*a=*/1, /*b=*/3),
      event(300, obs::TraceKind::kControlApplied, 10, 2, /*a=*/1, /*b=*/3),
  };
  InvariantOptions options;
  options.lossy_control_links = true;
  const InvariantReport report = check_trace(events, options);
  EXPECT_FALSE(report.fired(kInvBlackhole)) << report.summary();
  EXPECT_TRUE(report.fired(kInvControlMonotonic)) << report.summary();
}

TEST(InvariantCheckerTest, ReportCapsDetailsButCountsEverything) {
  InvariantReport report;
  for (int i = 0; i < 100; ++i) {
    report.add(kInvBlackhole, "violation " + std::to_string(i));
  }
  EXPECT_EQ(report.fired_counts.at(kInvBlackhole), 100u);
  EXPECT_EQ(report.violations.size(),
            InvariantReport::kMaxDetailsPerInvariant);
  EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------------
// Mutation smoke: every fault knob is caught by its invariant
// ---------------------------------------------------------------------------

TEST(FuzzMutationTest, BaselineExercisesTheMachineryAndHolds) {
  const FuzzResult& baseline = mutation_baseline();
  ASSERT_TRUE(baseline.report.ok()) << baseline.report.summary();
  ASSERT_TRUE(baseline.quiesced);
  // The mutation seed must actually drive the subsystems the faults break;
  // otherwise the tests below would pass vacuously.
  EXPECT_GE(baseline.report.count(obs::TraceKind::kQueueHandoffSent), 10u);
  EXPECT_GE(baseline.report.count(obs::TraceKind::kQueueHandoff), 10u);
  EXPECT_GE(baseline.report.count(obs::TraceKind::kClientQueued), 50u);
  EXPECT_GE(baseline.report.count(obs::TraceKind::kClientDenied), 10u);
  EXPECT_GE(baseline.report.count(obs::TraceKind::kSplitCompleted), 2u);
  EXPECT_GE(baseline.report.count(obs::TraceKind::kClientRedirected), 100u);
}

TEST(FuzzMutationTest, SwallowedGatedJoinIsCaughtAsBlackhole) {
  const FuzzResult result = run_mutated([](DeploymentOptions& options) {
    options.config.fault.swallow_gated_join_every = 3;
  });
  note_fired(result.report);
  EXPECT_TRUE(result.report.fired(kInvBlackhole))
      << result.report.summary();
}

TEST(FuzzMutationTest, DroppedQueueHandoffIsCaughtAsQueueConservation) {
  const FuzzResult result = run_mutated([](DeploymentOptions& options) {
    options.config.fault.drop_queue_handoff = true;
  });
  note_fired(result.report);
  EXPECT_TRUE(result.report.fired(kInvQueueConservation))
      << result.report.summary();
}

TEST(FuzzMutationTest, ResetHandoffAgeIsCaughtAsAgeConservation) {
  const FuzzResult result = run_mutated([](DeploymentOptions& options) {
    options.config.fault.reset_handoff_age = true;
  });
  note_fired(result.report);
  EXPECT_TRUE(result.report.fired(kInvAgeConservation))
      << result.report.summary();
}

TEST(FuzzMutationTest, LeakedSessionOnShedIsCaughtAsClientConservation) {
  const FuzzResult result = run_mutated([](DeploymentOptions& options) {
    options.config.fault.leak_session_on_shed = true;
  });
  note_fired(result.report);
  EXPECT_TRUE(result.report.fired(kInvClientConservation))
      << result.report.summary();
}

TEST(FuzzMutationTest, SkippedRecoverMinIsCaughtAsAdmissionTimeline) {
  const FuzzResult result = run_mutated([](DeploymentOptions& options) {
    // The valve relaxes after dwell alone while the validator judges
    // against the real recover_min — the hysteresis bug the timeline
    // invariant exists for.
    options.config.admission.dwell = SimTime::from_sec(1.0);
    options.config.admission.recover_min = SimTime::from_sec(10.0);
    options.config.admission.fault_skip_recover_min = true;
  });
  note_fired(result.report);
  EXPECT_TRUE(result.report.fired(kInvAdmissionTimeline))
      << result.report.summary();
}

TEST(FuzzMutationTest, SpanCapacityOverflowIsCaughtAsSpanAccounting) {
  const FuzzResult result = run_mutated([](DeploymentOptions& options) {
    options.config.obs.span_capacity = 1;  // hundreds of concurrent admits
  });
  note_fired(result.report);
  EXPECT_TRUE(result.report.fired(kInvSpanAccounting))
      << result.report.summary();
}

TEST(FuzzMutationTest, TruncatedRingIsCaughtAsSetup) {
  const FuzzResult result = run_mutated([](DeploymentOptions& options) {
    options.config.obs.ring_capacity = 64;  // far too shallow for the run
  });
  note_fired(result.report);
  EXPECT_TRUE(result.report.fired(kInvSetup)) << result.report.summary();
}

TEST(FuzzMutationTest, StaleDirectiveReplayIsCaughtAsControlMonotonic) {
  const FuzzResult result = run_mutated([](DeploymentOptions& options) {
    // The matrix re-applies every coordinator directive a second time,
    // with the control plane's staleness rejection bypassed — the same
    // (epoch, seq) acts twice and the applied stream stops increasing.
    options.config.fault.stale_directive_replay = true;
  });
  note_fired(result.report);
  EXPECT_TRUE(result.report.fired(kInvControlMonotonic))
      << result.report.summary();
}

// ---------------------------------------------------------------------------
// Capstone: full invariant coverage
// ---------------------------------------------------------------------------

// Must run last (gtest runs same-binary tests in declaration order): every
// invariant the harness defines must have fired in at least one test above,
// or the harness carries a check nothing has ever been seen to catch.
TEST(FuzzCoverageTest, EveryInvariantFiredSomewhereInThisBinary) {
  for (const char* invariant :
       {kInvBlackhole, kInvClientConservation, kInvQueueConservation,
        kInvAgeConservation, kInvHandoffChurn, kInvAdmissionTimeline,
        kInvSpanAccounting, kInvSetup, kInvFailsafeTimeline,
        kInvControlMonotonic}) {
    EXPECT_TRUE(fired_registry().count(invariant) == 1)
        << "invariant '" << invariant
        << "' never fired in any synthetic or mutation test";
  }
}

}  // namespace
}  // namespace matrix::fuzz
