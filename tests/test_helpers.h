// Shared test scaffolding: a message-capturing protocol node and a
// mini-harness that wires Matrix servers to *fake* game servers, so control
// protocol tests can inject load reports and observe MapRange/Adopt traffic
// with surgical precision (the full game stack is exercised separately in
// game_server_test.cpp and integration_test.cpp).
#pragma once

#include <gtest/gtest.h>

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/coordinator.h"
#include "core/matrix_server.h"
#include "core/protocol_node.h"
#include "core/resource_pool.h"
#include "net/network.h"

namespace matrix {

/// Flight-recorder dump on assertion failure (src/obs/): construct one at
/// the top of a test that runs with tracing enabled, and if the test fails,
/// the destructor dumps the network's recent trace events as JSONL to
/// stderr — the replay-debugging breadcrumb the ROADMAP's invariants
/// harness calls for.  A no-op when the test passes or tracing is off.
class TraceDumpOnFailure {
 public:
  explicit TraceDumpOnFailure(const Network& network, std::size_t max_events = 200)
      : network_(network), max_events_(max_events) {}

  TraceDumpOnFailure(const TraceDumpOnFailure&) = delete;
  TraceDumpOnFailure& operator=(const TraceDumpOnFailure&) = delete;

  ~TraceDumpOnFailure() {
    if (!::testing::Test::HasFailure()) return;
    const obs::Tracer& tracer = network_.tracer();
    if (!tracer.enabled()) return;
    const auto events = tracer.ring_snapshot();
    const std::size_t first =
        events.size() > max_events_ ? events.size() - max_events_ : 0;
    std::cerr << "--- flight recorder (last " << (events.size() - first)
              << " of " << tracer.events_recorded() << " events) ---\n";
    for (std::size_t i = first; i < events.size(); ++i) {
      const obs::TraceEvent& e = events[i];
      std::cerr << "{\"t_us\":" << e.at.us() << ",\"kind\":\""
                << obs::trace_kind_name(e.kind) << "\",\"subject\":"
                << e.subject << ",\"actor\":" << e.actor << ",\"a\":" << e.a
                << ",\"b\":" << e.b << "}\n";
    }
    std::cerr << "--- end flight recorder ---\n";
  }

 private:
  const Network& network_;
  std::size_t max_events_;
};

/// Records every decoded message; can send arbitrary messages on demand.
class CaptureNode : public ProtocolNode {
 public:
  explicit CaptureNode(std::string label = "capture")
      : label_(std::move(label)) {}

  [[nodiscard]] std::string name() const override { return label_; }

  void on_message(const Message& message, const Envelope& envelope) override {
    messages.push_back(message);
    envelopes.push_back(envelope);
  }

  /// Sends a message to `dst` as if this node originated it.
  void inject(NodeId dst, const Message& message) { send(dst, message); }

  /// Latest message of type T, or nullptr.
  template <typename T>
  [[nodiscard]] const T* last() const {
    for (auto it = messages.rbegin(); it != messages.rend(); ++it) {
      if (const T* msg = std::get_if<T>(&*it)) return msg;
    }
    return nullptr;
  }

  template <typename T>
  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (const auto& m : messages) {
      if (std::holds_alternative<T>(m)) ++n;
    }
    return n;
  }

  std::vector<Message> messages;
  std::vector<Envelope> envelopes;

 private:
  std::string label_;
};

/// Coordinator + pool + K Matrix servers, each wired to a CaptureNode
/// standing in for its game server.  Server i is pre-attached; callers
/// decide which get activate_root() vs. parked in the pool.
class ControlHarness {
 public:
  explicit ControlHarness(std::size_t servers, Config config,
                          std::uint64_t seed = 1)
      : network(seed), coordinator(config) {
    mc_node = network.attach(&coordinator);
    pool_node = network.attach(&pool);
    for (std::size_t i = 0; i < servers; ++i) {
      matrix_servers.push_back(
          std::make_unique<MatrixServer>(ServerId(i + 1), config));
      games.push_back(std::make_unique<CaptureNode>("fake-game"));
      network.attach(matrix_servers.back().get());
      const NodeId gnode = network.attach(games.back().get());
      matrix_servers.back()->wire({gnode, mc_node, pool_node});
    }
  }

  /// Parks server `index` in the resource pool.
  void park(std::size_t index) {
    pool.add_entry({ServerId(index + 1),
                    matrix_servers[index]->node_id(),
                    games[index]->node_id()});
  }

  /// Sends a LoadReport from server `index`'s fake game server.
  void report_load(std::size_t index, std::uint32_t clients,
                   std::uint32_t queue_len = 0) {
    LoadReport report;
    report.client_count = clients;
    report.queue_length = queue_len;
    games[index]->inject(matrix_servers[index]->node_id(), report);
  }

  /// Acknowledges the most recent MapRange shed order at server `index`.
  void ack_shed(std::size_t index) {
    const MapRange* range = games[index]->last<MapRange>();
    ASSERT_NE(range, nullptr);
    ShedDone done;
    done.topology_epoch = range->topology_epoch;
    games[index]->inject(matrix_servers[index]->node_id(), done);
  }

  void run_for(SimTime dt) { network.run_until(network.now() + dt); }

  Network network;
  Coordinator coordinator;
  ResourcePool pool;
  NodeId mc_node;
  NodeId pool_node;
  std::vector<std::unique_ptr<MatrixServer>> matrix_servers;
  std::vector<std::unique_ptr<CaptureNode>> games;
};

}  // namespace matrix
