// Tests for the baselines: static-partitioning option factories and the
// replicated-static (commercial) deployment.
#include <gtest/gtest.h>

#include "baseline/replicated_static.h"
#include "baseline/static_partitioning.h"

namespace matrix {
namespace {

using namespace time_literals;

TEST(StaticOptionsTest, FactoriesSetTheRightKnobs) {
  DeploymentOptions base;
  base.config.world = Rect(0, 0, 100, 100);

  const auto static_opts = static_partitioning_options(base, 4);
  EXPECT_FALSE(static_opts.config.allow_split);
  EXPECT_FALSE(static_opts.config.allow_reclaim);
  EXPECT_EQ(static_opts.initial_servers, 4u);
  EXPECT_EQ(static_opts.pool_size, 0u);

  const auto adaptive = adaptive_options(base, 1, 6);
  EXPECT_TRUE(adaptive.config.allow_split);
  EXPECT_EQ(adaptive.initial_servers, 1u);
  EXPECT_EQ(adaptive.pool_size, 6u);
}

ReplicatedDeployment::Options replicated_options() {
  ReplicatedDeployment::Options options;
  options.config.world = Rect(0, 0, 1000, 1000);
  options.config.visibility_radius = 60.0;
  options.spec = bzflag_like();
  options.partitions = 2;
  options.replicas = 2;
  options.seed = 5;
  return options;
}

TEST(ReplicatedStaticTest, BootsKTimesMServers) {
  ReplicatedDeployment deployment(replicated_options());
  EXPECT_EQ(deployment.game_servers().size(), 4u);
  EXPECT_EQ(deployment.routers().size(), 4u);
  // Replicas of one partition share a range; partitions differ.
  EXPECT_EQ(deployment.routers()[0]->range(), deployment.routers()[1]->range());
  EXPECT_NE(deployment.routers()[0]->range(), deployment.routers()[2]->range());
}

TEST(ReplicatedStaticTest, ClientsRoundRobinAcrossReplicas) {
  ReplicatedDeployment deployment(replicated_options());
  for (int i = 0; i < 8; ++i) {
    deployment.add_bot({100.0 + i, 500.0});  // all in partition 0
  }
  deployment.run_until(2_sec);
  EXPECT_EQ(deployment.total_clients(), 8u);
  EXPECT_EQ(deployment.game_servers()[0]->client_count(), 4u);
  EXPECT_EQ(deployment.game_servers()[1]->client_count(), 4u);
  EXPECT_EQ(deployment.game_servers()[2]->client_count(), 0u);
}

TEST(ReplicatedStaticTest, EveryReplicaHearsEveryEvent) {
  // Tight coupling: a client on replica 0 acts; replica 1's game server
  // must receive the event even with no client of its own nearby.
  auto options = replicated_options();
  options.spec.move_speed = 0.0;  // keep the bot put
  ReplicatedDeployment deployment(options);
  deployment.add_bot({100, 500});  // partition 0, replica 0
  deployment.run_until(3_sec);
  EXPECT_GT(deployment.game_servers()[1]->stats().remote_events, 0u);
  EXPECT_GT(deployment.routers()[0]->stats().replica_fanout, 0u);
}

TEST(ReplicatedStaticTest, CrossPartitionVisibilityReachesAllPeerReplicas) {
  auto options = replicated_options();
  options.spec.move_speed = 0.0;
  ReplicatedDeployment deployment(options);
  // Partition boundary is x=500 (2-grid); stand just left of it.
  deployment.add_bot({495, 500});
  deployment.run_until(3_sec);
  // BOTH replicas of partition 1 heard the boundary events.
  EXPECT_GT(deployment.game_servers()[2]->stats().remote_events, 0u);
  EXPECT_GT(deployment.game_servers()[3]->stats().remote_events, 0u);
  EXPECT_GT(deployment.routers()[0]->stats().neighbour_fanout, 0u);
}

TEST(ReplicatedStaticTest, InteriorEventStaysWithinReplicaGroup) {
  auto options = replicated_options();
  options.spec.move_speed = 0.0;
  ReplicatedDeployment deployment(options);
  deployment.add_bot({100, 500});  // deep interior of partition 0
  deployment.run_until(3_sec);
  EXPECT_EQ(deployment.routers()[0]->stats().neighbour_fanout, 0u);
  EXPECT_EQ(deployment.game_servers()[2]->stats().remote_events, 0u);
}

TEST(ReplicatedStaticTest, ReplicationCostScalesWithM) {
  // The §5 criticism quantified: same workload, M=1 vs M=3 — routing
  // bytes grow with the replica count even though the player population
  // and their behaviour are identical.
  auto run_bytes = [](std::size_t replicas) {
    auto options = replicated_options();
    options.replicas = replicas;
    ReplicatedDeployment deployment(options);
    for (int i = 0; i < 12; ++i) {
      deployment.add_bot({100.0 + 10.0 * i, 500.0});
    }
    deployment.run_until(10_sec);
    return deployment.routing_bytes();
  };
  const auto m1 = run_bytes(1);
  const auto m3 = run_bytes(3);
  EXPECT_GT(m3, m1 * 2);
}

}  // namespace
}  // namespace matrix
