// Differential test of the two EventQueue priority structures
// (net/event_queue.h): the ladder/calendar queue must pop events in an order
// BIT-IDENTICAL to the reference 4-ary heap — same (when, seq) total order,
// regardless of how inserts were routed across the near/ring/overflow tiers.
// The golden trace hashes in tests/determinism_test.cpp depend on this; here
// we pin it directly with randomized schedules that exercise every tier
// transition (near inserts, bucket folds, ring reseeds, width re-derivation,
// overflow spill, past-time clamping, re-entrant scheduling from callbacks).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "net/event_queue.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace matrix {
namespace {

using namespace time_literals;

/// Execution log: (execution time, marker) per event, in pop order.
using Log = std::vector<std::pair<std::int64_t, std::uint64_t>>;

/// Draws a scheduling offset that exercises all three tiers.  Mixes
/// same-instant, near-future (near heap / early buckets), medium (deep ring,
/// multiple bucket folds), far (overflow + ring reseed) and extreme (width
/// clamp) horizons, plus past times that must clamp to "now".
SimTime draw_when(Rng& rng, SimTime now) {
  switch (rng.next_below(10)) {
    case 0:
      return now;  // same instant: seq order must decide
    case 1:
    case 2:
    case 3:
      return now + SimTime::from_us(static_cast<std::int64_t>(
                       rng.next_below(200)));  // near
    case 4:
    case 5:
    case 6:
      return now + SimTime::from_us(static_cast<std::int64_t>(
                       rng.next_below(50'000)));  // deep ring
    case 7:
    case 8:
      return now + SimTime::from_us(static_cast<std::int64_t>(
                       rng.next_below(600'000'000)));  // overflow (10 min)
    default: {
      // Past: clamped to now.  Clamp before now_ ever advanced is a no-op,
      // so mix in genuinely-late times relative to the current clock.
      const auto back = static_cast<std::int64_t>(rng.next_below(1'000'000));
      const SimTime when = now - SimTime::from_us(back);
      return when;
    }
  }
}

/// Runs one randomized schedule/pop interleaving against `queue` and returns
/// the execution log.  The op stream depends only on `seed`, never on the
/// queue's internals, so both schedulers see the identical request sequence.
Log run_schedule(EventQueue& queue, std::uint64_t seed, int ops) {
  Rng rng(seed);
  Log log;
  std::uint64_t marker = 0;
  for (int op = 0; op < ops; ++op) {
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 70 || queue.empty()) {
      const SimTime when = draw_when(rng, queue.now());
      const std::uint64_t id = marker++;
      if (rng.next_below(8) == 0) {
        // Re-entrant: the callback itself schedules a follow-up, landing in
        // whatever tier the clock has reached by then.
        const auto delay =
            SimTime::from_us(static_cast<std::int64_t>(rng.next_below(5'000)));
        queue.schedule_at(when, [&queue, &log, id, delay] {
          log.emplace_back(queue.now().us(), id);
          queue.schedule_after(delay, [&queue, &log, id] {
            log.emplace_back(queue.now().us(), id | (1ULL << 63));
          });
        });
        ++marker;  // account for the follow-up so markers stay aligned
      } else {
        queue.schedule_at(when, [&queue, &log, id] {
          log.emplace_back(queue.now().us(), id);
        });
      }
    } else if (roll < 90) {
      queue.step();
    } else {
      // Window drains hit the bucket-fold path in bursts.
      queue.run_until(queue.now() + SimTime::from_us(static_cast<std::int64_t>(
                                        rng.next_below(100'000))));
    }
  }
  queue.run_all();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pending(), 0u);
  return log;
}

TEST(SchedulerTest, LadderMatchesHeapPopOrder) {
  // >= 20 seeds x 10k mixed ops: the ladder must produce the exact event
  // sequence of the reference heap — same times AND same tie-break order.
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    EventQueue heap;
    heap.set_scheduler(EventQueue::Scheduler::kHeap);
    EventQueue ladder;
    ladder.set_scheduler(EventQueue::Scheduler::kLadder);
    const Log expected = run_schedule(heap, seed, 10'000);
    const Log actual = run_schedule(ladder, seed, 10'000);
    ASSERT_EQ(expected, actual) << "seed " << seed;
    EXPECT_EQ(heap.events_processed(), ladder.events_processed());
    EXPECT_EQ(heap.now(), ladder.now());
  }
}

TEST(SchedulerTest, SameInstantEventsPopInScheduleOrder) {
  for (const auto scheduler :
       {EventQueue::Scheduler::kHeap, EventQueue::Scheduler::kLadder}) {
    EventQueue queue;
    queue.set_scheduler(scheduler);
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) {
      queue.schedule_at(5_ms, [&order, i] { order.push_back(i); });
    }
    queue.run_all();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(SchedulerTest, PastTimesClampToNowAfterQueuedPeers) {
  // An event scheduled in the past runs at "now" — but still AFTER events
  // already queued at the current instant (its sequence number is larger).
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(10_ms, [&] {
    queue.schedule_at(queue.now(), [&order] { order.push_back(1); });
    queue.schedule_at(2_ms, [&order] { order.push_back(2); });  // the past
    order.push_back(0);
  });
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.now(), 10_ms);
}

TEST(SchedulerTest, NextTimeTracksGlobalMinimumAcrossTiers) {
  // next_time() must be the global minimum even when the earliest event sits
  // far past the current ring (overflow tier) — the settle invariant keeps
  // the near heap fronting the whole queue.
  EventQueue queue;
  queue.schedule_at(SimTime::from_sec(7200), [] {});  // overflow (past the initial ring)
  EXPECT_EQ(queue.next_time(), SimTime::from_sec(7200));
  queue.schedule_at(SimTime::from_sec(1800), [] {});
  EXPECT_EQ(queue.next_time(), SimTime::from_sec(1800));
  queue.schedule_at(10_us, [] {});
  EXPECT_EQ(queue.next_time(), 10_us);
  EXPECT_EQ(queue.pending(), 3u);
  queue.run_all();
  EXPECT_EQ(queue.now(), SimTime::from_sec(7200));
}

TEST(SchedulerTest, ExtractTaggedRemovesOnlyMatchingEvents) {
  // Tagged extraction across all three tiers: the migrating node's events
  // come out in (when, seq) order; everything else keeps its pop order.
  EventQueue queue;
  std::vector<int> stayed;
  constexpr EventQueue::Tag kMine = 7;
  constexpr EventQueue::Tag kOther = 8;
  queue.schedule_at(1_ms, kMine, [] {});
  queue.schedule_at(1_ms, kOther, [&] { stayed.push_back(0); });
  queue.schedule_at(40_ms, kMine, [] {});    // ring tier
  queue.schedule_at(SimTime::from_sec(1200), kMine, [] {});   // overflow tier
  queue.schedule_at(5_ms, kOther, [&] { stayed.push_back(1); });

  std::vector<EventQueue::MigratedEvent> moved;
  queue.extract_tagged(kMine, moved);
  ASSERT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[0].when, 1_ms);
  EXPECT_EQ(moved[1].when, 40_ms);
  EXPECT_EQ(moved[2].when, SimTime::from_sec(1200));
  EXPECT_TRUE(moved[0].order < moved[1].order);

  // Re-home into a fresh queue: the moved callbacks still run.
  EventQueue dest;
  std::vector<std::int64_t> landed;
  for (EventQueue::MigratedEvent& event : moved) {
    const SimTime when = event.when;
    dest.schedule_at(when, kMine,
                     [&landed, when] { landed.push_back(when.us()); });
    (void)event;
  }
  dest.run_all();
  EXPECT_EQ(landed, (std::vector<std::int64_t>{1'000, 40'000, 1'200'000'000}));

  queue.run_all();
  EXPECT_EQ(stayed, (std::vector<int>{0, 1}));
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(SchedulerTest, ReentrantGrowthKeepsSlabStable) {
  // A callback scheduling thousands of events while running forces slab
  // growth mid-invoke; the deque keeps the running slot stable.
  for (const auto scheduler :
       {EventQueue::Scheduler::kHeap, EventQueue::Scheduler::kLadder}) {
    EventQueue queue;
    queue.set_scheduler(scheduler);
    int executed = 0;
    queue.schedule_at(1_us, [&] {
      for (int i = 0; i < 5'000; ++i) {
        queue.schedule_after(SimTime::from_us(i % 97), [&] { ++executed; });
      }
    });
    queue.run_all();
    EXPECT_EQ(executed, 5'000);
    EXPECT_GE(queue.peak_pending(), 5'000u);
  }
}

}  // namespace
}  // namespace matrix
