// Tests for the game-side half of the contract: sessions, spatial tagging,
// acks, shed/handoff behaviour, state transfer, client migration — driven
// with a CaptureNode standing in for the Matrix server and for clients.
#include <gtest/gtest.h>

#include "game/game_server.h"
#include "test_helpers.h"

namespace matrix {
namespace {

using namespace time_literals;

class GameServerTest : public ::testing::Test {
 protected:
  GameServerTest()
      : network_(3),
        game_(ServerId(1), bzflag_like(), Config{}),
        matrix_("fake-matrix"),
        client_("fake-client"),
        client2_("fake-client-2"),
        peer_game_("fake-peer-game") {
    network_.attach(&game_);
    network_.attach(&matrix_);
    network_.attach(&client_);
    network_.attach(&client2_);
    network_.attach(&peer_game_);
    game_.wire(matrix_.node_id());
    // Give the game server authority over the left half.
    MapRange range;
    range.new_range = Rect(0, 0, 500, 1000);
    matrix_.inject(game_.node_id(), range);
    run(50_ms);
  }

  void run(SimTime dt) { network_.run_until(network_.now() + dt); }

  void hello(CaptureNode& client, ClientId id, Vec2 pos) {
    ClientHello msg;
    msg.client = id;
    msg.position = pos;
    client.inject(game_.node_id(), msg);
    run(10_ms);
  }

  void act(CaptureNode& client, ClientId id, Vec2 pos,
           ActionKind kind = ActionKind::kMove,
           std::optional<Vec2> target = std::nullopt, std::uint32_t seq = 1) {
    ClientAction action;
    action.client = id;
    action.kind = static_cast<std::uint8_t>(kind);
    action.position = pos;
    action.target = target;
    action.seq = seq;
    action.sent_at = network_.now();
    action.payload.assign(24, 0);
    client.inject(game_.node_id(), action);
    run(10_ms);
  }

  Network network_;
  GameServer game_;
  CaptureNode matrix_;
  CaptureNode client_;
  CaptureNode client2_;
  CaptureNode peer_game_;
};

TEST_F(GameServerTest, HelloCreatesSessionAndWelcomes) {
  hello(client_, ClientId(10), {100, 100});
  EXPECT_EQ(game_.client_count(), 1u);
  const Welcome* welcome = client_.last<Welcome>();
  ASSERT_NE(welcome, nullptr);
  EXPECT_EQ(welcome->client, ClientId(10));
  EXPECT_EQ(welcome->avatar, avatar_entity_id(ClientId(10)));
  EXPECT_EQ(welcome->authority, Rect(0, 0, 500, 1000));
}

TEST_F(GameServerTest, ActionIsTaggedAndForwardedToMatrix) {
  hello(client_, ClientId(10), {100, 100});
  act(client_, ClientId(10), {120, 130}, ActionKind::kFire,
      Vec2{140, 150}, 42);
  const TaggedPacket* packet = matrix_.last<TaggedPacket>();
  ASSERT_NE(packet, nullptr);
  EXPECT_EQ(packet->client, ClientId(10));
  EXPECT_EQ(packet->origin, (Vec2{120, 130}));
  ASSERT_TRUE(packet->target.has_value());
  EXPECT_EQ(*packet->target, (Vec2{140, 150}));
  EXPECT_EQ(packet->seq, 42u);
  EXPECT_FALSE(packet->peer_forwarded);
  // Payload sized by the model's fire payload.
  EXPECT_EQ(packet->payload.size(), bzflag_like().fire_payload);
}

TEST_F(GameServerTest, ActionGetsImmediateAck) {
  hello(client_, ClientId(10), {100, 100});
  const auto updates_before = client_.count<ServerUpdate>();
  act(client_, ClientId(10), {101, 100}, ActionKind::kMove, std::nullopt, 7);
  bool acked = false;
  for (const auto& m : client_.messages) {
    if (const auto* u = std::get_if<ServerUpdate>(&m)) {
      if (u->ack_seq == 7) acked = true;
    }
  }
  EXPECT_TRUE(acked);
  EXPECT_GT(client_.count<ServerUpdate>(), updates_before);
}

TEST_F(GameServerTest, UnknownClientActionIsCountedAndDropped) {
  act(client_, ClientId(99), {10, 10});
  EXPECT_EQ(game_.stats().unknown_client_actions, 1u);
  EXPECT_EQ(matrix_.count<TaggedPacket>(), 0u);
}

TEST_F(GameServerTest, ByeRemovesSession) {
  hello(client_, ClientId(10), {100, 100});
  client_.inject(game_.node_id(), ClientBye{ClientId(10)});
  run(10_ms);
  EXPECT_EQ(game_.client_count(), 0u);
}

TEST_F(GameServerTest, UpdateTickSendsDigestsToClients) {
  hello(client_, ClientId(10), {100, 100});
  hello(client2_, ClientId(11), {120, 110});
  act(client_, ClientId(10), {100, 100});
  const auto before = client2_.count<ServerUpdate>();
  run(300_ms);  // several 100ms ticks
  EXPECT_GT(client2_.count<ServerUpdate>(), before);
  EXPECT_GT(game_.stats().updates_sent, 0u);
}

TEST_F(GameServerTest, RemoteEventCreatesGhostAndReachesClients) {
  hello(client_, ClientId(10), {490, 100});
  TaggedPacket remote;
  remote.client = ClientId(77);
  remote.entity = EntityId(77);
  remote.origin = {505, 100};  // across the boundary, within R=60
  remote.kind = static_cast<std::uint8_t>(ActionKind::kMove);
  remote.peer_forwarded = true;
  remote.client_sent_at = network_.now();
  matrix_.inject(game_.node_id(), remote);
  run(10_ms);
  EXPECT_EQ(game_.ghost_count(), 1u);
  EXPECT_EQ(game_.stats().remote_events, 1u);
}

TEST_F(GameServerTest, LoadReportsFlowPeriodically) {
  hello(client_, ClientId(10), {100, 100});
  run(2_sec);
  EXPECT_GE(matrix_.count<LoadReport>(), 3u);
  const LoadReport* report = matrix_.last<LoadReport>();
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->client_count, 1u);
}

TEST_F(GameServerTest, MedianPositionReported) {
  hello(client_, ClientId(10), {100, 100});
  hello(client2_, ClientId(11), {300, 400});
  run(1_sec);
  const LoadReport* report = matrix_.last<LoadReport>();
  ASSERT_NE(report, nullptr);
  // Median of two values (nth_element at index 1) = upper value.
  EXPECT_DOUBLE_EQ(report->median_position.x, 300.0);
  EXPECT_DOUBLE_EQ(report->median_position.y, 400.0);
}

TEST_F(GameServerTest, ShedTransfersObjectsAndRedirectsClients) {
  Rng rng(4);
  game_.spawn_map_objects(50, Rect(0, 0, 500, 1000), rng);
  hello(client_, ClientId(10), {100, 100});   // in shed range
  hello(client2_, ClientId(11), {400, 100});  // stays

  MapRange shed;
  shed.new_range = Rect(250, 0, 500, 1000);
  shed.shed_range = Rect(0, 0, 250, 1000);
  shed.shed_to_game = peer_game_.node_id();
  shed.shed_to_server = ServerId(2);
  shed.topology_epoch = 1;
  matrix_.inject(game_.node_id(), shed);
  run(50_ms);

  // ShedDone went back to Matrix with the right epoch.
  const ShedDone* done = matrix_.last<ShedDone>();
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->topology_epoch, 1u);
  EXPECT_EQ(done->clients_redirected, 1u);

  // Client in the shed range was redirected; the other kept.
  const Redirect* redirect = client_.last<Redirect>();
  ASSERT_NE(redirect, nullptr);
  EXPECT_EQ(redirect->new_game_node, peer_game_.node_id());
  EXPECT_EQ(client2_.count<Redirect>(), 0u);
  EXPECT_EQ(game_.client_count(), 1u);

  // Avatar state went server→server via Matrix.
  const ClientStateTransfer* cst = matrix_.last<ClientStateTransfer>();
  ASSERT_NE(cst, nullptr);
  EXPECT_EQ(cst->client, ClientId(10));
  EXPECT_EQ(cst->to_game, peer_game_.node_id());

  // Map objects in the shed range went out as one StateTransfer; the rest
  // stayed.  Object split is random-uniform, so just check conservation.
  const StateTransfer* st = matrix_.last<StateTransfer>();
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->object_count + game_.map_object_count(), 50u);
  EXPECT_EQ(decode_entities(st->blob).size(), st->object_count);
  for (const Entity& e : decode_entities(st->blob)) {
    EXPECT_TRUE(shed.shed_range.contains(e.position));
  }
}

TEST_F(GameServerTest, ReclaimShedsEverything) {
  Rng rng(4);
  game_.spawn_map_objects(20, Rect(0, 0, 500, 1000), rng);
  hello(client_, ClientId(10), {100, 100});
  hello(client2_, ClientId(11), {400, 900});

  MapRange reclaim;
  reclaim.reclaim = true;
  reclaim.shed_range = Rect(0, 0, 500, 1000);
  reclaim.shed_to_game = peer_game_.node_id();
  reclaim.shed_to_server = ServerId(1);
  reclaim.topology_epoch = 2;
  matrix_.inject(game_.node_id(), reclaim);
  run(50_ms);

  EXPECT_EQ(game_.client_count(), 0u);
  EXPECT_EQ(game_.map_object_count(), 0u);
  EXPECT_TRUE(game_.authority().empty());
  const ShedDone* done = matrix_.last<ShedDone>();
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->clients_redirected, 2u);
}

TEST_F(GameServerTest, StateTransferInstallsObjects) {
  std::vector<Entity> entities;
  for (int i = 0; i < 5; ++i) {
    Entity e;
    e.id = EntityId(1000 + i);
    e.kind = EntityKind::kMapObject;
    e.position = {10.0 * i, 5.0};
    entities.push_back(e);
  }
  StateTransfer st;
  st.from_server = ServerId(2);
  st.to_game = game_.node_id();
  st.object_count = 5;
  st.blob = encode_entities(entities);
  matrix_.inject(game_.node_id(), st);
  run(10_ms);
  EXPECT_EQ(game_.map_object_count(), 5u);
  EXPECT_EQ(game_.stats().state_objects_received, 5u);
}

TEST_F(GameServerTest, PendingAvatarConsumedByHello) {
  Entity avatar;
  avatar.id = avatar_entity_id(ClientId(10));
  avatar.kind = EntityKind::kAvatar;
  avatar.position = {50, 60};
  avatar.owner = ClientId(10);
  ClientStateTransfer cst;
  cst.client = ClientId(10);
  cst.entity = avatar.id;
  cst.to_game = game_.node_id();
  ByteWriter w;
  avatar.encode(w);
  cst.blob = w.take();
  matrix_.inject(game_.node_id(), cst);
  run(10_ms);

  ClientHello resume;
  resume.client = ClientId(10);
  resume.position = {51, 60};
  resume.resume = true;
  resume.redirect_seq = 4;
  client_.inject(game_.node_id(), resume);
  run(10_ms);
  EXPECT_EQ(game_.client_count(), 1u);
  const Welcome* welcome = client_.last<Welcome>();
  ASSERT_NE(welcome, nullptr);
  EXPECT_EQ(welcome->redirect_seq, 4u);
}

TEST_F(GameServerTest, WalkOutOfRangeTriggersOwnerQuery) {
  hello(client_, ClientId(10), {490, 100});
  // Client reports a position well outside authority (authority is
  // [0,500); margin is 0.25·R = 15 for bzflag-like).
  act(client_, ClientId(10), {520, 100});
  const OwnerQuery* query = matrix_.last<OwnerQuery>();
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(query->client, ClientId(10));
  EXPECT_EQ(query->point, (Vec2{520, 100}));

  // The reply redirects the client to the owner.
  OwnerReply reply;
  reply.client = ClientId(10);
  reply.seq = query->seq;
  reply.found = true;
  reply.server = ServerId(2);
  reply.game_node = peer_game_.node_id();
  matrix_.inject(game_.node_id(), reply);
  run(10_ms);
  EXPECT_EQ(game_.client_count(), 0u);
  EXPECT_EQ(game_.stats().clients_migrated, 1u);
  const Redirect* redirect = client_.last<Redirect>();
  ASSERT_NE(redirect, nullptr);
  EXPECT_EQ(redirect->new_game_node, peer_game_.node_id());
}

TEST_F(GameServerTest, SmallBoundaryExcursionDoesNotMigrate) {
  hello(client_, ClientId(10), {490, 100});
  act(client_, ClientId(10), {505, 100});  // only 5 beyond; margin is 15
  EXPECT_EQ(matrix_.count<OwnerQuery>(), 0u);
}

TEST_F(GameServerTest, StaleOwnerReplyIgnored) {
  hello(client_, ClientId(10), {490, 100});
  act(client_, ClientId(10), {520, 100});
  const OwnerQuery* query = matrix_.last<OwnerQuery>();
  ASSERT_NE(query, nullptr);
  OwnerReply reply;
  reply.client = ClientId(10);
  reply.seq = query->seq + 17;  // wrong seq
  reply.found = true;
  reply.game_node = peer_game_.node_id();
  matrix_.inject(game_.node_id(), reply);
  run(10_ms);
  EXPECT_EQ(game_.client_count(), 1u);  // not migrated
}

TEST_F(GameServerTest, EntityRoundTrip) {
  Entity e;
  e.id = EntityId(55);
  e.kind = EntityKind::kAvatar;
  e.position = {1.5, -2.5};
  e.owner = ClientId(3);
  e.variant = 4;
  ByteWriter w;
  e.encode(w);
  ByteReader r(w.bytes());
  const Entity out = Entity::decode(r);
  EXPECT_EQ(out.id, e.id);
  EXPECT_EQ(out.kind, e.kind);
  EXPECT_EQ(out.position, e.position);
  EXPECT_EQ(out.owner, e.owner);
  EXPECT_EQ(out.variant, 4u);
}

TEST_F(GameServerTest, AvatarIdsAreDisjointFromObjectIds) {
  Rng rng(1);
  game_.spawn_map_objects(100, Rect(0, 0, 500, 1000), rng);
  hello(client_, ClientId(1), {10, 10});
  // Avatar ids have the top bit set; object ids use a different prefix.
  EXPECT_NE(avatar_entity_id(ClientId(1)).value() & (1ULL << 63), 0u);
}

}  // namespace
}  // namespace matrix
